/**
 * @file
 * Analytic resource model for the design-space sweeps (Section 7).
 *
 * Figures 7-9 sweep computation sizes up to 10^24 logical ops, far
 * beyond direct simulation, so — like the paper — the sweeps run on
 * an analytic model whose congestion behaviour mirrors the braid and
 * EPR simulators (the test suite cross-validates them at feasible
 * scale).  The model captures the paper's communication asymmetry:
 *
 *  - Braids are distance-insensitive but exclusive: a braid claims an
 *    entire route for d stabilization cycles and cannot be
 *    prefetched, so offered route load beyond the circuit-switched
 *    saturation point (~22% link utilization, Figure 6) inflates the
 *    schedule.
 *
 *  - Teleportation is cheap at the point of use, but its EPR halves
 *    ride swap chains whose latency grows with distance and code
 *    distance; just-in-time prefetching hides most — not all — of
 *    that latency, and smooths bursts over the lookahead window
 *    (Section 8.1), so planar congestion saturates much later.
 */

#ifndef QSURF_ESTIMATE_MODEL_H
#define QSURF_ESTIMATE_MODEL_H

#include "apps/scaling.h"
#include "qec/code.h"
#include "qec/technology.h"

namespace qsurf::estimate {

/** All tunable constants of the analytic model, in one place. */
struct ModelConstants
{
    /** Braid open+close overhead per segment, cycles (Figure 5). */
    double braid_overhead_cycles = 2.0;

    /** Teleport cost once EPR halves are resident, cycles. */
    double teleport_cycles = 3.0;

    /**
     * Circuit-switched braid saturation: the offered-load fraction
     * at which braid placement conflicts begin stretching the
     * schedule.  Conflicts dominate well before the ~22% peak link
     * utilization Figure 6 measures, because braids cannot buffer
     * or share channels.
     */
    double dd_max_utilization = 0.08;

    /** Planar EPR channels saturate much later (packet-like). */
    double planar_max_utilization = 0.85;

    /**
     * JIT window smoothing: prefetching spreads EPR transport load
     * over roughly this many logical steps (Section 8.1).
     */
    double epr_smoothing = 8.0;

    /**
     * Residual exposed swap latency per tile hop, in units of
     * swap-hop-cycles per code distance (i.e. physical swap steps).
     * Swap channels are pipelines: consecutive EPRs stream through,
     * so the exposed residue per teleport is a per-hop pipeline
     * jitter rather than the full d-proportional chain latency.
     */
    double unhidden_swap_fraction = 1.5;

    /** Mean route length as a fraction of mesh width (2/3 for
     *  uniform random endpoints on a line). */
    double mean_route_factor = 0.667;
};

/** Space/time estimate for one (application, code, size) point. */
struct ResourceEstimate
{
    int code_distance = 0;        ///< Chosen d.
    double logical_qubits = 0;    ///< Data qubits Q.
    double total_tiles = 0;       ///< Data + factory/buffer tiles.
    double physical_qubits = 0;   ///< Total physical qubits.
    double logical_depth = 0;     ///< KQ / parallelism.
    double step_cycles = 0;       ///< Effective cycles per step.
    double congestion_inflation = 1; ///< Schedule inflation factor.
    double total_cycles = 0;      ///< Schedule length in cycles.
    double seconds = 0;           ///< Wall-clock execution time.

    /** @return the space-time product the paper compares (Fig 8). */
    double spaceTime() const { return physical_qubits * seconds; }
};

/**
 * The analytic model for one application on one technology.
 */
class ResourceModel
{
  public:
    ResourceModel(apps::AppKind app, qec::Technology tech,
                  ModelConstants constants = {});

    /** @return the estimate for @p code at computation size @p kq. */
    ResourceEstimate estimate(qec::CodeKind code, double kq) const;

    /**
     * @return double-defect : planar resource ratios at @p kq
     * (Figure 8's y-axis; >1 means double-defect costs more).
     */
    struct Ratios
    {
        double qubits = 0;
        double time = 0;
        double spacetime = 0;
    };
    Ratios ratios(double kq) const;

    /** @return the application scaling model in use. */
    const apps::AppScaling &scaling() const { return scale; }

    /** @return the technology in use. */
    const qec::Technology &technology() const { return tech; }

    /** @return the model constants in use. */
    const ModelConstants &constants() const { return k; }

  private:
    apps::AppKind app;
    qec::Technology tech;
    ModelConstants k;
    apps::AppScaling scale;
};

} // namespace qsurf::estimate

#endif // QSURF_ESTIMATE_MODEL_H
