#include "estimate/model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace qsurf::estimate {

ResourceModel::ResourceModel(apps::AppKind app_, qec::Technology tech_,
                             ModelConstants constants)
    : app(app_), tech(tech_), k(constants), scale(app_)
{
    tech.check();
}

ResourceEstimate
ResourceModel::estimate(qec::CodeKind code, double kq) const
{
    fatalIf(kq < 1, "computation size must be >= 1, got ", kq);

    ResourceEstimate out;
    out.code_distance = qec::CodeModel::chooseDistance(
        tech.p_physical, kq);
    auto d = static_cast<double>(out.code_distance);

    out.logical_qubits = scale.logicalQubits(kq);
    double parallelism = scale.parallelism(kq);
    double f2 = scale.twoQubitFraction();
    double ft = scale.tFraction();
    double f_comm = f2 + ft;
    out.logical_depth = kq / parallelism;

    // Machine geometry: data tiles plus the per-code architectural
    // overhead (factories, buffers, channels), on a square mesh.
    out.total_tiles =
        out.logical_qubits * qec::spaceOverheadFactor(code);
    double mesh_width = std::sqrt(out.total_tiles);
    double links = 2.0 * mesh_width * (mesh_width + 1.0);
    double route_len = k.mean_route_factor * mesh_width;

    // Concurrent communicating ops: braids or teleports in flight.
    double comm_in_flight = parallelism * f_comm;

    if (code == qec::CodeKind::DoubleDefect) {
        // Braids claim route_len links for d of every d+2 cycles.
        // Demand beyond the circuit-switched saturation point
        // serializes braids and stretches the schedule linearly.
        double link_demand = comm_in_flight * route_len
            * (d / (d + k.braid_overhead_cycles));
        out.congestion_inflation = std::max(
            1.0, link_demand / (links * k.dd_max_utilization));

        // Marginal op latency: the braid segments' stabilization
        // overlaps the operation's own d rounds (Figure 5), so the
        // marginal cost per 2-qubit op is the open/close overhead;
        // route occupancy shows up as congestion, not latency.
        out.step_cycles = d + f2 * k.braid_overhead_cycles + ft * 1.0;
        out.physical_qubits = out.total_tiles
            * static_cast<double>(
                  qec::doubleDefectTileQubits(out.code_distance));
    } else {
        // EPR transport: swap chains of swapHopCycles(d) per tile
        // hop.  JIT prefetching hides all but unhidden_swap_fraction
        // of that latency and smooths link demand over the window.
        double swap_hop = tech.swapHopCycles(out.code_distance);
        double link_demand = comm_in_flight * route_len * swap_hop
            / (d * k.epr_smoothing);
        out.congestion_inflation = std::max(
            1.0, link_demand / (links * k.planar_max_utilization));

        // Teleports between adjacent regions need no swap transport;
        // the exposed residue grows with the hops beyond that.
        double extra_hops = std::max(0.0, route_len - 2.0);
        double unhidden = k.unhidden_swap_fraction * f_comm
            * extra_hops * swap_hop / d;
        out.step_cycles = d + f_comm * k.teleport_cycles + unhidden;
        out.physical_qubits = out.total_tiles
            * static_cast<double>(
                  qec::planarTileQubits(out.code_distance));
    }

    out.total_cycles = out.logical_depth * out.step_cycles
        * out.congestion_inflation;
    out.seconds = out.total_cycles * tech.surfaceCycleNs() * 1e-9;
    return out;
}

ResourceModel::Ratios
ResourceModel::ratios(double kq) const
{
    ResourceEstimate dd = estimate(qec::CodeKind::DoubleDefect, kq);
    ResourceEstimate pl = estimate(qec::CodeKind::Planar, kq);
    Ratios out;
    out.qubits = dd.physical_qubits / pl.physical_qubits;
    out.time = dd.seconds / pl.seconds;
    out.spacetime = dd.spaceTime() / pl.spaceTime();
    return out;
}

} // namespace qsurf::estimate
