#include "estimate/crossover.h"

#include <cmath>

#include "common/logging.h"

namespace qsurf::estimate {

std::optional<double>
crossoverSize(const ResourceModel &model, const CrossoverOptions &opts)
{
    fatalIf(opts.kq_min < 1 || opts.kq_max <= opts.kq_min,
            "bad crossover sweep range [", opts.kq_min, ",",
            opts.kq_max, "]");
    fatalIf(opts.points_per_decade < 1,
            "points_per_decade must be >= 1");

    double step = std::pow(10.0, 1.0 / opts.points_per_decade);
    for (double kq = opts.kq_min; kq <= opts.kq_max; kq *= step)
        if (model.ratios(kq).spacetime <= 1.0)
            return kq;
    return std::nullopt;
}

std::vector<BoundaryPoint>
favorabilityBoundary(apps::AppKind app, double p_min, double p_max,
                     int points, const ModelConstants &constants,
                     const CrossoverOptions &opts)
{
    fatalIf(points < 2, "need at least 2 boundary points");
    fatalIf(p_min <= 0 || p_max <= p_min, "bad pP range");

    std::vector<BoundaryPoint> out;
    double log_min = std::log10(p_min);
    double log_max = std::log10(p_max);
    for (int i = 0; i < points; ++i) {
        double p = std::pow(
            10.0, log_min + (log_max - log_min) * i / (points - 1));
        qec::Technology tech;
        tech.p_physical = p;
        ResourceModel model(app, tech, constants);
        out.push_back(BoundaryPoint{p, crossoverSize(model, opts)});
    }
    return out;
}

} // namespace qsurf::estimate
