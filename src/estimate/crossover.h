/**
 * @file
 * Crossover analysis (Sections 7.2 and 7.3).
 *
 * For each application, the favorability cross-over is the smallest
 * computation size at which the double-defect space-time product
 * drops below the planar one (qubits x time ratio crosses 1,
 * Figure 8).  Sweeping the physical error rate produces the
 * boundary curves of Figure 9: designs below a curve should use
 * planar codes, designs above it double-defect codes.
 */

#ifndef QSURF_ESTIMATE_CROSSOVER_H
#define QSURF_ESTIMATE_CROSSOVER_H

#include <optional>
#include <vector>

#include "estimate/model.h"

namespace qsurf::estimate {

/** Sweep bounds for the computation-size axis. */
struct CrossoverOptions
{
    double kq_min = 1e1;          ///< Smallest computation size.
    double kq_max = 1e24;         ///< Largest computation size.
    int points_per_decade = 4;    ///< Sweep resolution.
};

/**
 * @return the smallest swept computation size where the space-time
 * ratio (double-defect / planar) is <= 1, or nullopt when planar
 * stays favorable over the whole sweep range.
 */
std::optional<double> crossoverSize(const ResourceModel &model,
                                    const CrossoverOptions &opts = {});

/** One point of a Figure 9 boundary curve. */
struct BoundaryPoint
{
    double p_physical = 0;          ///< Technology error rate.
    std::optional<double> crossover; ///< Boundary computation size.
};

/**
 * Figure 9: sweep pP from @p p_min to @p p_max (log-spaced,
 * @p points samples) and record the crossover boundary at each.
 */
std::vector<BoundaryPoint> favorabilityBoundary(
    apps::AppKind app, double p_min = 1e-8, double p_max = 1e-3,
    int points = 11, const ModelConstants &constants = {},
    const CrossoverOptions &opts = {});

} // namespace qsurf::estimate

#endif // QSURF_ESTIMATE_CROSSOVER_H
