/**
 * @file
 * Lattice-surgery communication model (Section 8.2).
 *
 * The paper discusses lattice surgery as the third communication
 * option: adjacent planar patches merge (turning on the syndrome
 * measurements along their shared boundary) and split again, and a
 * chain of merges/splits moves interaction across the machine.
 * Crucially, "the chain of merges and splits does not have the
 * benefits of braids (fast movement) nor teleportation
 * (prefetchability)":
 *
 *  - each merge/split round costs d cycles (the boundary syndromes
 *    must stabilize), so an L-tile chain costs ~2dL cycles — worse
 *    than a braid (distance-free) and worse than a prefetched
 *    teleport (constant);
 *  - the chain occupies every intermediate patch exclusively while
 *    it runs, like a braid route — so it congests like braiding;
 *  - none of it can be prefetched, because the merged patches carry
 *    live data.
 *
 * The model below extends the Figure 8/9 analysis with this third
 * code so the paper's dismissal can be checked quantitatively (see
 * bench/sec82_lattice_surgery).
 */

#ifndef QSURF_ESTIMATE_LATTICE_SURGERY_H
#define QSURF_ESTIMATE_LATTICE_SURGERY_H

#include "estimate/model.h"

namespace qsurf::estimate {

/** Lattice-surgery model constants. */
struct SurgeryConstants
{
    /** Merge + split rounds per chain hop, in units of d cycles. */
    double rounds_per_hop = 2.0;

    /**
     * Tile footprint relative to a planar tile: surgery needs the
     * planar patch plus shared boundary ancilla strips.
     */
    double tile_factor = 1.2;

    /**
     * Chains occupy intermediate patches exclusively; they saturate
     * like braids (no buffering), not like packet-switched EPR
     * channels.
     */
    double max_utilization = 0.08;
};

/**
 * Space/time estimate for lattice-surgery communication on the same
 * application scaling and technology as @p base.
 */
ResourceEstimate estimateSurgery(const ResourceModel &base, double kq,
                                 const SurgeryConstants &sc = {});

/**
 * Three-way comparison at one design point: space-time products for
 * planar/teleportation, double-defect/braiding, and
 * planar/lattice-surgery.
 */
struct ThreeWay
{
    ResourceEstimate planar;
    ResourceEstimate double_defect;
    ResourceEstimate surgery;

    /** @return 0 = planar, 1 = double-defect, 2 = surgery. */
    int best() const;
};

/** Evaluate all three communication schemes at @p kq. */
ThreeWay compareThreeWay(const ResourceModel &base, double kq,
                         const SurgeryConstants &sc = {});

} // namespace qsurf::estimate

#endif // QSURF_ESTIMATE_LATTICE_SURGERY_H
