#include "estimate/lattice_surgery.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace qsurf::estimate {

ResourceEstimate
estimateSurgery(const ResourceModel &base, double kq,
                const SurgeryConstants &sc)
{
    fatalIf(kq < 1, "computation size must be >= 1, got ", kq);

    const qec::Technology &tech = base.technology();
    const apps::AppScaling &scale = base.scaling();
    const ModelConstants &k = base.constants();

    ResourceEstimate out;
    out.code_distance =
        qec::CodeModel::chooseDistance(tech.p_physical, kq);
    auto d = static_cast<double>(out.code_distance);

    out.logical_qubits = scale.logicalQubits(kq);
    double parallelism = scale.parallelism(kq);
    double f_comm =
        scale.twoQubitFraction() + scale.tFraction();
    out.logical_depth = kq / parallelism;

    // Surgery keeps the planar architectural overhead (factories,
    // routing lanes between patches) but no EPR machinery.
    out.total_tiles = out.logical_qubits
        * qec::spaceOverheadFactor(qec::CodeKind::DoubleDefect);
    double mesh_width = std::sqrt(out.total_tiles);
    double links = 2.0 * mesh_width * (mesh_width + 1.0);
    double route_len = k.mean_route_factor * mesh_width;

    // A chain across route_len patches costs rounds_per_hop * d
    // cycles per hop and cannot be prefetched or shortcut.
    double chain_cycles = sc.rounds_per_hop * d * route_len;
    out.step_cycles = d + f_comm * chain_cycles;

    // The chain holds its patches for the whole chain duration, so
    // its link-time demand scales with route length *squared* in
    // time-space volume terms — braiding-style saturation, paid
    // over the longer occupancy.
    double comm_in_flight = parallelism * f_comm;
    double link_demand = comm_in_flight * route_len
        * (chain_cycles / (chain_cycles + d));
    out.congestion_inflation = std::max(
        1.0, link_demand / (links * sc.max_utilization));

    out.physical_qubits = out.total_tiles * sc.tile_factor
        * static_cast<double>(
              qec::planarTileQubits(out.code_distance));
    out.total_cycles = out.logical_depth * out.step_cycles
        * out.congestion_inflation;
    out.seconds = out.total_cycles * tech.surfaceCycleNs() * 1e-9;
    return out;
}

int
ThreeWay::best() const
{
    double p = planar.spaceTime();
    double dd = double_defect.spaceTime();
    double s = surgery.spaceTime();
    if (p <= dd && p <= s)
        return 0;
    return dd <= s ? 1 : 2;
}

ThreeWay
compareThreeWay(const ResourceModel &base, double kq,
                const SurgeryConstants &sc)
{
    ThreeWay out;
    out.planar = base.estimate(qec::CodeKind::Planar, kq);
    out.double_defect =
        base.estimate(qec::CodeKind::DoubleDefect, kq);
    out.surgery = estimateSurgery(base, kq, sc);
    return out;
}

} // namespace qsurf::estimate
