/**
 * @file
 * Superconducting technology parameters (Section 2.4) — the single
 * source of truth for physical timing and error-rate assumptions.
 *
 * Defaults follow the paper's stated assumptions: 2-qubit gates at
 * ~10 MHz, single-qubit operations 10x faster (Figure 7 caption),
 * measurement on the order of a gate.
 */

#ifndef QSURF_QEC_TECHNOLOGY_H
#define QSURF_QEC_TECHNOLOGY_H

namespace qsurf::qec {

/** Physical device characteristics fed into the backend (Figure 4). */
struct Technology
{
    /** Physical error rate pP per operation. */
    double p_physical = 1e-5;

    /** Two-qubit gate duration in nanoseconds (~10 MHz). */
    double t_two_qubit_ns = 100.0;

    /** Single-qubit gates are this factor faster (Fig 7: 10x). */
    double single_qubit_speedup = 10.0;

    /** Measurement duration in nanoseconds. */
    double t_measure_ns = 100.0;

    /** @return single-qubit gate duration in nanoseconds. */
    double tSingleQubitNs() const;

    /**
     * @return one surface-code error-correction cycle in nanoseconds.
     *
     * A cycle interacts each ancilla with its four data neighbours
     * (4 two-qubit gates), applies basis changes (2 single-qubit
     * steps) and measures the ancilla.
     */
    double surfaceCycleNs() const;

    /**
     * @return physical swap-chain latency across one tile of code
     * distance @p d, in surface-code cycles.  A swap is 3 CNOTs and
     * a tile is ~2d physical sites wide, so crossing one tile costs
     * 2d * 3 * t2q, expressed in cycles.
     */
    double swapHopCycles(int d) const;

    /** Validate ranges; fatal() on nonsense (negative times etc.). */
    void check() const;
};

/** Paper-named technology design points for the sensitivity sweep. */
namespace tech_points {

/** Current technology, pP = 1e-3 (Section 7.3 [70, 71]). */
Technology current();

/** Near-term, pP = 1e-5. */
Technology nearTerm();

/** Future optimistic, pP = 1e-8 (Figures 7 and 8). */
Technology futureOptimistic();

} // namespace tech_points

} // namespace qsurf::qec

#endif // QSURF_QEC_TECHNOLOGY_H
