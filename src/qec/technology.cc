#include "qec/technology.h"

#include "common/logging.h"

namespace qsurf::qec {

double
Technology::tSingleQubitNs() const
{
    return t_two_qubit_ns / single_qubit_speedup;
}

double
Technology::surfaceCycleNs() const
{
    return 4 * t_two_qubit_ns + 2 * tSingleQubitNs() + t_measure_ns;
}

double
Technology::swapHopCycles(int d) const
{
    double swap_ns = 3.0 * t_two_qubit_ns;
    return 2.0 * d * swap_ns / surfaceCycleNs();
}

void
Technology::check() const
{
    fatalIf(p_physical <= 0 || p_physical >= 1,
            "physical error rate must be in (0,1), got ", p_physical);
    fatalIf(t_two_qubit_ns <= 0, "two-qubit gate time must be positive");
    fatalIf(single_qubit_speedup <= 0, "speedup must be positive");
    fatalIf(t_measure_ns <= 0, "measurement time must be positive");
}

namespace tech_points {

Technology
current()
{
    Technology t;
    t.p_physical = 1e-3;
    return t;
}

Technology
nearTerm()
{
    Technology t;
    t.p_physical = 1e-5;
    return t;
}

Technology
futureOptimistic()
{
    Technology t;
    t.p_physical = 1e-8;
    return t;
}

} // namespace tech_points

} // namespace qsurf::qec
