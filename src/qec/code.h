/**
 * @file
 * Surface-code sizing: the logical/physical error-rate gap model of
 * Section 2.2 and the planar vs double-defect tile footprints of
 * Section 2.3.1 (Figure 1).
 */

#ifndef QSURF_QEC_CODE_H
#define QSURF_QEC_CODE_H

#include <cstdint>

#include "qec/technology.h"

namespace qsurf::qec {

/** The two surface-code flavors compared throughout the paper. */
enum class CodeKind : uint8_t
{
    Planar,       ///< One lattice per logical qubit (Fig 1a).
    DoubleDefect, ///< Defect pairs in a monolithic lattice (Fig 1b).
};

/** @return "planar" or "double-defect". */
const char *codeKindName(CodeKind kind);

/**
 * Surface-code strength model.
 *
 * Per-logical-op error at distance d:
 *     pl(d) = A * (pP / pth)^((d+1)/2)
 * with threshold pth = 1e-2 and A = 0.03 (Fowler's standard fit,
 * Section 2.3 [27]).  An application executing KQ logical operations
 * needs KQ * pl(d) <= 1/2 for the paper's 50% success target.
 */
class CodeModel
{
  public:
    /** Surface-code threshold error rate. */
    static constexpr double threshold = 1e-2;

    /** Prefactor of the logical-error fit. */
    static constexpr double scale_a = 0.03;

    /** Smallest code distance considered (d=3 detects one error). */
    static constexpr int min_distance = 3;

    /** Upper bound on the search; beyond this we report failure. */
    static constexpr int max_distance = 201;

    /** @return per-op logical error rate at distance @p d. */
    static double logicalErrorPerOp(double p_physical, int d);

    /**
     * Pick the smallest odd distance d so that a computation of
     * @p logical_ops operations succeeds with probability >= 1/2.
     *
     * @throws FatalError when p_physical is at/above threshold or no
     *         distance up to max_distance suffices.
     */
    static int chooseDistance(double p_physical, double logical_ops);

    /** @return pL target (error per op) for @p logical_ops. */
    static double targetLogicalError(double logical_ops);
};

/**
 * Physical qubits in one planar logical tile at distance @p d:
 * a (2d-1) x (2d-1) lattice of interleaved data and syndrome qubits
 * (Fig 1a: d^2 data + (d^2 - 1) ancilla).
 */
uint64_t planarTileQubits(int d);

/**
 * Physical qubits in one double-defect logical tile: two defect
 * regions plus the surrounding monolithic lattice, twice the planar
 * footprint (Fig 1b; the paper: "planar encoding uses fewer physical
 * qubits for the same encoding strength").
 */
uint64_t doubleDefectTileQubits(int d);

/** @return per-tile footprint for @p kind. */
uint64_t tileQubits(CodeKind kind, int d);

/**
 * Architectural space overhead multiplier on top of data tiles:
 * ancilla factories at the 1:4 factory:data ratio of Section 4.3,
 * plus, for planar, teleport buffers and EPR-channel dummy qubits
 * (Section 4.4).
 */
double spaceOverheadFactor(CodeKind kind);

} // namespace qsurf::qec

#endif // QSURF_QEC_CODE_H
