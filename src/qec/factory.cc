#include "qec/factory.h"

#include <algorithm>

#include "common/logging.h"

namespace qsurf::qec {

double
FactoryAllocation::magicRate(const MagicFactory &mf) const
{
    return magic_factories * mf.rate();
}

double
FactoryAllocation::eprRate(const EprFactory &ef) const
{
    return static_cast<double>(epr_factories) * ef.pairs_per_step;
}

FactoryAllocation
allocateFactories(int data_tiles, bool planar)
{
    fatalIf(data_tiles < 1, "need at least one data tile, got ",
            data_tiles);

    MagicFactory mf;
    EprFactory ef;
    FactoryAllocation out;

    // 1:4 factory:data tile budget, at least one magic factory.
    int budget = std::max(mf.tiles, data_tiles / 4);

    if (planar) {
        // Split the budget ~2:1 between magic-state and EPR
        // production; magic states are the scarcer resource.
        int magic_budget = std::max(mf.tiles, 2 * budget / 3);
        out.magic_factories = std::max(1, magic_budget / mf.tiles);
        int epr_budget = budget - out.magic_factories * mf.tiles;
        out.epr_factories = std::max(1, epr_budget / ef.tiles);
        out.total_tiles = out.magic_factories * mf.tiles
                        + out.epr_factories * ef.tiles;
    } else {
        out.magic_factories = std::max(1, budget / mf.tiles);
        out.epr_factories = 0;
        out.total_tiles = out.magic_factories * mf.tiles;
    }
    return out;
}

} // namespace qsurf::qec
