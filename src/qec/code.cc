#include "qec/code.h"

#include <cmath>

#include "common/logging.h"

namespace qsurf::qec {

const char *
codeKindName(CodeKind kind)
{
    return kind == CodeKind::Planar ? "planar" : "double-defect";
}

double
CodeModel::logicalErrorPerOp(double p_physical, int d)
{
    fatalIf(d < 1, "code distance must be >= 1, got ", d);
    double exponent = (d + 1) / 2.0;
    return scale_a * std::pow(p_physical / threshold, exponent);
}

double
CodeModel::targetLogicalError(double logical_ops)
{
    fatalIf(logical_ops < 1, "computation size must be >= 1, got ",
            logical_ops);
    return 0.5 / logical_ops;
}

int
CodeModel::chooseDistance(double p_physical, double logical_ops)
{
    fatalIf(p_physical >= threshold,
            "physical error rate ", p_physical,
            " is at or above the surface-code threshold ", threshold,
            "; no code distance can help");
    double target = targetLogicalError(logical_ops);
    for (int d = min_distance; d <= max_distance; d += 2)
        if (logicalErrorPerOp(p_physical, d) <= target)
            return d;
    fatal("no code distance up to ", max_distance,
          " reaches per-op error ", target, " at pP=", p_physical);
}

uint64_t
planarTileQubits(int d)
{
    auto side = static_cast<uint64_t>(2 * d - 1);
    return side * side;
}

uint64_t
doubleDefectTileQubits(int d)
{
    return 2 * planarTileQubits(d);
}

uint64_t
tileQubits(CodeKind kind, int d)
{
    return kind == CodeKind::Planar ? planarTileQubits(d)
                                    : doubleDefectTileQubits(d);
}

double
spaceOverheadFactor(CodeKind kind)
{
    // 1:4 ancilla-factory:data ratio (Section 4.3) for both codes.
    double factories = 0.25;
    if (kind == CodeKind::Planar) {
        // Teleport buffers around each region plus swap-channel dummy
        // qubits (Section 4.4) add roughly another quarter.
        return 1.0 + factories + 0.25;
    }
    // Braid channels between tiles are part of the monolithic lattice
    // and already counted in the double-defect tile footprint.
    return 1.0 + factories;
}

} // namespace qsurf::qec
