/**
 * @file
 * Ancilla factory models (Section 4.3): dedicated regions that
 * continuously prepare magic states (for T gates) and EPR pairs (for
 * teleportation).
 */

#ifndef QSURF_QEC_FACTORY_H
#define QSURF_QEC_FACTORY_H

#include <cstdint>

namespace qsurf::qec {

/** Magic-state factory parameters (Section 4.3, [41]). */
struct MagicFactory
{
    /** Logical tiles consumed by one factory (12 encoded qubits). */
    int tiles = 12;

    /**
     * Distillation latency in logical timesteps: one 15-to-1 round
     * of Bravyi-Kitaev distillation is ~10 logical timesteps.
     */
    int latency_steps = 10;

    /** Magic states produced per factory per latency window. */
    int states_per_round = 1;

    /** @return steady-state production rate (states per step). */
    double
    rate() const
    {
        return static_cast<double>(states_per_round) / latency_steps;
    }
};

/** EPR-pair factory parameters (planar/Multi-SIMD only). */
struct EprFactory
{
    /** Logical tiles consumed by one factory. */
    int tiles = 4;

    /** EPR pairs produced per factory per logical timestep. */
    int pairs_per_step = 2;
};

/**
 * Sizing of the factory region for a machine with @p data_tiles data
 * tiles at the paper's 1:4 factory:data footprint (Section 4.3:
 * "a good space-time balance is achieved with a 1:4 ancilla-to-data
 * ratio").
 */
struct FactoryAllocation
{
    int magic_factories = 0; ///< Count of magic-state factories.
    int epr_factories = 0;   ///< Count of EPR factories (planar only).
    int total_tiles = 0;     ///< Logical tiles the factories occupy.

    /** @return aggregate magic-state production per step. */
    double magicRate(const MagicFactory &mf = {}) const;

    /** @return aggregate EPR production per step. */
    double eprRate(const EprFactory &ef = {}) const;
};

/**
 * Allocate factories for @p data_tiles data tiles.
 *
 * @param data_tiles  number of logical data tiles.
 * @param planar      when true, split the budget between magic and
 *                    EPR factories; double-defect needs no EPRs
 *                    (Section 4.5: "No EPR factory is needed").
 */
FactoryAllocation allocateFactories(int data_tiles, bool planar);

} // namespace qsurf::qec

#endif // QSURF_QEC_FACTORY_H
