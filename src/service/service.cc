#include "service/service.h"

#include <chrono>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/arena.h"
#include "common/logging.h"
#include "engine/sweep.h"
#include "service/artifact.h"

namespace qsurf::service {

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now()
                                                     - start)
        .count();
}

/**
 * The batch identity of a request: the program source, the backend,
 * and every RunConfig field any backend folds into its artifactKey().
 * Two requests with equal keys are guaranteed to resolve to the same
 * prepared program and machine artifact, so one prepare serves both.
 * (Fields outside the key — technology constants, timeouts, EPR
 * windows — may still differ; each request keeps its own run.)
 */
std::string
batchKey(const CompileRequest &req)
{
    uint64_t tf_bits = 0;
    std::memcpy(&tf_bits, &req.decompose.rz_t_fraction,
                sizeof(tf_bits));
    std::ostringstream os;
    if (req.circuit)
        os << "fp=" << std::hex << circuit::fingerprint(*req.circuit)
           << std::dec;
    else
        os << "app=" << static_cast<int>(req.app)
           << "/n=" << req.gen.problem_size
           << "/it=" << req.gen.max_iterations;
    os << "/rz=" << req.decompose.rz_sequence_length << "/tf="
       << std::hex << tf_bits << std::dec << "/sw="
       << (req.decompose.expand_swap ? 1 : 0) << "/ph="
       << (req.run_peephole ? 1 : 0) << "|" << req.backend << "|s="
       << req.config.seed << "/d=" << req.config.code_distance
       << "/p=" << req.config.policy << "/obj="
       << req.config.layout_objective << "/lane="
       << req.config.lane_spacing << "/r="
       << req.config.num_simd_regions << "/cap="
       << req.config.region_capacity << "/leg="
       << (req.config.legacy_baseline ? 1 : 0);
    return os.str();
}

} // namespace

CompileService::CompileService() : CompileService(Options{}) {}

CompileService::CompileService(const Options &opts)
    : cache(opts.cache ? *opts.cache : PrepareCache::global()),
      registry(opts.registry ? *opts.registry
                             : engine::Registry::global()),
      metrics(opts.metrics ? *opts.metrics
                           : obs::MetricsRegistry::global()),
      use_arena(opts.use_arena)
{
    int n = opts.num_threads >= 1 ? opts.num_threads
                                  : engine::defaultThreads();
    workers.reserve(static_cast<size_t>(n));
    for (int t = 0; t < n; ++t)
        workers.emplace_back([this] { workerLoop(); });
}

CompileService::~CompileService()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    cv.notify_all();
    for (std::thread &t : workers)
        t.join();
}

std::future<CompileResponse>
CompileService::submit(CompileRequest req)
{
    Pending pending;
    pending.key = batchKey(req);
    pending.req = std::move(req);
    pending.enqueued = Clock::now();
    std::future<CompileResponse> future =
        pending.promise.get_future();
    size_t depth;
    {
        std::lock_guard<std::mutex> lock(mutex);
        panicIf(stopping, "submit() on a stopping CompileService");
        ++total_requests;
        queue.push_back(std::move(pending));
        depth = queue.size();
    }
    metrics.inc("service.requests");
    metrics.set("service.queue.depth",
                static_cast<double>(depth));
    cv.notify_one();
    return future;
}

CompileResponse
CompileService::compile(CompileRequest req)
{
    return submit(std::move(req)).get();
}

ServiceStats
CompileService::stats() const
{
    ServiceStats s;
    {
        std::lock_guard<std::mutex> lock(mutex);
        s.requests = total_requests;
        s.batches = total_batches;
        s.batched_requests = total_batched;
    }
    s.cache = cache.stats();
    return s;
}

void
CompileService::exportTelemetry() const
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        metrics.set("service.queue.depth",
                    static_cast<double>(queue.size()));
    }
    CacheStats totals = cache.stats();
    metrics.set("cache.hits", static_cast<double>(totals.hits));
    metrics.set("cache.misses", static_cast<double>(totals.misses));
    metrics.set("cache.evictions",
                static_cast<double>(totals.evictions));
    metrics.set("cache.entries",
                static_cast<double>(totals.entries));
    std::vector<ShardStats> per_shard = cache.shardStats();
    for (size_t i = 0; i < per_shard.size(); ++i) {
        std::string prefix =
            "cache.shard" + std::to_string(i) + ".";
        metrics.set(prefix + "hits",
                    static_cast<double>(per_shard[i].hits));
        metrics.set(prefix + "misses",
                    static_cast<double>(per_shard[i].misses));
        metrics.set(prefix + "entries",
                    static_cast<double>(per_shard[i].entries));
    }
}

int
CompileService::threads() const
{
    return static_cast<int>(workers.size());
}

obs::MetricsRegistry &
CompileService::metricsRegistry() const
{
    return metrics;
}

void
CompileService::workerLoop()
{
    // One scratch arena per worker thread, living as long as the
    // thread: after warm-up it reaches a single coalesced block and
    // batch execution stops touching the global heap.
    Arena arena;
    for (;;) {
        std::vector<Pending> batch;
        {
            std::unique_lock<std::mutex> lock(mutex);
            cv.wait(lock,
                    [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // Stopping, queue drained.
            batch.push_back(std::move(queue.front()));
            queue.pop_front();
            // Pull every queued request with the same prepare
            // identity into this batch: one artifact fetch, N runs.
            const std::string &key = batch.front().key;
            for (auto it = queue.begin(); it != queue.end();) {
                if (it->key == key) {
                    batch.push_back(std::move(*it));
                    it = queue.erase(it);
                } else {
                    ++it;
                }
            }
            ++total_batches;
            if (batch.size() > 1)
                total_batched += batch.size();
        }
        serveBatch(std::move(batch), use_arena ? &arena : nullptr);
    }
}

void
CompileService::serveBatch(std::vector<Pending> batch, Arena *arena)
{
    if (arena)
        arena->reset();
    Arena::Scope scope(arena);
    // Prepare once for the whole batch (all entries share the batch
    // key, hence the same program and machine artifact).
    const engine::Backend *backend = nullptr;
    std::shared_ptr<const CachedProgram> program;
    std::shared_ptr<const engine::PreparedArtifact> artifact;
    double prepare_ms = 0;
    std::string prepare_error;
    try {
        const CompileRequest &req = batch.front().req;
        backend = &registry.get(req.backend);
        auto start = Clock::now();
        // The analytic models take a circuit too (to derive the
        // computation size), so resolve the program unless the
        // request brings an explicit KQ instead.
        if (backend->needsCircuit() || req.config.kq <= 0)
            program = req.circuit
                ? cachedProgram(cache, *req.circuit, req.decompose,
                                req.run_peephole)
                : cachedAppProgram(cache, req.app, req.gen,
                                   req.decompose, req.run_peephole);
        engine::WorkItem probe;
        probe.app = req.app;
        probe.config = req.config;
        if (program) {
            probe.circuit = &program->circ;
            probe.circuit_fingerprint = program->fingerprint;
        }
        artifact = fetchArtifact(cache, *backend, probe);
        prepare_ms = msSince(start);
    } catch (const std::exception &e) {
        prepare_error = e.what();
    }
    metrics.observe("service.batch.size",
                    static_cast<double>(batch.size()));
    metrics.observe("service.prepare_ms", prepare_ms);

    for (Pending &pending : batch) {
        // Nested scope: the batch reset bounds the whole group, the
        // per-request rewind recycles one request's scratch for the
        // next without invalidating the shared prepare artifacts
        // (those live in the cache, never in the arena).
        Arena::Checkpoint cp;
        Arena::Stats arena_before;
        if (arena) {
            cp = arena->checkpoint();
            arena_before = arena->stats();
        }
        CompileResponse response;
        response.prepare_ms = prepare_ms;
        response.batch_size = batch.size();
        if (!prepare_error.empty()) {
            response.error = prepare_error;
            metrics.observe("service.request.latency_ms",
                            msSince(pending.enqueued));
            metrics.inc("service.errors");
            pending.promise.set_value(std::move(response));
            continue;
        }
        try {
            const CompileRequest &req = pending.req;
            engine::WorkItem item;
            item.app = req.app;
            item.config = req.config;
            if (program) {
                item.circuit = &program->circ;
                item.circuit_fingerprint = program->fingerprint;
            }
            if (!req.label.empty())
                item.app_name = req.label;
            else if (req.circuit && !req.circuit->name().empty())
                item.app_name = req.circuit->name();
            else
                item.app_name = apps::appSpec(req.app).name;
            backend->prepare(item);
            auto start = Clock::now();
            response.metrics = backend->run(item, artifact.get());
            response.run_ms = msSince(start);
        } catch (const std::exception &e) {
            response.error = e.what();
        }
        if (arena) {
            Arena::Stats after = arena->stats();
            metrics.observe("service.arena.allocs",
                            static_cast<double>(
                                after.allocations
                                - arena_before.allocations));
            metrics.observe(
                "service.arena.bytes",
                static_cast<double>(after.bytes
                                    - arena_before.bytes));
            arena->rewind(cp);
        }
        metrics.observe("service.run_ms", response.run_ms);
        metrics.observe("service.request.latency_ms",
                        msSince(pending.enqueued));
        if (!response.ok())
            metrics.inc("service.errors");
        pending.promise.set_value(std::move(response));
    }
}

} // namespace qsurf::service
