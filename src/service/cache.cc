#include "service/cache.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace qsurf::service {

PrepareCache::PrepareCache() : PrepareCache(Options{}) {}

PrepareCache::PrepareCache(const Options &opts)
{
    fatalIf(opts.shards < 1, "cache needs at least one shard, got ",
            opts.shards);
    fatalIf(opts.capacity < 1, "cache capacity must be >= 1");
    auto n = static_cast<size_t>(opts.shards);
    shards.reserve(n);
    for (size_t i = 0; i < n; ++i)
        shards.push_back(std::make_unique<Shard>());
    // Per-shard budget, rounded up so the total is never below the
    // requested capacity.
    per_shard_capacity = std::max<size_t>(1, (opts.capacity + n - 1) / n);
}

PrepareCache::Shard &
PrepareCache::shardOf(const std::string &key)
{
    return *shards[std::hash<std::string>{}(key) % shards.size()];
}

const PrepareCache::Shard &
PrepareCache::shardOf(const std::string &key) const
{
    return *shards[std::hash<std::string>{}(key) % shards.size()];
}

PrepareCache::Value
PrepareCache::getOrBuild(const std::string &key, const Builder &build)
{
    Shard &shard = shardOf(key);
    std::promise<Value> promise;
    std::shared_future<Value> future;
    bool owner = false;

    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.map.find(key);
        if (it != shard.map.end()) {
            // Ready hit or single-flight wait: either way the value
            // is computed at most once.
            hits.fetch_add(1, std::memory_order_relaxed);
            shard.hits.fetch_add(1, std::memory_order_relaxed);
            if (it->second.ready)
                shard.lru.splice(shard.lru.begin(), shard.lru,
                                 it->second.lru_pos);
            future = it->second.future;
        } else {
            misses.fetch_add(1, std::memory_order_relaxed);
            shard.misses.fetch_add(1, std::memory_order_relaxed);
            owner = true;
            Entry entry;
            entry.future = promise.get_future().share();
            future = entry.future;
            shard.map.emplace(key, std::move(entry));
        }
    }

    // Loser of the race (or a ready hit): wait on the shared future.
    // get() rethrows a builder exception to every waiter.
    if (!owner)
        return future.get();

    // Owner: run the builder outside the lock.
    Value value;
    try {
        value = build();
    } catch (...) {
        {
            std::lock_guard<std::mutex> lock(shard.mutex);
            shard.map.erase(key);
        }
        promise.set_exception(std::current_exception());
        throw;
    }

    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.map.find(key);
        // clear() may have raced the build; reinsert is harmless
        // because the entry is keyed identically.
        if (it == shard.map.end())
            it = shard.map
                     .emplace(key, Entry{future, false,
                                         shard.lru.end()})
                     .first;
        shard.lru.push_front(key);
        it->second.ready = true;
        it->second.lru_pos = shard.lru.begin();
        while (shard.lru.size() > per_shard_capacity) {
            shard.map.erase(shard.lru.back());
            shard.lru.pop_back();
            evictions.fetch_add(1, std::memory_order_relaxed);
        }
    }
    promise.set_value(value);
    return value;
}

bool
PrepareCache::contains(const std::string &key) const
{
    const Shard &shard = shardOf(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    return it != shard.map.end() && it->second.ready;
}

void
PrepareCache::clear()
{
    for (auto &shard : shards) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        // Drop ready entries only; in-flight builders re-register
        // their result when they finish.
        for (const std::string &key : shard->lru)
            shard->map.erase(key);
        shard->lru.clear();
    }
}

CacheStats
PrepareCache::stats() const
{
    CacheStats s;
    s.hits = hits.load(std::memory_order_relaxed);
    s.misses = misses.load(std::memory_order_relaxed);
    s.evictions = evictions.load(std::memory_order_relaxed);
    for (const auto &shard : shards) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        s.entries += shard->map.size();
    }
    return s;
}

std::vector<ShardStats>
PrepareCache::shardStats() const
{
    std::vector<ShardStats> out;
    out.reserve(shards.size());
    for (const auto &shard : shards) {
        ShardStats s;
        s.hits = shard->hits.load(std::memory_order_relaxed);
        s.misses = shard->misses.load(std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(shard->mutex);
            s.entries = shard->map.size();
        }
        out.push_back(s);
    }
    return out;
}

PrepareCache &
PrepareCache::global()
{
    static PrepareCache cache{Options{}};
    return cache;
}

} // namespace qsurf::service
