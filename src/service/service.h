/**
 * @file
 * CompileService: a long-lived, in-process compile server.
 *
 * Instead of paying circuit generation, decomposition and seeded
 * layout construction per call (the batch-tool model every figure
 * bench historically followed), a service accepts a stream of
 * CompileRequests, keeps the shared PrepareCache warm across them,
 * and batches queued requests that share a prepare identity so one
 * artifact fetch serves the whole group.  Every request returns the
 * same uniform engine::Metrics a direct Backend::run() produces —
 * bit-identical, since the cached artifact path is bit-identical by
 * construction.
 */

#ifndef QSURF_SERVICE_SERVICE_H
#define QSURF_SERVICE_SERVICE_H

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "apps/apps.h"
#include "circuit/circuit.h"
#include "circuit/decompose.h"
#include "engine/backend.h"
#include "engine/registry.h"
#include "obs/metrics.h"
#include "service/cache.h"

namespace qsurf {
class Arena;
} // namespace qsurf

namespace qsurf::service {

/** One compile job: a program source plus a backend and run config. */
struct CompileRequest
{
    /** Generated application to compile (when `circuit` is null). */
    apps::AppKind app = apps::AppKind::SQ;

    /** Generator knobs for `app`. */
    apps::GenOptions gen;

    /**
     * Caller-built logical circuit; when set it replaces the
     * generated app as the program source (the service decomposes
     * it, caching by content fingerprint).
     */
    std::shared_ptr<const circuit::Circuit> circuit;

    /** Frontend decomposition settings. */
    circuit::DecomposeConfig decompose;

    /** Run logical peephole optimization before decomposing. */
    bool run_peephole = false;

    /** Display-name override; empty derives one from the source. */
    std::string label;

    /** Backend registry name to run on. */
    std::string backend = engine::backends::planar;

    /** Run parameters (seed, distance, policy, objective, ...). */
    engine::RunConfig config;
};

/** Outcome of one request. */
struct CompileResponse
{
    /** Uniform result record; valid when ok(). */
    engine::Metrics metrics;

    /** Wall time of the prepare stage (program + machine artifact)
     *  this request's batch paid, in ms.  Warm requests see the
     *  cache-hit cost, not the build cost. */
    double prepare_ms = 0;

    /** Wall time of Backend::run() for this request, in ms. */
    double run_ms = 0;

    /** Requests served by the batch that prepared this response. */
    uint64_t batch_size = 1;

    /** Failure description; empty on success. */
    std::string error;

    bool ok() const { return error.empty(); }
};

/** Counter snapshot of one CompileService. */
struct ServiceStats
{
    uint64_t requests = 0;         ///< Requests submitted.
    uint64_t batches = 0;          ///< Prepare groups executed.
    uint64_t batched_requests = 0; ///< Requests in groups of >= 2.
    CacheStats cache;              ///< The shared cache's counters.
};

/**
 * The in-process compile server.  submit() is thread-safe; worker
 * threads drain the queue until destruction (the destructor finishes
 * queued work before joining).  Responses are deterministic in the
 * request alone — batching and caching change wall time, never
 * metrics.
 */
class CompileService
{
  public:
    struct Options
    {
        /** Worker threads; < 1 uses engine::defaultThreads(). */
        int num_threads = 0;

        /** Cache to keep warm; null uses PrepareCache::global(). */
        PrepareCache *cache = nullptr;

        /** Backend registry; null uses Registry::global(). */
        const engine::Registry *registry = nullptr;

        /** Telemetry registry ("service.*" counters, gauges and
         *  latency histograms); null uses
         *  obs::MetricsRegistry::global(). */
        obs::MetricsRegistry *metrics = nullptr;

        /**
         * Bind a per-worker scratch arena around request execution:
         * reset per batch, checkpoint/rewound between the batch's
         * requests, so steady-state request scratch (BFS working
         * sets and friends) never touches the global heap.  Results
         * are bit-identical on or off; the per-request arena
         * activity feeds the "service.arena.*" histograms.
         */
        bool use_arena = true;
    };

    CompileService();
    explicit CompileService(const Options &opts);
    ~CompileService();

    CompileService(const CompileService &) = delete;
    CompileService &operator=(const CompileService &) = delete;

    /**
     * Enqueue @p req; the future resolves when a worker finishes it.
     * Requests already queued that share the prepare identity are
     * served as one batch.  Must not be called during destruction.
     */
    std::future<CompileResponse> submit(CompileRequest req);

    /** Synchronous convenience: submit @p req and wait. */
    CompileResponse compile(CompileRequest req);

    /** @return a snapshot of the service counters. */
    ServiceStats stats() const;

    /**
     * Publish point-in-time gauges to the telemetry registry: the
     * current queue depth plus the shared cache's totals and
     * per-shard hit/miss/residency ("cache.shard<i>.*").  The
     * streaming counters and histograms ("service.requests",
     * "service.request.latency_ms", ...) are recorded live by
     * submit() and the workers; call this before dumping metrics.
     */
    void exportTelemetry() const;

    /** @return the number of worker threads. */
    int threads() const;

    /**
     * The telemetry registry this service records into.  Connection
     * handlers (wire::serveConnection) use it for the wire-level
     * health counters — "service.wire.corrupt_frames",
     * "service.wire.peer_gone" — so fleet dashboards see broken
     * peers next to request latency.
     */
    obs::MetricsRegistry &metricsRegistry() const;

  private:
    struct Pending
    {
        CompileRequest req;
        std::string key; ///< Batch identity, fixed at submit.
        std::promise<CompileResponse> promise;
        std::chrono::steady_clock::time_point enqueued;
    };

    void workerLoop();
    void serveBatch(std::vector<Pending> batch, Arena *arena);

    PrepareCache &cache;
    const engine::Registry &registry;
    obs::MetricsRegistry &metrics;
    bool use_arena;

    mutable std::mutex mutex;
    std::condition_variable cv;
    std::deque<Pending> queue;
    bool stopping = false;
    uint64_t total_requests = 0;
    uint64_t total_batches = 0;
    uint64_t total_batched = 0;

    std::vector<std::thread> workers;
};

} // namespace qsurf::service

#endif // QSURF_SERVICE_SERVICE_H
