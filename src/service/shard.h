/**
 * @file
 * Multi-process sharded sweep execution — fault-tolerant.
 *
 * runShardedSweep() partitions a SweepGrid across a fleet of worker
 * processes and merges their rows into the same results (and the
 * same BENCH_*.json) a single-process SweepDriver::run() produces.
 * Points are partitioned by residue class (grid index modulo the
 * fleet width) and per-point seeds depend only on the grid, so any
 * worker reproduces exactly the rows any other execution would
 * produce for its indices — the merged document is byte-identical to
 * the single-process one (canonicalSweepRows() compares them;
 * wall-clock observations are excluded, they physically differ).
 *
 * The fleet mixes three worker shapes behind one wire protocol
 * (src/service/wire.h — Hello up, ShardAssign down, Row/Done up,
 * Shutdown down):
 *
 *  - forked locals over a socketpair (grid inherited, so
 *    caller-built circuits need no serialization);
 *  - forked locals connecting back over TCP loopback
 *    (ShardOptions::local_tcp — the hermetic transport check);
 *  - remote workers (`compile_server --sweep-worker` listening on
 *    host:port, named in ShardOptions::remote_workers) that the
 *    parent dials with capped-backoff retries and ships the grid to
 *    as JSON.
 *
 * One dead peer never kills the fleet: the parent tracks completion
 * per point (the rows_path stream persists finished rows), detects
 * worker death via read-EOF/reset/corrupt-frame/waitpid or a stall
 * deadline, and reassigns the lost worker's *unfinished* residue
 * classes — to a respawned local worker while max_worker_restarts
 * allows, then to surviving workers as they go idle.  Failures are
 * summarized in FleetStats (degraded mode) rather than aborting the
 * sweep; only an unrecoverable fleet (no survivors, restarts
 * exhausted) is fatal.
 */

#ifndef QSURF_SERVICE_SHARD_H
#define QSURF_SERVICE_SHARD_H

#include <string>
#include <vector>

#include "engine/registry.h"
#include "engine/sweep.h"

namespace qsurf::service {

/** Outcome counters of one sharded sweep fleet (degraded-mode
 *  summary). */
struct FleetStats
{
    uint64_t workers_started = 0;  ///< Initial fleet + respawns.
    uint64_t worker_failures = 0;  ///< Deaths, stalls, Error frames.
    uint64_t worker_restarts = 0;  ///< Replacement locals forked.
    uint64_t reassignments = 0;    ///< Orphaned slices re-dispatched.
    uint64_t points_reassigned = 0; ///< Unfinished points moved.
    uint64_t connect_retries = 0;  ///< Failed remote dial attempts.
    uint64_t remote_redials = 0;   ///< Dead remotes that rejoined.

    /** Any worker was lost along the way: the rows are still exact,
     *  but wall clock ran under reduced parallelism. */
    bool degraded = false;
};

/** Knobs of one sharded sweep. */
struct ShardOptions
{
    /** Local worker processes to fork; may be 0 when
     *  remote_workers is non-empty. */
    int workers = 2;

    /**
     * Per-worker sweep execution options.  json_path / rows_path /
     * resume / title apply to the parent's merged output; the
     * workers run with num_threads / use_cache / use_arena of this
     * and never write files themselves.  trace / metrics / on_row /
     * point_filter / heap_alloc_counter are parent-side concepts and
     * must be unset (fatal() otherwise): a forked worker's registry
     * would die with it.
     */
    engine::SweepOptions sweep;

    /**
     * Seconds of silence (no frame from any worker) before the
     * parent declares the whole fleet hung, kills it and fatal()s;
     * 0 disables.  This is the CI guard against a wedged fleet
     * stalling a pipeline forever.
     */
    int idle_timeout_sec = 600;

    /**
     * Remote sweep workers, "host:port" each — `compile_server
     * --sweep-worker --tcp=...` processes on other machines.  The
     * parent dials them with connectWithRetry() and ships the grid
     * as JSON, so grids with caller-built circuits (not
     * representable on the wire) fatal() here.  A remote worker
     * that dies falls back to local respawns or survivors — and is
     * periodically redialed when remote_redial_interval_sec is set,
     * so a restarted process on the same address rejoins the fleet.
     */
    std::vector<std::string> remote_workers;

    /**
     * Seconds between redial probes of dead remote workers while
     * orphaned work exists.  Each probe is a single connect attempt
     * (no backoff — the poll loop must keep draining live workers);
     * a probe that connects puts the worker back in rotation, where
     * the normal orphan dispatch hands it a slice.  Counted in
     * FleetStats::remote_redials.  0 disables redialing (a dead
     * remote stays dead, the historical behavior).
     */
    int remote_redial_interval_sec = 0;

    /**
     * Fork local workers that connect back over TCP loopback
     * instead of a socketpair: same processes, same rows, but the
     * bytes cross the real TCP transport (the scale-out bench's
     * transport-equivalence check).
     */
    bool local_tcp = false;

    /**
     * Replacement local workers the parent may fork after worker
     * deaths; once exhausted, orphaned slices wait for surviving
     * workers to go idle.  0 disables respawning.
     */
    int max_worker_restarts = 2;

    /**
     * Seconds of per-worker silence (while it owes rows) before
     * that one worker is declared hung, killed and its slice
     * reassigned; 0 disables.  Distinct from idle_timeout_sec,
     * which is fleet-wide and fatal.
     */
    int worker_stall_timeout_sec = 0;

    /**
     * Fault injection for tests and the scale-out bench: SIGKILL
     * the local worker at fleet slot fault_kill_worker right after
     * the parent has merged fault_kill_after_rows of its rows,
     * discarding any further rows it had in flight (what a
     * mid-compute crash looks like) — so the orphaned remainder of
     * its slice is the same at any scheduling.  -1 disables.
     */
    int fault_kill_worker = -1;
    int fault_kill_after_rows = 0;

    /** When non-null, receives the fleet outcome summary. */
    FleetStats *stats = nullptr;
};

/**
 * Run @p grid across the worker fleet; @return results in grid
 * expansion order, exactly as SweepDriver::run() would.  Worker
 * deaths are recovered per the options above; fatal() is reserved
 * for configuration errors and unrecoverable fleets (every worker
 * dead with restarts exhausted, or the fleet-wide idle timeout).
 */
std::vector<engine::SweepPoint>
runShardedSweep(const engine::SweepGrid &grid,
                const ShardOptions &opts,
                const engine::Registry &registry =
                    engine::Registry::global());

/** Environment of one sweep-worker connection (serveSweepWorker). */
struct SweepWorkerEnv
{
    /**
     * The inherited grid (forked workers); null means the worker
     * expects the grid as JSON inside its first ShardAssign (remote
     * workers, which share no memory with the parent).
     */
    const engine::SweepGrid *grid = nullptr;

    /** Execution options (threads, cache, arena); output/callback
     *  fields are overridden by the worker loop. */
    engine::SweepOptions base;

    /** Fleet slot announced in the worker's Hello; -1 for workers
     *  not spawned by the parent (remote compile_server). */
    int slot = -1;

    /** Backend registry; null uses Registry::global(). */
    const engine::Registry *registry = nullptr;
};

/**
 * Serve one sweep-worker connection on @p fd: send Hello, then loop
 * — ShardAssign in (residue classes, completion bitmap, optional
 * grid), Row frames out per completed point, Done when the slice is
 * finished — until Shutdown or disconnect.  @return true on an
 * orderly Shutdown, false when the parent vanished.  Shared by the
 * forked shard workers and `compile_server --sweep-worker`.
 */
bool serveSweepWorker(int fd, const SweepWorkerEnv &env);

} // namespace qsurf::service

#endif // QSURF_SERVICE_SHARD_H
