/**
 * @file
 * Multi-process sharded sweep execution.
 *
 * runShardedSweep() partitions a SweepGrid across N forked worker
 * processes and merges their rows into the same results (and the
 * same BENCH_*.json) a single-process SweepDriver::run() produces.
 * The partition is deterministic (grid index modulo worker count)
 * and per-point seeds depend only on the grid, so a worker
 * reproduces exactly the rows any other execution would produce for
 * its indices — the merged document is byte-identical to the
 * single-process one (canonicalSweepRows() compares them; wall-clock
 * observations are excluded, they physically differ).
 *
 * Workers are fork()ed without exec, so caller-built circuits and
 * registry state are inherited and nothing about the grid needs
 * serializing; each worker speaks the wire protocol (src/service/
 * wire.h) over its socketpair — ShardAssign down, Row per completed
 * point and Done up — and the parent streams every received row to
 * the row-stream file as it lands, so a killed sharded sweep leaves
 * the same resumable partial file a killed single-process one does.
 */

#ifndef QSURF_SERVICE_SHARD_H
#define QSURF_SERVICE_SHARD_H

#include <string>
#include <vector>

#include "engine/registry.h"
#include "engine/sweep.h"

namespace qsurf::service {

/** Knobs of one sharded sweep. */
struct ShardOptions
{
    /** Worker processes to fork; values < 1 fatal(). */
    int workers = 2;

    /**
     * Per-worker sweep execution options.  json_path / rows_path /
     * resume / title apply to the parent's merged output; the
     * workers run with num_threads / use_cache / use_arena of this
     * and never write files themselves.  trace / metrics / on_row /
     * point_filter / heap_alloc_counter are parent-side concepts and
     * must be unset (fatal() otherwise): a forked worker's registry
     * would die with it.
     */
    engine::SweepOptions sweep;

    /**
     * Seconds of silence (no Row/Done frame from any worker) before
     * the parent declares the fleet hung, kills it and fatal()s;
     * 0 disables.  This is the CI guard against a wedged worker
     * stalling a pipeline forever.
     */
    int idle_timeout_sec = 600;
};

/**
 * Run @p grid across forked workers; @return results in grid
 * expansion order, exactly as SweepDriver::run() would.  fatal()s
 * when a worker crashes, reports an error, exits unclean, or the
 * fleet goes silent past the idle timeout.
 */
std::vector<engine::SweepPoint>
runShardedSweep(const engine::SweepGrid &grid,
                const ShardOptions &opts,
                const engine::Registry &registry =
                    engine::Registry::global());

} // namespace qsurf::service

#endif // QSURF_SERVICE_SHARD_H
