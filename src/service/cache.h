/**
 * @file
 * PrepareCache: thread-safe, sharded memoization of the expensive
 * prepare artifacts — decomposed circuits and seeded machine
 * layouts — that every grid point of a sweep historically rebuilt
 * from scratch.
 *
 * The cache stores type-erased shared_ptr values under string keys
 * (the keys name every input the value depends on; see
 * Backend::artifactKey).  Lookups are single-flight: concurrent
 * getOrBuild() calls for one key run the builder exactly once and
 * everyone shares the result, so a sweep fanning 8 workers into the
 * same seeded layout builds it once instead of 8 times.  Ready
 * entries are LRU-bounded per shard; in-flight entries are never
 * evicted.  Hit/miss/evict counters feed the BENCH_*.json
 * observability satellite.
 */

#ifndef QSURF_SERVICE_CACHE_H
#define QSURF_SERVICE_CACHE_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace qsurf::service {

/** Counter snapshot of one PrepareCache. */
struct CacheStats
{
    /** Lookups served from a ready or in-flight entry (the latter
     *  are single-flight waits: the value was not rebuilt). */
    uint64_t hits = 0;

    /** Lookups that ran the builder. */
    uint64_t misses = 0;

    /** Ready entries discarded by the LRU bound. */
    uint64_t evictions = 0;

    /** Entries currently resident (ready + in flight). */
    uint64_t entries = 0;

    /** @return hits / (hits + misses), or 0 when empty. */
    double
    hitRatio() const
    {
        uint64_t total = hits + misses;
        return total ? static_cast<double>(hits)
                / static_cast<double>(total)
                     : 0.0;
    }
};

/** Per-shard counter snapshot (see PrepareCache::shardStats). */
struct ShardStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t entries = 0;
};

/**
 * Sharded, single-flight, LRU-bounded memoization of expensive
 * prepare work.  Values are immutable once built; callers keep them
 * alive through the returned shared_ptr, so eviction never
 * invalidates a value in use.  All methods are thread-safe.
 */
class PrepareCache
{
  public:
    /** A type-erased cached value. */
    using Value = std::shared_ptr<const void>;

    /** Builds the value of one key; run outside the shard lock. */
    using Builder = std::function<Value()>;

    struct Options
    {
        /** Ready entries retained across all shards; older entries
         *  are evicted least-recently-used first. */
        size_t capacity = 512;

        /** Lock shards; 1 gives a single global LRU order (used by
         *  tests that pin exact eviction behavior). */
        int shards = 8;
    };

    PrepareCache();
    explicit PrepareCache(const Options &opts);

    PrepareCache(const PrepareCache &) = delete;
    PrepareCache &operator=(const PrepareCache &) = delete;

    /**
     * @return the value under @p key, running @p build to create it
     * on a miss.  Concurrent calls for the same key run the builder
     * once (single flight); the rest wait and share the result.  A
     * builder exception propagates to every waiter and removes the
     * entry, so a later call retries.
     */
    Value getOrBuild(const std::string &key, const Builder &build);

    /** @return true when @p key is resident and ready. */
    bool contains(const std::string &key) const;

    /** Drop every ready entry (counters are kept). */
    void clear();

    /** @return a snapshot of the counters. */
    CacheStats stats() const;

    /**
     * @return per-shard hit/miss/residency counters, in shard order.
     * A skewed distribution (one hot shard) means key hashing is
     * serializing lookups on one mutex; the service telemetry
     * exports these as "cache.shard<i>.*" gauges.
     */
    std::vector<ShardStats> shardStats() const;

    /**
     * The process-wide cache the sweep driver, the toolflow and the
     * compile service share by default.
     */
    static PrepareCache &global();

  private:
    struct Entry
    {
        /** The (possibly still-computing) value. */
        std::shared_future<Value> future;

        /** Set once the builder finished; only ready entries are in
         *  the LRU list and eligible for eviction. */
        bool ready = false;

        /** Position in the shard's LRU list (valid when ready). */
        std::list<std::string>::iterator lru_pos;
    };

    struct Shard
    {
        mutable std::mutex mutex;
        std::unordered_map<std::string, Entry> map;

        /** Ready keys, most recently used first. */
        std::list<std::string> lru;

        /** Per-shard lookup counters (shard skew telemetry). */
        std::atomic<uint64_t> hits{0};
        std::atomic<uint64_t> misses{0};
    };

    Shard &shardOf(const std::string &key);
    const Shard &shardOf(const std::string &key) const;

    std::vector<std::unique_ptr<Shard>> shards;
    size_t per_shard_capacity;

    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> evictions{0};
};

} // namespace qsurf::service

#endif // QSURF_SERVICE_CACHE_H
