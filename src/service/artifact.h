/**
 * @file
 * Cache adapters for the two expensive prepare stages every entry
 * point shares: the logical frontend (generate/parse -> peephole ->
 * decompose -> analyze) and the per-backend machine layout
 * (Backend::buildArtifact).  Each helper derives a key that names
 * every input the value depends on, then goes through
 * PrepareCache::getOrBuild, so sweeps, the toolflow and the compile
 * service all share one warm path.
 */

#ifndef QSURF_SERVICE_ARTIFACT_H
#define QSURF_SERVICE_ARTIFACT_H

#include <memory>
#include <string>

#include "apps/apps.h"
#include "circuit/circuit.h"
#include "circuit/decompose.h"
#include "circuit/peephole.h"
#include "circuit/schedule.h"
#include "engine/backend.h"
#include "service/cache.h"

namespace qsurf::service {

/**
 * A fully prepared program: the decomposed Clifford+T circuit plus
 * the frontend analysis the toolflow reports.  Immutable once built;
 * shared by every grid point / request that compiles the same
 * logical program the same way.
 */
struct CachedProgram
{
    /** Decomposed (Clifford+T) circuit. */
    circuit::Circuit circ;

    /** circuit::fingerprint(circ), precomputed so WorkItems skip
     *  rehashing on every grid point. */
    uint64_t fingerprint = 0;

    /** Post-decomposition op counts. */
    circuit::OpCounts counts;

    /** Post-decomposition parallelism profile. */
    circuit::ParallelismProfile parallelism;

    /** Frontend rewrite stats (zero when peephole was skipped). */
    circuit::PeepholeStats peephole;
};

/**
 * @return the prepared program of generated application @p kind at
 * @p gen, built through @p cache.  The key covers the generator
 * knobs, the decompose config and the peephole switch.
 */
std::shared_ptr<const CachedProgram>
cachedAppProgram(PrepareCache &cache, apps::AppKind kind,
                 const apps::GenOptions &gen,
                 const circuit::DecomposeConfig &decompose = {},
                 bool run_peephole = false);

/**
 * @return the prepared program of caller-supplied logical circuit
 * @p logical, built through @p cache and keyed by the circuit's
 * content fingerprint (never its address).
 */
std::shared_ptr<const CachedProgram>
cachedProgram(PrepareCache &cache, const circuit::Circuit &logical,
              const circuit::DecomposeConfig &decompose = {},
              bool run_peephole = false);

/**
 * @return the flattened logical circuit of QASM @p source, built
 * through @p cache and keyed by a hash of the source text, so
 * repeated runQasm() calls parse once.
 */
std::shared_ptr<const circuit::Circuit>
cachedQasmCircuit(PrepareCache &cache, const std::string &source);

/**
 * @return @p backend's prepared machine artifact for @p item via
 * @p cache, or nullptr when the backend is not cacheable (empty
 * artifactKey).  Callers pass the result to
 * Backend::run(item, artifact.get()); nullptr falls back to the
 * inline path, which is bit-identical by construction.
 */
std::shared_ptr<const engine::PreparedArtifact>
fetchArtifact(PrepareCache &cache, const engine::Backend &backend,
              const engine::WorkItem &item);

} // namespace qsurf::service

#endif // QSURF_SERVICE_ARTIFACT_H
