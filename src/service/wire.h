/**
 * @file
 * Framed wire protocol of the out-of-process compile service.
 *
 * A frame is a fixed 16-byte header — magic, protocol version, frame
 * type, payload length, and an FNV-1a payload hash — followed by a
 * JSON payload.  The header makes the stream self-describing and
 * self-checking: a reader rejects truncated, corrupt, oversized or
 * wrong-version frames instead of mis-parsing them, which is what
 * lets the shard parent treat a crashed worker's half-written frame
 * as a clean failure.  The same framing carries three conversations:
 *
 *  - compile_server <-> client: Request/Response/Telemetry over a
 *    Unix socket or stdin/stdout pipes (examples/compile_server);
 *  - shard parent <-> worker: ShardAssign down, Row/Done/Error up
 *    over a socketpair (src/service/shard.h);
 *  - both start with a server Hello naming the protocol version.
 *
 * Payloads are JSON (the repo's one interchange format), so every
 * frame is inspectable with a hex dump and a JSON pretty-printer.
 */

#ifndef QSURF_SERVICE_WIRE_H
#define QSURF_SERVICE_WIRE_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "service/service.h"

namespace qsurf::service::wire {

/** Frame header magic, "QSRF" in stream order. */
constexpr uint32_t kMagic = 0x46525351u;

/** Protocol version; bumped on any incompatible change. */
constexpr uint16_t kVersion = 1;

/** Bytes of the fixed frame header. */
constexpr size_t kHeaderSize = 16;

/**
 * Payload size ceiling (64 MiB).  Far above any real frame; its job
 * is making a corrupt length field fail fast instead of driving a
 * multi-gigabyte read.
 */
constexpr size_t kMaxPayload = 64u << 20;

/** Frame types; values are wire format, never reorder. */
enum class FrameType : uint16_t
{
    Hello = 1,       ///< Server greeting: {service, version}.
    Request = 2,     ///< CompileRequest (client -> server).
    Response = 3,    ///< CompileResponse (server -> client).
    Telemetry = 4,   ///< Stats query (empty up, stats JSON down).
    Row = 5,         ///< One sweep row line (shard worker -> parent).
    ShardAssign = 6, ///< Shard slice assignment (parent -> worker).
    Done = 7,        ///< End of a worker's slice / shutdown ack.
    Error = 8,       ///< Failure description, then stream continues.
    Shutdown = 9,    ///< Client asks the server loop to return.
};

/** @return a human-readable frame-type name (diagnostics). */
const char *frameTypeName(FrameType type);

/** One decoded frame. */
struct Frame
{
    FrameType type = FrameType::Hello;
    std::string payload;
};

/** Outcome of decoding bytes from a buffer. */
enum class DecodeStatus
{
    Ok,         ///< A frame was decoded; `consumed` bytes used.
    NeedMore,   ///< Prefix of a valid frame; read more bytes.
    BadMagic,   ///< Stream is not frame-aligned (or not ours).
    BadVersion, ///< Peer speaks an incompatible protocol version.
    BadType,    ///< Type field outside the known range.
    Oversized,  ///< Length field exceeds kMaxPayload.
    BadHash,    ///< Payload bytes do not match the header hash.
};

/** @return a human-readable decode-status name. */
const char *decodeStatusName(DecodeStatus status);

/** FNV-1a over @p len bytes (the payload hash of the header). */
uint32_t payloadHash(const char *data, size_t len);

/** @return @p frame encoded as header + payload bytes. */
std::string encodeFrame(const Frame &frame);

/**
 * Decode one frame from the front of @p data.  On Ok, @p out holds
 * the frame and @p consumed its total encoded size; on NeedMore the
 * buffer is a valid prefix shorter than one frame; any other status
 * means the bytes can never become a valid frame.
 */
DecodeStatus decodeFrame(const char *data, size_t len, Frame &out,
                         size_t &consumed);

/**
 * Read one frame from @p fd (blocking, EINTR-safe).
 *
 * @return true with @p out filled, or false on clean EOF at a frame
 * boundary.  fatal()s on EOF mid-frame (truncation), corruption, or
 * a read error — a broken peer is a user-visible failure, not data.
 */
bool readFrame(int fd, Frame &out);

/**
 * Write @p frame to @p fd (blocking, EINTR-safe, SIGPIPE-proof: a
 * closed peer fatal()s instead of killing the process).
 */
void writeFrame(int fd, const Frame &frame);

/** Shorthand: writeFrame with @p type and @p payload. */
void writeFrame(int fd, FrameType type, std::string payload);

/** @return @p req as a JSON payload (Request frames).  Caller-built
 *  circuits are not representable on the wire; fatal()s when set. */
std::string encodeCompileRequest(const CompileRequest &req);

/** Parse a Request payload; fatal()s on malformed input. */
CompileRequest decodeCompileRequest(const std::string &json);

/** @return @p resp as a JSON payload (Response frames). */
std::string encodeCompileResponse(const CompileResponse &resp);

/** Parse a Response payload; fatal()s on malformed input. */
CompileResponse decodeCompileResponse(const std::string &json);

/** Counters of one serveConnection() session. */
struct ServeStats
{
    uint64_t frames = 0;   ///< Frames read (all types).
    uint64_t requests = 0; ///< Compile requests served.
    uint64_t errors = 0;   ///< Error frames sent back.
    bool shutdown = false; ///< Peer sent Shutdown (vs plain EOF).
};

/**
 * Serve one connection: read frames from @p in_fd until EOF or
 * Shutdown, answering Request with Response (in request order),
 * Telemetry with a stats snapshot, and malformed payloads with Error
 * (the connection survives bad requests; a corrupt *frame* is fatal).
 * Sends the Hello greeting first.  @p in_fd == @p out_fd is the
 * socket case; distinct fds are the stdin/stdout pipe case.
 */
ServeStats serveConnection(CompileService &service, int in_fd,
                           int out_fd);

/**
 * A listening Unix-domain socket.  The path is unlinked first (stale
 * sockets from a killed server never block a restart) and again on
 * destruction.
 */
class UnixListener
{
  public:
    explicit UnixListener(const std::string &path);
    ~UnixListener();

    UnixListener(const UnixListener &) = delete;
    UnixListener &operator=(const UnixListener &) = delete;

    /** Block until a client connects; @return its fd (caller
     *  closes).  fatal()s on accept failure. */
    int accept();

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    int fd_ = -1;
};

/** Connect to a serving Unix socket; @return the fd, or -1 when the
 *  server is not (yet) there — callers retry. */
int connectUnix(const std::string &path);

/**
 * Client side of a compile-server connection: verifies the Hello,
 * then exchanges frames synchronously.  Works over one socket fd or
 * a pipe pair.
 */
class Client
{
  public:
    /** Adopt @p in_fd / @p out_fd (equal for a socket); reads and
     *  checks the server Hello.  Closes owned fds on destruction. */
    Client(int in_fd, int out_fd, bool owns_fds = true);
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Round-trip one compile request. */
    CompileResponse compile(const CompileRequest &req);

    /** @return the server's telemetry snapshot (JSON text). */
    std::string telemetry();

    /** Ask the server loop to return; waits for its Done ack. */
    void shutdown();

  private:
    int in_fd_;
    int out_fd_;
    bool owns_;
};

} // namespace qsurf::service::wire

#endif // QSURF_SERVICE_WIRE_H
