/**
 * @file
 * Framed wire protocol of the out-of-process compile service.
 *
 * A frame is a fixed 16-byte header — magic, protocol version, frame
 * type, payload length, and an FNV-1a payload hash — followed by a
 * JSON payload.  The header makes the stream self-describing and
 * self-checking: a reader rejects truncated, corrupt, oversized or
 * wrong-version frames instead of mis-parsing them, which is what
 * lets the shard parent treat a crashed worker's half-written frame
 * as a clean failure.  The same framing carries three conversations:
 *
 *  - compile_server <-> client: Request/Response/Telemetry over a
 *    Unix socket or stdin/stdout pipes (examples/compile_server);
 *  - shard parent <-> worker: ShardAssign down, Row/Done/Error up
 *    over a socketpair (src/service/shard.h);
 *  - both start with a server Hello naming the protocol version.
 *
 * Payloads are JSON (the repo's one interchange format), so every
 * frame is inspectable with a hex dump and a JSON pretty-printer.
 *
 * Peer failure is a *value* here, never a crash: readFrame/writeFrame
 * return an IoResult (clean EOF, peer reset, truncation, corrupt
 * frame, system error) and every caller — serveConnection, Client,
 * the shard parent — decides per connection what a dead or lying
 * peer means.  The transports are interchangeable: Unix sockets,
 * stdio pipes, and TCP (TcpListener / connectTcp, with
 * connectWithRetry's capped exponential backoff for fleets whose
 * workers come up asynchronously on other hosts).
 */

#ifndef QSURF_SERVICE_WIRE_H
#define QSURF_SERVICE_WIRE_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "engine/sweep.h"
#include "service/service.h"

namespace qsurf::service::wire {

/** Frame header magic, "QSRF" in stream order. */
constexpr uint32_t kMagic = 0x46525351u;

/** Protocol version; bumped on any incompatible change. */
constexpr uint16_t kVersion = 1;

/** Bytes of the fixed frame header. */
constexpr size_t kHeaderSize = 16;

/**
 * Payload size ceiling (64 MiB).  Far above any real frame; its job
 * is making a corrupt length field fail fast instead of driving a
 * multi-gigabyte read.
 */
constexpr size_t kMaxPayload = 64u << 20;

/** Frame types; values are wire format, never reorder. */
enum class FrameType : uint16_t
{
    Hello = 1,       ///< Server greeting: {service, version}.
    Request = 2,     ///< CompileRequest (client -> server).
    Response = 3,    ///< CompileResponse (server -> client).
    Telemetry = 4,   ///< Stats query (empty up, stats JSON down).
    Row = 5,         ///< One sweep row line (shard worker -> parent).
    ShardAssign = 6, ///< Shard slice assignment (parent -> worker).
    Done = 7,        ///< End of a worker's slice / shutdown ack.
    Error = 8,       ///< Failure description, then stream continues.
    Shutdown = 9,    ///< Client asks the server loop to return.
};

/** @return a human-readable frame-type name (diagnostics). */
const char *frameTypeName(FrameType type);

/** One decoded frame. */
struct Frame
{
    FrameType type = FrameType::Hello;
    std::string payload;
};

/** Outcome of decoding bytes from a buffer. */
enum class DecodeStatus
{
    Ok,         ///< A frame was decoded; `consumed` bytes used.
    NeedMore,   ///< Prefix of a valid frame; read more bytes.
    BadMagic,   ///< Stream is not frame-aligned (or not ours).
    BadVersion, ///< Peer speaks an incompatible protocol version.
    BadType,    ///< Type field outside the known range.
    Oversized,  ///< Length field exceeds kMaxPayload.
    BadHash,    ///< Payload bytes do not match the header hash.
};

/** @return a human-readable decode-status name. */
const char *decodeStatusName(DecodeStatus status);

/** FNV-1a over @p len bytes (the payload hash of the header). */
uint32_t payloadHash(const char *data, size_t len);

/** @return @p frame encoded as header + payload bytes. */
std::string encodeFrame(const Frame &frame);

/**
 * Decode one frame from the front of @p data.  On Ok, @p out holds
 * the frame and @p consumed its total encoded size; on NeedMore the
 * buffer is a valid prefix shorter than one frame; any other status
 * means the bytes can never become a valid frame.
 */
DecodeStatus decodeFrame(const char *data, size_t len, Frame &out,
                         size_t &consumed);

/** Outcome class of one blocking frame read or write. */
enum class IoStatus
{
    Ok,        ///< Frame transferred.
    Eof,       ///< Clean EOF at a frame boundary (reads only).
    PeerGone,  ///< Peer vanished: EPIPE / ECONNRESET mid-transfer.
    Truncated, ///< EOF mid-frame — the peer died half-way through.
    Corrupt,   ///< Header or payload failed validation (see decode).
    SysError,  ///< Any other read/write errno.
};

/** @return a human-readable I/O-status name. */
const char *ioStatusName(IoStatus status);

/** One frame-I/O outcome: a status plus its diagnosis detail. */
struct IoResult
{
    IoStatus status = IoStatus::Ok;

    /** The failed validation when status == Corrupt. */
    DecodeStatus decode = DecodeStatus::Ok;

    /** The errno when status == PeerGone / SysError. */
    int sys_errno = 0;

    bool ok() const { return status == IoStatus::Ok; }

    /** @return a one-line diagnosis ("peer reset the connection
     *  (ECONNRESET)", "corrupt frame (bad-magic)", ...). */
    std::string describe() const;
};

/**
 * Read one frame from @p fd (blocking, EINTR-safe).  Never throws
 * for peer behaviour: a vanished, truncating or corrupting peer is
 * an IoResult the caller handles per connection.
 */
IoResult readFrame(int fd, Frame &out);

/**
 * Write @p frame to @p fd (blocking, EINTR-safe, SIGPIPE-proof: a
 * closed peer returns PeerGone instead of killing the process).
 */
IoResult writeFrame(int fd, const Frame &frame);

/** Shorthand: writeFrame with @p type and @p payload. */
IoResult writeFrame(int fd, FrameType type, std::string payload);

/** @return @p req as a JSON payload (Request frames).  Caller-built
 *  circuits are not representable on the wire; fatal()s when set. */
std::string encodeCompileRequest(const CompileRequest &req);

/** Parse a Request payload; fatal()s on malformed input. */
CompileRequest decodeCompileRequest(const std::string &json);

/** @return @p resp as a JSON payload (Response frames). */
std::string encodeCompileResponse(const CompileResponse &resp);

/** Parse a Response payload; fatal()s on malformed input. */
CompileResponse decodeCompileResponse(const std::string &json);

/** Counters of one serveConnection() session. */
struct ServeStats
{
    uint64_t frames = 0;   ///< Frames read (all types).
    uint64_t requests = 0; ///< Compile requests served.
    uint64_t errors = 0;   ///< Error frames sent back.
    bool shutdown = false; ///< Peer sent Shutdown (vs plain EOF).

    /** Corrupt frame *headers* received (bad magic / version / type
     *  / hash); each one dropped the connection. */
    uint64_t corrupt_frames = 0;

    /** The client vanished mid-session (reset, EPIPE on a response,
     *  or EOF inside a frame) — the connection was dropped, the
     *  server lives. */
    bool peer_gone = false;
};

/**
 * Serve one connection: read frames from @p in_fd until EOF or
 * Shutdown, answering Request with Response (in request order),
 * Telemetry with a stats snapshot, and malformed payloads with Error
 * (the connection survives bad requests).  A corrupt *frame* or a
 * vanished peer drops this connection only — it is recorded in the
 * returned stats (and the service's "service.wire.*" telemetry
 * counters), never thrown.  Sends the Hello greeting first.
 * @p in_fd == @p out_fd is the socket case; distinct fds are the
 * stdin/stdout pipe case.
 */
ServeStats serveConnection(CompileService &service, int in_fd,
                           int out_fd);

/**
 * A listening Unix-domain socket.  An existing path is probed with
 * connectUnix() first: a live server answering it fatal()s (binding
 * would silently steal its clients), only a stale socket — connect
 * refused, nobody accepting — is unlinked.  The path is unlinked
 * again on destruction.
 */
class UnixListener
{
  public:
    explicit UnixListener(const std::string &path);
    ~UnixListener();

    UnixListener(const UnixListener &) = delete;
    UnixListener &operator=(const UnixListener &) = delete;

    /** Block until a client connects; @return its fd (caller
     *  closes), or -1 after shutdown().  fatal()s on other accept
     *  failures. */
    int accept();

    /** Unblock a concurrent accept() (it returns -1): the threaded
     *  server's clean-stop hook. */
    void shutdown();

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    int fd_ = -1;
};

/** Connect to a serving Unix socket; @return the fd, or -1 when the
 *  server is not (yet) there — callers retry. */
int connectUnix(const std::string &path);

/**
 * A listening TCP socket.  @p host_port is "host:port"; port 0
 * binds an ephemeral port, recovered via port() (how tests and
 * same-host fleets avoid port races).
 */
class TcpListener
{
  public:
    explicit TcpListener(const std::string &host_port);
    ~TcpListener();

    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    /** Block until a client connects; @return its fd (caller
     *  closes), or -1 after shutdown(). */
    int accept();

    /** Unblock a concurrent accept() (it returns -1). */
    void shutdown();

    /** @return the bound port (the resolved one when constructed
     *  with port 0). */
    uint16_t port() const { return port_; }

  private:
    int fd_ = -1;
    uint16_t port_ = 0;
};

/**
 * Split @p spec as "host:port" ("127.0.0.1:7700", "[::1]:7700",
 * "node3:0").  @return false when it does not parse as one — such a
 * spec is a Unix-socket path (the convention every --workers /
 * --connect flag follows).
 */
bool parseHostPort(const std::string &spec, std::string &host,
                   uint16_t &port);

/** Connect to a TCP server; @return the fd, or -1 on failure
 *  (unresolvable host, refused, unreachable) — callers retry. */
int connectTcp(const std::string &host, uint16_t port);

/** Backoff schedule of connectWithRetry(). */
struct RetryPolicy
{
    int max_attempts = 8;    ///< Connect attempts before giving up.
    int base_delay_ms = 50;  ///< Delay after the first failure.
    int max_delay_ms = 2000; ///< Exponential growth cap.

    /** Jitter seed (deterministic: the schedule is a pure function
     *  of this and the attempt number). */
    uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
};

/**
 * Connect to @p spec — "host:port" for TCP, otherwise a Unix-socket
 * path — retrying failed attempts under capped exponential backoff
 * with jitter (full jitter over [delay/2, delay]).  @return the
 * connected fd, or -1 when every attempt failed.  @p retries, when
 * non-null, receives the number of failed attempts (fleet telemetry
 * counts them as "service.shard.connect_retries").
 */
int connectWithRetry(const std::string &spec,
                     const RetryPolicy &policy = {},
                     uint64_t *retries = nullptr);

/**
 * @return @p grid as a JSON payload: every axis, app generator
 * knobs and the full base RunConfig — what a remote sweep worker
 * (no inherited memory) needs to reproduce the parent's expansion
 * bit for bit.  Caller-built circuits are not representable on the
 * wire; fatal()s when any app point carries one (such grids shard
 * over forked workers only).
 */
std::string encodeSweepGrid(const engine::SweepGrid &grid);

/** Parse an encodeSweepGrid payload; fatal()s on malformed input. */
engine::SweepGrid decodeSweepGrid(const std::string &json);

/**
 * Client side of a compile-server connection: verifies the Hello,
 * then exchanges frames synchronously.  Works over one socket fd or
 * a pipe pair.
 */
class Client
{
  public:
    /** Adopt @p in_fd / @p out_fd (equal for a socket); reads and
     *  checks the server Hello.  Closes owned fds on destruction. */
    Client(int in_fd, int out_fd, bool owns_fds = true);
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Round-trip one compile request.  A connection that dies
     *  mid-exchange returns a CompileResponse whose error describes
     *  the failure — the caller decides whether to reconnect. */
    CompileResponse compile(const CompileRequest &req);

    /** @return the server's telemetry snapshot (JSON text). */
    std::string telemetry();

    /** Ask the server loop to return; waits for its Done ack. */
    void shutdown();

  private:
    int in_fd_;
    int out_fd_;
    bool owns_;
};

} // namespace qsurf::service::wire

#endif // QSURF_SERVICE_WIRE_H
