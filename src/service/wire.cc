#include "service/wire.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/json.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace qsurf::service::wire {

namespace {

void
putU16(std::string &out, uint16_t v)
{
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void
putU32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

uint16_t
getU16(const char *p)
{
    const auto *u = reinterpret_cast<const unsigned char *>(p);
    return static_cast<uint16_t>(u[0] | (u[1] << 8));
}

uint32_t
getU32(const char *p)
{
    const auto *u = reinterpret_cast<const unsigned char *>(p);
    return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8)
        | (static_cast<uint32_t>(u[2]) << 16)
        | (static_cast<uint32_t>(u[3]) << 24);
}

/** Bytes moved by one readFull/writeFull, plus the stopping errno
 *  (0 means clean: short reads are EOF, not errors). */
struct RawIo
{
    size_t n = 0;
    int err = 0;
};

/** Read exactly @p len bytes; stops early on EOF or a non-EINTR
 *  error.  Peer failure is reported, never thrown. */
RawIo
readFull(int fd, char *buf, size_t len)
{
    RawIo io;
    while (io.n < len) {
        ssize_t n = ::read(fd, buf + io.n, len - io.n);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            io.err = errno;
            return io;
        }
        if (n == 0)
            return io;
        io.n += static_cast<size_t>(n);
    }
    return io;
}

/** Write all of @p buf; a closed peer is reported as its errno
 *  (EPIPE / ECONNRESET), never SIGPIPE and never thrown. */
RawIo
writeFull(int fd, const char *buf, size_t len)
{
    RawIo io;
    while (io.n < len) {
        // MSG_NOSIGNAL suppresses SIGPIPE on sockets; plain pipes
        // reject send() with ENOTSOCK and take the write() path
        // (qsurf binaries ignore SIGPIPE where they serve pipes).
        ssize_t n = ::send(fd, buf + io.n, len - io.n, MSG_NOSIGNAL);
        if (n < 0 && errno == ENOTSOCK)
            n = ::write(fd, buf + io.n, len - io.n);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            io.err = errno;
            return io;
        }
        io.n += static_cast<size_t>(n);
    }
    return io;
}

/** @return whether @p err means "the peer vanished". */
bool
peerGoneErrno(int err)
{
    return err == EPIPE || err == ECONNRESET || err == ESHUTDOWN;
}

IoResult
ioOk()
{
    return {};
}

IoResult
ioError(IoStatus status, int err = 0,
        DecodeStatus decode = DecodeStatus::Ok)
{
    IoResult r;
    r.status = status;
    r.sys_errno = err;
    r.decode = decode;
    return r;
}

bool
validType(uint16_t t)
{
    return t >= static_cast<uint16_t>(FrameType::Hello)
        && t <= static_cast<uint16_t>(FrameType::Shutdown);
}

/** Validate a full 16-byte header; on Ok, its fields are out. */
DecodeStatus
checkHeader(const char *header, uint16_t &type,
            uint32_t &payload_len, uint32_t &hash)
{
    if (getU32(header) != kMagic)
        return DecodeStatus::BadMagic;
    if (getU16(header + 4) != kVersion)
        return DecodeStatus::BadVersion;
    type = getU16(header + 6);
    if (!validType(type))
        return DecodeStatus::BadType;
    payload_len = getU32(header + 8);
    if (payload_len > kMaxPayload)
        return DecodeStatus::Oversized;
    hash = getU32(header + 12);
    return DecodeStatus::Ok;
}

apps::AppKind
parseAppKind(const std::string &name)
{
    for (apps::AppKind kind : apps::allApps())
        if (apps::appSpec(kind).name == name)
            return kind;
    fatal("unknown app '", name, "' in wire request");
}

qec::CodeKind
parseCodeKind(const std::string &name)
{
    for (qec::CodeKind kind :
         {qec::CodeKind::Planar, qec::CodeKind::DoubleDefect})
        if (name == qec::codeKindName(kind))
            return kind;
    fatal("unknown code kind '", name, "' in wire response");
}

double
num(const JsonValue &obj, const std::string &key, double fallback)
{
    const JsonValue *v = obj.find(key);
    if (!v)
        return fallback;
    fatalIf(!v->isNumber(), "wire field '", key,
            "' is not a number");
    return v->num;
}

bool
flag(const JsonValue &obj, const std::string &key, bool fallback)
{
    const JsonValue *v = obj.find(key);
    if (!v)
        return fallback;
    fatalIf(!v->isBool(), "wire field '", key, "' is not a bool");
    return v->boolean;
}

std::string
text(const JsonValue &obj, const std::string &key,
     const std::string &fallback = {})
{
    const JsonValue *v = obj.find(key);
    if (!v)
        return fallback;
    fatalIf(!v->isString(), "wire field '", key,
            "' is not a string");
    return v->str;
}

/** Write @p c as a JSON object (shared by CompileRequest and
 *  SweepGrid payloads; the caller emits the key). */
void
writeRunConfig(JsonWriter &j, const engine::RunConfig &c)
{
    j.beginObject();
    j.key("tech");
    j.beginObject();
    j.field("p_physical", c.tech.p_physical);
    j.field("t_two_qubit_ns", c.tech.t_two_qubit_ns);
    j.field("single_qubit_speedup", c.tech.single_qubit_speedup);
    j.field("t_measure_ns", c.tech.t_measure_ns);
    j.endObject();
    j.field("code_distance", c.code_distance);
    j.field("policy", c.policy);
    j.field("epr_window_steps", c.epr_window_steps);
    j.field("epr_bandwidth", c.epr_bandwidth);
    j.field("num_simd_regions", c.num_simd_regions);
    j.field("region_capacity", c.region_capacity);
    j.field("kq", c.kq);
    j.field("fast_forward", c.fast_forward);
    j.field("legacy_baseline", c.legacy_baseline);
    j.field("magic_production_cycles", c.magic_production_cycles);
    j.field("magic_buffer_capacity", c.magic_buffer_capacity);
    j.field("adapt_timeout", c.adapt_timeout);
    j.field("bfs_timeout", c.bfs_timeout);
    j.field("drop_timeout", c.drop_timeout);
    j.field("max_cycles", c.max_cycles);
    j.field("hybrid_arbiter", c.hybrid_arbiter);
    j.field("layout_objective", c.layout_objective);
    j.field("lane_spacing", c.lane_spacing);
    j.field("defect_density", c.defect_density);
    j.field("defect_seed", c.defect_seed);
    if (!c.defect_spec.empty())
        j.field("defect_spec", c.defect_spec);
    j.field("seed", c.seed);
    j.endObject();
}

/** Parse a writeRunConfig object into @p c (absent fields keep
 *  their current values). */
void
readRunConfig(const JsonValue &cfg, engine::RunConfig &c)
{
    fatalIf(!cfg.isObject(), "wire 'config' is not an object");
    if (const JsonValue *tech = cfg.find("tech")) {
        fatalIf(!tech->isObject(), "wire 'tech' is not an object");
        c.tech.p_physical =
            num(*tech, "p_physical", c.tech.p_physical);
        c.tech.t_two_qubit_ns =
            num(*tech, "t_two_qubit_ns", c.tech.t_two_qubit_ns);
        c.tech.single_qubit_speedup =
            num(*tech, "single_qubit_speedup",
                c.tech.single_qubit_speedup);
        c.tech.t_measure_ns =
            num(*tech, "t_measure_ns", c.tech.t_measure_ns);
    }
    c.code_distance = static_cast<int>(
        num(cfg, "code_distance", c.code_distance));
    c.policy = static_cast<int>(num(cfg, "policy", c.policy));
    c.epr_window_steps = static_cast<int>(
        num(cfg, "epr_window_steps", c.epr_window_steps));
    c.epr_bandwidth = static_cast<int>(
        num(cfg, "epr_bandwidth", c.epr_bandwidth));
    c.num_simd_regions = static_cast<int>(
        num(cfg, "num_simd_regions", c.num_simd_regions));
    c.region_capacity = static_cast<int>(
        num(cfg, "region_capacity", c.region_capacity));
    c.kq = num(cfg, "kq", c.kq);
    c.fast_forward = flag(cfg, "fast_forward", c.fast_forward);
    c.legacy_baseline =
        flag(cfg, "legacy_baseline", c.legacy_baseline);
    c.magic_production_cycles =
        static_cast<int>(num(cfg, "magic_production_cycles",
                             c.magic_production_cycles));
    c.magic_buffer_capacity =
        static_cast<int>(num(cfg, "magic_buffer_capacity",
                             c.magic_buffer_capacity));
    c.adapt_timeout = static_cast<int>(
        num(cfg, "adapt_timeout", c.adapt_timeout));
    c.bfs_timeout =
        static_cast<int>(num(cfg, "bfs_timeout", c.bfs_timeout));
    c.drop_timeout =
        static_cast<int>(num(cfg, "drop_timeout", c.drop_timeout));
    c.max_cycles = static_cast<uint64_t>(
        num(cfg, "max_cycles", static_cast<double>(c.max_cycles)));
    c.hybrid_arbiter = static_cast<int>(
        num(cfg, "hybrid_arbiter", c.hybrid_arbiter));
    c.layout_objective = static_cast<int>(
        num(cfg, "layout_objective", c.layout_objective));
    c.lane_spacing = static_cast<int>(
        num(cfg, "lane_spacing", c.lane_spacing));
    c.defect_density =
        num(cfg, "defect_density", c.defect_density);
    c.defect_seed = static_cast<uint64_t>(
        num(cfg, "defect_seed",
            static_cast<double>(c.defect_seed)));
    c.defect_spec = text(cfg, "defect_spec", c.defect_spec);
    c.seed = static_cast<uint64_t>(
        num(cfg, "seed", static_cast<double>(c.seed)));
}

} // namespace

const char *
frameTypeName(FrameType type)
{
    switch (type) {
      case FrameType::Hello:
        return "hello";
      case FrameType::Request:
        return "request";
      case FrameType::Response:
        return "response";
      case FrameType::Telemetry:
        return "telemetry";
      case FrameType::Row:
        return "row";
      case FrameType::ShardAssign:
        return "shard-assign";
      case FrameType::Done:
        return "done";
      case FrameType::Error:
        return "error";
      case FrameType::Shutdown:
        return "shutdown";
    }
    return "unknown";
}

const char *
decodeStatusName(DecodeStatus status)
{
    switch (status) {
      case DecodeStatus::Ok:
        return "ok";
      case DecodeStatus::NeedMore:
        return "need-more";
      case DecodeStatus::BadMagic:
        return "bad-magic";
      case DecodeStatus::BadVersion:
        return "bad-version";
      case DecodeStatus::BadType:
        return "bad-type";
      case DecodeStatus::Oversized:
        return "oversized";
      case DecodeStatus::BadHash:
        return "bad-hash";
    }
    return "unknown";
}

uint32_t
payloadHash(const char *data, size_t len)
{
    uint32_t h = 2166136261u;
    for (size_t i = 0; i < len; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 16777619u;
    }
    return h;
}

std::string
encodeFrame(const Frame &frame)
{
    fatalIf(frame.payload.size() > kMaxPayload,
            "wire frame payload of ", frame.payload.size(),
            " bytes exceeds the ", kMaxPayload, "-byte limit");
    std::string out;
    out.reserve(kHeaderSize + frame.payload.size());
    putU32(out, kMagic);
    putU16(out, kVersion);
    putU16(out, static_cast<uint16_t>(frame.type));
    putU32(out, static_cast<uint32_t>(frame.payload.size()));
    putU32(out,
           payloadHash(frame.payload.data(), frame.payload.size()));
    out += frame.payload;
    return out;
}

DecodeStatus
decodeFrame(const char *data, size_t len, Frame &out,
            size_t &consumed)
{
    consumed = 0;
    // Even a partial buffer can prove it will never be a frame: the
    // magic bytes must match as far as they go.
    for (size_t i = 0; i < len && i < 4; ++i)
        if (static_cast<unsigned char>(data[i])
            != ((kMagic >> (8 * i)) & 0xff))
            return DecodeStatus::BadMagic;
    if (len < kHeaderSize)
        return DecodeStatus::NeedMore;
    uint16_t type = 0;
    uint32_t payload_len = 0;
    uint32_t hash = 0;
    DecodeStatus st = checkHeader(data, type, payload_len, hash);
    if (st != DecodeStatus::Ok)
        return st;
    if (len < kHeaderSize + payload_len)
        return DecodeStatus::NeedMore;
    if (payloadHash(data + kHeaderSize, payload_len) != hash)
        return DecodeStatus::BadHash;
    out.type = static_cast<FrameType>(type);
    out.payload.assign(data + kHeaderSize, payload_len);
    consumed = kHeaderSize + payload_len;
    return DecodeStatus::Ok;
}

const char *
ioStatusName(IoStatus status)
{
    switch (status) {
      case IoStatus::Ok:
        return "ok";
      case IoStatus::Eof:
        return "eof";
      case IoStatus::PeerGone:
        return "peer-gone";
      case IoStatus::Truncated:
        return "truncated";
      case IoStatus::Corrupt:
        return "corrupt";
      case IoStatus::SysError:
        return "sys-error";
    }
    return "unknown";
}

std::string
IoResult::describe() const
{
    switch (status) {
      case IoStatus::Ok:
        return "ok";
      case IoStatus::Eof:
        return "peer closed the connection";
      case IoStatus::PeerGone:
        return std::string("peer vanished (")
            + std::strerror(sys_errno ? sys_errno : ECONNRESET)
            + ")";
      case IoStatus::Truncated:
        return "peer closed mid-frame (truncated stream)";
      case IoStatus::Corrupt:
        return std::string("corrupt frame (")
            + decodeStatusName(decode) + ")";
      case IoStatus::SysError:
        return std::string("wire I/O failed (")
            + std::strerror(sys_errno) + ")";
    }
    return "unknown";
}

IoResult
readFrame(int fd, Frame &out)
{
    char header[kHeaderSize];
    RawIo io = readFull(fd, header, kHeaderSize);
    if (io.err)
        return ioError(peerGoneErrno(io.err) ? IoStatus::PeerGone
                                             : IoStatus::SysError,
                       io.err);
    if (io.n == 0)
        return ioError(IoStatus::Eof);
    if (io.n < kHeaderSize)
        return ioError(IoStatus::Truncated);
    uint16_t type = 0;
    uint32_t payload_len = 0;
    uint32_t hash = 0;
    DecodeStatus st = checkHeader(header, type, payload_len, hash);
    if (st != DecodeStatus::Ok)
        return ioError(IoStatus::Corrupt, 0, st);
    out.type = static_cast<FrameType>(type);
    out.payload.resize(payload_len);
    if (payload_len) {
        io = readFull(fd, out.payload.data(), payload_len);
        if (io.err)
            return ioError(peerGoneErrno(io.err)
                               ? IoStatus::PeerGone
                               : IoStatus::SysError,
                           io.err);
        if (io.n < payload_len)
            return ioError(IoStatus::Truncated);
    }
    if (payloadHash(out.payload.data(), out.payload.size()) != hash)
        return ioError(IoStatus::Corrupt, 0, DecodeStatus::BadHash);
    return ioOk();
}

IoResult
writeFrame(int fd, const Frame &frame)
{
    std::string bytes = encodeFrame(frame);
    RawIo io = writeFull(fd, bytes.data(), bytes.size());
    if (io.err)
        return ioError(peerGoneErrno(io.err) ? IoStatus::PeerGone
                                             : IoStatus::SysError,
                       io.err);
    return ioOk();
}

IoResult
writeFrame(int fd, FrameType type, std::string payload)
{
    Frame f;
    f.type = type;
    f.payload = std::move(payload);
    return writeFrame(fd, f);
}

std::string
encodeCompileRequest(const CompileRequest &req)
{
    fatalIf(req.circuit != nullptr,
            "caller-built circuits are not representable in wire "
            "protocol v1; submit in-process instead");
    std::ostringstream os;
    JsonWriter j(os, /*compact=*/true);
    j.beginObject();
    j.field("app", apps::appSpec(req.app).name);
    j.key("gen");
    j.beginObject();
    j.field("problem_size", req.gen.problem_size);
    j.field("max_iterations", req.gen.max_iterations);
    j.endObject();
    j.key("decompose");
    j.beginObject();
    j.field("rz_sequence_length", req.decompose.rz_sequence_length);
    j.field("rz_t_fraction", req.decompose.rz_t_fraction);
    j.field("expand_swap", req.decompose.expand_swap);
    j.endObject();
    j.field("run_peephole", req.run_peephole);
    j.field("label", req.label);
    j.field("backend", req.backend);
    j.key("config");
    writeRunConfig(j, req.config);
    j.endObject();
    return os.str();
}

CompileRequest
decodeCompileRequest(const std::string &json)
{
    JsonValue doc = parseJson(json);
    fatalIf(!doc.isObject(), "wire request is not a JSON object");
    CompileRequest req;
    req.app = parseAppKind(text(doc, "app", "SQ"));
    if (const JsonValue *gen = doc.find("gen")) {
        fatalIf(!gen->isObject(), "wire 'gen' is not an object");
        req.gen.problem_size = static_cast<int>(
            num(*gen, "problem_size", req.gen.problem_size));
        req.gen.max_iterations = static_cast<int>(
            num(*gen, "max_iterations", req.gen.max_iterations));
    }
    if (const JsonValue *d = doc.find("decompose")) {
        fatalIf(!d->isObject(), "wire 'decompose' is not an object");
        req.decompose.rz_sequence_length =
            static_cast<int>(num(*d, "rz_sequence_length",
                                 req.decompose.rz_sequence_length));
        req.decompose.rz_t_fraction =
            num(*d, "rz_t_fraction", req.decompose.rz_t_fraction);
        req.decompose.expand_swap =
            flag(*d, "expand_swap", req.decompose.expand_swap);
    }
    req.run_peephole = flag(doc, "run_peephole", req.run_peephole);
    req.label = text(doc, "label");
    req.backend = text(doc, "backend", req.backend);
    if (const JsonValue *cfg = doc.find("config"))
        readRunConfig(*cfg, req.config);
    return req;
}

std::string
encodeSweepGrid(const engine::SweepGrid &grid)
{
    std::ostringstream os;
    JsonWriter j(os, /*compact=*/true);
    j.beginObject();
    j.key("apps");
    j.beginArray();
    for (const engine::AppPoint &a : grid.apps) {
        fatalIf(a.circuit != nullptr,
                "caller-built circuits are not representable in "
                "wire protocol v1; such grids shard over forked "
                "workers only");
        j.beginObject();
        j.field("app", apps::appSpec(a.kind).name);
        j.field("problem_size", a.gen.problem_size);
        j.field("max_iterations", a.gen.max_iterations);
        j.field("label", a.label);
        j.endObject();
    }
    j.endArray();
    j.key("backends");
    j.beginArray();
    for (const std::string &b : grid.backends)
        j.value(b);
    j.endArray();
    auto int_axis = [&](const char *name,
                        const std::vector<int> &values) {
        j.key(name);
        j.beginArray();
        for (int v : values)
            j.value(v);
        j.endArray();
    };
    int_axis("policies", grid.policies);
    int_axis("arbiters", grid.arbiters);
    int_axis("layout_objectives", grid.layout_objectives);
    int_axis("distances", grid.distances);
    int_axis("epr_windows", grid.epr_windows);
    j.key("sizes");
    j.beginArray();
    for (double v : grid.sizes)
        j.value(v);
    j.endArray();
    j.key("defects");
    j.beginArray();
    for (double v : grid.defects)
        j.value(v);
    j.endArray();
    j.key("base");
    writeRunConfig(j, grid.base);
    j.endObject();
    return os.str();
}

engine::SweepGrid
decodeSweepGrid(const std::string &json)
{
    JsonValue doc = parseJson(json);
    fatalIf(!doc.isObject(), "wire grid is not a JSON object");
    engine::SweepGrid grid;
    const JsonValue *apps_v = doc.find("apps");
    fatalIf(!apps_v || !apps_v->isArray(),
            "wire grid has no 'apps' array");
    grid.apps.clear();
    for (const JsonValue &a : apps_v->items) {
        fatalIf(!a.isObject(), "wire grid app is not an object");
        engine::AppPoint point;
        point.kind = parseAppKind(text(a, "app", "SQ"));
        point.gen.problem_size = static_cast<int>(
            num(a, "problem_size", point.gen.problem_size));
        point.gen.max_iterations = static_cast<int>(
            num(a, "max_iterations", point.gen.max_iterations));
        point.label = text(a, "label");
        grid.apps.push_back(std::move(point));
    }
    const JsonValue *backends = doc.find("backends");
    fatalIf(!backends || !backends->isArray(),
            "wire grid has no 'backends' array");
    grid.backends.clear();
    for (const JsonValue &b : backends->items) {
        fatalIf(!b.isString(), "wire grid backend is not a string");
        grid.backends.push_back(b.str);
    }
    auto int_axis = [&](const char *name, std::vector<int> &out) {
        const JsonValue *v = doc.find(name);
        if (!v)
            return;
        fatalIf(!v->isArray(), "wire grid '", name,
                "' is not an array");
        out.clear();
        for (const JsonValue &e : v->items) {
            fatalIf(!e.isNumber(), "wire grid '", name,
                    "' element is not a number");
            out.push_back(static_cast<int>(e.num));
        }
    };
    int_axis("policies", grid.policies);
    int_axis("arbiters", grid.arbiters);
    int_axis("layout_objectives", grid.layout_objectives);
    int_axis("distances", grid.distances);
    int_axis("epr_windows", grid.epr_windows);
    if (const JsonValue *sizes = doc.find("sizes")) {
        fatalIf(!sizes->isArray(),
                "wire grid 'sizes' is not an array");
        grid.sizes.clear();
        for (const JsonValue &e : sizes->items) {
            fatalIf(!e.isNumber(),
                    "wire grid 'sizes' element is not a number");
            grid.sizes.push_back(e.num);
        }
    }
    if (const JsonValue *defects = doc.find("defects")) {
        fatalIf(!defects->isArray(),
                "wire grid 'defects' is not an array");
        grid.defects.clear();
        for (const JsonValue &e : defects->items) {
            fatalIf(!e.isNumber(),
                    "wire grid 'defects' element is not a number");
            grid.defects.push_back(e.num);
        }
    }
    if (const JsonValue *base = doc.find("base"))
        readRunConfig(*base, grid.base);
    return grid;
}

std::string
encodeCompileResponse(const CompileResponse &resp)
{
    std::ostringstream os;
    JsonWriter j(os, /*compact=*/true);
    j.beginObject();
    j.field("error", resp.error);
    j.field("prepare_ms", resp.prepare_ms);
    j.field("run_ms", resp.run_ms);
    j.field("batch_size", resp.batch_size);
    const engine::Metrics &m = resp.metrics;
    j.key("metrics");
    j.beginObject();
    j.field("backend", m.backend);
    j.field("code", qec::codeKindName(m.code));
    j.field("code_distance", m.code_distance);
    j.field("schedule_cycles", m.schedule_cycles);
    j.field("critical_path_cycles", m.critical_path_cycles);
    j.field("physical_qubits", m.physical_qubits);
    j.field("seconds", m.seconds);
    j.key("extras");
    j.beginObject();
    for (const auto &[name, v] : m.extras)
        j.field(name, v);
    j.endObject();
    j.endObject();
    j.endObject();
    return os.str();
}

CompileResponse
decodeCompileResponse(const std::string &json)
{
    JsonValue doc = parseJson(json);
    fatalIf(!doc.isObject(), "wire response is not a JSON object");
    CompileResponse resp;
    resp.error = text(doc, "error");
    resp.prepare_ms = num(doc, "prepare_ms", 0);
    resp.run_ms = num(doc, "run_ms", 0);
    resp.batch_size =
        static_cast<uint64_t>(num(doc, "batch_size", 1));
    if (const JsonValue *m = doc.find("metrics")) {
        fatalIf(!m->isObject(), "wire 'metrics' is not an object");
        resp.metrics.backend = text(*m, "backend");
        resp.metrics.code = parseCodeKind(
            text(*m, "code", qec::codeKindName(resp.metrics.code)));
        resp.metrics.code_distance = static_cast<int>(
            num(*m, "code_distance", 0));
        resp.metrics.schedule_cycles = static_cast<uint64_t>(
            num(*m, "schedule_cycles", 0));
        resp.metrics.critical_path_cycles = static_cast<uint64_t>(
            num(*m, "critical_path_cycles", 0));
        resp.metrics.physical_qubits =
            num(*m, "physical_qubits", 0);
        resp.metrics.seconds = num(*m, "seconds", 0);
        if (const JsonValue *extras = m->find("extras")) {
            fatalIf(!extras->isObject(),
                    "wire 'extras' is not an object");
            for (const auto &[name, v] : extras->members) {
                fatalIf(!v.isNumber(), "wire extra '", name,
                        "' is not a number");
                resp.metrics.extras.emplace_back(name, v.num);
            }
        }
    }
    return resp;
}

namespace {

std::string
helloPayload()
{
    std::ostringstream os;
    JsonWriter j(os, /*compact=*/true);
    j.beginObject();
    j.field("service", "qsurf-compile");
    j.field("version", static_cast<int>(kVersion));
    j.endObject();
    return os.str();
}

std::string
telemetryPayload(const CompileService &service)
{
    ServiceStats s = service.stats();
    std::ostringstream os;
    JsonWriter j(os, /*compact=*/true);
    j.beginObject();
    j.field("requests", s.requests);
    j.field("batches", s.batches);
    j.field("batched_requests", s.batched_requests);
    j.field("threads", service.threads());
    j.key("cache");
    j.beginObject();
    j.field("hits", s.cache.hits);
    j.field("misses", s.cache.misses);
    j.field("evictions", s.cache.evictions);
    j.field("entries", s.cache.entries);
    j.field("hit_ratio", s.cache.hitRatio());
    j.endObject();
    j.endObject();
    return os.str();
}

std::string
errorPayload(const std::string &message)
{
    std::ostringstream os;
    JsonWriter j(os, /*compact=*/true);
    j.beginObject();
    j.field("error", message);
    j.endObject();
    return os.str();
}

} // namespace

ServeStats
serveConnection(CompileService &service, int in_fd, int out_fd)
{
    ServeStats stats;
    obs::MetricsRegistry &reg = service.metricsRegistry();

    // Per-connection failure policy: a corrupt frame header or a
    // vanished peer ends *this* connection (recorded, not thrown) —
    // exactly like the existing malformed-payload path ends the
    // request, one level up.
    auto drop = [&](const IoResult &r) {
        if (r.status == IoStatus::Corrupt) {
            ++stats.corrupt_frames;
            reg.inc("service.wire.corrupt_frames");
        } else if (r.status != IoStatus::Eof) {
            stats.peer_gone = true;
            reg.inc("service.wire.peer_gone");
        }
    };
    auto send = [&](FrameType type, std::string payload) {
        IoResult w = writeFrame(out_fd, type, std::move(payload));
        if (!w.ok())
            drop(w);
        return w.ok();
    };

    if (!send(FrameType::Hello, helloPayload()))
        return stats;
    Frame frame;
    for (;;) {
        IoResult r = readFrame(in_fd, frame);
        if (!r.ok()) {
            drop(r);
            return stats;
        }
        ++stats.frames;
        switch (frame.type) {
          case FrameType::Request: {
            bool sent;
            try {
                CompileRequest req =
                    decodeCompileRequest(frame.payload);
                CompileResponse resp =
                    service.compile(std::move(req));
                ++stats.requests;
                sent = send(FrameType::Response,
                            encodeCompileResponse(resp));
            } catch (const FatalError &e) {
                // A malformed request poisons that request, not the
                // connection: the client gets the diagnostic.
                ++stats.errors;
                sent = send(FrameType::Error,
                            errorPayload(e.what()));
            }
            if (!sent)
                return stats;
            break;
          }
          case FrameType::Telemetry:
            if (!send(FrameType::Telemetry,
                      telemetryPayload(service)))
                return stats;
            break;
          case FrameType::Shutdown:
            stats.shutdown = true;
            send(FrameType::Done, "");
            return stats;
          default:
            ++stats.errors;
            if (!send(FrameType::Error,
                      errorPayload(std::string("unexpected ")
                                   + frameTypeName(frame.type)
                                   + " frame on a compile "
                                     "connection")))
                return stats;
            break;
        }
    }
}

UnixListener::UnixListener(const std::string &path) : path_(path)
{
    sockaddr_un addr{};
    fatalIf(path.size() >= sizeof(addr.sun_path),
            "socket path '", path, "' exceeds the ",
            sizeof(addr.sun_path) - 1, "-byte sockaddr_un limit");
    // Only a *stale* socket may be unlinked: probe it first.  A live
    // server answering the connect means binding here would silently
    // steal its clients — that is a user error, not a cleanup case.
    struct stat st{};
    if (::lstat(path.c_str(), &st) == 0) {
        if (S_ISSOCK(st.st_mode)) {
            int probe = connectUnix(path);
            if (probe >= 0) {
                ::close(probe);
                fatal("socket '", path,
                      "' already has a live server; refusing to "
                      "steal it (pick another path or stop that "
                      "server)");
            }
            ::unlink(path.c_str());
        } else {
            fatal("'", path,
                  "' exists and is not a socket; refusing to "
                  "unlink it");
        }
    }
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    fatalIf(fd_ < 0, "socket() failed: ", std::strerror(errno));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr))
        != 0) {
        int err = errno;
        ::close(fd_);
        fd_ = -1;
        fatal("bind('", path, "') failed: ", std::strerror(err));
    }
    if (::listen(fd_, 8) != 0) {
        int err = errno;
        ::close(fd_);
        ::unlink(path.c_str());
        fd_ = -1;
        fatal("listen('", path, "') failed: ", std::strerror(err));
    }
}

UnixListener::~UnixListener()
{
    if (fd_ >= 0)
        ::close(fd_);
    if (!path_.empty())
        ::unlink(path_.c_str());
}

int
UnixListener::accept()
{
    for (;;) {
        int client = ::accept(fd_, nullptr, nullptr);
        if (client >= 0)
            return client;
        if (errno == EINTR)
            continue;
        // shutdown() makes a blocked accept fail (EINVAL on Linux,
        // ECONNABORTED elsewhere): the clean-stop path, not a bug.
        if (errno == EINVAL || errno == ECONNABORTED
            || errno == EBADF)
            return -1;
        fatal("accept('", path_,
              "') failed: ", std::strerror(errno));
    }
}

void
UnixListener::shutdown()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

int
connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path))
        return -1;
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr))
        != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

namespace {

/** getaddrinfo over @p host/@p port; @return the resolved list or
 *  null.  @p passive selects bind-side flags. */
addrinfo *
resolveTcp(const std::string &host, uint16_t port, bool passive)
{
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_NUMERICSERV | (passive ? AI_PASSIVE : 0);
    addrinfo *res = nullptr;
    std::string service = std::to_string(port);
    if (::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                      service.c_str(), &hints, &res)
        != 0)
        return nullptr;
    return res;
}

} // namespace

bool
parseHostPort(const std::string &spec, std::string &host,
              uint16_t &port)
{
    // A Unix-socket path contains '/' (or has no ':' at all); a TCP
    // spec is "host:port" or "[v6addr]:port" with a numeric port.
    if (spec.find('/') != std::string::npos)
        return false;
    size_t colon = spec.rfind(':');
    if (colon == std::string::npos || colon + 1 >= spec.size())
        return false;
    std::string h = spec.substr(0, colon);
    if (h.size() >= 2 && h.front() == '[' && h.back() == ']')
        h = h.substr(1, h.size() - 2);
    unsigned long p = 0;
    for (size_t i = colon + 1; i < spec.size(); ++i) {
        if (spec[i] < '0' || spec[i] > '9')
            return false;
        p = p * 10 + static_cast<unsigned long>(spec[i] - '0');
        if (p > 65535)
            return false;
    }
    host = std::move(h);
    port = static_cast<uint16_t>(p);
    return true;
}

int
connectTcp(const std::string &host, uint16_t port)
{
    addrinfo *res = resolveTcp(host, port, /*passive=*/false);
    if (!res)
        return -1;
    int fd = -1;
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype,
                      ai->ai_protocol);
        if (fd < 0)
            continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd >= 0) {
        // Frames are small and latency-sensitive (a Row per sweep
        // point); Nagle only adds merge latency here.
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
    }
    return fd;
}

int
connectWithRetry(const std::string &spec, const RetryPolicy &policy,
                 uint64_t *retries)
{
    std::string host;
    uint16_t port = 0;
    bool tcp = parseHostPort(spec, host, port);
    uint64_t failed = 0;
    int fd = -1;
    for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
        if (attempt > 0) {
            // Capped exponential backoff with deterministic full
            // jitter over [delay/2, delay]: a respawning fleet never
            // hammers a booting worker in lockstep.
            int64_t delay = policy.base_delay_ms;
            for (int i = 1; i < attempt && delay < policy.max_delay_ms;
                 ++i)
                delay *= 2;
            delay = std::min<int64_t>(delay, policy.max_delay_ms);
            uint64_t z = policy.jitter_seed
                + 0x9e3779b97f4a7c15ull
                    * static_cast<uint64_t>(attempt);
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            z ^= z >> 31;
            if (delay > 1)
                delay = delay / 2
                    + static_cast<int64_t>(
                        z % static_cast<uint64_t>(delay / 2 + 1));
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay));
        }
        fd = tcp ? connectTcp(host, port) : connectUnix(spec);
        if (fd >= 0)
            break;
        ++failed;
    }
    if (retries)
        *retries = failed;
    return fd;
}

TcpListener::TcpListener(const std::string &host_port)
{
    std::string host;
    uint16_t port = 0;
    fatalIf(!parseHostPort(host_port, host, port), "'", host_port,
            "' is not a host:port listen spec");
    addrinfo *res = resolveTcp(host, port, /*passive=*/true);
    fatalIf(!res, "cannot resolve '", host_port, "'");
    int err = 0;
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd_ = ::socket(ai->ai_family, ai->ai_socktype,
                       ai->ai_protocol);
        if (fd_ < 0) {
            err = errno;
            continue;
        }
        int one = 1;
        ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        if (::bind(fd_, ai->ai_addr, ai->ai_addrlen) == 0
            && ::listen(fd_, 16) == 0) {
            sockaddr_storage bound{};
            socklen_t len = sizeof(bound);
            if (::getsockname(
                    fd_, reinterpret_cast<sockaddr *>(&bound), &len)
                == 0) {
                if (bound.ss_family == AF_INET)
                    port_ = ntohs(reinterpret_cast<sockaddr_in *>(
                                      &bound)
                                      ->sin_port);
                else if (bound.ss_family == AF_INET6)
                    port_ = ntohs(reinterpret_cast<sockaddr_in6 *>(
                                      &bound)
                                      ->sin6_port);
            }
            break;
        }
        err = errno;
        ::close(fd_);
        fd_ = -1;
    }
    ::freeaddrinfo(res);
    fatalIf(fd_ < 0, "cannot listen on '", host_port,
            "': ", std::strerror(err));
}

TcpListener::~TcpListener()
{
    if (fd_ >= 0)
        ::close(fd_);
}

int
TcpListener::accept()
{
    for (;;) {
        int client = ::accept(fd_, nullptr, nullptr);
        if (client >= 0) {
            int one = 1;
            ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
            return client;
        }
        if (errno == EINTR)
            continue;
        if (errno == EINVAL || errno == ECONNABORTED
            || errno == EBADF)
            return -1;
        fatal("tcp accept failed: ", std::strerror(errno));
    }
}

void
TcpListener::shutdown()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

Client::Client(int in_fd, int out_fd, bool owns_fds)
    : in_fd_(in_fd), out_fd_(out_fd), owns_(owns_fds)
{
    Frame hello;
    IoResult r = readFrame(in_fd_, hello);
    fatalIf(!r.ok(), "compile server handshake failed: ",
            r.describe());
    fatalIf(hello.type != FrameType::Hello,
            "expected a Hello frame, got ",
            frameTypeName(hello.type));
    JsonValue doc = parseJson(hello.payload);
    fatalIf(text(doc, "service") != "qsurf-compile",
            "peer is not a qsurf compile server");
}

Client::~Client()
{
    if (!owns_)
        return;
    ::close(in_fd_);
    if (out_fd_ != in_fd_)
        ::close(out_fd_);
}

CompileResponse
Client::compile(const CompileRequest &req)
{
    // A dead connection is a response the caller can act on
    // (reconnect, fail over), not a process-level failure.
    IoResult w = writeFrame(out_fd_, FrameType::Request,
                            encodeCompileRequest(req));
    if (!w.ok()) {
        CompileResponse resp;
        resp.error = "connection lost sending the request: "
            + w.describe();
        return resp;
    }
    Frame reply;
    IoResult r = readFrame(in_fd_, reply);
    if (!r.ok()) {
        CompileResponse resp;
        resp.error =
            "connection lost awaiting the response: " + r.describe();
        return resp;
    }
    if (reply.type == FrameType::Error) {
        JsonValue doc = parseJson(reply.payload);
        CompileResponse resp;
        resp.error = text(doc, "error", "unknown server error");
        return resp;
    }
    fatalIf(reply.type != FrameType::Response,
            "expected a Response frame, got ",
            frameTypeName(reply.type));
    return decodeCompileResponse(reply.payload);
}

std::string
Client::telemetry()
{
    IoResult w = writeFrame(out_fd_, FrameType::Telemetry, "");
    fatalIf(!w.ok(), "telemetry query failed: ", w.describe());
    Frame reply;
    IoResult r = readFrame(in_fd_, reply);
    fatalIf(!r.ok(), "compile server died mid-telemetry: ",
            r.describe());
    fatalIf(reply.type != FrameType::Telemetry,
            "expected a Telemetry frame, got ",
            frameTypeName(reply.type));
    return reply.payload;
}

void
Client::shutdown()
{
    IoResult w = writeFrame(out_fd_, FrameType::Shutdown, "");
    fatalIf(!w.ok(), "shutdown request failed: ", w.describe());
    Frame reply;
    IoResult r = readFrame(in_fd_, reply);
    fatalIf(!r.ok(),
            "compile server closed without acking Shutdown: ",
            r.describe());
    fatalIf(reply.type != FrameType::Done,
            "expected a Done frame, got ",
            frameTypeName(reply.type));
}

} // namespace qsurf::service::wire
