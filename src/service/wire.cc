#include "service/wire.h"

#include <cerrno>
#include <cstring>
#include <sstream>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/json.h"
#include "common/logging.h"

namespace qsurf::service::wire {

namespace {

void
putU16(std::string &out, uint16_t v)
{
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void
putU32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

uint16_t
getU16(const char *p)
{
    const auto *u = reinterpret_cast<const unsigned char *>(p);
    return static_cast<uint16_t>(u[0] | (u[1] << 8));
}

uint32_t
getU32(const char *p)
{
    const auto *u = reinterpret_cast<const unsigned char *>(p);
    return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8)
        | (static_cast<uint32_t>(u[2]) << 16)
        | (static_cast<uint32_t>(u[3]) << 24);
}

/** Read exactly @p len bytes; @return bytes read (short = EOF). */
size_t
readFull(int fd, char *buf, size_t len)
{
    size_t got = 0;
    while (got < len) {
        ssize_t n = ::read(fd, buf + got, len - got);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal("wire read failed: ", std::strerror(errno));
        }
        if (n == 0)
            break;
        got += static_cast<size_t>(n);
    }
    return got;
}

/** Write all of @p buf; a closed peer fatal()s (never SIGPIPE). */
void
writeFull(int fd, const char *buf, size_t len)
{
    size_t sent = 0;
    while (sent < len) {
        // MSG_NOSIGNAL suppresses SIGPIPE on sockets; plain pipes
        // reject send() with ENOTSOCK and take the write() path
        // (qsurf binaries ignore SIGPIPE where they serve pipes).
        ssize_t n = ::send(fd, buf + sent, len - sent, MSG_NOSIGNAL);
        if (n < 0 && errno == ENOTSOCK)
            n = ::write(fd, buf + sent, len - sent);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal("wire write failed: ", std::strerror(errno));
        }
        sent += static_cast<size_t>(n);
    }
}

bool
validType(uint16_t t)
{
    return t >= static_cast<uint16_t>(FrameType::Hello)
        && t <= static_cast<uint16_t>(FrameType::Shutdown);
}

apps::AppKind
parseAppKind(const std::string &name)
{
    for (apps::AppKind kind : apps::allApps())
        if (apps::appSpec(kind).name == name)
            return kind;
    fatal("unknown app '", name, "' in wire request");
}

qec::CodeKind
parseCodeKind(const std::string &name)
{
    for (qec::CodeKind kind :
         {qec::CodeKind::Planar, qec::CodeKind::DoubleDefect})
        if (name == qec::codeKindName(kind))
            return kind;
    fatal("unknown code kind '", name, "' in wire response");
}

double
num(const JsonValue &obj, const std::string &key, double fallback)
{
    const JsonValue *v = obj.find(key);
    if (!v)
        return fallback;
    fatalIf(!v->isNumber(), "wire field '", key,
            "' is not a number");
    return v->num;
}

bool
flag(const JsonValue &obj, const std::string &key, bool fallback)
{
    const JsonValue *v = obj.find(key);
    if (!v)
        return fallback;
    fatalIf(!v->isBool(), "wire field '", key, "' is not a bool");
    return v->boolean;
}

std::string
text(const JsonValue &obj, const std::string &key,
     const std::string &fallback = {})
{
    const JsonValue *v = obj.find(key);
    if (!v)
        return fallback;
    fatalIf(!v->isString(), "wire field '", key,
            "' is not a string");
    return v->str;
}

} // namespace

const char *
frameTypeName(FrameType type)
{
    switch (type) {
      case FrameType::Hello:
        return "hello";
      case FrameType::Request:
        return "request";
      case FrameType::Response:
        return "response";
      case FrameType::Telemetry:
        return "telemetry";
      case FrameType::Row:
        return "row";
      case FrameType::ShardAssign:
        return "shard-assign";
      case FrameType::Done:
        return "done";
      case FrameType::Error:
        return "error";
      case FrameType::Shutdown:
        return "shutdown";
    }
    return "unknown";
}

const char *
decodeStatusName(DecodeStatus status)
{
    switch (status) {
      case DecodeStatus::Ok:
        return "ok";
      case DecodeStatus::NeedMore:
        return "need-more";
      case DecodeStatus::BadMagic:
        return "bad-magic";
      case DecodeStatus::BadVersion:
        return "bad-version";
      case DecodeStatus::BadType:
        return "bad-type";
      case DecodeStatus::Oversized:
        return "oversized";
      case DecodeStatus::BadHash:
        return "bad-hash";
    }
    return "unknown";
}

uint32_t
payloadHash(const char *data, size_t len)
{
    uint32_t h = 2166136261u;
    for (size_t i = 0; i < len; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 16777619u;
    }
    return h;
}

std::string
encodeFrame(const Frame &frame)
{
    fatalIf(frame.payload.size() > kMaxPayload,
            "wire frame payload of ", frame.payload.size(),
            " bytes exceeds the ", kMaxPayload, "-byte limit");
    std::string out;
    out.reserve(kHeaderSize + frame.payload.size());
    putU32(out, kMagic);
    putU16(out, kVersion);
    putU16(out, static_cast<uint16_t>(frame.type));
    putU32(out, static_cast<uint32_t>(frame.payload.size()));
    putU32(out,
           payloadHash(frame.payload.data(), frame.payload.size()));
    out += frame.payload;
    return out;
}

DecodeStatus
decodeFrame(const char *data, size_t len, Frame &out,
            size_t &consumed)
{
    consumed = 0;
    // Even a partial buffer can prove it will never be a frame: the
    // magic bytes must match as far as they go.
    for (size_t i = 0; i < len && i < 4; ++i)
        if (static_cast<unsigned char>(data[i])
            != ((kMagic >> (8 * i)) & 0xff))
            return DecodeStatus::BadMagic;
    if (len < kHeaderSize)
        return DecodeStatus::NeedMore;
    uint16_t version = getU16(data + 4);
    if (version != kVersion)
        return DecodeStatus::BadVersion;
    uint16_t type = getU16(data + 6);
    if (!validType(type))
        return DecodeStatus::BadType;
    uint32_t payload_len = getU32(data + 8);
    if (payload_len > kMaxPayload)
        return DecodeStatus::Oversized;
    if (len < kHeaderSize + payload_len)
        return DecodeStatus::NeedMore;
    uint32_t hash = getU32(data + 12);
    if (payloadHash(data + kHeaderSize, payload_len) != hash)
        return DecodeStatus::BadHash;
    out.type = static_cast<FrameType>(type);
    out.payload.assign(data + kHeaderSize, payload_len);
    consumed = kHeaderSize + payload_len;
    return DecodeStatus::Ok;
}

bool
readFrame(int fd, Frame &out)
{
    char header[kHeaderSize];
    size_t got = readFull(fd, header, kHeaderSize);
    if (got == 0)
        return false;
    fatalIf(got < kHeaderSize,
            "wire stream truncated mid-header (", got, " of ",
            kHeaderSize, " bytes)");
    fatalIf(getU32(header) != kMagic,
            "wire stream is not frame-aligned (bad magic)");
    uint16_t version = getU16(header + 4);
    fatalIf(version != kVersion, "wire peer speaks version ",
            version, ", this build speaks ", kVersion);
    uint16_t type = getU16(header + 6);
    fatalIf(!validType(type), "wire frame has unknown type ", type);
    uint32_t payload_len = getU32(header + 8);
    fatalIf(payload_len > kMaxPayload, "wire frame claims ",
            payload_len, "-byte payload (limit ", kMaxPayload, ")");
    uint32_t hash = getU32(header + 12);
    out.type = static_cast<FrameType>(type);
    out.payload.resize(payload_len);
    if (payload_len) {
        size_t body = readFull(fd, out.payload.data(), payload_len);
        fatalIf(body < payload_len,
                "wire stream truncated mid-payload (", body, " of ",
                payload_len, " bytes of a ", frameTypeName(out.type),
                " frame)");
    }
    fatalIf(payloadHash(out.payload.data(), out.payload.size())
                != hash,
            "wire frame payload hash mismatch (corrupt ",
            frameTypeName(out.type), " frame)");
    return true;
}

void
writeFrame(int fd, const Frame &frame)
{
    std::string bytes = encodeFrame(frame);
    writeFull(fd, bytes.data(), bytes.size());
}

void
writeFrame(int fd, FrameType type, std::string payload)
{
    Frame f;
    f.type = type;
    f.payload = std::move(payload);
    writeFrame(fd, f);
}

std::string
encodeCompileRequest(const CompileRequest &req)
{
    fatalIf(req.circuit != nullptr,
            "caller-built circuits are not representable in wire "
            "protocol v1; submit in-process instead");
    std::ostringstream os;
    JsonWriter j(os, /*compact=*/true);
    j.beginObject();
    j.field("app", apps::appSpec(req.app).name);
    j.key("gen");
    j.beginObject();
    j.field("problem_size", req.gen.problem_size);
    j.field("max_iterations", req.gen.max_iterations);
    j.endObject();
    j.key("decompose");
    j.beginObject();
    j.field("rz_sequence_length", req.decompose.rz_sequence_length);
    j.field("rz_t_fraction", req.decompose.rz_t_fraction);
    j.field("expand_swap", req.decompose.expand_swap);
    j.endObject();
    j.field("run_peephole", req.run_peephole);
    j.field("label", req.label);
    j.field("backend", req.backend);
    const engine::RunConfig &c = req.config;
    j.key("config");
    j.beginObject();
    j.key("tech");
    j.beginObject();
    j.field("p_physical", c.tech.p_physical);
    j.field("t_two_qubit_ns", c.tech.t_two_qubit_ns);
    j.field("single_qubit_speedup", c.tech.single_qubit_speedup);
    j.field("t_measure_ns", c.tech.t_measure_ns);
    j.endObject();
    j.field("code_distance", c.code_distance);
    j.field("policy", c.policy);
    j.field("epr_window_steps", c.epr_window_steps);
    j.field("epr_bandwidth", c.epr_bandwidth);
    j.field("num_simd_regions", c.num_simd_regions);
    j.field("region_capacity", c.region_capacity);
    j.field("kq", c.kq);
    j.field("fast_forward", c.fast_forward);
    j.field("legacy_baseline", c.legacy_baseline);
    j.field("magic_production_cycles", c.magic_production_cycles);
    j.field("magic_buffer_capacity", c.magic_buffer_capacity);
    j.field("adapt_timeout", c.adapt_timeout);
    j.field("bfs_timeout", c.bfs_timeout);
    j.field("drop_timeout", c.drop_timeout);
    j.field("max_cycles", c.max_cycles);
    j.field("hybrid_arbiter", c.hybrid_arbiter);
    j.field("layout_objective", c.layout_objective);
    j.field("lane_spacing", c.lane_spacing);
    j.field("seed", c.seed);
    j.endObject();
    j.endObject();
    return os.str();
}

CompileRequest
decodeCompileRequest(const std::string &json)
{
    JsonValue doc = parseJson(json);
    fatalIf(!doc.isObject(), "wire request is not a JSON object");
    CompileRequest req;
    req.app = parseAppKind(text(doc, "app", "SQ"));
    if (const JsonValue *gen = doc.find("gen")) {
        fatalIf(!gen->isObject(), "wire 'gen' is not an object");
        req.gen.problem_size = static_cast<int>(
            num(*gen, "problem_size", req.gen.problem_size));
        req.gen.max_iterations = static_cast<int>(
            num(*gen, "max_iterations", req.gen.max_iterations));
    }
    if (const JsonValue *d = doc.find("decompose")) {
        fatalIf(!d->isObject(), "wire 'decompose' is not an object");
        req.decompose.rz_sequence_length =
            static_cast<int>(num(*d, "rz_sequence_length",
                                 req.decompose.rz_sequence_length));
        req.decompose.rz_t_fraction =
            num(*d, "rz_t_fraction", req.decompose.rz_t_fraction);
        req.decompose.expand_swap =
            flag(*d, "expand_swap", req.decompose.expand_swap);
    }
    req.run_peephole = flag(doc, "run_peephole", req.run_peephole);
    req.label = text(doc, "label");
    req.backend = text(doc, "backend", req.backend);
    if (const JsonValue *cfg = doc.find("config")) {
        fatalIf(!cfg->isObject(), "wire 'config' is not an object");
        engine::RunConfig &c = req.config;
        if (const JsonValue *tech = cfg->find("tech")) {
            fatalIf(!tech->isObject(),
                    "wire 'tech' is not an object");
            c.tech.p_physical =
                num(*tech, "p_physical", c.tech.p_physical);
            c.tech.t_two_qubit_ns =
                num(*tech, "t_two_qubit_ns", c.tech.t_two_qubit_ns);
            c.tech.single_qubit_speedup =
                num(*tech, "single_qubit_speedup",
                    c.tech.single_qubit_speedup);
            c.tech.t_measure_ns =
                num(*tech, "t_measure_ns", c.tech.t_measure_ns);
        }
        c.code_distance = static_cast<int>(
            num(*cfg, "code_distance", c.code_distance));
        c.policy = static_cast<int>(num(*cfg, "policy", c.policy));
        c.epr_window_steps = static_cast<int>(
            num(*cfg, "epr_window_steps", c.epr_window_steps));
        c.epr_bandwidth = static_cast<int>(
            num(*cfg, "epr_bandwidth", c.epr_bandwidth));
        c.num_simd_regions = static_cast<int>(
            num(*cfg, "num_simd_regions", c.num_simd_regions));
        c.region_capacity = static_cast<int>(
            num(*cfg, "region_capacity", c.region_capacity));
        c.kq = num(*cfg, "kq", c.kq);
        c.fast_forward =
            flag(*cfg, "fast_forward", c.fast_forward);
        c.legacy_baseline =
            flag(*cfg, "legacy_baseline", c.legacy_baseline);
        c.magic_production_cycles =
            static_cast<int>(num(*cfg, "magic_production_cycles",
                                 c.magic_production_cycles));
        c.magic_buffer_capacity =
            static_cast<int>(num(*cfg, "magic_buffer_capacity",
                                 c.magic_buffer_capacity));
        c.adapt_timeout = static_cast<int>(
            num(*cfg, "adapt_timeout", c.adapt_timeout));
        c.bfs_timeout = static_cast<int>(
            num(*cfg, "bfs_timeout", c.bfs_timeout));
        c.drop_timeout = static_cast<int>(
            num(*cfg, "drop_timeout", c.drop_timeout));
        c.max_cycles = static_cast<uint64_t>(num(
            *cfg, "max_cycles", static_cast<double>(c.max_cycles)));
        c.hybrid_arbiter = static_cast<int>(
            num(*cfg, "hybrid_arbiter", c.hybrid_arbiter));
        c.layout_objective = static_cast<int>(
            num(*cfg, "layout_objective", c.layout_objective));
        c.lane_spacing = static_cast<int>(
            num(*cfg, "lane_spacing", c.lane_spacing));
        c.seed = static_cast<uint64_t>(
            num(*cfg, "seed", static_cast<double>(c.seed)));
    }
    return req;
}

std::string
encodeCompileResponse(const CompileResponse &resp)
{
    std::ostringstream os;
    JsonWriter j(os, /*compact=*/true);
    j.beginObject();
    j.field("error", resp.error);
    j.field("prepare_ms", resp.prepare_ms);
    j.field("run_ms", resp.run_ms);
    j.field("batch_size", resp.batch_size);
    const engine::Metrics &m = resp.metrics;
    j.key("metrics");
    j.beginObject();
    j.field("backend", m.backend);
    j.field("code", qec::codeKindName(m.code));
    j.field("code_distance", m.code_distance);
    j.field("schedule_cycles", m.schedule_cycles);
    j.field("critical_path_cycles", m.critical_path_cycles);
    j.field("physical_qubits", m.physical_qubits);
    j.field("seconds", m.seconds);
    j.key("extras");
    j.beginObject();
    for (const auto &[name, v] : m.extras)
        j.field(name, v);
    j.endObject();
    j.endObject();
    j.endObject();
    return os.str();
}

CompileResponse
decodeCompileResponse(const std::string &json)
{
    JsonValue doc = parseJson(json);
    fatalIf(!doc.isObject(), "wire response is not a JSON object");
    CompileResponse resp;
    resp.error = text(doc, "error");
    resp.prepare_ms = num(doc, "prepare_ms", 0);
    resp.run_ms = num(doc, "run_ms", 0);
    resp.batch_size =
        static_cast<uint64_t>(num(doc, "batch_size", 1));
    if (const JsonValue *m = doc.find("metrics")) {
        fatalIf(!m->isObject(), "wire 'metrics' is not an object");
        resp.metrics.backend = text(*m, "backend");
        resp.metrics.code = parseCodeKind(
            text(*m, "code", qec::codeKindName(resp.metrics.code)));
        resp.metrics.code_distance = static_cast<int>(
            num(*m, "code_distance", 0));
        resp.metrics.schedule_cycles = static_cast<uint64_t>(
            num(*m, "schedule_cycles", 0));
        resp.metrics.critical_path_cycles = static_cast<uint64_t>(
            num(*m, "critical_path_cycles", 0));
        resp.metrics.physical_qubits =
            num(*m, "physical_qubits", 0);
        resp.metrics.seconds = num(*m, "seconds", 0);
        if (const JsonValue *extras = m->find("extras")) {
            fatalIf(!extras->isObject(),
                    "wire 'extras' is not an object");
            for (const auto &[name, v] : extras->members) {
                fatalIf(!v.isNumber(), "wire extra '", name,
                        "' is not a number");
                resp.metrics.extras.emplace_back(name, v.num);
            }
        }
    }
    return resp;
}

namespace {

std::string
helloPayload()
{
    std::ostringstream os;
    JsonWriter j(os, /*compact=*/true);
    j.beginObject();
    j.field("service", "qsurf-compile");
    j.field("version", static_cast<int>(kVersion));
    j.endObject();
    return os.str();
}

std::string
telemetryPayload(const CompileService &service)
{
    ServiceStats s = service.stats();
    std::ostringstream os;
    JsonWriter j(os, /*compact=*/true);
    j.beginObject();
    j.field("requests", s.requests);
    j.field("batches", s.batches);
    j.field("batched_requests", s.batched_requests);
    j.field("threads", service.threads());
    j.key("cache");
    j.beginObject();
    j.field("hits", s.cache.hits);
    j.field("misses", s.cache.misses);
    j.field("evictions", s.cache.evictions);
    j.field("entries", s.cache.entries);
    j.field("hit_ratio", s.cache.hitRatio());
    j.endObject();
    j.endObject();
    return os.str();
}

std::string
errorPayload(const std::string &message)
{
    std::ostringstream os;
    JsonWriter j(os, /*compact=*/true);
    j.beginObject();
    j.field("error", message);
    j.endObject();
    return os.str();
}

} // namespace

ServeStats
serveConnection(CompileService &service, int in_fd, int out_fd)
{
    ServeStats stats;
    writeFrame(out_fd, FrameType::Hello, helloPayload());
    Frame frame;
    while (readFrame(in_fd, frame)) {
        ++stats.frames;
        switch (frame.type) {
          case FrameType::Request:
            try {
                CompileRequest req =
                    decodeCompileRequest(frame.payload);
                CompileResponse resp =
                    service.compile(std::move(req));
                ++stats.requests;
                writeFrame(out_fd, FrameType::Response,
                           encodeCompileResponse(resp));
            } catch (const FatalError &e) {
                // A malformed request poisons that request, not the
                // connection: the client gets the diagnostic.
                ++stats.errors;
                writeFrame(out_fd, FrameType::Error,
                           errorPayload(e.what()));
            }
            break;
          case FrameType::Telemetry:
            writeFrame(out_fd, FrameType::Telemetry,
                       telemetryPayload(service));
            break;
          case FrameType::Shutdown:
            stats.shutdown = true;
            writeFrame(out_fd, FrameType::Done, "");
            return stats;
          default:
            ++stats.errors;
            writeFrame(
                out_fd, FrameType::Error,
                errorPayload(std::string("unexpected ")
                             + frameTypeName(frame.type)
                             + " frame on a compile connection"));
            break;
        }
    }
    return stats;
}

UnixListener::UnixListener(const std::string &path) : path_(path)
{
    sockaddr_un addr{};
    fatalIf(path.size() >= sizeof(addr.sun_path),
            "socket path '", path, "' exceeds the ",
            sizeof(addr.sun_path) - 1, "-byte sockaddr_un limit");
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    fatalIf(fd_ < 0, "socket() failed: ", std::strerror(errno));
    ::unlink(path.c_str());
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr))
        != 0) {
        int err = errno;
        ::close(fd_);
        fd_ = -1;
        fatal("bind('", path, "') failed: ", std::strerror(err));
    }
    if (::listen(fd_, 8) != 0) {
        int err = errno;
        ::close(fd_);
        ::unlink(path.c_str());
        fd_ = -1;
        fatal("listen('", path, "') failed: ", std::strerror(err));
    }
}

UnixListener::~UnixListener()
{
    if (fd_ >= 0)
        ::close(fd_);
    if (!path_.empty())
        ::unlink(path_.c_str());
}

int
UnixListener::accept()
{
    for (;;) {
        int client = ::accept(fd_, nullptr, nullptr);
        if (client >= 0)
            return client;
        if (errno != EINTR)
            fatal("accept('", path_,
                  "') failed: ", std::strerror(errno));
    }
}

int
connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path))
        return -1;
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr))
        != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

Client::Client(int in_fd, int out_fd, bool owns_fds)
    : in_fd_(in_fd), out_fd_(out_fd), owns_(owns_fds)
{
    Frame hello;
    fatalIf(!readFrame(in_fd_, hello),
            "compile server closed the connection before Hello");
    fatalIf(hello.type != FrameType::Hello,
            "expected a Hello frame, got ",
            frameTypeName(hello.type));
    JsonValue doc = parseJson(hello.payload);
    fatalIf(text(doc, "service") != "qsurf-compile",
            "peer is not a qsurf compile server");
}

Client::~Client()
{
    if (!owns_)
        return;
    ::close(in_fd_);
    if (out_fd_ != in_fd_)
        ::close(out_fd_);
}

CompileResponse
Client::compile(const CompileRequest &req)
{
    writeFrame(out_fd_, FrameType::Request,
               encodeCompileRequest(req));
    Frame reply;
    fatalIf(!readFrame(in_fd_, reply),
            "compile server closed mid-request");
    if (reply.type == FrameType::Error) {
        JsonValue doc = parseJson(reply.payload);
        CompileResponse resp;
        resp.error = text(doc, "error", "unknown server error");
        return resp;
    }
    fatalIf(reply.type != FrameType::Response,
            "expected a Response frame, got ",
            frameTypeName(reply.type));
    return decodeCompileResponse(reply.payload);
}

std::string
Client::telemetry()
{
    writeFrame(out_fd_, FrameType::Telemetry, "");
    Frame reply;
    fatalIf(!readFrame(in_fd_, reply),
            "compile server closed mid-telemetry");
    fatalIf(reply.type != FrameType::Telemetry,
            "expected a Telemetry frame, got ",
            frameTypeName(reply.type));
    return reply.payload;
}

void
Client::shutdown()
{
    writeFrame(out_fd_, FrameType::Shutdown, "");
    Frame reply;
    fatalIf(!readFrame(in_fd_, reply),
            "compile server closed without acking Shutdown");
    fatalIf(reply.type != FrameType::Done,
            "expected a Done frame, got ",
            frameTypeName(reply.type));
}

} // namespace qsurf::service::wire
