#include "service/artifact.h"

#include <cstring>
#include <sstream>
#include <utility>

#include "qasm/flatten.h"
#include "qasm/parser.h"

namespace qsurf::service {

namespace {

/** FNV-1a over a byte string (for QASM source keys). */
uint64_t
fnv1a(const std::string &text)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : text) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Key fragment naming every frontend knob the program depends on. */
std::string
frontendSuffix(const circuit::DecomposeConfig &cfg, bool run_peephole)
{
    // The T fraction goes in by bit pattern: keys must distinguish
    // any two doubles that could produce different circuits.
    uint64_t tf_bits = 0;
    static_assert(sizeof(tf_bits) == sizeof(cfg.rz_t_fraction));
    std::memcpy(&tf_bits, &cfg.rz_t_fraction, sizeof(tf_bits));
    std::ostringstream os;
    os << "rz=" << cfg.rz_sequence_length << "/tf=" << std::hex
       << tf_bits << std::dec << "/sw=" << (cfg.expand_swap ? 1 : 0)
       << "/ph=" << (run_peephole ? 1 : 0);
    return os.str();
}

/** Shared frontend pipeline: peephole (optional), decompose,
 *  analyze, fingerprint. */
PrepareCache::Value
buildProgram(const circuit::Circuit &logical,
             const circuit::DecomposeConfig &cfg, bool run_peephole)
{
    auto prog = std::make_shared<CachedProgram>();
    circuit::Circuit optimized = run_peephole
        ? circuit::peephole(logical, &prog->peephole)
        : logical;
    prog->circ = circuit::decompose(optimized, cfg);
    prog->fingerprint = circuit::fingerprint(prog->circ);
    prog->counts = prog->circ.counts();
    prog->parallelism = circuit::parallelismProfile(prog->circ);
    return std::static_pointer_cast<const void>(
        std::shared_ptr<const CachedProgram>(std::move(prog)));
}

} // namespace

std::shared_ptr<const CachedProgram>
cachedAppProgram(PrepareCache &cache, apps::AppKind kind,
                 const apps::GenOptions &gen,
                 const circuit::DecomposeConfig &decompose,
                 bool run_peephole)
{
    std::ostringstream os;
    os << "app/k=" << static_cast<int>(kind)
       << "/n=" << gen.problem_size << "/it=" << gen.max_iterations
       << "/" << frontendSuffix(decompose, run_peephole);
    PrepareCache::Value v = cache.getOrBuild(os.str(), [&] {
        return buildProgram(apps::generate(kind, gen), decompose,
                            run_peephole);
    });
    return std::static_pointer_cast<const CachedProgram>(v);
}

std::shared_ptr<const CachedProgram>
cachedProgram(PrepareCache &cache, const circuit::Circuit &logical,
              const circuit::DecomposeConfig &decompose,
              bool run_peephole)
{
    std::ostringstream os;
    os << "prog/fp=" << std::hex << circuit::fingerprint(logical)
       << std::dec << "/"
       << frontendSuffix(decompose, run_peephole);
    PrepareCache::Value v = cache.getOrBuild(os.str(), [&] {
        return buildProgram(logical, decompose, run_peephole);
    });
    return std::static_pointer_cast<const CachedProgram>(v);
}

std::shared_ptr<const circuit::Circuit>
cachedQasmCircuit(PrepareCache &cache, const std::string &source)
{
    std::ostringstream os;
    os << "qasm/src=" << std::hex << fnv1a(source);
    PrepareCache::Value v =
        cache.getOrBuild(os.str(), [&]() -> PrepareCache::Value {
            qasm::Program prog = qasm::parse(source);
            auto circ = std::make_shared<const circuit::Circuit>(
                qasm::flatten(prog));
            return std::static_pointer_cast<const void>(circ);
        });
    return std::static_pointer_cast<const circuit::Circuit>(v);
}

std::shared_ptr<const engine::PreparedArtifact>
fetchArtifact(PrepareCache &cache, const engine::Backend &backend,
              const engine::WorkItem &item)
{
    std::string key = backend.artifactKey(item);
    if (key.empty())
        return nullptr;
    PrepareCache::Value v =
        cache.getOrBuild(key, [&]() -> PrepareCache::Value {
            return std::static_pointer_cast<const void>(
                backend.buildArtifact(item));
        });
    return std::static_pointer_cast<const engine::PreparedArtifact>(v);
}

} // namespace qsurf::service
