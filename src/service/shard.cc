#include "service/shard.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/json.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "service/wire.h"

namespace qsurf::service {

namespace {

using engine::SweepGrid;
using engine::SweepOptions;
using engine::SweepPoint;

std::string
jsonError(const std::string &message)
{
    std::ostringstream os;
    JsonWriter j(os, /*compact=*/true);
    j.beginObject();
    j.field("error", message);
    j.endObject();
    return os.str();
}

/** Per-point completion bitmap as a hex string, one nibble per four
 *  points (point 4k+j is bit j of digit k) — compact enough to ride
 *  inside every ShardAssign. */
std::string
encodeDoneHex(const std::vector<uint8_t> &done)
{
    static const char digits[] = "0123456789abcdef";
    std::string out((done.size() + 3) / 4, '0');
    for (size_t k = 0; k < out.size(); ++k) {
        int v = 0;
        for (int j = 0; j < 4; ++j) {
            size_t i = k * 4 + static_cast<size_t>(j);
            if (i < done.size() && done[i])
                v |= 1 << j;
        }
        out[k] = digits[v];
    }
    return out;
}

void
decodeDoneHex(const std::string &hex, std::vector<uint8_t> &done)
{
    for (size_t k = 0; k < hex.size(); ++k) {
        char c = hex[k];
        int v = c >= '0' && c <= '9' ? c - '0'
            : c >= 'a' && c <= 'f'   ? c - 'a' + 10
            : c >= 'A' && c <= 'F'   ? c - 'A' + 10
                                     : -1;
        fatalIf(v < 0, "malformed done bitmap in ShardAssign");
        for (int j = 0; j < 4; ++j) {
            size_t i = k * 4 + static_cast<size_t>(j);
            if (i < done.size() && (v & (1 << j)))
                done[i] = 1;
        }
    }
}

/**
 * Forked-child body: serve the sweep-worker protocol on @p fd, then
 * _exit without returning to the caller's stack (a forked child must
 * not run the parent's destructors or flush its inherited stdio
 * buffers).  Exit 0 means an orderly Shutdown; 1 means the parent
 * vanished or the slice failed.
 */
[[noreturn]] void
workerMain(int fd, const SweepGrid &grid,
           const engine::Registry &registry, const SweepOptions &base,
           int slot)
{
    bool clean = false;
    try {
        SweepWorkerEnv env;
        env.grid = &grid;
        env.base = base;
        env.slot = slot;
        env.registry = &registry;
        clean = serveSweepWorker(fd, env);
    } catch (...) {
        // serveSweepWorker already reported what it could.
    }
    ::_exit(clean ? 0 : 1);
}

struct WorkerProc
{
    pid_t pid = -1; ///< -1 for remote workers (not our child).
    int fd = -1;
    int slot = -1;     ///< Fleet slot (>= R for respawns).
    bool remote = false;
    std::string spec;  ///< Remote "host:port" (diagnostics).
    std::string buf;   ///< Undecoded bytes read so far.
    std::vector<size_t> residues; ///< Residue classes it owns now.
    bool busy = false; ///< Owes rows / Done for its slice.
    bool dead = false;
    bool killed_by_us = false; ///< Fault injection / stall kill.
    uint64_t merged_rows = 0;  ///< Its rows the parent has merged.
    std::chrono::steady_clock::time_point last_frame;
};

/** Kill and reap whatever the fleet still has running; safe to call
 *  after a partial or failed launch. */
void
killFleet(std::vector<WorkerProc> &fleet)
{
    for (WorkerProc &w : fleet) {
        if (w.fd >= 0) {
            ::close(w.fd);
            w.fd = -1;
        }
        if (w.pid > 0)
            ::kill(w.pid, SIGKILL);
    }
    for (WorkerProc &w : fleet) {
        if (w.pid > 0) {
            int status = 0;
            ::waitpid(w.pid, &status, 0);
            w.pid = -1;
        }
    }
}

/** RAII backstop: any exception out of the parent loop tears the
 *  fleet down instead of leaking live children. */
struct FleetGuard
{
    std::vector<WorkerProc> &fleet;
    bool armed = true;

    ~FleetGuard()
    {
        if (armed)
            killFleet(fleet);
    }
};

} // namespace

bool
serveSweepWorker(int fd, const SweepWorkerEnv &env)
{
    const engine::Registry &registry =
        env.registry ? *env.registry : engine::Registry::global();

    {
        std::ostringstream os;
        JsonWriter j(os, /*compact=*/true);
        j.beginObject();
        j.field("service", "qsurf-sweep-worker");
        j.field("version", static_cast<uint64_t>(wire::kVersion));
        j.field("slot", env.slot);
        j.endObject();
        if (!wire::writeFrame(fd, wire::FrameType::Hello, os.str())
                 .ok())
            return false;
    }

    // The grid: inherited memory for forked workers, decoded off the
    // first ShardAssign for remote ones (and kept for later slices).
    SweepGrid decoded;
    const SweepGrid *grid = env.grid;

    for (;;) {
        wire::Frame frame;
        wire::IoResult r = wire::readFrame(fd, frame);
        if (!r.ok())
            return false; // Parent vanished (or sent garbage).
        if (frame.type == wire::FrameType::Shutdown)
            return true;
        if (frame.type != wire::FrameType::ShardAssign) {
            wire::writeFrame(
                fd, wire::FrameType::Error,
                jsonError(std::string("expected ShardAssign, got ")
                          + wire::frameTypeName(frame.type)));
            return false;
        }
        try {
            JsonValue doc = parseJson(frame.payload);
            const JsonValue *workers = doc.find("workers");
            const JsonValue *points = doc.find("points");
            const JsonValue *residues = doc.find("residues");
            fatalIf(!workers || !workers->isNumber() || !points
                        || !points->isNumber() || !residues
                        || !residues->isArray(),
                    "malformed ShardAssign payload");
            auto n = static_cast<size_t>(workers->num);
            auto total = static_cast<size_t>(points->num);
            fatalIf(n == 0, "ShardAssign names a fleet of 0");
            std::vector<uint8_t> mask(n, 0);
            for (const JsonValue &rv : residues->items) {
                fatalIf(!rv.isNumber(),
                        "malformed residue list in ShardAssign");
                auto r_class = static_cast<size_t>(rv.num);
                fatalIf(r_class >= n, "ShardAssign names residue ",
                        r_class, " of ", n);
                mask[r_class] = 1;
            }
            std::vector<uint8_t> done(total, 0);
            if (const JsonValue *d = doc.find("done");
                d && d->isString())
                decodeDoneHex(d->str, done);
            if (!grid) {
                const JsonValue *g = doc.find("grid");
                fatalIf(!g || !g->isString(),
                        "ShardAssign carries no grid and none was "
                        "inherited");
                decoded = wire::decodeSweepGrid(g->str);
                grid = &decoded;
            }
            // The assignment names what it believes this worker is
            // running; a mismatch means the processes disagree about
            // the experiment (codec drift, stale remote binary).
            const JsonValue *fp = doc.find("grid_fingerprint");
            fatalIf(fp && fp->isNumber()
                        && fp->num
                            != static_cast<double>(
                                engine::sweepGridFingerprint(*grid)),
                    "ShardAssign grid fingerprint does not match "
                    "this worker's grid");

            // When the parent dies mid-slice the row write fails;
            // skip the remaining points instead of computing rows
            // nobody will read.
            std::atomic<bool> write_failed{false};
            std::atomic<uint64_t> rows{0};
            SweepOptions opts = env.base;
            opts.json_path.clear();
            opts.rows_path.clear();
            opts.stream_rows = false;
            opts.resume = false;
            opts.trace = nullptr;
            opts.metrics = nullptr;
            opts.heap_alloc_counter = nullptr;
            opts.point_filter = [&mask, &done, n, total,
                                 &write_failed](size_t i) {
                if (write_failed.load(std::memory_order_relaxed))
                    return false;
                return mask[i % n] && (i >= total || !done[i]);
            };
            // on_row runs under the driver's row lock, so frames
            // from a multi-threaded worker never interleave.
            opts.on_row = [fd, &rows, &write_failed](
                              const SweepPoint &,
                              std::string_view line) {
                if (write_failed.load(std::memory_order_relaxed))
                    return;
                if (!wire::writeFrame(fd, wire::FrameType::Row,
                                      std::string(line))
                         .ok())
                    write_failed.store(true,
                                       std::memory_order_relaxed);
                else
                    ++rows;
            };
            engine::SweepDriver(registry).run(*grid, opts);
            if (write_failed.load())
                return false;

            std::ostringstream os;
            JsonWriter j(os, /*compact=*/true);
            j.beginObject();
            j.field("rows", rows.load());
            j.endObject();
            if (!wire::writeFrame(fd, wire::FrameType::Done,
                                  os.str())
                     .ok())
                return false;
        } catch (const std::exception &e) {
            wire::writeFrame(fd, wire::FrameType::Error,
                             jsonError(e.what()));
            return false;
        }
    }
}

std::vector<SweepPoint>
runShardedSweep(const SweepGrid &grid, const ShardOptions &opts,
                const engine::Registry &registry)
{
    auto n_local = static_cast<size_t>(std::max(0, opts.workers));
    size_t n_remote = opts.remote_workers.size();
    size_t width = n_local + n_remote;
    fatalIf(opts.workers < 0, "sharded sweep needs >= 0 local "
                              "workers, got ",
            opts.workers);
    fatalIf(width == 0,
            "sharded sweep needs >= 1 worker (local or remote)");
    fatalIf(static_cast<bool>(opts.sweep.point_filter)
                || static_cast<bool>(opts.sweep.on_row)
                || opts.sweep.trace != nullptr
                || opts.sweep.metrics != nullptr
                || static_cast<bool>(opts.sweep.heap_alloc_counter),
            "sharded sweeps cannot forward point_filter / on_row / "
            "trace / metrics / heap_alloc_counter into workers");

    FleetStats stats;
    auto finalize = [&] {
        obs::MetricsRegistry &mreg = obs::MetricsRegistry::global();
        if (stats.worker_restarts)
            mreg.inc("service.shard.worker_restarts",
                     stats.worker_restarts);
        if (stats.points_reassigned)
            mreg.inc("service.shard.points_reassigned",
                     stats.points_reassigned);
        if (stats.connect_retries)
            mreg.inc("service.shard.connect_retries",
                     stats.connect_retries);
        if (stats.remote_redials)
            mreg.inc("service.shard.remote_redials",
                     stats.remote_redials);
        if (opts.stats)
            *opts.stats = stats;
    };

    // Remote workers share no memory: the grid crosses the wire as
    // JSON.  Encoding up front also rejects caller-built circuits
    // (not representable) before any process is spawned.
    std::string grid_json;
    if (n_remote > 0)
        grid_json = wire::encodeSweepGrid(grid);

    std::vector<SweepPoint> points =
        engine::expandSweepPoints(grid, registry);
    std::vector<uint8_t> done(points.size(), 0);

    std::string rows_path;
    if (opts.sweep.stream_rows) {
        rows_path = !opts.sweep.rows_path.empty()
            ? opts.sweep.rows_path
            : (!opts.sweep.json_path.empty()
                   ? opts.sweep.json_path + ".rows"
                   : std::string());
    }
    size_t resumed = 0;
    size_t rows_valid_bytes = 0;
    if (opts.sweep.resume && !rows_path.empty()) {
        resumed = engine::loadSweepRows(rows_path, grid,
                                        opts.sweep.title, points,
                                        done, &rows_valid_bytes);
        if (resumed)
            inform("resuming sharded sweep: ", resumed, " of ",
                   points.size(), " points from '", rows_path, "'");
    }
    size_t remaining = 0;
    for (uint8_t d : done)
        if (!d)
            ++remaining;

    std::ofstream rows_stream;
    if (!rows_path.empty()) {
        if (resumed) {
            // Drop any torn tail before appending (see the
            // single-process driver for the rationale).
            std::error_code ec;
            std::filesystem::resize_file(rows_path,
                                         rows_valid_bytes, ec);
            fatalIf(static_cast<bool>(ec), "cannot truncate '",
                    rows_path, "': ", ec.message());
        }
        rows_stream.open(rows_path, resumed ? std::ios::app
                                            : std::ios::trunc);
        fatalIf(!rows_stream, "cannot open '", rows_path,
                "' for writing");
        if (!resumed) {
            engine::writeSweepRowsHeader(rows_stream, grid,
                                         opts.sweep.title);
            rows_stream << "\n";
        }
        rows_stream.flush();
    }

    if (remaining == 0) {
        // Everything resumed off disk; no fleet to run.
        if (!opts.sweep.json_path.empty()) {
            std::ofstream os(opts.sweep.json_path);
            fatalIf(!os, "cannot open '", opts.sweep.json_path,
                    "' for writing");
            engine::writeSweepJson(os, opts.sweep.title, points);
        }
        finalize();
        return points;
    }

    uint64_t grid_fp = engine::sweepGridFingerprint(grid);
    std::vector<WorkerProc> fleet;
    fleet.reserve(width);
    FleetGuard guard{fleet};
    std::vector<size_t> orphans; ///< Residue classes awaiting a worker.

    auto spawnLocal = [&](int slot) -> size_t {
        int sv[2];
        fatalIf(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0,
                "socketpair() failed: ", std::strerror(errno));
        pid_t pid = ::fork();
        fatalIf(pid < 0, "fork() failed: ", std::strerror(errno));
        if (pid == 0) {
            // Child: keep only its own socket end.
            ::close(sv[0]);
            for (const WorkerProc &other : fleet)
                if (other.fd >= 0)
                    ::close(other.fd);
            workerMain(sv[1], grid, registry, opts.sweep, slot);
        }
        ::close(sv[1]);
        WorkerProc w;
        w.pid = pid;
        w.fd = sv[0];
        w.slot = slot;
        w.last_frame = std::chrono::steady_clock::now();
        fleet.push_back(std::move(w));
        ++stats.workers_started;
        return fleet.size() - 1;
    };

    if (opts.local_tcp && n_local > 0) {
        // Same forked processes, but the bytes cross real TCP: the
        // parent listens on an ephemeral loopback port, the children
        // dial back, and the Hello's slot field maps each accepted
        // connection to its worker.
        wire::TcpListener listener("127.0.0.1:0");
        std::string spec =
            "127.0.0.1:" + std::to_string(listener.port());
        for (size_t k = 0; k < n_local; ++k) {
            pid_t pid = ::fork();
            fatalIf(pid < 0,
                    "fork() failed: ", std::strerror(errno));
            if (pid == 0) {
                int cfd = wire::connectWithRetry(spec);
                if (cfd < 0)
                    ::_exit(1);
                workerMain(cfd, grid, registry, opts.sweep,
                           static_cast<int>(k));
            }
            WorkerProc w;
            w.pid = pid;
            w.slot = static_cast<int>(k);
            w.last_frame = std::chrono::steady_clock::now();
            fleet.push_back(std::move(w));
            ++stats.workers_started;
        }
        for (size_t k = 0; k < n_local; ++k) {
            int cfd = listener.accept();
            fatalIf(cfd < 0, "tcp accept() failed while the worker "
                             "fleet connected");
            wire::Frame hello;
            wire::IoResult r = wire::readFrame(cfd, hello);
            fatalIf(!r.ok() || hello.type != wire::FrameType::Hello,
                    "tcp worker connected without a Hello");
            JsonValue doc = parseJson(hello.payload);
            const JsonValue *slot = doc.find("slot");
            fatalIf(!slot || !slot->isNumber(),
                    "tcp worker Hello names no slot");
            auto s = static_cast<size_t>(slot->num);
            fatalIf(s >= n_local || fleet[s].fd >= 0,
                    "tcp worker Hello names bogus slot ",
                    slot->num);
            fleet[s].fd = cfd;
        }
    } else {
        for (size_t k = 0; k < n_local; ++k)
            spawnLocal(static_cast<int>(k));
    }
    for (size_t k = 0; k < n_remote; ++k) {
        WorkerProc w;
        w.remote = true;
        w.spec = opts.remote_workers[k];
        w.slot = static_cast<int>(n_local + k);
        w.last_frame = std::chrono::steady_clock::now();
        uint64_t retries = 0;
        w.fd = wire::connectWithRetry(w.spec, wire::RetryPolicy{},
                                      &retries);
        stats.connect_retries += retries;
        if (w.fd < 0) {
            warn("sweep worker '", w.spec,
                 "' is unreachable; its slice falls back to the "
                 "local fleet");
            w.dead = true;
            ++stats.worker_failures;
            stats.degraded = true;
        } else {
            ++stats.workers_started;
        }
        fleet.push_back(std::move(w));
    }

    auto fail = [&](const std::string &msg) {
        killFleet(fleet);
        guard.armed = false;
        fatal(msg);
    };

    auto residueOpenPoints = [&](size_t r) {
        size_t open = 0;
        for (size_t i = r; i < points.size(); i += width)
            if (!done[i])
                ++open;
        return open;
    };

    /** Return a worker's unfinished residue classes to the orphan
     *  pool (finished ones are dropped — their rows are on disk). */
    auto orphanResidues = [&](WorkerProc &w) {
        for (size_t r : w.residues) {
            size_t open = residueOpenPoints(r);
            if (open) {
                orphans.push_back(r);
                stats.points_reassigned += open;
            }
        }
        w.residues.clear();
        w.busy = false;
    };

    auto markDead = [&](WorkerProc &w, const std::string &why) {
        if (w.dead && w.fd < 0)
            return;
        if (w.fd >= 0) {
            ::close(w.fd);
            w.fd = -1;
        }
        if (w.pid > 0) {
            ::kill(w.pid, SIGKILL);
            int status = 0;
            ::waitpid(w.pid, &status, 0);
            w.pid = -1;
        }
        w.dead = true;
        w.buf.clear();
        ++stats.worker_failures;
        stats.degraded = true;
        size_t lost = w.residues.size();
        orphanResidues(w);
        warn("sweep worker ", w.slot,
             w.spec.empty() ? std::string()
                            : " ('" + w.spec + "')",
             " lost (", why, "); ", lost,
             " residue class(es) orphaned for reassignment");
    };

    /** Hand @p slice to @p w over the wire.  A write failure marks
     *  the worker dead and re-orphans the slice. */
    auto assignSlice = [&](WorkerProc &w,
                           std::vector<size_t> slice) {
        w.residues = std::move(slice);
        w.busy = true;
        w.last_frame = std::chrono::steady_clock::now();
        std::ostringstream os;
        JsonWriter j(os, /*compact=*/true);
        j.beginObject();
        j.field("worker", static_cast<uint64_t>(w.slot));
        j.field("workers", static_cast<uint64_t>(width));
        j.field("grid_fingerprint", grid_fp);
        j.field("points", static_cast<uint64_t>(points.size()));
        j.key("residues");
        j.beginArray();
        for (size_t r : w.residues)
            j.value(static_cast<uint64_t>(r));
        j.endArray();
        j.field("done", encodeDoneHex(done));
        if (w.remote)
            j.field("grid", grid_json);
        j.endObject();
        wire::IoResult res = wire::writeFrame(
            w.fd, wire::FrameType::ShardAssign, os.str());
        if (!res.ok())
            markDead(w, "assigning its slice failed: "
                            + res.describe());
    };

    // Initial dispatch: the deterministic modulo partition plus
    // per-point seeding means each worker's rows are exactly what a
    // single-process run produces for those indices.
    for (size_t k = 0; k < width; ++k) {
        if (fleet[k].fd >= 0) {
            assignSlice(fleet[k], {k});
        } else {
            size_t open = residueOpenPoints(k);
            if (open) {
                orphans.push_back(k);
                stats.points_reassigned += open;
            }
        }
    }

    auto anyBusy = [&] {
        for (const WorkerProc &w : fleet)
            if (w.fd >= 0 && w.busy)
                return true;
        return false;
    };

    auto mergeRow = [&](const std::string &line) {
        SweepPoint row = engine::parseSweepRowLine(line);
        fatalIf(row.index >= points.size(),
                "worker row names out-of-range index ", row.index);
        // Duplicates happen when a killed worker's buffered rows
        // land after its residue was reassigned; the bytes are
        // identical by construction, so first-wins is exact.
        if (done[row.index])
            return;
        SweepPoint &dst = points[row.index];
        fatalIf(row.app_name != dst.app_name
                    || row.backend != dst.backend
                    || row.policy != dst.policy
                    || row.arbiter != dst.arbiter
                    || row.layout_objective != dst.layout_objective
                    || row.epr_window != dst.epr_window
                    || row.defect != dst.defect,
                "worker row ", row.index,
                " disagrees with the grid expansion");
        // Rows stream to disk as they land, so a killed sharded
        // sweep leaves the same resumable partial file a killed
        // single-process one does.
        if (rows_stream.is_open()) {
            rows_stream << line << "\n";
            rows_stream.flush();
        }
        size_t index = dst.index;
        size_t app_index = dst.app_index;
        int distance = dst.distance;
        double kq = dst.kq;
        dst = std::move(row);
        dst.index = index;
        dst.app_index = app_index;
        dst.distance = distance;
        dst.kq = kq;
        done[dst.index] = 1;
        --remaining;
    };

    size_t restarts_used = 0;
    auto max_restarts =
        static_cast<size_t>(std::max(0, opts.max_worker_restarts));
    bool fault_pending = opts.fault_kill_worker >= 0;
    auto last_progress = std::chrono::steady_clock::now();
    auto last_redial = last_progress;

    while (remaining > 0 || anyBusy()) {
        // Redial dead remote workers while orphaned work exists: a
        // restarted `compile_server --sweep-worker` on the same
        // address rejoins the fleet here and picks up a slice
        // through the normal orphan dispatch below.  One connect
        // attempt per probe — the live fleet must keep draining.
        if (opts.remote_redial_interval_sec > 0 && !orphans.empty()
            && std::chrono::steady_clock::now() - last_redial
                >= std::chrono::seconds(
                    opts.remote_redial_interval_sec)) {
            last_redial = std::chrono::steady_clock::now();
            for (WorkerProc &w : fleet) {
                if (!w.remote || !w.dead || w.fd >= 0)
                    continue;
                wire::RetryPolicy probe;
                probe.max_attempts = 1;
                int fd = wire::connectWithRetry(w.spec, probe);
                if (fd < 0)
                    continue;
                w.fd = fd;
                w.dead = false;
                w.busy = false;
                w.killed_by_us = false;
                w.buf.clear();
                w.last_frame = std::chrono::steady_clock::now();
                ++stats.remote_redials;
                ++stats.workers_started;
                inform("sharded sweep: remote worker '", w.spec,
                       "' rejoined the fleet");
            }
        }
        // Re-dispatch orphaned residue classes: an idle survivor if
        // one exists, else a respawned local while the restart
        // budget lasts, else wait for a busy survivor to free up.
        if (!orphans.empty()) {
            int idle = -1;
            for (size_t k = 0; k < fleet.size(); ++k) {
                if (fleet[k].fd >= 0 && !fleet[k].busy) {
                    idle = static_cast<int>(k);
                    break;
                }
            }
            if (idle < 0 && restarts_used < max_restarts) {
                int slot =
                    static_cast<int>(width + restarts_used);
                ++restarts_used;
                idle = static_cast<int>(spawnLocal(slot));
                ++stats.worker_restarts;
                inform("sharded sweep: respawned worker ", slot,
                       " to absorb ", orphans.size(),
                       " orphaned residue class(es)");
            }
            if (idle >= 0) {
                ++stats.reassignments;
                std::vector<size_t> slice = std::move(orphans);
                orphans.clear();
                assignSlice(fleet[static_cast<size_t>(idle)],
                            std::move(slice));
            } else if (!anyBusy()) {
                // A dead remote with redial configured may yet
                // rejoin; only a fleet with no such hope is
                // unrecoverable.
                bool redialable = false;
                if (opts.remote_redial_interval_sec > 0)
                    for (const WorkerProc &w : fleet)
                        if (w.remote && w.dead && w.fd < 0)
                            redialable = true;
                if (!redialable)
                    fail("sharded sweep unrecoverable: "
                         + std::to_string(remaining)
                         + " points remain with no live workers "
                           "and the restart budget exhausted");
            }
        }

        std::vector<pollfd> fds;
        std::vector<size_t> owner;
        for (size_t k = 0; k < fleet.size(); ++k) {
            if (fleet[k].fd >= 0) {
                fds.push_back({fleet[k].fd, POLLIN, 0});
                owner.push_back(k);
            }
        }
        if (fds.empty()) {
            if (remaining > 0 && orphans.empty())
                fail("internal: sharded sweep lost track of "
                     + std::to_string(remaining)
                     + " unfinished points");
            // Nothing to poll: everyone is dead and the orphans
            // wait on a redial probe.  Sleep instead of spinning,
            // and keep the hang guard armed — a remote that never
            // comes back must not wedge the sweep.
            if (opts.idle_timeout_sec > 0
                && std::chrono::steady_clock::now() - last_progress
                    > std::chrono::seconds(opts.idle_timeout_sec))
                fail("sharded sweep hung: no worker progress in "
                     + std::to_string(opts.idle_timeout_sec)
                     + "s waiting for a remote redial; fleet "
                       "killed");
            ::poll(nullptr, 0, 50);
            continue;
        }
        int ready =
            ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                   1000);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            fail(std::string("poll() failed: ")
                 + std::strerror(errno));
        }
        auto now = std::chrono::steady_clock::now();
        if (ready == 0) {
            if (opts.idle_timeout_sec > 0
                && now - last_progress
                    > std::chrono::seconds(opts.idle_timeout_sec))
                fail("sharded sweep hung: no worker progress in "
                     + std::to_string(opts.idle_timeout_sec)
                     + "s; fleet killed");
        }
        for (size_t i = 0;
             i < fds.size() && ready > 0; ++i) {
            if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            WorkerProc &w = fleet[owner[i]];
            if (w.fd < 0)
                continue;
            char chunk[64 * 1024];
            ssize_t n = ::read(w.fd, chunk, sizeof(chunk));
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                markDead(w, std::string("read failed: ")
                                + std::strerror(errno));
                continue;
            }
            if (n == 0) {
                // A worker never closes first in a healthy fleet
                // (it waits for Shutdown): EOF is death, and a
                // non-empty buffer is its torn last frame.
                markDead(w, w.buf.empty()
                                ? "closed its connection"
                                : "closed mid-frame");
                continue;
            }
            w.buf.append(chunk, static_cast<size_t>(n));
            w.last_frame = now;
            last_progress = now;
            while (w.fd >= 0) {
                wire::Frame frame;
                size_t consumed = 0;
                wire::DecodeStatus st = wire::decodeFrame(
                    w.buf.data(), w.buf.size(), frame, consumed);
                if (st == wire::DecodeStatus::NeedMore)
                    break;
                if (st != wire::DecodeStatus::Ok) {
                    markDead(w,
                             std::string("sent a corrupt frame (")
                                 + wire::decodeStatusName(st)
                                 + ")");
                    break;
                }
                w.buf.erase(0, consumed);
                switch (frame.type) {
                  case wire::FrameType::Hello: {
                    const JsonValue *svc = nullptr;
                    try {
                        JsonValue doc = parseJson(frame.payload);
                        svc = doc.find("service");
                        if (svc && svc->isString()
                            && svc->str != "qsurf-sweep-worker")
                            markDead(w, "peer is a '" + svc->str
                                            + "', not a sweep "
                                              "worker");
                    } catch (const FatalError &) {
                        markDead(w, "sent an unparseable Hello");
                    }
                    break;
                  }
                  case wire::FrameType::Row:
                    try {
                        mergeRow(frame.payload);
                    } catch (const FatalError &) {
                        killFleet(fleet);
                        guard.armed = false;
                        throw;
                    }
                    ++w.merged_rows;
                    if (fault_pending
                        && w.slot == opts.fault_kill_worker
                        && w.pid > 0
                        && w.merged_rows
                            >= static_cast<uint64_t>(std::max(
                                0, opts.fault_kill_after_rows))) {
                        fault_pending = false;
                        w.killed_by_us = true;
                        inform("sharded sweep: fault injection "
                               "killing worker ",
                               w.slot, " after ", w.merged_rows,
                               " merged rows");
                        // Deterministic death: rows it already
                        // buffered are dropped with it (exactly
                        // what a mid-compute crash looks like), so
                        // the orphaned remainder of its slice is
                        // the same at any scheduling.
                        markDead(w, "fault injection");
                    }
                    break;
                  case wire::FrameType::Done: {
                    w.busy = false;
                    // Defensive: a Done with unfinished assigned
                    // points would deadlock the sweep; requeue them
                    // instead of trusting the worker.
                    std::vector<size_t> leftover;
                    for (size_t r : w.residues)
                        if (residueOpenPoints(r))
                            leftover.push_back(r);
                    if (!leftover.empty()) {
                        warn("sweep worker ", w.slot,
                             " finished its slice with ",
                             leftover.size(),
                             " residue class(es) incomplete; "
                             "requeueing them");
                        stats.degraded = true;
                        for (size_t r : leftover) {
                            orphans.push_back(r);
                            stats.points_reassigned +=
                                residueOpenPoints(r);
                        }
                    }
                    w.residues.clear();
                    break;
                  }
                  case wire::FrameType::Error: {
                    std::string msg = frame.payload;
                    try {
                        JsonValue doc = parseJson(frame.payload);
                        if (const JsonValue *e =
                                doc.find("error"))
                            if (e->isString())
                                msg = e->str;
                    } catch (const FatalError &) {
                    }
                    markDead(w, "failed: " + msg);
                    break;
                  }
                  default:
                    markDead(w,
                             std::string("sent an unexpected ")
                                 + wire::frameTypeName(frame.type)
                                 + " frame");
                }
            }
        }
        if (opts.worker_stall_timeout_sec > 0) {
            for (WorkerProc &w : fleet) {
                if (w.fd >= 0 && w.busy
                    && now - w.last_frame
                        > std::chrono::seconds(
                            opts.worker_stall_timeout_sec)) {
                    w.killed_by_us = true;
                    markDead(w,
                             "stalled for "
                                 + std::to_string(
                                     opts.worker_stall_timeout_sec)
                                 + "s");
                }
            }
        }
    }

    // Orderly teardown: every survivor gets a Shutdown and must
    // exit clean.  Workers the parent killed were already reaped.
    for (WorkerProc &w : fleet)
        if (w.fd >= 0)
            wire::writeFrame(w.fd, wire::FrameType::Shutdown, "{}");
    for (WorkerProc &w : fleet) {
        if (w.fd >= 0) {
            ::close(w.fd);
            w.fd = -1;
        }
    }
    for (WorkerProc &w : fleet) {
        if (w.pid <= 0)
            continue;
        int status = 0;
        pid_t r = ::waitpid(w.pid, &status, 0);
        pid_t pid = w.pid;
        w.pid = -1;
        if (r != pid || !WIFEXITED(status)
            || WEXITSTATUS(status) != 0) {
            warn("sweep worker ", w.slot,
                 " exited uncleanly after shutdown (status ",
                 status, ")");
            stats.degraded = true;
        }
    }
    guard.armed = false;

    fatalIf(remaining != 0, "sharded sweep finished with ",
            remaining, " points unaccounted for");

    if (!opts.sweep.json_path.empty()) {
        std::ofstream os(opts.sweep.json_path);
        fatalIf(!os, "cannot open '", opts.sweep.json_path,
                "' for writing");
        engine::writeSweepJson(os, opts.sweep.title, points);
    }
    finalize();
    return points;
}

} // namespace qsurf::service
