#include "service/shard.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/json.h"
#include "common/logging.h"
#include "service/wire.h"

namespace qsurf::service {

namespace {

using engine::SweepGrid;
using engine::SweepOptions;
using engine::SweepPoint;

std::string
jsonError(const std::string &message)
{
    std::ostringstream os;
    JsonWriter j(os, /*compact=*/true);
    j.beginObject();
    j.field("error", message);
    j.endObject();
    return os.str();
}

/**
 * Worker-process body: take the slice assignment off the wire, run
 * the grid under a modulo point filter, stream each completed row up
 * as a Row frame, and finish with Done.  Never returns to the
 * caller's stack — the worker _exit()s (a forked child must not run
 * the parent's destructors or flush its inherited stdio buffers).
 */
[[noreturn]] void
workerMain(int fd, const SweepGrid &grid,
           const engine::Registry &registry, const SweepOptions &base,
           const std::vector<uint8_t> &done)
{
    try {
        wire::Frame assign;
        fatalIf(!wire::readFrame(fd, assign),
                "shard parent closed before assigning a slice");
        fatalIf(assign.type != wire::FrameType::ShardAssign,
                "expected a ShardAssign frame, got ",
                wire::frameTypeName(assign.type));
        JsonValue doc = parseJson(assign.payload);
        const JsonValue *worker = doc.find("worker");
        const JsonValue *workers = doc.find("workers");
        const JsonValue *fp = doc.find("grid_fingerprint");
        fatalIf(!worker || !worker->isNumber() || !workers
                    || !workers->isNumber(),
                "malformed ShardAssign payload");
        auto w = static_cast<size_t>(worker->num);
        auto n = static_cast<size_t>(workers->num);
        fatalIf(n == 0 || w >= n, "ShardAssign names worker ", w,
                " of ", n);
        // The grid is inherited memory, but the assignment still
        // names what it believes the worker is running; a mismatch
        // means the processes disagree about the experiment.
        fatalIf(fp && fp->isNumber()
                    && fp->num
                        != static_cast<double>(
                            engine::sweepGridFingerprint(grid)),
                "ShardAssign grid fingerprint does not match the "
                "inherited grid");

        std::atomic<uint64_t> rows{0};
        SweepOptions opts = base;
        opts.json_path.clear();
        opts.rows_path.clear();
        opts.stream_rows = false;
        opts.resume = false;
        opts.trace = nullptr;
        opts.metrics = nullptr;
        opts.heap_alloc_counter = nullptr;
        opts.point_filter = [w, n, &done](size_t i) {
            return i % n == w && !done[i];
        };
        // on_row runs under the driver's row lock, so frames from a
        // multi-threaded worker never interleave on the socket.
        opts.on_row = [fd, &rows](const SweepPoint &,
                                  std::string_view line) {
            wire::writeFrame(fd, wire::FrameType::Row,
                             std::string(line));
            ++rows;
        };
        engine::SweepDriver(registry).run(grid, opts);

        std::ostringstream os;
        JsonWriter j(os, /*compact=*/true);
        j.beginObject();
        j.field("rows", rows.load());
        j.endObject();
        wire::writeFrame(fd, wire::FrameType::Done, os.str());
        ::_exit(0);
    } catch (const std::exception &e) {
        try {
            wire::writeFrame(fd, wire::FrameType::Error,
                             jsonError(e.what()));
        } catch (...) {
            // The parent is gone; the exit status still says failed.
        }
        ::_exit(1);
    }
}

struct WorkerProc
{
    pid_t pid = -1;
    int fd = -1;
    std::string buf;   ///< Undecoded bytes read so far.
    bool finished = false;
};

/** Kill and reap whatever the fleet still has running; safe to call
 *  after a partial or failed launch. */
void
killFleet(std::vector<WorkerProc> &fleet)
{
    for (WorkerProc &w : fleet) {
        if (w.fd >= 0) {
            ::close(w.fd);
            w.fd = -1;
        }
        if (w.pid > 0)
            ::kill(w.pid, SIGKILL);
    }
    for (WorkerProc &w : fleet) {
        if (w.pid > 0) {
            int status = 0;
            ::waitpid(w.pid, &status, 0);
            w.pid = -1;
        }
    }
}

/** RAII backstop: any exception out of the parent loop tears the
 *  fleet down instead of leaking live children. */
struct FleetGuard
{
    std::vector<WorkerProc> &fleet;
    bool armed = true;

    ~FleetGuard()
    {
        if (armed)
            killFleet(fleet);
    }
};

} // namespace

std::vector<SweepPoint>
runShardedSweep(const SweepGrid &grid, const ShardOptions &opts,
                const engine::Registry &registry)
{
    fatalIf(opts.workers < 1, "sharded sweep needs >= 1 worker, got ",
            opts.workers);
    fatalIf(static_cast<bool>(opts.sweep.point_filter)
                || static_cast<bool>(opts.sweep.on_row)
                || opts.sweep.trace != nullptr
                || opts.sweep.metrics != nullptr
                || static_cast<bool>(opts.sweep.heap_alloc_counter),
            "sharded sweeps cannot forward point_filter / on_row / "
            "trace / metrics / heap_alloc_counter into workers");

    std::vector<SweepPoint> points =
        engine::expandSweepPoints(grid, registry);
    std::vector<uint8_t> done(points.size(), 0);

    std::string rows_path;
    if (opts.sweep.stream_rows) {
        rows_path = !opts.sweep.rows_path.empty()
            ? opts.sweep.rows_path
            : (!opts.sweep.json_path.empty()
                   ? opts.sweep.json_path + ".rows"
                   : std::string());
    }
    size_t resumed = 0;
    size_t rows_valid_bytes = 0;
    if (opts.sweep.resume && !rows_path.empty()) {
        resumed = engine::loadSweepRows(rows_path, grid,
                                        opts.sweep.title, points,
                                        done, &rows_valid_bytes);
        if (resumed)
            inform("resuming sharded sweep: ", resumed, " of ",
                   points.size(), " points from '", rows_path, "'");
    }
    size_t remaining = 0;
    for (uint8_t d : done)
        if (!d)
            ++remaining;

    std::ofstream rows_stream;
    if (!rows_path.empty()) {
        if (resumed) {
            // Drop any torn tail before appending (see the
            // single-process driver for the rationale).
            std::error_code ec;
            std::filesystem::resize_file(rows_path,
                                         rows_valid_bytes, ec);
            fatalIf(static_cast<bool>(ec), "cannot truncate '",
                    rows_path, "': ", ec.message());
        }
        rows_stream.open(rows_path, resumed ? std::ios::app
                                            : std::ios::trunc);
        fatalIf(!rows_stream, "cannot open '", rows_path,
                "' for writing");
        if (!resumed) {
            engine::writeSweepRowsHeader(rows_stream, grid,
                                         opts.sweep.title);
            rows_stream << "\n";
        }
        rows_stream.flush();
    }

    auto workers = static_cast<size_t>(opts.workers);
    std::vector<WorkerProc> fleet(workers);
    FleetGuard guard{fleet};

    for (size_t w = 0; w < workers; ++w) {
        int sv[2];
        fatalIf(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0,
                "socketpair() failed: ", std::strerror(errno));
        pid_t pid = ::fork();
        fatalIf(pid < 0, "fork() failed: ", std::strerror(errno));
        if (pid == 0) {
            // Child: keep only its own socket end.
            ::close(sv[0]);
            for (const WorkerProc &other : fleet)
                if (other.fd >= 0)
                    ::close(other.fd);
            workerMain(sv[1], grid, registry, opts.sweep, done);
        }
        ::close(sv[1]);
        fleet[w].pid = pid;
        fleet[w].fd = sv[0];
    }

    // Assign slices over the wire.  The deterministic modulo
    // partition plus per-point seeding means each worker's rows are
    // exactly what a single-process run produces for those indices.
    uint64_t grid_fp = engine::sweepGridFingerprint(grid);
    for (size_t w = 0; w < workers; ++w) {
        std::ostringstream os;
        JsonWriter j(os, /*compact=*/true);
        j.beginObject();
        j.field("worker", static_cast<uint64_t>(w));
        j.field("workers", static_cast<uint64_t>(workers));
        j.field("grid_fingerprint", grid_fp);
        j.endObject();
        wire::writeFrame(fleet[w].fd, wire::FrameType::ShardAssign,
                         os.str());
    }

    auto fail = [&](const std::string &msg) {
        killFleet(fleet);
        guard.armed = false;
        fatal(msg);
    };

    auto mergeRow = [&](const std::string &line) {
        SweepPoint row = engine::parseSweepRowLine(line);
        fatalIf(row.index >= points.size(),
                "worker row names out-of-range index ", row.index);
        SweepPoint &dst = points[row.index];
        fatalIf(row.app_name != dst.app_name
                    || row.backend != dst.backend
                    || row.policy != dst.policy
                    || row.arbiter != dst.arbiter
                    || row.layout_objective != dst.layout_objective
                    || row.epr_window != dst.epr_window,
                "worker row ", row.index,
                " disagrees with the grid expansion");
        // Rows stream to disk as they land, so a killed sharded
        // sweep leaves the same resumable partial file a killed
        // single-process one does.
        if (rows_stream.is_open()) {
            rows_stream << line << "\n";
            rows_stream.flush();
        }
        size_t index = dst.index;
        size_t app_index = dst.app_index;
        int distance = dst.distance;
        double kq = dst.kq;
        dst = std::move(row);
        dst.index = index;
        dst.app_index = app_index;
        dst.distance = distance;
        dst.kq = kq;
        if (!done[dst.index]) {
            done[dst.index] = 1;
            --remaining;
        }
    };

    auto last_progress = std::chrono::steady_clock::now();
    size_t live = workers;
    while (live > 0) {
        std::vector<pollfd> fds;
        std::vector<size_t> owner;
        for (size_t w = 0; w < workers; ++w) {
            if (fleet[w].fd >= 0) {
                fds.push_back({fleet[w].fd, POLLIN, 0});
                owner.push_back(w);
            }
        }
        int ready =
            ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                   1000);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            fail(std::string("poll() failed: ")
                 + std::strerror(errno));
        }
        if (ready == 0) {
            if (opts.idle_timeout_sec > 0
                && std::chrono::steady_clock::now() - last_progress
                    > std::chrono::seconds(opts.idle_timeout_sec))
                fail("sharded sweep hung: no worker progress in "
                     + std::to_string(opts.idle_timeout_sec)
                     + "s; fleet killed");
            continue;
        }
        for (size_t i = 0; i < fds.size(); ++i) {
            if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            WorkerProc &w = fleet[owner[i]];
            char chunk[64 * 1024];
            ssize_t n = ::read(w.fd, chunk, sizeof(chunk));
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                fail(std::string("worker read failed: ")
                     + std::strerror(errno));
            }
            if (n == 0) {
                if (!w.buf.empty())
                    fail("worker " + std::to_string(owner[i])
                         + " closed mid-frame");
                if (!w.finished)
                    fail("worker " + std::to_string(owner[i])
                         + " exited without a Done frame");
                ::close(w.fd);
                w.fd = -1;
                --live;
                continue;
            }
            w.buf.append(chunk, static_cast<size_t>(n));
            last_progress = std::chrono::steady_clock::now();
            for (;;) {
                wire::Frame frame;
                size_t consumed = 0;
                wire::DecodeStatus st = wire::decodeFrame(
                    w.buf.data(), w.buf.size(), frame, consumed);
                if (st == wire::DecodeStatus::NeedMore)
                    break;
                if (st != wire::DecodeStatus::Ok)
                    fail("worker " + std::to_string(owner[i])
                         + " sent a corrupt frame ("
                         + wire::decodeStatusName(st) + ")");
                w.buf.erase(0, consumed);
                switch (frame.type) {
                  case wire::FrameType::Row:
                    try {
                        mergeRow(frame.payload);
                    } catch (const FatalError &) {
                        killFleet(fleet);
                        guard.armed = false;
                        throw;
                    }
                    break;
                  case wire::FrameType::Done:
                    w.finished = true;
                    break;
                  case wire::FrameType::Error: {
                    std::string msg = frame.payload;
                    try {
                        JsonValue doc = parseJson(frame.payload);
                        if (const JsonValue *e = doc.find("error"))
                            if (e->isString())
                                msg = e->str;
                    } catch (const FatalError &) {
                    }
                    fail("worker " + std::to_string(owner[i])
                         + " failed: " + msg);
                    break;
                  }
                  default:
                    fail("worker " + std::to_string(owner[i])
                         + " sent an unexpected "
                         + wire::frameTypeName(frame.type)
                         + " frame");
                }
            }
        }
    }

    // The fds are closed; reap and insist on clean exits.
    for (size_t w = 0; w < workers; ++w) {
        int status = 0;
        pid_t r = ::waitpid(fleet[w].pid, &status, 0);
        pid_t pid = fleet[w].pid;
        fleet[w].pid = -1;
        fatalIf(r != pid, "waitpid(worker ", w,
                ") failed: ", std::strerror(errno));
        fatalIf(!WIFEXITED(status) || WEXITSTATUS(status) != 0,
                "worker ", w, " exited uncleanly (status ", status,
                ")");
    }
    guard.armed = false;

    fatalIf(remaining != 0, "sharded sweep finished with ",
            remaining, " points unaccounted for");

    if (!opts.sweep.json_path.empty()) {
        std::ofstream os(opts.sweep.json_path);
        fatalIf(!os, "cannot open '", opts.sweep.json_path,
                "' for writing");
        engine::writeSweepJson(os, opts.sweep.title, points);
    }
    return points;
}

} // namespace qsurf::service
