/**
 * @file
 * Square Root generator (Table 2, [32]).
 *
 * Structure: Grover search for the square root of an n-bit number.
 * Each Grover round is a (mostly serial) oracle built from Toffoli
 * ripple chains over the work register, followed by the diffusion
 * operator whose H/X layers are wide but whose multi-controlled
 * phase is again a serial Toffoli ladder.  The mix lands the ideal
 * parallelism factor near the paper's 1.5.
 */

#include <cmath>

#include "apps/apps.h"

namespace qsurf::apps {

namespace {

using circuit::Circuit;
using circuit::GateKind;

/** Serial Toffoli ripple: and-accumulate x into the work register. */
void
emitOracle(Circuit &circ, int n, int32_t flag)
{
    // Work qubits hold partial products of the squaring circuit; the
    // ripple makes each Toffoli depend on the previous one's output.
    for (int i = 0; i + 1 < n; ++i)
        circ.addGate(GateKind::Toffoli, i, n + i, n + i + 1);
    circ.addGate(GateKind::CZ, n + n - 1, flag);
    // Uncompute the ripple.
    for (int i = n - 2; i >= 0; --i)
        circ.addGate(GateKind::Toffoli, i, n + i, n + i + 1);
}

/** Grover diffusion on the input register. */
void
emitDiffusion(Circuit &circ, int n)
{
    for (int i = 0; i < n; ++i)
        circ.addGate(GateKind::H, i);
    for (int i = 0; i < n; ++i)
        circ.addGate(GateKind::X, i);
    // Multi-controlled Z via a Toffoli ladder into the work register.
    for (int i = 0; i + 1 < n; ++i)
        circ.addGate(GateKind::Toffoli, i, n + i, n + i + 1);
    circ.addGate(GateKind::Z, n + n - 1);
    for (int i = n - 2; i >= 0; --i)
        circ.addGate(GateKind::Toffoli, i, n + i, n + i + 1);
    for (int i = 0; i < n; ++i)
        circ.addGate(GateKind::X, i);
    for (int i = 0; i < n; ++i)
        circ.addGate(GateKind::H, i);
}

} // namespace

circuit::Circuit
generateSq(const GenOptions &opts)
{
    int n = opts.problem_size;
    // Natural Grover round count is ceil(pi/4 * 2^(n/2)).
    auto natural = static_cast<int>(
        std::ceil(std::pow(2.0, n / 2.0) * 3.14159265 / 4.0));
    int rounds = opts.max_iterations > 0
        ? std::min(opts.max_iterations, natural)
        : natural;

    // Qubits: n input, n work, 1 oracle flag.
    Circuit circ("SQ", 2 * n + 1);
    int32_t flag = 2 * n;

    for (int i = 0; i < n; ++i)
        circ.addGate(GateKind::H, i);
    circ.addGate(GateKind::X, flag);
    circ.addGate(GateKind::H, flag);

    for (int r = 0; r < rounds; ++r) {
        emitOracle(circ, n, flag);
        emitDiffusion(circ, n);
    }
    for (int i = 0; i < n; ++i)
        circ.addGate(GateKind::MeasZ, i);
    return circ;
}

} // namespace qsurf::apps
