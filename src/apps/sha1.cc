/**
 * @file
 * SHA-1 round-function generator (Table 2, [55]).
 *
 * Structure: the quantum SHA-1 circuit is dominated by bitwise word
 * operations on 32-bit words — per round a 32-wide layer of Toffolis
 * (the choice/majority function), several 32-wide CNOT layers (word
 * XORs for the message schedule), and a log-depth prefix adder.
 * Bitwise word parallelism is what gives SHA-1 its high parallelism
 * factor (~29 in Table 2); the adder contributes the serial tail.
 */

#include "apps/apps.h"

namespace qsurf::apps {

namespace {

using circuit::Circuit;
using circuit::GateKind;

/** Word-level circuit emitter for a given word width. */
class WordOps
{
  public:
    WordOps(Circuit &circ, int word_bits)
        : circ(circ), w(word_bits) {}

    /** Bit i of word @p word in the flat register file. */
    int32_t
    bit(int word, int i) const
    {
        return static_cast<int32_t>(word * w + i);
    }

    /** Wide XOR layer: dst ^= src (independent CNOTs). */
    void
    wordXor(int src, int dst)
    {
        for (int i = 0; i < w; ++i)
            circ.addGate(GateKind::CNOT, bit(src, i), bit(dst, i));
    }

    /** Wide choice-function layer: f ^= (a AND b) bitwise. */
    void
    wordAnd(int a, int b, int f)
    {
        for (int i = 0; i < w; ++i)
            circ.addGate(GateKind::Toffoli, bit(a, i), bit(b, i),
                         bit(f, i));
    }

    /**
     * Log-depth carry structure inspired by Brent-Kung prefix
     * adders: dst += src.  Carries combine pairwise over log2(w)
     * levels, each level a parallel layer of Toffolis over disjoint
     * bit groups.
     */
    void
    prefixAdd(int src, int dst, int carry)
    {
        for (int stride = 1; stride < w; stride *= 2)
            for (int i = 0; i + stride < w; i += 2 * stride)
                circ.addGate(GateKind::Toffoli, bit(src, i),
                             bit(dst, i), bit(carry, i + stride));
        wordXor(src, dst);
        for (int i = 1; i < w; ++i)
            circ.addGate(GateKind::CNOT, bit(carry, i), bit(dst, i));
        for (int stride = w / 2; stride >= 1; stride /= 2)
            for (int i = 0; i + stride < w; i += 2 * stride)
                circ.addGate(GateKind::Toffoli, bit(src, i),
                             bit(dst, i), bit(carry, i + stride));
    }

  private:
    Circuit &circ;
    int w;
};

} // namespace

circuit::Circuit
generateSha1(const GenOptions &opts)
{
    // Problem size is the word width (32 for real SHA-1; the design
    // sweeps scale it); iterations are hash rounds.
    int word_bits = opts.problem_size;
    int rounds = opts.max_iterations > 0 ? opts.max_iterations : 16;

    // Words: a,b,c,d,e state (0-4), f scratch (5), carry scratch (6),
    // and a 4-word message-schedule window (7-10).
    constexpr int num_words = 11;
    Circuit circ("SHA-1", num_words * word_bits);
    constexpr int wa = 0, wb = 1, wc = 2, wd = 3, we = 4;
    constexpr int wf = 5, wcarry = 6, wsched = 7;
    WordOps ops(circ, word_bits);

    for (int r = 0; r < rounds; ++r) {
        int w0 = wsched + r % 4;
        int w1 = wsched + (r + 1) % 4;
        int w2 = wsched + (r + 2) % 4;

        // Message schedule expansion: w0 ^= w1 ^ w2 (two wide layers).
        ops.wordXor(w1, w0);
        ops.wordXor(w2, w0);

        // Round function f = Ch(b, c, d) ~ (b AND c) XOR (b AND d).
        ops.wordAnd(wb, wc, wf);
        ops.wordAnd(wb, wd, wf);

        // e += f + w0 (two adders); rotations are free re-wirings.
        ops.prefixAdd(wf, we, wcarry);
        ops.prefixAdd(w0, we, wcarry);

        // Uncompute f for the next round.
        ops.wordAnd(wb, wd, wf);
        ops.wordAnd(wb, wc, wf);

        // Rotate the state registers: model as word swaps, which the
        // backend lowers to parallel qubit swaps.
        for (int i = 0; i < word_bits; ++i)
            circ.addGate(GateKind::Swap, ops.bit(wa, i),
                         ops.bit(we, i));
    }
    for (int i = 0; i < word_bits; ++i)
        circ.addGate(GateKind::MeasZ, ops.bit(wa, i));
    return circ;
}

} // namespace qsurf::apps
