/**
 * @file
 * Ground State Estimation generator (Table 2, [80]).
 *
 * Structure: iterative phase estimation.  A single readout ancilla is
 * entangled with each of the m system qubits in turn through an
 * exp(i θ Z⊗Z) term (CNOT - Rz - CNOT), giving the long serial
 * dependence chain through the ancilla that makes GSE the paper's
 * most serial workload (parallelism factor ~1.2): only the basis
 * changes on system qubits overlap with the ancilla chain.
 */

#include "apps/apps.h"

namespace qsurf::apps {

circuit::Circuit
generateGse(const GenOptions &opts)
{
    int m = opts.problem_size;
    int iters = opts.max_iterations > 0 ? opts.max_iterations : m;

    // Qubits: m system qubits + 1 phase-readout ancilla.
    circuit::Circuit circ("GSE", m + 1);
    int32_t anc = m;

    using circuit::GateKind;
    for (int it = 0; it < iters; ++it) {
        circ.addGate(GateKind::PrepZ, anc);
        circ.addGate(GateKind::H, anc);
        for (int i = 0; i < m; ++i) {
            // Basis change on the system qubit overlaps with the
            // previous term's work on the ancilla (every 3rd term,
            // keeping the ideal-parallelism factor near 1.2).
            if (i % 3 == 0)
                circ.addGate(GateKind::H, i);
            circ.addGate(GateKind::CNOT, i, anc);
            circ.addRz(0.1 + 0.01 * i, anc);
            circ.addGate(GateKind::CNOT, i, anc);
        }
        circ.addGate(GateKind::H, anc);
        circ.addGate(GateKind::MeasZ, anc);
    }
    return circ;
}

} // namespace qsurf::apps
