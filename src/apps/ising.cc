/**
 * @file
 * Ising-model generator (Table 2, [6]).
 *
 * Structure: digitized adiabatic evolution of a transverse-field
 * Ising spin chain.  Each Trotter step applies exp(i θ ZZ) to the
 * even pair layer, then the odd pair layer (each n/2-wide), then the
 * transverse field exp(i θ X) to every site (H - Rz - H, n-wide).
 *
 * Inlining knob (Section 7.3, Figure 9): the ZZ-term module, when
 * left un-inlined (semi-inlined build), computes its phase on a
 * module-local ancilla drawn from a shared pool — the standard
 * compute/uncompute discipline of hierarchical quantum code.  Pool
 * reuse serializes terms that would otherwise be independent.  Full
 * inlining eliminates the ancilla (direct CNOT-Rz-CNOT), exposing
 * the full n/2-wide layer — "more code inlining creates more
 * parallelism, consistent with the upward boundary movement".
 */

#include "apps/apps.h"

namespace qsurf::apps {

namespace {

using circuit::Circuit;
using circuit::GateKind;

/** Fully-inlined ZZ term: no ancilla. */
void
emitZzInline(Circuit &circ, int32_t a, int32_t b, double theta)
{
    circ.addGate(GateKind::CNOT, a, b);
    circ.addRz(theta, b);
    circ.addGate(GateKind::CNOT, a, b);
}

/** Module-style ZZ term: parity onto a pooled ancilla, rotate, undo. */
void
emitZzModule(Circuit &circ, int32_t a, int32_t b, int32_t anc,
             double theta)
{
    circ.addGate(GateKind::CNOT, a, anc);
    circ.addGate(GateKind::CNOT, b, anc);
    circ.addRz(theta, anc);
    circ.addGate(GateKind::CNOT, b, anc);
    circ.addGate(GateKind::CNOT, a, anc);
}

void
emitField(Circuit &circ, int32_t q, double theta)
{
    circ.addGate(GateKind::H, q);
    circ.addRz(theta, q);
    circ.addGate(GateKind::H, q);
}

} // namespace

circuit::Circuit
generateIsing(const GenOptions &opts, bool full_inline)
{
    int n = opts.problem_size;
    int steps = opts.max_iterations > 0 ? opts.max_iterations : n;

    // The semi-inlined build allocates a pool of n/3 module-local
    // ancillas (ScaffCC-style shared ancilla heap); terms beyond the
    // pool size serialize on ancilla reuse.
    int pool = full_inline ? 0 : std::max(1, n / 3);
    Circuit circ(full_inline ? "IM-full" : "IM-semi", n + pool);

    int term_counter = 0;
    auto zz = [&](int32_t a, int32_t b, double theta) {
        if (full_inline) {
            emitZzInline(circ, a, b, theta);
        } else {
            int32_t anc = static_cast<int32_t>(n + term_counter % pool);
            ++term_counter;
            emitZzModule(circ, a, b, anc, theta);
        }
    };

    for (int s = 0; s < steps; ++s) {
        double theta = 0.05 + 0.002 * s;
        for (int i = 0; i + 1 < n; i += 2)
            zz(i, i + 1, theta);
        for (int i = 1; i + 1 < n; i += 2)
            zz(i, i + 1, theta);
        for (int i = 0; i < n; ++i)
            emitField(circ, i, theta);
    }
    for (int i = 0; i < n; ++i)
        circ.addGate(GateKind::MeasZ, i);
    return circ;
}

} // namespace qsurf::apps
