/**
 * @file
 * The benchmark applications of Table 2.
 *
 * Real Scaffold sources and the ScaffCC frontend are not available
 * offline, so each application is a parameterized generator that
 * produces a circuit with the same *structure* the paper describes:
 * the serial phase-estimation chain of GSE, the Grover iteration of
 * SQ, the wide round function of SHA-1, and the Trotterized
 * transverse-field Ising chain of IM.  The generators are tuned so
 * the measured ideal-parallelism factors land in the paper's bands
 * (GSE 1.2, SQ 1.5, SHA-1 29, IM 66); tests assert those bands.
 */

#ifndef QSURF_APPS_APPS_H
#define QSURF_APPS_APPS_H

#include <string>
#include <vector>

#include "circuit/circuit.h"

namespace qsurf::apps {

/** Application identifiers (Table 2). */
enum class AppKind : uint8_t
{
    GSE,       ///< Ground State Estimation for a molecule [80].
    SQ,        ///< Square root via Grover search [32].
    SHA1,      ///< SHA-1 decryption (round function) [55].
    IsingSemi, ///< Ising-model spin chain [6], medium inlining.
    IsingFull, ///< Ising-model spin chain, maximal inlining.
};

/** All application kinds in Table-2 order. */
const std::vector<AppKind> &allApps();

/** Static description of one application. */
struct AppSpec
{
    AppKind kind;
    std::string name;           ///< short name, e.g. "SHA-1".
    std::string purpose;        ///< Table 2 "purpose" column.
    double paper_parallelism;   ///< Table 2 parallelism factor.
    bool parallel_class;        ///< true for the highly-parallel apps.
};

/** @return the spec for @p kind. */
const AppSpec &appSpec(AppKind kind);

/** Generator knobs common to every application. */
struct GenOptions
{
    /**
     * Problem size n: molecule size for GSE, operand bits for SQ,
     * hash rounds for SHA-1, spin-chain sites for IM.
     */
    int problem_size = 16;

    /**
     * Cap on repeated outer iterations (Grover rounds, Trotter
     * steps) so circuits stay simulatable; 0 means the natural
     * count for the problem size.
     */
    int max_iterations = 0;
};

/** Generate the logical circuit for @p kind. */
circuit::Circuit generate(AppKind kind, const GenOptions &opts = {});

/**
 * Default generator size used by benches/tests: chosen per app so
 * that measured parallelism matches Table 2.
 */
GenOptions defaultOptions(AppKind kind);

/**
 * A small hierarchical QASM program (with modules) exercising the
 * full parser -> flatten path; used by tests and the quickstart.
 */
std::string sampleHierarchicalQasm();

} // namespace qsurf::apps

#endif // QSURF_APPS_APPS_H
