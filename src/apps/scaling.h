/**
 * @file
 * Closed-form application scaling models.
 *
 * Figures 7-9 sweep "size of computation" (1/pL = total logical ops,
 * KQ) over up to 24 decades — far beyond what any circuit can be
 * materialized at.  Following the paper's methodology, the
 * design-space sweeps use closed-form scaling relations derived from
 * the generators in this module (and cross-checked against generated
 * circuits in the test suite): how logical qubit count, ideal
 * parallelism and gate mix evolve with computation size.
 */

#ifndef QSURF_APPS_SCALING_H
#define QSURF_APPS_SCALING_H

#include "apps/apps.h"

namespace qsurf::apps {

/**
 * Scaling relations for one application, all parameterized by the
 * computation size KQ (total logical operations after Clifford+T
 * decomposition; the paper's 1/pL axis).
 */
class AppScaling
{
  public:
    explicit AppScaling(AppKind kind) : kind_(kind) {}

    /** @return application kind. */
    AppKind kind() const { return kind_; }

    /**
     * @return the problem size n at which the generated program
     * executes ~@p kq logical ops (inverse of opsForProblemSize).
     */
    double problemSize(double kq) const;

    /** @return total logical ops for problem size @p n. */
    double opsForProblemSize(double n) const;

    /** @return logical data qubits for a computation of @p kq ops. */
    double logicalQubits(double kq) const;

    /**
     * @return ideal parallelism factor at computation size @p kq.
     * Constant for GSE/SQ/SHA-1; grows with the chain length for
     * the Ising variants (the layer width is ~n/2 sites).
     */
    double parallelism(double kq) const;

    /** @return fraction of ops that are 2-qubit (comm-generating). */
    double twoQubitFraction() const;

    /** @return fraction of ops that consume a magic state. */
    double tFraction() const;

  private:
    AppKind kind_;
};

/** @return the scaling model for @p kind. */
AppScaling appScaling(AppKind kind);

} // namespace qsurf::apps

#endif // QSURF_APPS_SCALING_H
