#include "apps/scaling.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace qsurf::apps {

namespace {

// Per-app constants, derived from the generators with the default
// Rz expansion (40 gates) and Toffoli expansion (15 gates); the
// scaling test suite cross-checks them against generated circuits.

// GSE: m iterations x m terms x ~(3 gates + Rz expansion / term).
constexpr double gse_ops_coeff = 45.0;   // KQ ~ 45 m^2
// SQ: ~64n decomposed ops per Grover round, (pi/4) 2^(n/2) rounds.
constexpr double sq_ops_per_bit = 64.0;
// SHA-1: ~130 decomposed ops per round per word bit, 80 rounds,
// with message length scaling the word width n: KQ ~ 1e4 n^2.
constexpr double sha1_ops_coeff = 1.0e4;
constexpr double sha1_words = 11.0;      // register-file words.
constexpr double sha1_par = 0.9;         // parallelism ~ word width.
// Ising: ~86n decomposed ops per Trotter step, n steps.
constexpr double im_ops_coeff_semi = 94.0;
constexpr double im_ops_coeff_full = 86.0;
// Layer-width coefficients: parallelism = coeff * n.
constexpr double im_par_semi = 0.45;
constexpr double im_par_full = 0.66;

} // namespace

double
AppScaling::opsForProblemSize(double n) const
{
    switch (kind_) {
      case AppKind::GSE:
        return gse_ops_coeff * n * n;
      case AppKind::SQ:
        return sq_ops_per_bit * n * 0.785398 * std::pow(2.0, n / 2.0);
      case AppKind::SHA1:
        return sha1_ops_coeff * n * n;
      case AppKind::IsingSemi:
        return im_ops_coeff_semi * n * n;
      case AppKind::IsingFull:
        return im_ops_coeff_full * n * n;
    }
    panic("unknown AppKind");
}

double
AppScaling::problemSize(double kq) const
{
    fatalIf(kq < 1, "computation size must be >= 1, got ", kq);
    switch (kind_) {
      case AppKind::GSE:
        return std::sqrt(kq / gse_ops_coeff);
      case AppKind::SQ: {
        // Invert kq = 64 n (pi/4) 2^(n/2) by bisection.
        double lo = 1, hi = 512;
        for (int i = 0; i < 200; ++i) {
            double mid = 0.5 * (lo + hi);
            (opsForProblemSize(mid) < kq ? lo : hi) = mid;
        }
        return 0.5 * (lo + hi);
      }
      case AppKind::SHA1:
        return std::sqrt(kq / sha1_ops_coeff);
      case AppKind::IsingSemi:
        return std::sqrt(kq / im_ops_coeff_semi);
      case AppKind::IsingFull:
        return std::sqrt(kq / im_ops_coeff_full);
    }
    panic("unknown AppKind");
}

double
AppScaling::logicalQubits(double kq) const
{
    double n = problemSize(kq);
    switch (kind_) {
      case AppKind::GSE:
        return std::max(2.0, n + 1);          // system + readout.
      case AppKind::SQ:
        return std::max(3.0, 2 * n + 1);      // input + work + flag.
      case AppKind::SHA1:
        return std::max(3.0, sha1_words * n); // register file.
      case AppKind::IsingSemi:
        return std::max(2.0, n + n / 3.0);    // sites + ancilla pool.
      case AppKind::IsingFull:
        return std::max(2.0, n);              // sites only.
    }
    panic("unknown AppKind");
}

double
AppScaling::parallelism(double kq) const
{
    switch (kind_) {
      case AppKind::GSE:
        return 1.2;
      case AppKind::SQ:
        return 1.5;
      case AppKind::SHA1:
        // Bitwise word parallelism: ~29 at the real 32-bit width.
        // The message schedule keeps several words in flight even
        // at narrow widths, so parallelism never drops below ~8.
        return std::max(8.0, sha1_par * problemSize(kq));
      case AppKind::IsingSemi:
        return std::max(1.0, im_par_semi * problemSize(kq));
      case AppKind::IsingFull:
        return std::max(1.0, im_par_full * problemSize(kq));
    }
    panic("unknown AppKind");
}

double
AppScaling::twoQubitFraction() const
{
    switch (kind_) {
      case AppKind::GSE:
        return 0.10; // CNOT pairs around each Rz expansion.
      case AppKind::SQ:
        return 0.40; // Toffoli-dominated oracle (6 CNOTs of 15).
      case AppKind::SHA1:
        return 0.45; // wide CNOT/Toffoli word layers.
      case AppKind::IsingSemi:
        return 0.10;
      case AppKind::IsingFull:
        return 0.05; // Rz expansions dominate the op count.
    }
    panic("unknown AppKind");
}

double
AppScaling::tFraction() const
{
    switch (kind_) {
      case AppKind::GSE:
        return 0.45; // Rz-expansion T gates dominate.
      case AppKind::SQ:
        return 0.30; // 7 of 15 Toffoli-expansion gates.
      case AppKind::SHA1:
        return 0.30;
      case AppKind::IsingSemi:
        return 0.45;
      case AppKind::IsingFull:
        return 0.45;
    }
    panic("unknown AppKind");
}

AppScaling
appScaling(AppKind kind)
{
    return AppScaling(kind);
}

} // namespace qsurf::apps
