#include "apps/apps.h"

#include <array>

#include "common/logging.h"

namespace qsurf::apps {

// Implemented in the per-app translation units.
circuit::Circuit generateGse(const GenOptions &opts);
circuit::Circuit generateSq(const GenOptions &opts);
circuit::Circuit generateSha1(const GenOptions &opts);
circuit::Circuit generateIsing(const GenOptions &opts, bool full_inline);

const std::vector<AppKind> &
allApps()
{
    static const std::vector<AppKind> kinds{
        AppKind::GSE, AppKind::SQ, AppKind::SHA1,
        AppKind::IsingSemi, AppKind::IsingFull,
    };
    return kinds;
}

const AppSpec &
appSpec(AppKind kind)
{
    static const std::array<AppSpec, 5> specs{{
        {AppKind::GSE, "GSE",
         "Compute ground state energy for molecule of size m",
         1.2, false},
        {AppKind::SQ, "SQ",
         "Find square root of an n-bit number",
         1.5, false},
        {AppKind::SHA1, "SHA-1",
         "SHA-1 decryption of n-bit message",
         29.0, true},
        {AppKind::IsingSemi, "IM-semi",
         "Ground state for Ising model on n-qubit spin chain",
         66.0, true},
        {AppKind::IsingFull, "IM-full",
         "Ising model, maximal inlining",
         66.0, true},
    }};
    for (const auto &s : specs)
        if (s.kind == kind)
            return s;
    panic("unknown AppKind ", static_cast<int>(kind));
}

circuit::Circuit
generate(AppKind kind, const GenOptions &opts)
{
    fatalIf(opts.problem_size < 2, "problem size must be >= 2, got ",
            opts.problem_size);
    switch (kind) {
      case AppKind::GSE:
        return generateGse(opts);
      case AppKind::SQ:
        return generateSq(opts);
      case AppKind::SHA1:
        return generateSha1(opts);
      case AppKind::IsingSemi:
        return generateIsing(opts, false);
      case AppKind::IsingFull:
        return generateIsing(opts, true);
    }
    panic("unknown AppKind ", static_cast<int>(kind));
}

GenOptions
defaultOptions(AppKind kind)
{
    GenOptions opts;
    switch (kind) {
      case AppKind::GSE:
        opts.problem_size = 24;
        break;
      case AppKind::SQ:
        opts.problem_size = 8;
        opts.max_iterations = 12;
        break;
      case AppKind::SHA1:
        opts.problem_size = 32; // word width of real SHA-1.
        opts.max_iterations = 16; // hash rounds to materialize.
        break;
      case AppKind::IsingSemi:
      case AppKind::IsingFull:
        opts.problem_size = 100;
        opts.max_iterations = 10;
        break;
    }
    return opts;
}

std::string
sampleHierarchicalQasm()
{
    return R"(# 4-bit majority-vote toy program with hierarchical modules
qbit q[4];
qbit anc[1];
cbit c[1];

module majority(a, b, c) {
    CNOT c, b;
    CNOT c, a;
    Toffoli a, b, c;
}

module round(a, b, c, out) {
    majority a, b, c;
    CNOT c, out;
    majority a, b, c;  # uncompute
}

H q[0];
H q[1];
H q[2];
round q[0], q[1], q[2], q[3];
T anc[0];
CNOT q[3], anc[0];
Rz(0.785398) anc[0];
MeasZ anc[0] -> c[0];
)";
}

} // namespace qsurf::apps
