/**
 * @file
 * Multi-SIMD architecture model for planar QEC (Section 4.4,
 * Figure 3a).
 *
 * The machine is a checkerboard of reconfigurable SIMD compute
 * regions and memory regions, each ringed by a teleport buffer.
 * Dedicated regions act as magic-state and EPR factories.  Operations
 * broadcast to all qubits in a region (microwave control); data moves
 * between regions by teleportation, whose EPR halves are distributed
 * ahead of time through planar swap channels.
 */

#ifndef QSURF_PLANAR_SIMD_ARCH_H
#define QSURF_PLANAR_SIMD_ARCH_H

#include <vector>

#include "common/geometry.h"

namespace qsurf::planar {

/** Configuration of the Multi-SIMD machine. */
struct SimdArchOptions
{
    /** Number of reconfigurable SIMD compute regions. */
    int num_regions = 4;

    /**
     * Qubits one region can operate on per step (microwave
     * broadcast width).
     */
    int region_capacity = 1024;

    /** Logical qubits the machine must hold. */
    int num_qubits = 1;
};

/**
 * Geometry of the Multi-SIMD machine: region centers on a near-square
 * grid of tile coordinates, with the EPR factory at the center.
 * Distances are in logical-tile hops, the unit of the swap-chain
 * latency model.
 */
class SimdArch
{
  public:
    explicit SimdArch(const SimdArchOptions &opts);

    /** @return number of SIMD compute regions. */
    int numRegions() const { return static_cast<int>(centers.size()); }

    /** @return region capacity in qubits per step. */
    int capacity() const { return cap; }

    /** @return tile-hop distance between two regions' centers. */
    int regionDistance(int a, int b) const;

    /** @return tile-hop distance from the EPR factory to region @p r. */
    int factoryDistance(int r) const;

    /**
     * @return tile hops an EPR pair travels for a teleport from
     * region @p src to region @p dst: both halves start at the
     * factory; the pair's transport cost is the longer leg.
     */
    int eprDistance(int src, int dst) const;

    /** @return total swap-channel links available for EPR transport. */
    int channelLinks() const { return links; }

  private:
    std::vector<Coord> centers;
    Coord factory;
    int cap;
    int links;
};

} // namespace qsurf::planar

#endif // QSURF_PLANAR_SIMD_ARCH_H
