/**
 * @file
 * Locality-based SIMD scheduling (Section 5.4, after [35]).
 *
 * Levelizes the circuit, packs each level's gates into SIMD regions
 * by operation kind (a region broadcasts one operation type per
 * step), and assigns kind-groups to the regions where most of their
 * operands' memory homes live — the mapping-level communication
 * reduction that "reduces unnecessary teleportations between
 * regions".  Operands homed elsewhere teleport to the elected
 * compute region, producing the teleport event stream the EPR
 * pipeline consumes.
 */

#ifndef QSURF_PLANAR_SIMD_SCHEDULE_H
#define QSURF_PLANAR_SIMD_SCHEDULE_H

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "planar/simd_arch.h"

namespace qsurf::planar {

/** One qubit movement between regions at a given logical step. */
struct TeleportEvent
{
    int step = 0;       ///< Logical timestep of first use at dst.
    int src_region = 0; ///< Where the qubit currently lives.
    int dst_region = 0; ///< Where its next gate executes.
    int32_t qubit = 0;  ///< The moved qubit (for tracing).
};

/** Output of the SIMD scheduler. */
struct SimdSchedule
{
    /** Number of logical timesteps (>= circuit depth). */
    int steps = 0;

    /** Gates executed at each step. */
    std::vector<int> gates_per_step;

    /** All qubit movements, ordered by step. */
    std::vector<TeleportEvent> teleports;

    /** Steps that had at least one teleport into them. */
    int steps_with_teleports = 0;

    /**
     * Sub-steps added because a level had more distinct gate kinds
     * than regions, or a kind-group exceeded region capacity.
     */
    int serialization_steps = 0;

    /** @return teleports per executed gate. */
    double
    teleportRate() const
    {
        uint64_t total = 0;
        for (int g : gates_per_step)
            total += static_cast<uint64_t>(g);
        return total ? static_cast<double>(teleports.size())
                / static_cast<double>(total)
                     : 0.0;
    }
};

/**
 * Schedule @p circ (already decomposed to Clifford+T) onto the
 * Multi-SIMD machine @p arch.
 *
 * @param legacy_level_scan reproduce the pre-optimization per-level
 *        full-circuit rescan (quadratic in depth) instead of the
 *        bucketed one; identical results, original cost — used by
 *        bench/perf_engine's pre-change baseline.
 */
SimdSchedule scheduleSimd(const circuit::Circuit &circ,
                          const SimdArch &arch,
                          bool legacy_level_scan = false);

} // namespace qsurf::planar

#endif // QSURF_PLANAR_SIMD_SCHEDULE_H
