/**
 * @file
 * Pipelined just-in-time EPR distribution (Sections 4.1, 5.4, 8.1).
 *
 * EPR halves are data-independent, so they can be distributed ahead
 * of need ("prefetched") through the swap channels.  The distributor
 * walks the dependence-ordered teleport stream with a lookahead
 * window: each EPR pair is launched when execution reaches
 * `use_step - window`.  Too small a window starves teleports (stall
 * cycles); too large a window floods the network and inflates the
 * live-EPR footprint — the space/time tradeoff Figure-8.1's sweep
 * quantifies (~24x qubit savings at ~4% latency cost for the right
 * window).
 */

#ifndef QSURF_PLANAR_EPR_H
#define QSURF_PLANAR_EPR_H

#include <cstdint>

#include "obs/trace.h"
#include "planar/simd_arch.h"
#include "planar/simd_schedule.h"

namespace qsurf::planar {

/** EPR distribution knobs. */
struct EprOptions
{
    /** Lookahead window in logical timesteps; <=0 means "infinite"
     *  (everything launches at time zero). */
    int window_steps = 32;

    /** Code distance (logical timestep = d cycles). */
    int code_distance = 5;

    /** Swap-chain latency per tile hop, in surface-code cycles
     *  (qec::Technology::swapHopCycles). */
    double swap_hop_cycles = 5.0;

    /** Fixed teleport cost once the EPR halves are resident. */
    int teleport_overhead_cycles = 2;

    /** Concurrent EPR transports the channels sustain; 0 means use
     *  the architecture's channelLinks(). */
    int bandwidth = 0;

    /** Structured-event trace hook; null disables tracing (see
     *  obs/trace.h).  Never changes results. */
    obs::TraceRecorder *trace = nullptr;
};

/** Result of one EPR-distribution simulation. */
struct EprResult
{
    /** Total cycles including teleport stalls. */
    uint64_t schedule_cycles = 0;

    /** Cycles with an ideal (zero-latency) EPR supply. */
    uint64_t nominal_cycles = 0;

    /** Cycles lost waiting for EPR arrivals. */
    uint64_t stall_cycles = 0;

    /** Teleports served. */
    uint64_t teleports = 0;

    /** Peak number of live (launched, unconsumed) EPR pairs. */
    uint64_t peak_live_eprs = 0;

    /** Time-averaged live EPR pairs. */
    double avg_live_eprs = 0;

    /** @return fractional latency overhead vs the nominal schedule. */
    double
    latencyOverhead() const
    {
        return nominal_cycles
            ? static_cast<double>(schedule_cycles)
                    / static_cast<double>(nominal_cycles)
                - 1.0
            : 0.0;
    }
};

/**
 * Simulate EPR distribution for the teleport stream of @p sched on
 * machine @p arch.
 */
EprResult simulateEpr(const SimdSchedule &sched, const SimdArch &arch,
                      const EprOptions &opts = {});

} // namespace qsurf::planar

#endif // QSURF_PLANAR_EPR_H
