/**
 * @file
 * End-to-end planar (Multi-SIMD) backend: SIMD scheduling plus
 * pipelined EPR distribution, producing the planar side of the
 * paper's comparisons.
 */

#ifndef QSURF_PLANAR_PLANAR_H
#define QSURF_PLANAR_PLANAR_H

#include "circuit/circuit.h"
#include "planar/epr.h"
#include "planar/simd_arch.h"
#include "planar/simd_schedule.h"
#include "qec/technology.h"

namespace qsurf::planar {

/** Configuration of one planar-backend run. */
struct PlanarOptions
{
    /** Code distance d (logical timestep = d cycles). */
    int code_distance = 5;

    /** SIMD region count (machine geometry adapts to the circuit). */
    int num_regions = 4;

    /** Per-region broadcast capacity. */
    int region_capacity = 1024;

    /** EPR lookahead window in steps; <= 0 means prefetch-all. */
    int epr_window_steps = 32;

    /** Concurrent EPR transports the channels sustain; 0 means use
     *  the architecture's channelLinks(). */
    int epr_bandwidth = 0;

    /** Technology for the swap-chain latency model. */
    qec::Technology tech;

    /** Reproduce the pre-optimization level scan (see
     *  scheduleSimd); identical results, original cost. */
    bool legacy_level_scan = false;

    /** Structured-event trace hook; null disables tracing (see
     *  obs/trace.h).  Never changes results. */
    obs::TraceRecorder *trace = nullptr;
};

/** Combined result of one planar-backend run. */
struct PlanarResult
{
    /** Total schedule length in surface-code cycles. */
    uint64_t schedule_cycles = 0;

    /** Dependence-limited lower bound (depth x d). */
    uint64_t critical_path_cycles = 0;

    /** Logical timesteps executed. */
    int steps = 0;

    /** Qubit movements between regions. */
    uint64_t teleports = 0;

    /** Cycles stalled waiting for EPR arrivals. */
    uint64_t stall_cycles = 0;

    /** Peak live EPR pairs (space cost of prefetching). */
    uint64_t peak_live_eprs = 0;

    /** Time-averaged live EPR pairs. */
    double avg_live_eprs = 0;

    /** Teleports per gate. */
    double teleport_rate = 0;

    /** @return schedule / critical-path ratio. */
    double
    ratio() const
    {
        return critical_path_cycles
            ? static_cast<double>(schedule_cycles)
                / static_cast<double>(critical_path_cycles)
            : 0.0;
    }
};

/**
 * The expensive prepare artifact of the planar backend: the SIMD
 * machine geometry, the level-scheduled SimdSchedule and the
 * levelized circuit depth.  None of it depends on the code distance
 * or the EPR knobs, so one PlanarPrepared serves every (d, window,
 * bandwidth) point of a sweep; handing runPlanar() one is
 * bit-identical to building it inline.
 */
struct PlanarPrepared
{
    SimdArch arch;
    SimdSchedule sched;
    uint64_t depth = 0; ///< Levelized circuit depth, in levels.

    PlanarPrepared(const circuit::Circuit &circ,
                   const PlanarOptions &opts);
};

/**
 * Run the planar backend on @p circ (must already be decomposed to
 * Clifford+T).
 */
PlanarResult runPlanar(const circuit::Circuit &circ,
                       const PlanarOptions &opts = {});

/**
 * Same run, reusing @p prepared (built for this circuit with the
 * same num_regions / region_capacity / legacy_level_scan);
 * bit-identical to the inline path.
 */
PlanarResult runPlanar(const circuit::Circuit &circ,
                       const PlanarOptions &opts,
                       const PlanarPrepared &prepared);

} // namespace qsurf::planar

#endif // QSURF_PLANAR_PLANAR_H
