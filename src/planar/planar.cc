#include "planar/planar.h"

#include "circuit/dag.h"
#include "circuit/schedule.h"
#include "common/logging.h"

namespace qsurf::planar {

namespace {

SimdArchOptions
makeArchOptions(const circuit::Circuit &circ,
                const PlanarOptions &opts)
{
    SimdArchOptions arch_opts;
    arch_opts.num_regions = opts.num_regions;
    arch_opts.region_capacity = opts.region_capacity;
    arch_opts.num_qubits = circ.numQubits();
    return arch_opts;
}

} // namespace

PlanarPrepared::PlanarPrepared(const circuit::Circuit &circ,
                               const PlanarOptions &opts)
    : arch(makeArchOptions(circ, opts)),
      sched(scheduleSimd(circ, arch, opts.legacy_level_scan))
{
    circuit::Dag dag(circ);
    depth = static_cast<uint64_t>(circuit::levelize(dag).depth);
}

PlanarResult
runPlanar(const circuit::Circuit &circ, const PlanarOptions &opts)
{
    fatalIf(circ.empty(), "cannot run the planar backend on an empty "
                          "circuit");
    PlanarPrepared prepared(circ, opts);
    return runPlanar(circ, opts, prepared);
}

PlanarResult
runPlanar(const circuit::Circuit &circ, const PlanarOptions &opts,
          const PlanarPrepared &prepared)
{
    fatalIf(circ.empty(), "cannot run the planar backend on an empty "
                          "circuit");
    fatalIf(opts.code_distance < 1, "code distance must be >= 1");
    opts.tech.check();

    EprOptions epr_opts;
    epr_opts.window_steps = opts.epr_window_steps;
    epr_opts.bandwidth = opts.epr_bandwidth;
    epr_opts.code_distance = opts.code_distance;
    epr_opts.swap_hop_cycles =
        opts.tech.swapHopCycles(opts.code_distance);
    epr_opts.trace = opts.trace;
    EprResult epr =
        simulateEpr(prepared.sched, prepared.arch, epr_opts);

    PlanarResult out;
    out.schedule_cycles = epr.schedule_cycles;
    out.critical_path_cycles = prepared.depth
        * static_cast<uint64_t>(opts.code_distance);
    out.steps = prepared.sched.steps;
    out.teleports = epr.teleports;
    out.stall_cycles = epr.stall_cycles;
    out.peak_live_eprs = epr.peak_live_eprs;
    out.avg_live_eprs = epr.avg_live_eprs;
    out.teleport_rate = prepared.sched.teleportRate();
    return out;
}

} // namespace qsurf::planar
