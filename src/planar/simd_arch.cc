#include "planar/simd_arch.h"

#include <cmath>

#include "common/logging.h"

namespace qsurf::planar {

SimdArch::SimdArch(const SimdArchOptions &opts)
{
    fatalIf(opts.num_regions < 1, "need at least one SIMD region");
    fatalIf(opts.region_capacity < 1, "region capacity must be >= 1");
    fatalIf(opts.num_qubits < 1, "machine must hold >= 1 qubit");
    cap = opts.region_capacity;

    // Regions sit on a near-square grid; the pitch between adjacent
    // region centers is the side of the memory+compute checkerboard
    // cell holding its share of the data qubits.
    int k = opts.num_regions;
    int grid = static_cast<int>(std::ceil(std::sqrt(
        static_cast<double>(k))));
    int pitch = std::max(2, static_cast<int>(std::ceil(std::sqrt(
        static_cast<double>(opts.num_qubits) / k))) + 1);

    for (int i = 0; i < k; ++i) {
        int gx = i % grid, gy = i / grid;
        centers.push_back(Coord{gx * pitch, gy * pitch});
    }
    // EPR factory region at the geometric center of the machine.
    factory = Coord{(grid - 1) * pitch / 2, (grid - 1) * pitch / 2};

    // Swap channels run along the checkerboard seams: one channel
    // per region-grid edge, each `pitch` tiles long.
    int edges = 2 * grid * (grid - 1);
    links = std::max(1, edges * pitch);
}

int
SimdArch::regionDistance(int a, int b) const
{
    panicIf(a < 0 || a >= numRegions() || b < 0 || b >= numRegions(),
            "region index out of range");
    return manhattan(centers[static_cast<size_t>(a)],
                     centers[static_cast<size_t>(b)]);
}

int
SimdArch::factoryDistance(int r) const
{
    panicIf(r < 0 || r >= numRegions(), "region index out of range");
    return manhattan(factory, centers[static_cast<size_t>(r)]);
}

int
SimdArch::eprDistance(int src, int dst) const
{
    return std::max(factoryDistance(src), factoryDistance(dst));
}

} // namespace qsurf::planar
