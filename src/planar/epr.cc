#include "planar/epr.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"
#include "engine/sim.h"

namespace qsurf::planar {

namespace {

struct Transport
{
    size_t event = 0;        ///< Index into sched.teleports.
    uint64_t launch = 0;     ///< Cycle the pair left the factory.
    uint64_t arrival = 0;    ///< Cycle both halves are resident.
};

} // namespace

EprResult
simulateEpr(const SimdSchedule &sched, const SimdArch &arch,
            const EprOptions &opts)
{
    fatalIf(opts.code_distance < 1, "code distance must be >= 1");
    fatalIf(opts.swap_hop_cycles <= 0, "swap hop cycles must be > 0");

    int bandwidth = opts.bandwidth > 0 ? opts.bandwidth
                                       : arch.channelLinks();
    auto d = static_cast<uint64_t>(opts.code_distance);

    EprResult out;
    out.teleports = sched.teleports.size();

    // Per-step teleport index ranges (teleports are step-ordered).
    size_t next_event = 0;

    // Channel occupancy: transports queue when all slots are busy.
    engine::ChannelPool channels(bandwidth);

    std::vector<Transport> transports(sched.teleports.size());
    std::vector<char> launched(sched.teleports.size(), 0);

    auto launch = [&](size_t e, uint64_t now) {
        const TeleportEvent &ev = sched.teleports[e];
        auto hops = static_cast<double>(
            arch.eprDistance(ev.src_region, ev.dst_region));
        auto duration = static_cast<uint64_t>(
            std::ceil(hops * opts.swap_hop_cycles));
        uint64_t start = channels.acquire(now, duration);
        transports[e] = Transport{e, now, start + duration};
        launched[e] = 1;
        if (opts.trace)
            opts.trace->record(
                {now, obs::EventKind::TeleportChannel,
                 static_cast<int32_t>(e),
                 static_cast<int64_t>(start),
                 static_cast<int64_t>(start + duration)});
    };

    // Infinite window: everything launches at cycle 0 in use order.
    if (opts.window_steps <= 0)
        for (size_t e = 0; e < sched.teleports.size(); ++e)
            launch(e, 0);

    uint64_t now = 0;
    size_t consume_cursor = 0; // Teleports are ordered by step.
    for (int step = 0; step < sched.steps; ++step) {
        // Launch EPRs whose use step enters the lookahead window.
        if (opts.window_steps > 0) {
            while (next_event < sched.teleports.size()
                   && sched.teleports[next_event].step
                          <= step + opts.window_steps) {
                launch(next_event, now);
                ++next_event;
            }
        }

        // Teleports consumed at this step and the stall they impose.
        uint64_t step_start = now;
        uint64_t ready_at = step_start;
        size_t first = consume_cursor;
        while (consume_cursor < sched.teleports.size()
               && sched.teleports[consume_cursor].step == step) {
            panicIf(!launched[consume_cursor],
                    "teleport consumed before launch");
            ready_at = std::max(
                ready_at, transports[consume_cursor].arrival);
            ++consume_cursor;
        }
        bool any_teleport = consume_cursor > first;

        uint64_t stall = ready_at - step_start;
        out.stall_cycles += stall;
        if (opts.trace && stall > 0)
            opts.trace->record({step_start,
                                obs::EventKind::TeleportStall, step,
                                static_cast<int64_t>(stall)});
        uint64_t overhead = any_teleport
            ? static_cast<uint64_t>(opts.teleport_overhead_cycles)
            : 0;
        now = step_start + stall + overhead + d;
        out.nominal_cycles += overhead + d;

        // Consumption happens once the step actually starts.
        for (size_t e = first; e < consume_cursor; ++e)
            transports[e].arrival =
                std::max(transports[e].arrival, step_start + stall);
    }
    out.schedule_cycles = now;

    // Live-EPR profile: live from launch to consumption.
    engine::LiveIntervalProfile live;
    for (const Transport &t : transports)
        live.add(t.launch, t.arrival);
    auto profile = live.summarize(out.schedule_cycles);
    out.peak_live_eprs = profile.peak;
    out.avg_live_eprs = profile.average;
    return out;
}

} // namespace qsurf::planar
