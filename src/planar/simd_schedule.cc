#include "planar/simd_schedule.h"

#include <algorithm>
#include <map>
#include <vector>

#include "circuit/dag.h"
#include "circuit/gates.h"
#include "circuit/schedule.h"
#include "common/logging.h"
#include "engine/sim.h"

namespace qsurf::planar {

namespace {

using circuit::GateKind;

/** Gates of one kind scheduled together in one region. */
struct KindGroup
{
    GateKind kind;
    std::vector<int> gate_indices;
};

} // namespace

SimdSchedule
scheduleSimd(const circuit::Circuit &circ, const SimdArch &arch,
             bool legacy_level_scan)
{
    fatalIf(circ.empty(), "cannot schedule an empty circuit");

    circuit::Dag dag(circ);
    circuit::LevelSchedule levels = circuit::levelize(dag);

    // Distributed memory (Figure 3a): every qubit lives in a fixed
    // home memory region, spread round-robin.  Operating on a qubit
    // teleports it to the elected compute region for the step and
    // back to its memory afterwards; only the outbound trip is
    // counted as a TeleportEvent (the return rides the same EPR
    // budget and is folded into the event).
    std::vector<int> home(static_cast<size_t>(circ.numQubits()));
    for (int q = 0; q < circ.numQubits(); ++q)
        home[static_cast<size_t>(q)] = q % arch.numRegions();

    SimdSchedule out;
    int k = arch.numRegions();

    // Bucket gates by level once (gate order stays ascending), so
    // each level touches only its own gates: the per-level rescan of
    // the whole circuit was quadratic for deep serial circuits.
    // legacy_level_scan keeps the rescan for baseline measurement.
    std::vector<std::vector<int>> level_gates;
    if (!legacy_level_scan) {
        level_gates.resize(static_cast<size_t>(levels.depth));
        for (int i = 0; i < circ.size(); ++i)
            level_gates[static_cast<size_t>(
                            levels.asap[static_cast<size_t>(i)])]
                .push_back(i);
    }

    // Per-kind group slots, reused across levels (kind enum order ==
    // the old std::map<GateKind, ...> iteration order).
    std::vector<KindGroup> kind_groups(circuit::num_gate_kinds);
    std::vector<int> votes(static_cast<size_t>(k), 0);

    for (int level = 0; level < levels.depth; ++level) {
        // Collect this level's gates by kind.  The legacy path is
        // the pre-optimization code verbatim — full-circuit rescan
        // into a freshly allocated per-level map (kind order ==
        // the reused array's index order, so results match).
        std::map<GateKind, KindGroup> legacy_groups;
        for (KindGroup &grp : kind_groups)
            grp.gate_indices.clear();
        if (legacy_level_scan) {
            for (int i = 0; i < circ.size(); ++i) {
                if (levels.asap[static_cast<size_t>(i)] != level)
                    continue;
                auto &grp = legacy_groups[circ.gate(i).kind];
                grp.kind = circ.gate(i).kind;
                grp.gate_indices.push_back(i);
            }
            for (auto &[kind, grp] : legacy_groups)
                kind_groups[static_cast<size_t>(kind)] =
                    std::move(grp);
        } else {
            for (int i : level_gates[static_cast<size_t>(level)]) {
                auto kind_index =
                    static_cast<size_t>(circ.gate(i).kind);
                kind_groups[kind_index].kind = circ.gate(i).kind;
                kind_groups[kind_index].gate_indices.push_back(i);
            }
        }

        // Largest groups pick their region first; the engine ready
        // queue breaks size ties FIFO (kind order), deterministically.
        std::vector<KindGroup *> by_id;
        engine::ReadyQueue group_order;
        for (KindGroup &grp : kind_groups) {
            if (grp.gate_indices.empty())
                continue;
            engine::ReadyEntry e;
            e.k1 = -static_cast<int64_t>(grp.gate_indices.size());
            e.id = static_cast<int>(by_id.size());
            by_id.push_back(&grp);
            group_order.insert(e);
        }
        if (by_id.empty())
            continue;
        std::vector<KindGroup *> order;
        for (const engine::ReadyEntry &e : group_order)
            order.push_back(by_id[static_cast<size_t>(e.id)]);

        // A level with more kinds than regions serializes into
        // ceil(kinds / k) sub-steps; capacity splits add more.
        int sub_steps = (static_cast<int>(order.size()) + k - 1) / k;
        int gates_this_level = 0;

        for (KindGroup *grp : order) {
            // Locality-based assignment: the region already holding
            // the most operand qubits of this group wins.
            std::fill(votes.begin(), votes.end(), 0);
            for (int gi : grp->gate_indices)
                for (int32_t q : circ.gate(gi).operands())
                    ++votes[static_cast<size_t>(
                        home[static_cast<size_t>(q)])];
            int region = static_cast<int>(
                std::max_element(votes.begin(), votes.end())
                - votes.begin());

            // Capacity check: oversized groups serialize.
            int operands = 0;
            for (int gi : grp->gate_indices)
                operands += circ.gate(gi).arity();
            if (operands > arch.capacity())
                sub_steps = std::max(
                    sub_steps,
                    (operands + arch.capacity() - 1) / arch.capacity());

            // Emit teleports for operands whose memory home is not
            // the elected compute region.
            bool teleported = false;
            for (int gi : grp->gate_indices) {
                for (int32_t q : circ.gate(gi).operands()) {
                    int cur = home[static_cast<size_t>(q)];
                    if (cur != region) {
                        out.teleports.push_back(TeleportEvent{
                            out.steps, cur, region, q});
                        teleported = true;
                    }
                }
                ++gates_this_level;
            }
            if (teleported)
                ++out.steps_with_teleports;
        }

        out.steps += sub_steps;
        out.serialization_steps += sub_steps - 1;
        out.gates_per_step.push_back(gates_this_level);
        for (int s = 1; s < sub_steps; ++s)
            out.gates_per_step.push_back(0);
    }

    return out;
}

} // namespace qsurf::planar
