#include "surgery/patch_arch.h"

#include <algorithm>

#include "common/logging.h"

namespace qsurf::surgery {

namespace {

/** Convert the interaction graph into a partitioner graph. */
partition::Graph
toPartitionGraph(const circuit::InteractionGraph &ig)
{
    partition::Graph g(ig.num_qubits);
    for (const auto &[pair, w] : ig.edges)
        g.addEdge(pair.first, pair.second, static_cast<int64_t>(w));
    return g;
}

/** Step @p from one unit toward @p to (or +1 on a tie). */
int
stepToward(int from, int to)
{
    return to > from ? 1 : to < from ? -1 : 1;
}

/** Append @p c to @p nodes unless it repeats the last node. */
void
append(network::Path::Nodes &nodes, const Coord &c)
{
    if (nodes.empty() || nodes.back() != c)
        nodes.push_back(c);
}

/** Append every node from the last one to @p to, axis-aligned. */
void
walkTo(network::Path::Nodes &nodes, const Coord &to)
{
    Coord at = nodes.back();
    panicIf(at.x != to.x && at.y != to.y,
            "corridor walk must be axis-aligned");
    int dx = stepToward(at.x, to.x);
    int dy = stepToward(at.y, to.y);
    while (at.x != to.x) {
        at.x += dx;
        append(nodes, at);
    }
    while (at.y != to.y) {
        at.y += dy;
        append(nodes, at);
    }
}

} // namespace

Coord
PatchArch::patchCenter(const Coord &patch)
{
    return Coord{2 * patch.x + 1, 2 * patch.y + 1};
}

PatchArch::PatchArch(const circuit::InteractionGraph &graph,
                     const PatchArchOptions &opts)
{
    nq = graph.num_qubits;
    fatalIf(nq < 1, "patch architecture needs at least one qubit");
    fatalIf(opts.patches_per_factory < 1,
            "patches_per_factory must be >= 1");

    // Near-square data region plus one factory column on the right,
    // mirroring the braid machine's Figure 3b arrangement.
    auto [dw, dh] = partition::gridShape(nq);
    int nfac = std::max(1, nq / opts.patches_per_factory);
    pw = dw + 1;
    ph = dh;

    nfac = std::min(nfac, ph);
    for (int i = 0; i < nfac; ++i) {
        int y = nfac == 1 ? ph / 2 : i * (ph - 1) / (nfac - 1);
        factories.push_back(Coord{pw - 1, y});
    }

    qubit_patch.resize(static_cast<size_t>(nq));
    partition::GridLayout layout;
    if (opts.optimized_layout) {
        partition::Graph pg = toPartitionGraph(graph);
        layout = partition::layoutOnGrid(pg, dw, dh, opts.seed);
    } else {
        layout = partition::naiveLayout(nq, dw, dh);
    }
    for (int q = 0; q < nq; ++q)
        qubit_patch[static_cast<size_t>(q)] =
            layout.position[static_cast<size_t>(q)];
}

Coord
PatchArch::patchOf(int32_t q) const
{
    panicIf(q < 0 || q >= nq, "qubit ", q, " out of range");
    return qubit_patch[static_cast<size_t>(q)];
}

Coord
PatchArch::terminal(int32_t q) const
{
    return patchCenter(patchOf(q));
}

Coord
PatchArch::factoryTerminal(int f) const
{
    panicIf(f < 0 || f >= numFactories(), "factory ", f,
            " out of range");
    return patchCenter(factories[static_cast<size_t>(f)]);
}

Coord
PatchArch::factoryPatch(int f) const
{
    panicIf(f < 0 || f >= numFactories(), "factory ", f,
            " out of range");
    return factories[static_cast<size_t>(f)];
}

std::vector<int>
PatchArch::factoriesByDistance(int32_t q) const
{
    Coord patch = patchOf(q);
    std::vector<int> order(factories.size());
    for (size_t i = 0; i < factories.size(); ++i)
        order[i] = static_cast<int>(i);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return manhattan(patch, factories[static_cast<size_t>(a)])
             < manhattan(patch, factories[static_cast<size_t>(b)]);
    });
    return order;
}

network::Mesh
PatchArch::makeMesh() const
{
    return network::Mesh(meshWidth(), meshHeight());
}

std::vector<Coord>
PatchArch::reservedTerminals() const
{
    std::vector<Coord> out;
    out.reserve(static_cast<size_t>(nq) + factories.size());
    for (int q = 0; q < nq; ++q)
        out.push_back(terminal(q));
    for (int f = 0; f < numFactories(); ++f)
        out.push_back(factoryTerminal(f));
    return out;
}

network::Path
PatchArch::corridorRoute(const Coord &src, const Coord &dst,
                         bool yx_first) const
{
    network::Path path;
    append(path.nodes, src);
    if (src == dst)
        return path;

    // Adjacent patches merge directly through the shared boundary
    // router between their centers.
    if ((src.y == dst.y && std::abs(dst.x - src.x) == 2)
        || (src.x == dst.x && std::abs(dst.y - src.y) == 2)) {
        append(path.nodes,
               Coord{(src.x + dst.x) / 2, (src.y + dst.y) / 2});
        append(path.nodes, dst);
        return path;
    }

    // General case: exit into the corridor ring next to the source
    // patch, travel along an even (corridor) row and column — never
    // through another patch center — and enter the destination from
    // its adjacent corridor column/row.
    if (!yx_first) {
        int ry = src.y + stepToward(src.y, dst.y);
        int cx = dst.x + stepToward(dst.x, src.x);
        walkTo(path.nodes, Coord{src.x, ry});
        walkTo(path.nodes, Coord{cx, ry});
        walkTo(path.nodes, Coord{cx, dst.y});
    } else {
        int cx = src.x + stepToward(src.x, dst.x);
        int ry = dst.y + stepToward(dst.y, src.y);
        walkTo(path.nodes, Coord{cx, src.y});
        walkTo(path.nodes, Coord{cx, ry});
        walkTo(path.nodes, Coord{dst.x, ry});
    }
    walkTo(path.nodes, dst);
    return path;
}

int
PatchArch::chainTiles(int router_hops)
{
    return (router_hops + 1) / 2;
}

double
PatchArch::layoutCost(const circuit::InteractionGraph &graph) const
{
    double sum = 0;
    for (const auto &[pair, w] : graph.edges)
        sum += static_cast<double>(w)
             * manhattan(patchOf(pair.first), patchOf(pair.second));
    return sum;
}

} // namespace qsurf::surgery
