#include "surgery/patch_arch.h"

#include <algorithm>

#include "circuit/schedule.h"
#include "common/logging.h"

namespace qsurf::surgery {

namespace {

/** Convert the interaction graph into a partitioner graph. */
partition::Graph
toPartitionGraph(const circuit::InteractionGraph &ig)
{
    partition::Graph g(ig.num_qubits);
    for (const auto &[pair, w] : ig.edges)
        g.addEdge(pair.first, pair.second, static_cast<int64_t>(w));
    return g;
}

/** Step @p from one unit toward @p to (+1 on a tie; ties reach the
 *  routing waypoints only via walkTo's unused axis — corridorRoute
 *  never lets a tie pick a corridor side). */
int
stepToward(int from, int to)
{
    return to > from ? 1 : to < from ? -1 : 1;
}

/** Append @p c to @p nodes unless it repeats the last node. */
void
append(network::Path::Nodes &nodes, const Coord &c)
{
    if (nodes.empty() || nodes.back() != c)
        nodes.push_back(c);
}

/** Append every node from the last one to @p to, axis-aligned. */
void
walkTo(network::Path::Nodes &nodes, const Coord &to)
{
    Coord at = nodes.back();
    panicIf(at.x != to.x && at.y != to.y,
            "corridor walk must be axis-aligned");
    int dx = stepToward(at.x, to.x);
    int dy = stepToward(at.y, to.y);
    while (at.x != to.x) {
        at.x += dx;
        append(nodes, at);
    }
    while (at.y != to.y) {
        at.y += dy;
        append(nodes, at);
    }
}

/** @return index of @p v in the sorted @p coords, or -1. */
int
indexOf(const std::vector<int> &coords, int v)
{
    auto it = std::lower_bound(coords.begin(), coords.end(), v);
    if (it == coords.end() || *it != v)
        return -1;
    return static_cast<int>(it - coords.begin());
}

/**
 * @return the first lane coordinate crossed travelling from @p from
 * to @p to (strictly between them), or -1 when the span crosses none.
 */
int
laneBetween(const std::vector<int> &lanes, int from, int to)
{
    if (from < to) {
        auto it = std::upper_bound(lanes.begin(), lanes.end(), from);
        if (it != lanes.end() && *it < to)
            return *it;
        return -1;
    }
    auto it = std::lower_bound(lanes.begin(), lanes.end(), from);
    if (it != lanes.begin() && *(it - 1) > to)
        return *(it - 1);
    return -1;
}

} // namespace

Coord
PatchArch::center(const Coord &patch) const
{
    return Coord{col_x[static_cast<size_t>(patch.x)],
                 row_y[static_cast<size_t>(patch.y)]};
}

void
PatchArch::buildCoordinateMaps(int lane_spacing)
{
    auto build = [lane_spacing](int cells, std::vector<int> &centers,
                                std::vector<int> &lanes) {
        centers.resize(static_cast<size_t>(cells));
        int c = 1;
        for (int p = 0; p < cells; ++p) {
            if (p > 0) {
                c += 2;
                if (lane_spacing > 0 && p % lane_spacing == 0) {
                    // The lane slides in between the boundary
                    // corridor and this patch column/row, flanked by
                    // plain corridors on both sides so patch rings
                    // stay lane-free.
                    lanes.push_back(c);
                    c += 2;
                }
            }
            centers[static_cast<size_t>(p)] = c;
        }
    };
    build(pw, col_x, lane_cols_x);
    build(ph, row_y, lane_rows_y);
    mw = col_x.back() + 2;
    mh = row_y.back() + 2;
}

PatchArch::PatchArch(const circuit::InteractionGraph &graph,
                     const PatchArchOptions &opts)
{
    nq = graph.num_qubits;
    fatalIf(nq < 1, "patch architecture needs at least one qubit");
    fatalIf(opts.patches_per_factory < 1,
            "patches_per_factory must be >= 1");
    bool lanes = opts.layout_objective
        == partition::LayoutObjective::CorridorLanes;
    fatalIf(lanes && opts.lane_spacing < 1,
            "lane_spacing must be >= 1, got ", opts.lane_spacing);

    // Near-square data region plus one factory column on the right,
    // mirroring the braid machine's Figure 3b arrangement.  On a
    // damaged fabric the grid grows one data row at a time until the
    // live cells hold every qubit and at least one factory patch
    // survives; the map re-materializes per candidate grid, so the
    // machine is still a pure function of (graph, options).
    auto [dw, dh0] = partition::gridShape(nq);
    int dh = dh0;
    int want_fac = std::max(1, nq / opts.patches_per_factory);
    for (int grow = 0;; ++grow) {
        fatalIf(grow > 256, "defect map leaves no room for ", nq,
                " qubits");
        pw = dw + 1;
        ph = dh;
        defect_map = fabric::DefectMap::materialize(opts.defects, pw,
                                                    ph);
        int live = 0;
        for (int y = 0; y < dh; ++y)
            for (int x = 0; x < dw; ++x)
                live += !defect_map.deadTile(x, y);
        if (live < nq) {
            ++dh;
            continue;
        }

        // Factory patches: a dead nominal position slides to the
        // nearest live row in the column (below first on ties); dead
        // rows beyond that drop the factory.
        factories.clear();
        int nfac = std::min(want_fac, ph);
        std::vector<uint8_t> used(static_cast<size_t>(ph), 0);
        for (int i = 0; i < nfac; ++i) {
            int y = nfac == 1 ? ph / 2 : i * (ph - 1) / (nfac - 1);
            int pick = -1;
            for (int d = 0; d < ph && pick < 0; ++d)
                for (int s : {y + d, y - d}) {
                    if (s < 0 || s >= ph
                        || used[static_cast<size_t>(s)]
                        || defect_map.deadTile(pw - 1, s))
                        continue;
                    pick = s;
                    break;
                }
            if (pick >= 0) {
                used[static_cast<size_t>(pick)] = 1;
                factories.push_back(Coord{pw - 1, pick});
            }
        }
        if (factories.empty()) {
            ++dh;
            continue;
        }
        break;
    }
    lane_spacing = lanes ? opts.lane_spacing : 0;
    buildCoordinateMaps(lane_spacing);

    // Project the patch-level damage onto the mesh: a dead patch
    // loses its center router, a broken coupler every link of the
    // straight segment between the two centers.
    if (!defect_map.empty()) {
        bad_node_.assign(static_cast<size_t>(mw * mh), 0);
        for (const Coord &t : defect_map.deadTiles())
            bad_node_[static_cast<size_t>(
                linearIndex(center(t), mw))] = 1;
        for (const auto &[a, b] : defectiveMeshLinks()) {
            auto la = static_cast<uint64_t>(
                static_cast<uint32_t>(linearIndex(a, mw)));
            auto lb = static_cast<uint64_t>(
                static_cast<uint32_t>(linearIndex(b, mw)));
            bad_link_.insert(std::min(la, lb) << 32
                             | std::max(la, lb));
        }
    }

    partition::CellMask mask;
    if (!defect_map.empty()) {
        mask.assign(static_cast<size_t>(dw * dh), 0);
        for (int y = 0; y < dh; ++y)
            for (int x = 0; x < dw; ++x)
                if (defect_map.deadTile(x, y))
                    mask[static_cast<size_t>(y * dw + x)] = 1;
    }
    qubit_patch.resize(static_cast<size_t>(nq));
    partition::GridLayout layout;
    if (opts.optimized_layout) {
        partition::Graph pg = toPartitionGraph(graph);
        layout = partition::layoutOnGrid(pg, dw, dh, opts.seed, mask);
        // The corridor objectives refine the bisection seed against
        // the around-patch corridor metric — lane-aware when lanes
        // are on, so the refinement prices the machine actually
        // built (ROADMAP: surgery-aware layout); the Manhattan
        // objective keeps the seed untouched.
        if (opts.layout_objective
            != partition::LayoutObjective::BraidManhattan)
            partition::refineForCorridors(pg, layout, lane_spacing,
                                          8, mask);
    } else {
        layout = partition::naiveLayout(nq, dw, dh, mask);
    }
    for (int q = 0; q < nq; ++q)
        qubit_patch[static_cast<size_t>(q)] =
            layout.position[static_cast<size_t>(q)];
}

std::vector<std::pair<Coord, Coord>>
PatchArch::defectiveMeshLinks() const
{
    std::vector<std::pair<Coord, Coord>> out;
    for (const auto &[a, b] : defect_map.disabledLinks()) {
        Coord at = center(a);
        Coord to = center(b);
        int dx = to.x > at.x ? 1 : to.x < at.x ? -1 : 0;
        int dy = to.y > at.y ? 1 : to.y < at.y ? -1 : 0;
        while (at != to) {
            Coord next{at.x + dx, at.y + dy};
            out.emplace_back(at, next);
            at = next;
        }
    }
    return out;
}

bool
PatchArch::routeDefectFree(const network::Path &path) const
{
    if (bad_node_.empty())
        return true;
    int prev = -1;
    for (const Coord &c : path.nodes) {
        int ni = linearIndex(c, mw);
        if (bad_node_[static_cast<size_t>(ni)])
            return false;
        if (prev >= 0 && !bad_link_.empty()) {
            auto la = static_cast<uint64_t>(
                static_cast<uint32_t>(std::min(prev, ni)));
            auto lb = static_cast<uint64_t>(
                static_cast<uint32_t>(std::max(prev, ni)));
            if (bad_link_.count(la << 32 | lb))
                return false;
        }
        prev = ni;
    }
    return true;
}

double
PatchArch::defectExposure(int32_t qa, int32_t qb) const
{
    if (defect_map.empty())
        return 0.0;
    return defect_map.routeExposure(patchOf(qa), patchOf(qb));
}

Coord
PatchArch::patchOf(int32_t q) const
{
    panicIf(q < 0 || q >= nq, "qubit ", q, " out of range");
    return qubit_patch[static_cast<size_t>(q)];
}

Coord
PatchArch::terminal(int32_t q) const
{
    return center(patchOf(q));
}

Coord
PatchArch::factoryTerminal(int f) const
{
    panicIf(f < 0 || f >= numFactories(), "factory ", f,
            " out of range");
    return center(factories[static_cast<size_t>(f)]);
}

Coord
PatchArch::factoryPatch(int f) const
{
    panicIf(f < 0 || f >= numFactories(), "factory ", f,
            " out of range");
    return factories[static_cast<size_t>(f)];
}

std::vector<int>
PatchArch::factoriesByDistance(int32_t q) const
{
    Coord patch = patchOf(q);
    std::vector<int> order(factories.size());
    for (size_t i = 0; i < factories.size(); ++i)
        order[i] = static_cast<int>(i);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return manhattan(patch, factories[static_cast<size_t>(a)])
             < manhattan(patch, factories[static_cast<size_t>(b)]);
    });
    return order;
}

network::Mesh
PatchArch::makeMesh() const
{
    network::Mesh mesh(meshWidth(), meshHeight());
    if (defect_map.empty())
        return mesh;
    for (const Coord &t : defect_map.deadTiles())
        mesh.disableNode(center(t));
    for (const auto &[a, b] : defectiveMeshLinks())
        mesh.disableLink(a, b);
    return mesh;
}

bool
PatchArch::isLaneRow(int y) const
{
    return indexOf(lane_rows_y, y) >= 0;
}

bool
PatchArch::isLaneCol(int x) const
{
    return indexOf(lane_cols_x, x) >= 0;
}

double
PatchArch::laneAreaFactor() const
{
    return static_cast<double>(mw) * static_cast<double>(mh)
        / (static_cast<double>(2 * pw + 1)
           * static_cast<double>(2 * ph + 1));
}

std::vector<Coord>
PatchArch::reservedTerminals() const
{
    std::vector<Coord> out;
    out.reserve(static_cast<size_t>(nq) + factories.size());
    for (int q = 0; q < nq; ++q)
        out.push_back(terminal(q));
    for (int f = 0; f < numFactories(); ++f)
        out.push_back(factoryTerminal(f));
    return out;
}

bool
PatchArch::laneRoute(network::Path::Nodes &nodes, const Coord &src,
                     const Coord &dst, bool yx_first) const
{
    if (!yx_first) {
        // Ride the first lane row the vertical span crosses: exit
        // into the source ring, side-step one corridor column, drop
        // to the lane, run the long horizontal leg on it, and come
        // back up beside the destination.
        int lane = laneBetween(lane_rows_y, src.y, dst.y);
        if (lane < 0)
            return false;
        int sy = src.y + stepToward(src.y, dst.y);
        int cx0 = src.x + stepToward(src.x, dst.x);
        int cx1 = dst.x + stepToward(dst.x, src.x);
        int dy = dst.y + stepToward(dst.y, src.y);
        walkTo(nodes, Coord{src.x, sy});
        walkTo(nodes, Coord{cx0, sy});
        walkTo(nodes, Coord{cx0, lane});
        walkTo(nodes, Coord{cx1, lane});
        walkTo(nodes, Coord{cx1, dy});
        walkTo(nodes, Coord{dst.x, dy});
        return true;
    }
    // Transposed geometry: the long vertical leg rides a lane column.
    int lane = laneBetween(lane_cols_x, src.x, dst.x);
    if (lane < 0)
        return false;
    int sx = src.x + stepToward(src.x, dst.x);
    int ry0 = src.y + stepToward(src.y, dst.y);
    int ry1 = dst.y + stepToward(dst.y, src.y);
    int dx1 = dst.x + stepToward(dst.x, src.x);
    walkTo(nodes, Coord{sx, src.y});
    walkTo(nodes, Coord{sx, ry0});
    walkTo(nodes, Coord{lane, ry0});
    walkTo(nodes, Coord{lane, ry1});
    walkTo(nodes, Coord{dx1, ry1});
    walkTo(nodes, Coord{dx1, dst.y});
    return true;
}

network::Path
PatchArch::corridorRoute(const Coord &src, const Coord &dst,
                         bool yx_first) const
{
    network::Path path;
    append(path.nodes, src);
    if (src == dst)
        return path;

    int pax = indexOf(col_x, src.x), pay = indexOf(row_y, src.y);
    int pbx = indexOf(col_x, dst.x), pby = indexOf(row_y, dst.y);
    panicIf(pax < 0 || pay < 0 || pbx < 0 || pby < 0,
            "corridor endpoints must be patch centers");

    // Adjacent patches merge straight through the shared boundary
    // corridor between their centers (one router, or three where a
    // lane band separates them).
    if (std::abs(pax - pbx) + std::abs(pay - pby) == 1) {
        walkTo(path.nodes, dst);
        return path;
    }

    int tie = yx_first ? -1 : +1;

    // Collinear pairs route around the patches between them along a
    // side corridor; the primary takes the +1 side and the transposed
    // fallback the -1 side, so contended same-row/column merges keep
    // genuine route diversity.  (The old tie-break sent both
    // geometries to the same corridor.)  Patch centers sit at mesh
    // coordinates 1..size-2, so both side corridors always exist —
    // a clamp here would silently collapse the two geometries back
    // onto one corridor, so fail loudly instead.
    if (pay == pby) {
        auto side = [&](int t) {
            network::Path p;
            append(p.nodes, src);
            int ry = src.y + t;
            panicIf(ry < 0 || ry >= mh,
                    "collinear side corridor row off the mesh");
            walkTo(p.nodes, Coord{src.x, ry});
            walkTo(p.nodes, Coord{dst.x, ry});
            walkTo(p.nodes, dst);
            return p;
        };
        // A damaged preferred side flips to the other corridor when
        // that one is clear (deeper damage escalates to BFS).
        network::Path p = side(tie);
        if (!routeDefectFree(p)) {
            network::Path alt = side(-tie);
            if (routeDefectFree(alt))
                return alt;
        }
        return p;
    }
    if (pax == pbx) {
        auto side = [&](int t) {
            network::Path p;
            append(p.nodes, src);
            int cx = src.x + t;
            panicIf(cx < 0 || cx >= mw,
                    "collinear side corridor column off the mesh");
            walkTo(p.nodes, Coord{cx, src.y});
            walkTo(p.nodes, Coord{cx, dst.y});
            walkTo(p.nodes, dst);
            return p;
        };
        network::Path p = side(tie);
        if (!routeDefectFree(p)) {
            network::Path alt = side(-tie);
            if (routeDefectFree(alt))
                return alt;
        }
        return p;
    }

    // Long hauls whose span crosses a dedicated ancilla lane ride it
    // (same hop count as the classic geometry when the lane lies
    // between) instead of fighting over patch-adjacent rings.  A
    // damaged lane band is skipped: the ring geometry below takes
    // over.
    {
        network::Path lane_path;
        append(lane_path.nodes, src);
        if (laneRoute(lane_path.nodes, src, dst, yx_first)) {
            walkTo(lane_path.nodes, dst);
            if (routeDefectFree(lane_path))
                return lane_path;
        }
    }

    // General case: exit into the corridor ring next to the source
    // patch, travel along a corridor row and column — never through
    // another patch center — and enter the destination from its
    // adjacent corridor column/row.
    if (!yx_first) {
        int ry = src.y + stepToward(src.y, dst.y);
        int cx = dst.x + stepToward(dst.x, src.x);
        walkTo(path.nodes, Coord{src.x, ry});
        walkTo(path.nodes, Coord{cx, ry});
        walkTo(path.nodes, Coord{cx, dst.y});
    } else {
        int cx = src.x + stepToward(src.x, dst.x);
        int ry = dst.y + stepToward(dst.y, src.y);
        walkTo(path.nodes, Coord{cx, src.y});
        walkTo(path.nodes, Coord{cx, ry});
        walkTo(path.nodes, Coord{dst.x, ry});
    }
    walkTo(path.nodes, dst);
    return path;
}

int
PatchArch::chainTiles(int router_hops)
{
    return (router_hops + 1) / 2;
}

double
PatchArch::layoutCost(const circuit::InteractionGraph &graph) const
{
    double sum = 0;
    for (const auto &[pair, w] : graph.edges)
        sum += static_cast<double>(w)
             * manhattan(patchOf(pair.first), patchOf(pair.second));
    return sum;
}

double
PatchArch::corridorCost(const circuit::InteractionGraph &graph) const
{
    double sum = 0;
    for (const auto &[pair, w] : graph.edges)
        sum += static_cast<double>(w)
             * partition::corridorTiles(patchOf(pair.first),
                                        patchOf(pair.second),
                                        lane_spacing);
    return sum;
}

PatchPrepared::PatchPrepared(const circuit::Circuit &circ,
                             const PatchArchOptions &arch_opts)
    : dag(circ), graph(circuit::interactionGraph(circ)),
      arch(graph, arch_opts), crit(circuit::criticality(dag))
{
}

} // namespace qsurf::surgery
