#include "surgery/chain_scheduler.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "circuit/dag.h"
#include "circuit/schedule.h"
#include "common/arena.h"
#include "common/logging.h"
#include "engine/sim.h"

namespace qsurf::surgery {

namespace {

using circuit::GateKind;

/** How an op uses the machine. */
enum class OpClass : uint8_t
{
    Local, ///< 1-qubit non-T gate: patch-local, d cycles.
    TGate, ///< T/Tdag: one chain to a factory patch.
    TwoQ,  ///< 2-qubit gate: one merge/split chain.
};

struct OpRec
{
    OpClass cls = OpClass::Local;
    int32_t qa = -1;
    int32_t qb = -1;
    int pending_preds = 0;
    int wait = 0;        ///< Cycles spent failing to place.
    int est_tiles = 0;   ///< Ideal chain length, in patch tiles.
    bool done = false;
    network::Path route; ///< Currently claimed corridor.
};

OpClass
classify(const circuit::Gate &g)
{
    if (consumesMagicState(g.kind))
        return OpClass::TGate;
    int arity = g.arity();
    fatalIf(arity > 2, "gate ", circuit::gateName(g.kind),
            " must be decomposed before surgery scheduling");
    return arity == 2 ? OpClass::TwoQ : OpClass::Local;
}

/** Merge/split cost of an @p tiles-tile chain under @p opts. */
uint64_t
chainCycles(const SurgeryOptions &opts, int tiles)
{
    return surgery::chainCycles(opts.rounds_per_hop,
                                opts.code_distance, tiles);
}

/** The simulator. */
class Simulator
{
  public:
    Simulator(const circuit::Circuit &circ,
              const SurgeryOptions &opts, const PatchPrepared &prep)
        : circ(circ), opts(opts), dag(prep.dag), graph(prep.graph),
          arch(prep.arch), mesh(arch.makeMesh()),
          claim_opts(makeClaimOptions(opts)),
          claimer(mesh, claim_opts), corridors(arch),
          crit(prep.crit), trace(opts.trace)
    {
        if (trace) {
            trace->meshDims(mesh.width(), mesh.height());
            obs::traceMeshDefects(trace, mesh);
        }
        for (const Coord &terminal : arch.reservedTerminals())
            claimer.reserveTerminal(terminal);
        // Factory preference orders are a pure function of the
        // static layout; memoize them per qubit so a stalled T gate
        // doesn't re-sort the factory list every failed attempt.
        factory_order.resize(
            static_cast<size_t>(graph.num_qubits));
        for (int q = 0; q < graph.num_qubits; ++q)
            factory_order[static_cast<size_t>(q)] =
                arch.factoriesByDistance(q);
        buildOps();
        factories.configure(arch.numFactories(),
                            opts.magic_production_cycles,
                            opts.magic_buffer_capacity);
        factories.setTrace(trace);
    }

    SurgeryResult
    run()
    {
        seedReady();
        uint64_t completed = 0;
        auto total = static_cast<uint64_t>(circ.size());

        while (completed < total) {
            fatalIf(cycle > opts.max_cycles,
                    "surgery simulation exceeded ", opts.max_cycles,
                    " cycles; likely a configuration problem");
            factories.replenish(cycle);
            placementPhase();
            if (opts.fast_forward)
                fastForwardPhase();
            mesh.tick();
            ++cycle;
            completed += completionPhase();
        }

        SurgeryResult out;
        out.schedule_cycles = cycle;
        out.critical_path_cycles =
            surgeryCriticalPath(circ, dag, arch, opts);
        out.mesh_utilization = mesh.utilization();
        out.chains_placed = chains_placed;
        out.placement_failures = placement_failures;
        out.transpose_fallbacks = claimer.transposeFallbacks();
        out.bfs_detours = claimer.bfsDetours();
        out.drops = drops;
        out.magic_starvations = magic_starvations;
        out.total_chain_tiles = total_chain_tiles;
        out.max_chain_tiles = max_chain_tiles;
        auto live = live_chains.summarize(cycle);
        out.peak_live_chains = live.peak;
        out.avg_live_chains = live.average;
        out.layout_cost = arch.layoutCost(graph);
        out.corridor_cost = arch.corridorCost(graph);
        out.lane_area_factor = arch.laneAreaFactor();
        out.ff_skipped_cycles = ff.skipped();
        out.defect_dead_fraction = arch.defects().deadFraction();
        out.defect_avg_multiplier =
            arch.defects().avgErrorMultiplier();
        out.defective_nodes =
            static_cast<uint64_t>(mesh.numDefectiveNodes());
        out.defective_links =
            static_cast<uint64_t>(mesh.numDefectiveLinks());
        return out;
    }

  private:
    static engine::RouteClaimOptions
    makeClaimOptions(const SurgeryOptions &opts)
    {
        engine::RouteClaimOptions c;
        c.adapt_timeout = opts.adapt_timeout;
        c.bfs_timeout = opts.bfs_timeout;
        c.legacy_paths = opts.legacy_paths;
        return c;
    }

    void
    buildOps()
    {
        ops.resize(static_cast<size_t>(circ.size()));
        for (int i = 0; i < circ.size(); ++i) {
            const circuit::Gate &g = circ.gate(i);
            OpRec &op = ops[static_cast<size_t>(i)];
            op.cls = classify(g);
            op.qa = g.qubit[0];
            op.qb = g.arity() == 2 ? g.qubit[1] : -1;
            op.pending_preds =
                static_cast<int>(dag.preds(i).size());
            op.est_tiles = estimateTiles(op);
        }
    }

    /** Ideal (Manhattan) chain length of @p op, in patch tiles. */
    int
    estimateTiles(const OpRec &op) const
    {
        switch (op.cls) {
          case OpClass::Local:
            return 0;
          case OpClass::TGate: {
            int f = factory_order[static_cast<size_t>(op.qa)]
                        .front();
            return manhattan(arch.patchOf(op.qa),
                             arch.factoryPatch(f));
          }
          case OpClass::TwoQ:
            return manhattan(arch.patchOf(op.qa),
                             arch.patchOf(op.qb));
        }
        panic("bad OpClass");
    }

    void
    seedReady()
    {
        for (int i = 0; i < circ.size(); ++i)
            if (ops[static_cast<size_t>(i)].pending_preds == 0)
                makeReady(i);
    }

    void
    makeReady(int i)
    {
        ops[static_cast<size_t>(i)].wait = 0;
        ready.insert(makeEntry(i));
        if (trace)
            trace->record({cycle, obs::EventKind::OpReady, i});
    }

    /**
     * Chains release nothing until the whole merge/split completes,
     * so the queue works off criticality (longest dependence tail
     * first) and breaks ties short-chain-first to keep corridors
     * turning over.
     */
    engine::ReadyEntry
    makeEntry(int i)
    {
        const OpRec &op = ops[static_cast<size_t>(i)];
        engine::ReadyEntry e;
        e.id = i;
        e.k1 = -crit[static_cast<size_t>(i)];
        e.k2 = op.est_tiles;
        return e;
    }

    bool
    tryPlace(int i)
    {
        OpRec &op = ops[static_cast<size_t>(i)];
        if (op.cls == OpClass::Local) {
            if (trace)
                trace->record({cycle, obs::EventKind::OpIssue, i, 0,
                               opts.code_distance});
            activate(i, static_cast<uint64_t>(opts.code_distance));
            return true;
        }

        Coord src = arch.terminal(op.qa);
        // Candidate destinations: (terminal, factory index or -1).
        std::vector<std::pair<Coord, int>> &dsts = dsts_scratch;
        dsts.clear();
        if (op.cls == OpClass::TwoQ) {
            dsts.emplace_back(arch.terminal(op.qb), -1);
        } else if (!engine::appendStockedFactories(
                       factories,
                       factory_order[static_cast<size_t>(op.qa)],
                       op.wait, opts.adapt_timeout, dsts,
                       [this](int f) {
                           return arch.factoryTerminal(f);
                       })) {
            ++magic_starvations;
            ++pass_starved;
            if (trace
                && obs::stallEventGate(op.wait, opts.adapt_timeout,
                                       opts.bfs_timeout))
                trace->record(
                    {cycle, obs::EventKind::FactoryStarve, i});
            return false;
        }

        uint64_t transpose_before = 0;
        uint64_t bfs_before = 0;
        if (trace) {
            transpose_before = claimer.transposeFallbacks();
            bfs_before = claimer.bfsDetours();
        }
        for (const auto &[dst, factory] : dsts) {
            std::optional<network::Path> chain;
            if (opts.legacy_paths) {
                // Pre-change behavior: rebuild both corridor
                // geometries on every attempt.
                network::Path primary =
                    arch.corridorRoute(src, dst, false);
                network::Path fallback =
                    arch.corridorRoute(src, dst, true);
                chain = claimer.tryClaim(primary, fallback, i,
                                         op.wait);
            } else {
                const CorridorRouter::Routes &routes =
                    corridors.routes(src, dst);
                chain = claimer.tryClaim(routes.primary,
                                         routes.fallback, i,
                                         op.wait);
            }
            if (chain) {
                if (trace) {
                    int64_t stage = 0;
                    if (claimer.bfsDetours() != bfs_before)
                        stage = 2;
                    else if (claimer.transposeFallbacks()
                             != transpose_before)
                        stage = 1;
                    trace->record({cycle, obs::EventKind::RouteClaim,
                                   i, stage, chain->hops(), factory});
                    if (stage > 0)
                        trace->record({cycle,
                                       obs::EventKind::RouteFallback,
                                       i, stage});
                }
                factories.consume(factory);
                placed(i, std::move(*chain));
                return true;
            }
        }
        if (trace
            && obs::stallEventGate(op.wait, opts.adapt_timeout,
                                   opts.bfs_timeout))
            trace->record(
                {cycle, obs::EventKind::RouteDeny, i, op.wait});
        return false;
    }

    /** Record a successful placement on a claimed corridor. */
    void
    placed(int i, network::Path chain)
    {
        OpRec &op = ops[static_cast<size_t>(i)];
        auto tiles = static_cast<uint64_t>(
            PatchArch::chainTiles(chain.hops()));
        op.route = std::move(chain);
        ++chains_placed;
        total_chain_tiles += tiles;
        max_chain_tiles = std::max(max_chain_tiles, tiles);
        // One cycle to turn the boundary measurements on, then the
        // merge/split rounds across the whole corridor.
        uint64_t duration =
            chainCycles(opts, static_cast<int>(tiles)) + 1;
        if (trace) {
            trace->record({cycle, obs::EventKind::ChainHold, i,
                           static_cast<int64_t>(tiles),
                           static_cast<int64_t>(duration)});
            trace->routeHeld(op.route, cycle, duration);
            trace->record({cycle, obs::EventKind::OpIssue, i,
                           op.cls == OpClass::TGate ? 1 : 2,
                           static_cast<int64_t>(duration)});
        }
        live_chains.add(cycle, cycle + duration);
        activate(i, duration);
    }

    void
    activate(int i, uint64_t duration)
    {
        expiry.schedule(cycle + duration, i);
    }

    /** Greedy placement, criticality-ordered. */
    void
    placementPhase()
    {
        pass_placed = 0;
        pass_dropped = 0;
        pass_starved = 0;
        attempted.clear();

        int failures = 0;
        dropped_scratch.clear();
        auto it = ready.begin();
        while (it != ready.end()
               && failures < opts.max_attempts_per_cycle) {
            int i = it->id;
            int wait_used = ops[static_cast<size_t>(i)].wait;
            if (tryPlace(i)) {
                ++pass_placed;
                it = ready.erase(it);
                continue;
            }
            ++failures;
            ++placement_failures;
            OpRec &op = ops[static_cast<size_t>(i)];
            ++op.wait;
            if (op.wait >= opts.drop_timeout) {
                // Drop and re-inject at the back of the queue.
                ++drops;
                ++pass_dropped;
                if (trace)
                    trace->record(
                        {cycle, obs::EventKind::RouteDrop, i});
                op.wait = 0;
                it = ready.erase(it);
                dropped_scratch.push_back(i);
                continue;
            }
            attempted.push_back({i, wait_used});
            ++it;
        }
        for (int i : dropped_scratch)
            ready.insert(makeEntry(i));
    }

    /**
     * When the pass above placed nothing (and dropped nothing, so
     * the ready queue kept its order), every iteration until the
     * next interesting event is a pure repetition: same failed
     * attempts, wait counters +1 each.  Jump there, accounting the
     * elided iterations in bulk.
     */
    void
    fastForwardPhase()
    {
        if (pass_placed > 0 || pass_dropped > 0)
            return;
        uint64_t skip = engine::fastForwardAfterStall(
            ff, expiry, mesh, cycle, opts.max_cycles + 1, attempted,
            [this](int i) -> int & {
                return ops[static_cast<size_t>(i)].wait;
            },
            claim_opts, opts.drop_timeout, placement_failures,
            [this](engine::FastForward &planner) {
                // A replenishment that raises a stock can change a
                // T gate's candidate factories.
                factories.registerEvents(planner);
            });
        if (trace && skip > 0)
            trace->record({cycle, obs::EventKind::FastForwardSkip, -1,
                           static_cast<int64_t>(skip)});
        cycle += skip;
        magic_starvations += pass_starved * skip;
    }

    /** Retire expired chains; returns number of ops completed. */
    uint64_t
    completionPhase()
    {
        uint64_t completed = 0;
        while (auto ripe = expiry.popRipe(cycle)) {
            int i = *ripe;
            OpRec &op = ops[static_cast<size_t>(i)];
            if (!op.route.empty()) {
                claimer.release(op.route, i);
                op.route = network::Path{};
            }
            op.done = true;
            if (trace)
                trace->record({cycle, obs::EventKind::OpRetire, i});
            ++completed;
            for (int s : dag.succs(i))
                if (--ops[static_cast<size_t>(s)].pending_preds == 0)
                    makeReady(s);
        }
        return completed;
    }

    const circuit::Circuit &circ;
    const SurgeryOptions &opts;
    const circuit::Dag &dag;
    const circuit::InteractionGraph &graph;
    const PatchArch &arch;
    network::Mesh mesh;
    engine::RouteClaimOptions claim_opts;
    engine::ChainClaimer claimer;
    CorridorRouter corridors;

    std::vector<OpRec> ops;
    const std::vector<int> &crit;
    std::vector<std::vector<int>> factory_order; ///< Per qubit.
    engine::ReadyQueue ready;
    engine::ExpiryQueue expiry;
    engine::LiveIntervalProfile live_chains;
    engine::FastForward ff;
    uint64_t cycle = 0;

    /** Per-pass bookkeeping feeding fastForwardPhase(). */
    uint64_t pass_placed = 0;
    uint64_t pass_dropped = 0;
    uint64_t pass_starved = 0;
    std::vector<std::pair<int, int>> attempted; ///< (id, wait used).
    std::vector<int> dropped_scratch;
    std::vector<std::pair<Coord, int>> dsts_scratch;

    engine::MagicFactoryPool factories;
    obs::TraceRecorder *trace;

    uint64_t chains_placed = 0;
    uint64_t placement_failures = 0;
    uint64_t drops = 0;
    uint64_t magic_starvations = 0;
    uint64_t total_chain_tiles = 0;
    uint64_t max_chain_tiles = 0;
};

} // namespace

uint64_t
chainCycles(double rounds_per_hop, int code_distance, int tiles)
{
    return static_cast<uint64_t>(std::llround(
        rounds_per_hop * static_cast<double>(code_distance)
        * static_cast<double>(std::max(1, tiles))));
}

uint64_t
surgeryCriticalPath(const circuit::Circuit &circ,
                    const PatchArch &arch,
                    const SurgeryOptions &opts)
{
    circuit::Dag dag(circ);
    return surgeryCriticalPath(circ, dag, arch, opts);
}

uint64_t
surgeryCriticalPath(const circuit::Circuit &circ,
                    const circuit::Dag &dag,
                    const PatchArch &arch,
                    const SurgeryOptions &opts)
{
    fatalIf(opts.code_distance < 1,
            "code distance must be >= 1, got ", opts.code_distance);
    std::vector<uint64_t, ArenaAllocator<uint64_t>> finish(
        static_cast<size_t>(circ.size()), 0);
    uint64_t best = 0;
    for (int i = 0; i < circ.size(); ++i) {
        uint64_t start = 0;
        for (int p : dag.preds(i))
            start = std::max(start, finish[static_cast<size_t>(p)]);

        const circuit::Gate &g = circ.gate(i);
        uint64_t lat;
        switch (classify(g)) {
          case OpClass::Local:
            lat = static_cast<uint64_t>(opts.code_distance);
            break;
          case OpClass::TGate: {
            int f = arch.factoriesByDistance(g.qubit[0]).front();
            lat = chainCycles(opts,
                              manhattan(arch.patchOf(g.qubit[0]),
                                        arch.factoryPatch(f)))
                + 1;
            break;
          }
          case OpClass::TwoQ:
            lat = chainCycles(opts,
                              manhattan(arch.patchOf(g.qubit[0]),
                                        arch.patchOf(g.qubit[1])))
                + 1;
            break;
        }
        finish[static_cast<size_t>(i)] = start + lat;
        best = std::max(best, finish[static_cast<size_t>(i)]);
    }
    return best;
}

PatchArchOptions
patchArchOptions(const SurgeryOptions &opts)
{
    PatchArchOptions a;
    a.patches_per_factory = opts.patches_per_factory;
    a.optimized_layout = opts.optimized_layout;
    a.layout_objective = opts.layout_objective;
    a.lane_spacing = opts.lane_spacing;
    a.seed = opts.seed;
    a.defects = opts.defects;
    return a;
}

SurgeryResult
scheduleSurgery(const circuit::Circuit &circ,
                const SurgeryOptions &opts)
{
    fatalIf(circ.empty(), "cannot schedule an empty circuit");
    PatchPrepared prepared(circ, patchArchOptions(opts));
    return scheduleSurgery(circ, opts, prepared);
}

SurgeryResult
scheduleSurgery(const circuit::Circuit &circ,
                const SurgeryOptions &opts,
                const PatchPrepared &prepared)
{
    fatalIf(circ.empty(), "cannot schedule an empty circuit");
    fatalIf(opts.code_distance < 1, "code distance must be >= 1");
    fatalIf(opts.rounds_per_hop <= 0,
            "rounds_per_hop must be > 0, got ", opts.rounds_per_hop);
    return Simulator(circ, opts, prepared).run();
}

} // namespace qsurf::surgery
