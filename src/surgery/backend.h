/**
 * @file
 * The lattice-surgery engine backends: the cycle-accurate chain
 * simulator ("planar/surgery-sim") and the analytic Section 8.2
 * model ("planar/surgery-model"), both plugging into the engine
 * registry so the toolflow, the sweep driver and the figure benches
 * drive surgery exactly like the braid and Multi-SIMD backends.
 */

#ifndef QSURF_SURGERY_BACKEND_H
#define QSURF_SURGERY_BACKEND_H

#include <memory>
#include <string>

#include "engine/registry.h"
#include "surgery/patch_arch.h"

namespace qsurf::surgery {

/**
 * Register the surgery backends into @p registry (called by
 * engine::registerBuiltinBackends; exposed for private-registry
 * tests).
 */
void registerSurgeryBackends(engine::Registry &registry);

/**
 * The cacheable patch-machine artifact.  The surgery-sim and hybrid
 * backends derive identical PatchArchOptions from a WorkItem, so
 * they share this one type (and one cache entry per key): a sweep
 * running both backends over the same grid point builds the machine
 * once.
 */
class PatchArtifact final : public engine::PreparedArtifact
{
  public:
    PatchArtifact(const circuit::Circuit &circ,
                  const PatchArchOptions &opts)
        : prep(circ, opts)
    {
    }

    PatchPrepared prep;
};

/**
 * @return the shared artifact key of @p item's patch machine —
 * circuit fingerprint, seed, resolved distance, layout flavor
 * (optimized = policy >= 2), objective, lane spacing and factory
 * ratio.  The surgery and hybrid backends both return exactly this
 * from artifactKey().
 */
std::string patchArtifactKey(const engine::WorkItem &item);

/** Build the PatchArtifact patchArtifactKey(@p item) names. */
std::shared_ptr<const engine::PreparedArtifact>
buildPatchArtifact(const engine::WorkItem &item);

/**
 * @return total physical qubits of a surgery machine holding
 * @p logical_qubits patches at distance @p d: planar tiles plus
 * boundary-ancilla strips (@p tile_factor), with the double-defect
 * architectural overhead (factories but no EPR machinery).
 */
double surgeryPhysicalQubits(double logical_qubits, int d,
                             double tile_factor = 1.2);

} // namespace qsurf::surgery

#endif // QSURF_SURGERY_BACKEND_H
