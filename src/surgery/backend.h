/**
 * @file
 * The lattice-surgery engine backends: the cycle-accurate chain
 * simulator ("planar/surgery-sim") and the analytic Section 8.2
 * model ("planar/surgery-model"), both plugging into the engine
 * registry so the toolflow, the sweep driver and the figure benches
 * drive surgery exactly like the braid and Multi-SIMD backends.
 */

#ifndef QSURF_SURGERY_BACKEND_H
#define QSURF_SURGERY_BACKEND_H

#include "engine/registry.h"

namespace qsurf::surgery {

/**
 * Register the surgery backends into @p registry (called by
 * engine::registerBuiltinBackends; exposed for private-registry
 * tests).
 */
void registerSurgeryBackends(engine::Registry &registry);

/**
 * @return total physical qubits of a surgery machine holding
 * @p logical_qubits patches at distance @p d: planar tiles plus
 * boundary-ancilla strips (@p tile_factor), with the double-defect
 * architectural overhead (factories but no EPR machinery).
 */
double surgeryPhysicalQubits(double logical_qubits, int d,
                             double tile_factor = 1.2);

} // namespace qsurf::surgery

#endif // QSURF_SURGERY_BACKEND_H
