/**
 * @file
 * Patch layout for the lattice-surgery machine (Section 8.2).
 *
 * One planar patch per logical qubit on a 2-D tile grid, with
 * ancilla corridors between patches.  The routing mesh mirrors the
 * braid machine's convention — a router at every patch center and
 * every corridor point between patches, i.e. a (2W+1) x (2H+1) grid
 * for a W x H patch grid — but the semantics differ: a merge/split
 * chain may pass through corridor routers only, never through
 * another live data patch (patch centers are reserved terminals on
 * the mesh; see engine::ChainClaimer).  Corridor-aware
 * dimension-ordered routes route around patches, so chains between
 * non-adjacent patches are strictly longer than the equivalent
 * braid — one half of the paper's "neither the benefits of braids
 * nor teleportation" argument.
 *
 * The layout objective is selectable (partition::LayoutObjective):
 * the historical braid-Manhattan bisection, the corridor objective
 * (bisection seed + greedy swap refinement against the around-patch
 * corridor length), or corridor+lanes, which additionally sizes
 * dedicated ancilla *through-lanes* into the mesh: every
 * lane_spacing-th patch-row/column boundary carries an extra
 * corridor row/column, and long-haul chains ride the lanes instead
 * of fighting over the corridor rings next to patches.
 *
 * Magic-state factory patches sit in a right-hand column, like the
 * braid machine's Figure 3b arrangement: T gates merge with a
 * factory patch through the same corridor fabric.
 */

#ifndef QSURF_SURGERY_PATCH_ARCH_H
#define QSURF_SURGERY_PATCH_ARCH_H

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "circuit/dag.h"
#include "circuit/interaction.h"
#include "common/geometry.h"
#include "fabric/defect.h"
#include "network/mesh.h"
#include "partition/layout.h"

namespace qsurf::surgery {

/** Configuration of the lattice-surgery machine. */
struct PatchArchOptions
{
    /** Data patches per magic-state factory patch. */
    int patches_per_factory = 8;

    /** Use the interaction-aware layout (Section 6.2's objective). */
    bool optimized_layout = true;

    /** Placement objective; Corridor* refine the bisection seed
     *  against the around-patch corridor metric, CorridorLanes also
     *  reserves dedicated ancilla lanes in the mesh. */
    partition::LayoutObjective layout_objective =
        partition::LayoutObjective::BraidManhattan;

    /** Patch rows/columns between dedicated ancilla lanes (used by
     *  LayoutObjective::CorridorLanes only). */
    int lane_spacing = 4;

    /** Layout RNG seed. */
    uint64_t seed = 1;

    /** Fabric damage: dead patches are never placed on, broken
     *  corridor couplers never claimed; the grid grows until the
     *  live cells fit. */
    fabric::DefectParams defects;
};

/**
 * The patch grid: placement of logical data patches and factory
 * patches, the mapping onto routing-mesh coordinates, and the
 * corridor-aware preferred routes chains claim.
 */
class PatchArch
{
  public:
    /**
     * Build the machine for @p graph (one vertex per logical
     * qubit), sizing a near-square grid of data patches plus a
     * factory column.
     */
    PatchArch(const circuit::InteractionGraph &graph,
              const PatchArchOptions &opts);

    /** @return number of logical data qubits. */
    int numQubits() const { return nq; }

    /** @return patch-grid width (including the factory column). */
    int patchWidth() const { return pw; }

    /** @return patch-grid height. */
    int patchHeight() const { return ph; }

    /** @return routing-mesh width: a router at every patch center,
     *  every corridor point between patches, and every reserved
     *  ancilla lane column. */
    int meshWidth() const { return mw; }

    /** @return routing-mesh height. */
    int meshHeight() const { return mh; }

    /** @return number of dedicated ancilla lane rows. */
    int
    numLaneRows() const
    {
        return static_cast<int>(lane_rows_y.size());
    }

    /** @return number of dedicated ancilla lane columns. */
    int
    numLaneCols() const
    {
        return static_cast<int>(lane_cols_x.size());
    }

    /** @return true when mesh row @p y is a dedicated ancilla lane. */
    bool isLaneRow(int y) const;

    /** @return true when mesh column @p x is a dedicated lane. */
    bool isLaneCol(int x) const;

    /**
     * @return mesh area relative to the lane-free machine of the
     * same patch grid — the extra ancilla space the dedicated lanes
     * cost, for physical-qubit accounting.
     */
    double laneAreaFactor() const;

    /** @return number of magic-state factory patches. */
    int
    numFactories() const
    {
        return static_cast<int>(factories.size());
    }

    /** @return router coordinate of qubit @p q's patch center. */
    Coord terminal(int32_t q) const;

    /** @return router coordinate of factory @p f's patch center. */
    Coord factoryTerminal(int f) const;

    /** @return patch-grid position of factory @p f. */
    Coord factoryPatch(int f) const;

    /**
     * @return factory indices sorted by Manhattan patch distance
     * from the patch of @p q (nearest first).
     */
    std::vector<int> factoriesByDistance(int32_t q) const;

    /** @return a routing mesh sized for this machine (fresh state). */
    network::Mesh makeMesh() const;

    /**
     * @return every patch-center router (data and factory), for
     * reservation on the mesh: chains may not route through them.
     */
    std::vector<Coord> reservedTerminals() const;

    /** @return patch-grid position of qubit @p q. */
    Coord patchOf(int32_t q) const;

    /**
     * Corridor-aware preferred route between patch centers @p src
     * and @p dst: leaves the source patch, runs along corridor (and
     * lane) routers only — never through another patch center — and
     * enters the destination patch.  @p yx_first selects the
     * transposed geometry (vertical corridor first); for collinear
     * pairs the two geometries take *opposite* sides of the patch
     * row/column, so contended same-row/column merges keep route
     * diversity.  Adjacent patches connect straight through their
     * shared boundary.  With dedicated lanes, long hauls whose span
     * crosses a lane ride it instead of a patch-adjacent ring.
     */
    network::Path corridorRoute(const Coord &src, const Coord &dst,
                                bool yx_first) const;

    /**
     * @return chain length in patch tiles for a corridor of
     * @p router_hops mesh hops (two router hops per patch tile,
     * rounded up); the unit the d-cycle merge/split rounds are
     * charged per.
     */
    static int chainTiles(int router_hops);

    /**
     * @return sum of interaction-weighted Manhattan patch distances
     * (the Section 6.2 layout objective, reused for surgery).
     */
    double layoutCost(const circuit::InteractionGraph &graph) const;

    /**
     * @return sum of interaction-weighted corridor lengths in patch
     * tiles (the surgery-aware layout objective; see
     * partition::weightedCorridorLength).
     */
    double corridorCost(const circuit::InteractionGraph &graph) const;

    /** @return the materialized defect map (empty when healthy). */
    const fabric::DefectMap &defects() const { return defect_map; }

    /** @return true when no node or link of @p path is defective —
     *  always true on the healthy fabric. */
    bool routeDefectFree(const network::Path &path) const;

    /** @return the dead-patch fraction of the bounding box spanned
     *  by the patches of qubits @p qa and @p qb — the static
     *  per-route defect exposure the hybrid arbiter prices mesh
     *  schemes with (0 on the healthy fabric). */
    double defectExposure(int32_t qa, int32_t qb) const;

  private:
    /** @return the mesh router at the center of patch cell @p patch. */
    Coord center(const Coord &patch) const;

    /** Compute the lane-aware patch-cell -> mesh coordinate maps. */
    void buildCoordinateMaps(int lane_spacing);

    /** Append the lane-riding long-haul route, or return false when
     *  no lane lies across the span of this geometry. */
    bool laneRoute(network::Path::Nodes &nodes, const Coord &src,
                   const Coord &dst, bool yx_first) const;

    /** Mesh links lost to broken patch-to-patch couplers: every link
     *  of the straight segment between the two patch centers. */
    std::vector<std::pair<Coord, Coord>> defectiveMeshLinks() const;

    int nq;
    int pw;
    int ph;
    int mw = 0;
    int mh = 0;
    std::vector<Coord> qubit_patch;
    std::vector<Coord> factories;

    /** Mesh x of each patch column center / y of each row center. */
    std::vector<int> col_x;
    std::vector<int> row_y;

    /** Mesh coordinates of the dedicated lane columns/rows. */
    std::vector<int> lane_cols_x;
    std::vector<int> lane_rows_y;

    /** Patch rows/columns between lanes; 0 when lanes are off. */
    int lane_spacing = 0;

    /** Materialized fabric damage (empty when healthy). */
    fabric::DefectMap defect_map;

    /** Defective mesh routers, row-major over mw x mh (empty on the
     *  healthy fabric). */
    std::vector<uint8_t> bad_node_;

    /** Defective mesh links, keyed lo_index << 32 | hi_index. */
    std::unordered_set<uint64_t> bad_link_;
};

/**
 * The expensive prepare artifact of the patch machine: everything a
 * scheduler derives from the circuit and the seeded layout alone —
 * the dependence DAG, the interaction graph, the PatchArch geometry
 * (bisection, corridor refinement, lanes) and the per-gate
 * criticality.  Immutable once built and shared across concurrent
 * runs.  The surgery and hybrid simulators build their machines from
 * identical PatchArchOptions, so one PatchPrepared serves both;
 * handing a scheduler one is bit-identical to building it inline.
 */
struct PatchPrepared
{
    circuit::Dag dag;
    circuit::InteractionGraph graph;
    PatchArch arch;
    std::vector<int> crit;

    PatchPrepared(const circuit::Circuit &circ,
                  const PatchArchOptions &arch_opts);
};

/**
 * Memoized corridor geometries.  A corridor's primary and transposed
 * routes are pure functions of its endpoints, but a contended op
 * would rebuild them every failed cycle — the schedulers (surgery
 * and hybrid alike) route through this cache so repeated attempts
 * are allocation-free.
 */
class CorridorRouter
{
  public:
    /** Primary + transposed corridor of one endpoint pair. */
    struct Routes
    {
        network::Path primary;
        network::Path fallback;
    };

    explicit CorridorRouter(const PatchArch &arch)
        : arch_(arch), mesh_width_(arch.meshWidth())
    {
    }

    /** @return the memoized routes between @p src and @p dst. */
    const Routes &
    routes(const Coord &src, const Coord &dst)
    {
        uint64_t key =
            (static_cast<uint64_t>(static_cast<uint32_t>(
                 linearIndex(src, mesh_width_)))
             << 32)
            | static_cast<uint32_t>(linearIndex(dst, mesh_width_));
        auto it = cache_.find(key);
        if (it == cache_.end())
            it = cache_
                     .emplace(key,
                              Routes{arch_.corridorRoute(src, dst,
                                                         false),
                                     arch_.corridorRoute(src, dst,
                                                         true)})
                     .first;
        return it->second;
    }

  private:
    const PatchArch &arch_;
    int mesh_width_;
    std::unordered_map<uint64_t, Routes> cache_;
};

} // namespace qsurf::surgery

#endif // QSURF_SURGERY_PATCH_ARCH_H
