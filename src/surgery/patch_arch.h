/**
 * @file
 * Patch layout for the lattice-surgery machine (Section 8.2).
 *
 * One planar patch per logical qubit on a 2-D tile grid, with
 * ancilla corridors between patches.  The routing mesh mirrors the
 * braid machine's convention — a router at every patch center and
 * every corridor point between patches, i.e. a (2W+1) x (2H+1) grid
 * for a W x H patch grid — but the semantics differ: a merge/split
 * chain may pass through corridor routers only, never through
 * another live data patch (patch centers are reserved terminals on
 * the mesh; see engine::ChainClaimer).  Corridor-aware
 * dimension-ordered routes route around patches, so chains between
 * non-adjacent patches are strictly longer than the equivalent
 * braid — one half of the paper's "neither the benefits of braids
 * nor teleportation" argument.
 *
 * Magic-state factory patches sit in a right-hand column, like the
 * braid machine's Figure 3b arrangement: T gates merge with a
 * factory patch through the same corridor fabric.
 */

#ifndef QSURF_SURGERY_PATCH_ARCH_H
#define QSURF_SURGERY_PATCH_ARCH_H

#include <unordered_map>
#include <vector>

#include "circuit/interaction.h"
#include "common/geometry.h"
#include "network/mesh.h"
#include "partition/layout.h"

namespace qsurf::surgery {

/** Configuration of the lattice-surgery machine. */
struct PatchArchOptions
{
    /** Data patches per magic-state factory patch. */
    int patches_per_factory = 8;

    /** Use the interaction-aware layout (Section 6.2's objective). */
    bool optimized_layout = true;

    /** Layout RNG seed. */
    uint64_t seed = 1;
};

/**
 * The patch grid: placement of logical data patches and factory
 * patches, the mapping onto routing-mesh coordinates, and the
 * corridor-aware preferred routes chains claim.
 */
class PatchArch
{
  public:
    /**
     * Build the machine for @p graph (one vertex per logical
     * qubit), sizing a near-square grid of data patches plus a
     * factory column.
     */
    PatchArch(const circuit::InteractionGraph &graph,
              const PatchArchOptions &opts);

    /** @return number of logical data qubits. */
    int numQubits() const { return nq; }

    /** @return patch-grid width (including the factory column). */
    int patchWidth() const { return pw; }

    /** @return patch-grid height. */
    int patchHeight() const { return ph; }

    /** @return routing-mesh width: a router at every patch center
     *  and every corridor point between patches. */
    int meshWidth() const { return 2 * pw + 1; }

    /** @return routing-mesh height. */
    int meshHeight() const { return 2 * ph + 1; }

    /** @return number of magic-state factory patches. */
    int
    numFactories() const
    {
        return static_cast<int>(factories.size());
    }

    /** @return router coordinate of qubit @p q's patch center. */
    Coord terminal(int32_t q) const;

    /** @return router coordinate of factory @p f's patch center. */
    Coord factoryTerminal(int f) const;

    /** @return patch-grid position of factory @p f. */
    Coord factoryPatch(int f) const;

    /**
     * @return factory indices sorted by Manhattan patch distance
     * from the patch of @p q (nearest first).
     */
    std::vector<int> factoriesByDistance(int32_t q) const;

    /** @return a routing mesh sized for this machine (fresh state). */
    network::Mesh makeMesh() const;

    /**
     * @return every patch-center router (data and factory), for
     * reservation on the mesh: chains may not route through them.
     */
    std::vector<Coord> reservedTerminals() const;

    /** @return patch-grid position of qubit @p q. */
    Coord patchOf(int32_t q) const;

    /**
     * Corridor-aware preferred route between patch centers @p src
     * and @p dst: leaves the source patch, runs along corridor
     * routers only (every intermediate node has an even coordinate)
     * and enters the destination patch.  @p yx_first selects the
     * transposed geometry (vertical corridor first).  Adjacent
     * patches connect directly through their shared boundary router.
     */
    network::Path corridorRoute(const Coord &src, const Coord &dst,
                                bool yx_first) const;

    /**
     * @return chain length in patch tiles for a corridor of
     * @p router_hops mesh hops (two router hops per patch tile,
     * rounded up); the unit the d-cycle merge/split rounds are
     * charged per.
     */
    static int chainTiles(int router_hops);

    /**
     * @return sum of interaction-weighted Manhattan patch distances
     * (the Section 6.2 layout objective, reused for surgery).
     */
    double layoutCost(const circuit::InteractionGraph &graph) const;

  private:
    static Coord patchCenter(const Coord &patch);

    int nq;
    int pw;
    int ph;
    std::vector<Coord> qubit_patch;
    std::vector<Coord> factories;
};

/**
 * Memoized corridor geometries.  A corridor's primary and transposed
 * routes are pure functions of its endpoints, but a contended op
 * would rebuild them every failed cycle — the schedulers (surgery
 * and hybrid alike) route through this cache so repeated attempts
 * are allocation-free.
 */
class CorridorRouter
{
  public:
    /** Primary + transposed corridor of one endpoint pair. */
    struct Routes
    {
        network::Path primary;
        network::Path fallback;
    };

    explicit CorridorRouter(const PatchArch &arch)
        : arch_(arch), mesh_width_(arch.meshWidth())
    {
    }

    /** @return the memoized routes between @p src and @p dst. */
    const Routes &
    routes(const Coord &src, const Coord &dst)
    {
        uint64_t key =
            (static_cast<uint64_t>(static_cast<uint32_t>(
                 linearIndex(src, mesh_width_)))
             << 32)
            | static_cast<uint32_t>(linearIndex(dst, mesh_width_));
        auto it = cache_.find(key);
        if (it == cache_.end())
            it = cache_
                     .emplace(key,
                              Routes{arch_.corridorRoute(src, dst,
                                                         false),
                                     arch_.corridorRoute(src, dst,
                                                         true)})
                     .first;
        return it->second;
    }

  private:
    const PatchArch &arch_;
    int mesh_width_;
    std::unordered_map<uint64_t, Routes> cache_;
};

} // namespace qsurf::surgery

#endif // QSURF_SURGERY_PATCH_ARCH_H
