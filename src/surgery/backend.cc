#include "surgery/backend.h"

#include <cmath>
#include <memory>
#include <sstream>

#include "common/logging.h"
#include "estimate/lattice_surgery.h"
#include "qec/code.h"
#include "surgery/chain_scheduler.h"

namespace qsurf::surgery {

namespace {

/** Lattice-surgery chain simulation on the patch machine. */
class SurgerySimBackend : public engine::Backend
{
  public:
    std::string
    name() const override
    {
        return engine::backends::surgery_sim;
    }

    qec::CodeKind code() const override { return qec::CodeKind::Planar; }

    void
    prepare(const engine::WorkItem &item) const override
    {
        Backend::prepare(item);
        partition::LayoutObjective objective =
            partition::layoutObjective(item.config.layout_objective);
        fatalIf(objective == partition::LayoutObjective::CorridorLanes
                    && item.config.lane_spacing < 1,
                "lane_spacing must be >= 1 with the corridor+lanes "
                "objective, got ", item.config.lane_spacing);
    }

    engine::Metrics
    run(const engine::WorkItem &item) const override
    {
        return run(item, nullptr);
    }

    std::string
    artifactKey(const engine::WorkItem &item) const override
    {
        return patchArtifactKey(item);
    }

    std::shared_ptr<const engine::PreparedArtifact>
    buildArtifact(const engine::WorkItem &item) const override
    {
        return buildPatchArtifact(item);
    }

    engine::Metrics
    run(const engine::WorkItem &item,
        const engine::PreparedArtifact *artifact) const override
    {
        int d = item.resolveDistance();
        SurgeryOptions opts;
        opts.code_distance = d;
        // Same convention as the braid backend: Policies 2+ use the
        // interaction-aware layout, below that the naive one.
        opts.optimized_layout = item.config.policy >= 2;
        opts.layout_objective =
            partition::layoutObjective(item.config.layout_objective);
        opts.lane_spacing = item.config.lane_spacing;
        opts.seed = item.config.seed;
        opts.fast_forward = item.config.fast_forward;
        opts.legacy_paths = item.config.legacy_baseline;
        opts.adapt_timeout = item.config.adapt_timeout;
        opts.bfs_timeout = item.config.bfs_timeout;
        opts.drop_timeout = item.config.drop_timeout;
        opts.max_cycles = item.config.max_cycles;
        opts.magic_production_cycles =
            item.config.magic_production_cycles;
        opts.magic_buffer_capacity =
            item.config.magic_buffer_capacity;
        opts.defects = item.config.defectParams();
        opts.trace = item.config.trace;
        SurgeryResult r;
        if (artifact) {
            auto *a = dynamic_cast<const PatchArtifact *>(artifact);
            panicIf(!a, "backend '", name(),
                    "' was handed an artifact of the wrong type");
            r = scheduleSurgery(*item.circuit, opts, a->prep);
        } else {
            r = scheduleSurgery(*item.circuit, opts);
        }

        engine::Metrics m;
        m.backend = name();
        m.code = code();
        m.code_distance = d;
        m.schedule_cycles = r.schedule_cycles;
        m.critical_path_cycles = r.critical_path_cycles;
        // Dedicated ancilla lanes widen the mesh; charge the extra
        // area against the machine's qubit budget.
        m.physical_qubits = surgeryPhysicalQubits(
            static_cast<double>(item.circuit->numQubits()), d,
            1.2 * r.lane_area_factor);
        m.seconds = static_cast<double>(r.schedule_cycles)
            * item.config.tech.surfaceCycleNs() * 1e-9;
        m.set("mesh_utilization", r.mesh_utilization);
        m.set("chains_placed",
              static_cast<double>(r.chains_placed));
        m.set("placement_failures",
              static_cast<double>(r.placement_failures));
        m.set("transpose_fallbacks",
              static_cast<double>(r.transpose_fallbacks));
        m.set("bfs_detours", static_cast<double>(r.bfs_detours));
        m.set("drops", static_cast<double>(r.drops));
        m.set("magic_starvations",
              static_cast<double>(r.magic_starvations));
        m.set("total_chain_tiles",
              static_cast<double>(r.total_chain_tiles));
        m.set("max_chain_tiles",
              static_cast<double>(r.max_chain_tiles));
        m.set("peak_live_chains",
              static_cast<double>(r.peak_live_chains));
        m.set("avg_live_chains", r.avg_live_chains);
        m.set("layout_cost", r.layout_cost);
        m.set("corridor_cost", r.corridor_cost);
        m.set("lane_area_factor", r.lane_area_factor);
        m.set("ff_skipped_cycles",
              static_cast<double>(r.ff_skipped_cycles));
        m.set("ff_skip_ratio",
              r.schedule_cycles
                  ? static_cast<double>(r.ff_skipped_cycles)
                      / static_cast<double>(r.schedule_cycles)
                  : 0.0);
        // Only on damaged fabrics, so defect-free rows stay
        // byte-identical to pre-defect-awareness output.
        if (item.config.defectParams().enabled()) {
            m.set("defect_dead_fraction", r.defect_dead_fraction);
            m.set("defect_avg_multiplier", r.defect_avg_multiplier);
            m.set("defective_nodes",
                  static_cast<double>(r.defective_nodes));
            m.set("defective_links",
                  static_cast<double>(r.defective_links));
            m.set("logical_error_proxy",
                  engine::logicalErrorProxy(
                      static_cast<double>(
                          item.circuit->numQubits()),
                      r.schedule_cycles, d,
                      item.config.tech.p_physical,
                      r.defect_avg_multiplier));
        }
        return m;
    }
};

/** Analytic lattice-surgery model (Section 8.2). */
class SurgeryModelBackend : public engine::Backend
{
  public:
    std::string
    name() const override
    {
        return engine::backends::surgery_model;
    }

    qec::CodeKind code() const override { return qec::CodeKind::Planar; }

    bool needsCircuit() const override { return false; }

    void
    prepare(const engine::WorkItem &item) const override
    {
        Backend::prepare(item);
        fatalIf(item.config.kq <= 0 && !item.circuit,
                "backend '", name(), "' needs a computation size "
                "(config.kq) or a circuit to derive one from");
    }

    engine::Metrics
    run(const engine::WorkItem &item) const override
    {
        estimate::ResourceModel model(item.app, item.config.tech);
        double kq = item.logicalOps();
        estimate::ResourceEstimate e =
            estimate::estimateSurgery(model, kq);

        engine::Metrics m;
        m.backend = name();
        m.code = code();
        m.code_distance = e.code_distance;
        m.schedule_cycles =
            static_cast<uint64_t>(std::llround(e.total_cycles));
        m.critical_path_cycles = static_cast<uint64_t>(std::llround(
            e.total_cycles / e.congestion_inflation));
        m.physical_qubits = e.physical_qubits;
        m.seconds = e.seconds;
        m.set("kq", kq);
        m.set("logical_qubits", e.logical_qubits);
        m.set("total_tiles", e.total_tiles);
        m.set("logical_depth", e.logical_depth);
        m.set("step_cycles", e.step_cycles);
        m.set("congestion_inflation", e.congestion_inflation);
        m.set("total_cycles", e.total_cycles);
        return m;
    }
};

} // namespace

std::string
patchArtifactKey(const engine::WorkItem &item)
{
    const engine::RunConfig &c = item.config;
    std::ostringstream os;
    os << "patch/fp=" << std::hex << item.resolveFingerprint()
       << "/seed=" << c.seed << std::dec
       << "/d=" << item.resolveDistance()
       << "/opt=" << (c.policy >= 2 ? 1 : 0)
       << "/obj=" << c.layout_objective
       << "/lane=" << c.lane_spacing
       << "/ppf=" << PatchArchOptions{}.patches_per_factory
       << engine::defectKeySuffix(c.defectParams());
    return os.str();
}

std::shared_ptr<const engine::PreparedArtifact>
buildPatchArtifact(const engine::WorkItem &item)
{
    // The SurgeryOptions defaults carry patches_per_factory; the
    // hybrid scheduler's patchArchOptions() maps its own options to
    // the very same PatchArchOptions, so this artifact serves both.
    SurgeryOptions opts;
    opts.optimized_layout = item.config.policy >= 2;
    opts.layout_objective =
        partition::layoutObjective(item.config.layout_objective);
    opts.lane_spacing = item.config.lane_spacing;
    opts.seed = item.config.seed;
    opts.defects = item.config.defectParams();
    return std::make_shared<const PatchArtifact>(
        *item.circuit, patchArchOptions(opts));
}

double
surgeryPhysicalQubits(double logical_qubits, int d,
                      double tile_factor)
{
    // Planar patches plus boundary-ancilla strips, with the
    // double-defect architectural overhead (factory patches, no EPR
    // buffers/channels) — the same accounting as
    // estimate::estimateSurgery.
    return logical_qubits
        * qec::spaceOverheadFactor(qec::CodeKind::DoubleDefect)
        * tile_factor
        * static_cast<double>(qec::planarTileQubits(d));
}

void
registerSurgeryBackends(engine::Registry &registry)
{
    registry.add(std::make_unique<SurgerySimBackend>());
    registry.add(std::make_unique<SurgeryModelBackend>());
}

} // namespace qsurf::surgery
