/**
 * @file
 * Lattice-surgery chain scheduling (Section 8.2, simulated).
 *
 * Each 2-qubit logical operation becomes one merge/split chain: the
 * corridor of patches between the two operands is claimed
 * exclusively, the boundary syndromes stabilize for d cycles per
 * merge/split round, and the chain releases when the split
 * completes.  A chain across L patch tiles therefore holds its
 * whole corridor for ~rounds_per_hop * d * L cycles — unlike a
 * braid, whose route is claimed for d cycles regardless of length,
 * and unlike a teleport, whose EPR halves travel ahead of need.
 * T gates merge with a magic-state factory patch through the same
 * fabric.
 *
 * The simulator reuses the engine's deterministic primitives — a
 * criticality-ordered ReadyQueue, the ExpiryQueue, the
 * ChainClaimer's corridor-route escalation and LiveIntervalProfile
 * accounting — so runs are bit-identical for a fixed (circuit,
 * options) at any sweep thread count.
 */

#ifndef QSURF_SURGERY_CHAIN_SCHEDULER_H
#define QSURF_SURGERY_CHAIN_SCHEDULER_H

#include <cstdint>

#include "circuit/circuit.h"
#include "obs/trace.h"
#include "surgery/patch_arch.h"

namespace qsurf::surgery {

/** Simulation knobs. */
struct SurgeryOptions
{
    /** Code distance d: cycles per merge/split stabilization round. */
    int code_distance = 5;

    /** Merge + split rounds per chain tile (2 = one merge + one
     *  split), matching estimate::SurgeryConstants. */
    double rounds_per_hop = 2.0;

    /** Data patches per magic-state factory patch. */
    int patches_per_factory = 8;

    /** Use the interaction-aware layout. */
    bool optimized_layout = true;

    /** Patch-layout objective (refines the bisection seed against
     *  the corridor metric; CorridorLanes also reserves dedicated
     *  ancilla lanes in the mesh). */
    partition::LayoutObjective layout_objective =
        partition::LayoutObjective::BraidManhattan;

    /** Patch rows/columns between dedicated ancilla lanes. */
    int lane_spacing = 4;

    /** Cycles an op waits before trying the transposed corridor. */
    int adapt_timeout = 4;

    /** Cycles before falling back to the adaptive BFS corridor. */
    int bfs_timeout = 8;

    /** Cycles before the op is dropped and re-injected. */
    int drop_timeout = 16;

    /** Cap on failed placement attempts per cycle. */
    int max_attempts_per_cycle = 64;

    /**
     * Cycles a factory patch needs to distill one magic state; 0
     * means production is never the bottleneck (Section 4.3's
     * factories sized off the critical path).  Non-zero values make
     * T-gate merges wait on supply, exposing the same factory
     * space-vs-time tradeoff as the braid backend.
     */
    int magic_production_cycles = 0;

    /** Distilled states a factory patch can buffer. */
    int magic_buffer_capacity = 2;

    /** Safety bound on simulated cycles. */
    uint64_t max_cycles = 100'000'000;

    /**
     * Event-driven time skipping: when a placement pass claims
     * nothing, jump straight to the next chain retirement or
     * escalation threshold instead of ticking one cycle at a time.
     * Results are bit-identical either way; disabling reproduces
     * the original loop for A/B perf measurement.
     */
    bool fast_forward = true;

    /**
     * Use the pre-optimization claim paths (double-walk claims,
     * per-detour BFS allocation); identical results, original cost.
     * Together with fast_forward = false this reproduces the
     * pre-change simulator for honest baseline measurement.
     */
    bool legacy_paths = false;

    /** Layout RNG seed. */
    uint64_t seed = 1;

    /** Fabric damage recipe (see fabric/defect.h).  The default is
     *  the perfect mesh every run assumed before defect awareness. */
    fabric::DefectParams defects;

    /** Structured-event trace hook; null disables tracing (see
     *  obs/trace.h).  Never changes results. */
    obs::TraceRecorder *trace = nullptr;
};

/** Results of one chain-scheduling run. */
struct SurgeryResult
{
    /** Total cycles to complete the program. */
    uint64_t schedule_cycles = 0;

    /** Dependence-limited lower bound (ideal corridors, no
     *  contention). */
    uint64_t critical_path_cycles = 0;

    /** Average fraction of mesh links busy. */
    double mesh_utilization = 0;

    /** Merge/split chains successfully placed. */
    uint64_t chains_placed = 0;

    /** Failed placement attempts (corridor conflicts). */
    uint64_t placement_failures = 0;

    /** Placements that needed the transposed corridor. */
    uint64_t transpose_fallbacks = 0;

    /** Placements that needed the BFS corridor detour. */
    uint64_t bfs_detours = 0;

    /** Drop/re-inject events. */
    uint64_t drops = 0;

    /** T placements refused because no factory had a state ready. */
    uint64_t magic_starvations = 0;

    /** Sum of chain lengths, in patch tiles. */
    uint64_t total_chain_tiles = 0;

    /** Longest chain placed, in patch tiles. */
    uint64_t max_chain_tiles = 0;

    /** Peak simultaneously-live chains. */
    uint64_t peak_live_chains = 0;

    /** Time-averaged live chains. */
    double avg_live_chains = 0;

    /** Interaction-weighted layout cost (Manhattan tiles). */
    double layout_cost = 0;

    /** Interaction-weighted corridor cost (around-patch tiles). */
    double corridor_cost = 0;

    /** Mesh area relative to the lane-free machine (>= 1; the
     *  ancilla space the dedicated lanes cost). */
    double lane_area_factor = 1;

    /** Cycles elided by the event-driven fast-forward. */
    uint64_t ff_skipped_cycles = 0;

    /** Fraction of fabric tiles dead (0 on a perfect fabric). */
    double defect_dead_fraction = 0;

    /** Mean per-tile error-rate multiplier over live tiles (1 on a
     *  perfect fabric). */
    double defect_avg_multiplier = 1;

    /** Permanently defective mesh routers. */
    uint64_t defective_nodes = 0;

    /** Permanently defective mesh links. */
    uint64_t defective_links = 0;

    /** @return schedule length / critical path. */
    double
    ratio() const
    {
        return critical_path_cycles
            ? static_cast<double>(schedule_cycles)
                / static_cast<double>(critical_path_cycles)
            : 0.0;
    }
};

/**
 * @return the merge/split cost of a chain across @p tiles patch
 * tiles, in cycles: rounds_per_hop boundary-stabilization rounds of
 * d cycles per tile.  The one formula both the pure surgery
 * scheduler and the hybrid backend's surgery arm price and hold
 * corridors with.
 */
uint64_t chainCycles(double rounds_per_hop, int code_distance,
                     int tiles);

/**
 * Dependence-limited critical path of @p circ on @p arch in cycles,
 * with ideal (uncontended, Manhattan-length) corridors: 1-qubit ops
 * d, 2-qubit ops and T gates rounds_per_hop * d per patch tile of
 * their shortest chain.
 */
uint64_t surgeryCriticalPath(const circuit::Circuit &circ,
                             const PatchArch &arch,
                             const SurgeryOptions &opts);

/**
 * Same computation reusing an already-built dependence DAG of
 * @p circ (e.g. PatchPrepared::dag) instead of rebuilding one —
 * the rebuild is two heap vectors per gate, which the simulator's
 * per-run call has no reason to pay twice.
 */
uint64_t surgeryCriticalPath(const circuit::Circuit &circ,
                             const circuit::Dag &dag,
                             const PatchArch &arch,
                             const SurgeryOptions &opts);

/**
 * @return the PatchArchOptions @p opts resolves to — the layout
 * inputs a cached PatchPrepared must have been built with.  The
 * hybrid scheduler derives the *same* options from its own knobs
 * (hybrid::patchArchOptions), which is what lets the two backends
 * share one artifact.
 */
PatchArchOptions patchArchOptions(const SurgeryOptions &opts);

/**
 * Simulate lattice-surgery scheduling of @p circ (which must
 * already be decomposed to Clifford+T).
 */
SurgeryResult scheduleSurgery(const circuit::Circuit &circ,
                              const SurgeryOptions &opts = {});

/**
 * Same simulation, reusing @p prepared (built for this circuit with
 * patchArchOptions(opts)); bit-identical to the inline path.
 */
SurgeryResult scheduleSurgery(const circuit::Circuit &circ,
                              const SurgeryOptions &opts,
                              const PatchPrepared &prepared);

} // namespace qsurf::surgery

#endif // QSURF_SURGERY_CHAIN_SCHEDULER_H
