#include "circuit/peephole.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "common/logging.h"

namespace qsurf::circuit {

namespace {

/** @return the kind that cancels @p kind on identical operands. */
std::optional<GateKind>
inverseOf(GateKind kind)
{
    switch (kind) {
      case GateKind::H:
      case GateKind::X:
      case GateKind::Y:
      case GateKind::Z:
      case GateKind::CNOT:
      case GateKind::CZ:
      case GateKind::Swap:
        return kind; // self-inverse.
      case GateKind::S:
        return GateKind::Sdag;
      case GateKind::Sdag:
        return GateKind::S;
      case GateKind::T:
        return GateKind::Tdag;
      case GateKind::Tdag:
        return GateKind::T;
      default:
        return std::nullopt;
    }
}

/** CZ and Swap are symmetric in their operands; CNOT is not. */
bool
sameOperands(const Gate &a, const Gate &b)
{
    if (a.arity() != b.arity())
        return false;
    if (a.kind == GateKind::CZ || a.kind == GateKind::Swap) {
        auto amin = std::minmax(a.qubit[0], a.qubit[1]);
        auto bmin = std::minmax(b.qubit[0], b.qubit[1]);
        return amin == bmin;
    }
    for (int i = 0; i < a.arity(); ++i)
        if (a.qubit[static_cast<size_t>(i)]
            != b.qubit[static_cast<size_t>(i)])
            return false;
    return true;
}

/** One rewrite pass; returns true when anything changed. */
bool
pass(std::vector<Gate> &gates, PeepholeStats &stats)
{
    constexpr double angle_eps = 1e-12;
    bool changed = false;
    auto n = gates.size();
    std::vector<char> dead(n, 0);
    // last[q]: index of the latest live gate touching wire q.
    std::vector<int> last;

    auto grow = [&last](int32_t q) {
        if (static_cast<size_t>(q) >= last.size())
            last.resize(static_cast<size_t>(q) + 1, -1);
    };

    for (size_t i = 0; i < n; ++i) {
        if (dead[i])
            continue;
        Gate &g = gates[i];

        // Find the unique wire-adjacent predecessor, if any: every
        // operand's last toucher must be the same live gate.
        int prev = -2;
        bool uniform = true;
        for (int32_t q : g.operands()) {
            grow(q);
            int p = last[static_cast<size_t>(q)];
            if (prev == -2)
                prev = p;
            else if (prev != p)
                uniform = false;
        }

        bool rewrote = false;
        if (uniform && prev >= 0 && !dead[static_cast<size_t>(prev)]) {
            Gate &pg = gates[static_cast<size_t>(prev)];
            // The predecessor must touch no wires beyond g's (else
            // removing the pair would reorder across those wires).
            bool same_support = sameOperands(pg, g);
            if (same_support) {
                auto inv = inverseOf(pg.kind);
                if (inv && *inv == g.kind) {
                    dead[static_cast<size_t>(prev)] = 1;
                    dead[i] = 1;
                    ++stats.cancelled_pairs;
                    rewrote = true;
                } else if (pg.kind == GateKind::Rz
                           && g.kind == GateKind::Rz) {
                    g.angle += pg.angle;
                    dead[static_cast<size_t>(prev)] = 1;
                    ++stats.merged_rotations;
                    if (std::abs(g.angle) < angle_eps)
                        dead[i] = 1;
                    rewrote = true;
                }
            }
        }
        changed |= rewrote;

        // Update wire heads: cancelled pairs expose the gate before
        // them, which we conservatively mark unknown (-1) — the next
        // pass will see through it.
        for (int32_t q : g.operands())
            last[static_cast<size_t>(q)] =
                dead[i] ? -1 : static_cast<int>(i);
    }

    if (changed) {
        std::vector<Gate> kept;
        kept.reserve(n);
        for (size_t i = 0; i < n; ++i)
            if (!dead[i])
                kept.push_back(gates[i]);
        gates = std::move(kept);
    }
    return changed;
}

} // namespace

Circuit
peephole(const Circuit &circ, PeepholeStats *stats, int max_passes)
{
    fatalIf(max_passes < 1, "max_passes must be >= 1");
    PeepholeStats local;
    std::vector<Gate> gates = circ.gates();

    for (int p = 0; p < max_passes; ++p) {
        ++local.passes;
        if (!pass(gates, local))
            break;
    }

    Circuit out(circ.name(), circ.numQubits());
    for (const Gate &g : gates)
        out.addGate(g);
    if (stats)
        *stats = local;
    return out;
}

} // namespace qsurf::circuit
