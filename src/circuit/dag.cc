#include "circuit/dag.h"

#include <algorithm>
#include <numeric>

namespace qsurf::circuit {

Dag::Dag(const Circuit &circ)
{
    auto n = static_cast<size_t>(circ.size());
    preds_.resize(n);
    succs_.resize(n);

    // last[q] = index of the most recent gate touching qubit q.
    std::vector<int> last(static_cast<size_t>(circ.numQubits()), -1);

    for (int i = 0; i < circ.size(); ++i) {
        const Gate &g = circ.gate(i);
        auto &p = preds_[static_cast<size_t>(i)];
        for (int32_t q : g.operands()) {
            int prev = last[static_cast<size_t>(q)];
            if (prev >= 0 && std::find(p.begin(), p.end(), prev) == p.end())
                p.push_back(prev);
            last[static_cast<size_t>(q)] = i;
        }
        for (int prev : p)
            succs_[static_cast<size_t>(prev)].push_back(i);
    }

    for (int i = 0; i < circ.size(); ++i) {
        if (preds_[static_cast<size_t>(i)].empty())
            roots_.push_back(i);
        if (succs_[static_cast<size_t>(i)].empty())
            sinks_.push_back(i);
    }
}

std::vector<int>
Dag::inDegrees() const
{
    std::vector<int> deg(preds_.size());
    for (size_t i = 0; i < preds_.size(); ++i)
        deg[i] = static_cast<int>(preds_[i].size());
    return deg;
}

std::vector<int>
Dag::topologicalOrder() const
{
    std::vector<int> order(preds_.size());
    std::iota(order.begin(), order.end(), 0);
    return order;
}

} // namespace qsurf::circuit
