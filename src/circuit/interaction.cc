#include "circuit/interaction.h"

#include <algorithm>

namespace qsurf::circuit {

uint64_t
InteractionGraph::degree(int32_t q) const
{
    uint64_t sum = 0;
    for (const auto &[pair, w] : edges)
        if (pair.first == q || pair.second == q)
            sum += w;
    return sum;
}

uint64_t
InteractionGraph::totalWeight() const
{
    uint64_t sum = 0;
    for (const auto &[pair, w] : edges)
        sum += w;
    return sum;
}

InteractionGraph
interactionGraph(const Circuit &circ)
{
    InteractionGraph g;
    g.num_qubits = circ.numQubits();
    auto bump = [&g](int32_t a, int32_t b) {
        auto key = std::minmax(a, b);
        ++g.edges[{key.first, key.second}];
    };
    for (const Gate &gate : circ) {
        auto ops = gate.operands();
        for (size_t i = 0; i < ops.size(); ++i)
            for (size_t j = i + 1; j < ops.size(); ++j)
                bump(ops[i], ops[j]);
    }
    return g;
}

} // namespace qsurf::circuit
