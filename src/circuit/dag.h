/**
 * @file
 * Dependence DAG over a Circuit.
 *
 * Two gates depend on each other iff they share an operand qubit; the
 * earlier one (in program order) is the predecessor.  Only the most
 * recent toucher of each qubit generates an edge, which yields the
 * standard transitive reduction per qubit wire.
 */

#ifndef QSURF_CIRCUIT_DAG_H
#define QSURF_CIRCUIT_DAG_H

#include <vector>

#include "circuit/circuit.h"

namespace qsurf::circuit {

/** Immutable dependence DAG built from a Circuit. */
class Dag
{
  public:
    /** Build the DAG for @p circ (O(gates * arity)). */
    explicit Dag(const Circuit &circ);

    /** @return number of nodes (== circ.size()). */
    int size() const { return static_cast<int>(preds_.size()); }

    /** @return predecessor gate indices of node @p i. */
    const std::vector<int> &preds(int i) const
    {
        return preds_[static_cast<size_t>(i)];
    }

    /** @return successor gate indices of node @p i. */
    const std::vector<int> &succs(int i) const
    {
        return succs_[static_cast<size_t>(i)];
    }

    /** @return nodes with no predecessors. */
    const std::vector<int> &roots() const { return roots_; }

    /** @return nodes with no successors. */
    const std::vector<int> &sinks() const { return sinks_; }

    /** @return in-degree of each node (copy, for ready-queue seeds). */
    std::vector<int> inDegrees() const;

    /**
     * @return a topological order; program order already is one, so
     * this is the identity permutation (kept for interface clarity).
     */
    std::vector<int> topologicalOrder() const;

  private:
    std::vector<std::vector<int>> preds_;
    std::vector<std::vector<int>> succs_;
    std::vector<int> roots_;
    std::vector<int> sinks_;
};

} // namespace qsurf::circuit

#endif // QSURF_CIRCUIT_DAG_H
