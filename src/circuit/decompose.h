/**
 * @file
 * Decomposition of non-native gates to the fault-tolerant Clifford+T
 * basis, run before backend mapping (the "Module Flattening /
 * Logical Op. Estimate" stage of Figure 4).
 *
 * - Toffoli  -> the standard 15-gate Clifford+T network (7 T gates).
 * - Swap     -> 3 CNOTs.
 * - Rz(θ)    -> a Solovay-Kitaev/gridsynth-style H/T string whose
 *               length is a model parameter (default 40 gates for
 *               1e-10 precision; see DecomposeConfig).
 */

#ifndef QSURF_CIRCUIT_DECOMPOSE_H
#define QSURF_CIRCUIT_DECOMPOSE_H

#include "circuit/circuit.h"

namespace qsurf::circuit {

/** Tunables for gate decomposition. */
struct DecomposeConfig
{
    /**
     * Number of gates in the Clifford+T approximation of one Rz.
     * Gridsynth-style synthesis needs ~3 log2(1/eps) T gates plus
     * interleaved H/S; 40 total corresponds to eps ~ 1e-4, adequate
     * for the workload studies here.
     */
    int rz_sequence_length = 40;

    /** Fraction of an Rz sequence that is T/Tdag (rest is H/S). */
    double rz_t_fraction = 0.5;

    /** Expand Swap into 3 CNOTs (backends treat Swap natively if not). */
    bool expand_swap = true;
};

/**
 * @return a new circuit in which every Toffoli, Rz (and optionally
 * Swap) has been replaced by its Clifford+T expansion.  Gate order of
 * untouched gates is preserved.
 */
Circuit decompose(const Circuit &circ, const DecomposeConfig &cfg = {});

/**
 * @return exact number of gates decompose() will produce, without
 * materializing the result (used by the resource estimator on large
 * inputs).
 */
uint64_t decomposedSize(const Circuit &circ, const DecomposeConfig &cfg = {});

} // namespace qsurf::circuit

#endif // QSURF_CIRCUIT_DECOMPOSE_H
