/**
 * @file
 * Flat logical circuit IR.
 *
 * A Circuit is an ordered list of gates over logical qubit ids
 * 0..numQubits()-1.  Program order is a valid topological order of the
 * dependence DAG (src/circuit/dag.h); the backends never reorder gates
 * whose operands overlap.
 */

#ifndef QSURF_CIRCUIT_CIRCUIT_H
#define QSURF_CIRCUIT_CIRCUIT_H

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "circuit/gates.h"

namespace qsurf::circuit {

/** One logical gate instance inside a Circuit. */
struct Gate
{
    GateKind kind = GateKind::H;
    /** Rotation angle; only meaningful for Rz. */
    double angle = 0.0;
    /** Operand qubit ids; only the first gateArity(kind) are valid. */
    std::array<int32_t, 3> qubit{{-1, -1, -1}};

    /** @return operand count. */
    int arity() const { return gateArity(kind); }

    /** @return span over the valid operands. */
    std::span<const int32_t>
    operands() const
    {
        return {qubit.data(), static_cast<size_t>(arity())};
    }

    /** @return true when @p q is an operand. */
    bool
    touches(int32_t q) const
    {
        for (int32_t v : operands())
            if (v == q)
                return true;
        return false;
    }
};

/** Aggregate gate statistics for a circuit. */
struct OpCounts
{
    uint64_t total = 0;        ///< All gates.
    uint64_t single_qubit = 0; ///< Arity-1 gates (incl. prep/measure).
    uint64_t two_qubit = 0;    ///< Arity-2 gates.
    uint64_t three_qubit = 0;  ///< Toffolis (pre-decomposition only).
    uint64_t t_gates = 0;      ///< Magic-state consumers (T/Tdag).
    uint64_t measurements = 0; ///< MeasZ/MeasX.
};

/**
 * A flat gate list over logical qubits, the unit of exchange between
 * the frontend (src/qasm) and the backends (src/braid, src/planar).
 */
class Circuit
{
  public:
    Circuit() = default;

    /** @param num_qubits number of logical qubits, fixed up front. */
    explicit Circuit(int num_qubits);

    /** @param name circuit label used in reports. */
    Circuit(std::string name, int num_qubits);

    /** @return number of logical qubits. */
    int numQubits() const { return nq; }

    /** @return circuit label (possibly empty). */
    const std::string &name() const { return label; }

    /** Set the circuit label. */
    void setName(std::string n) { label = std::move(n); }

    /** Grow the qubit count (never shrinks). */
    void ensureQubits(int num_qubits);

    /**
     * Append a gate.
     *
     * @param kind  opcode.
     * @param a,b,c operand qubits; pass only as many as the arity.
     * @return index of the new gate.
     */
    int addGate(GateKind kind, int32_t a, int32_t b = -1, int32_t c = -1);

    /** Append an Rz with an explicit angle. */
    int addRz(double angle, int32_t q);

    /** Append a pre-built gate (validated). */
    int addGate(const Gate &g);

    /** Pre-size the gate list for @p n gates (decompose() passes
     *  its exact output size, eliminating growth reallocations). */
    void reserve(size_t n) { ops.reserve(n); }

    /** Append every gate of @p other (qubit ids unchanged). */
    void append(const Circuit &other);

    /** @return gate at index @p i. */
    const Gate &gate(int i) const { return ops.at(static_cast<size_t>(i)); }

    /** @return number of gates. */
    int size() const { return static_cast<int>(ops.size()); }

    /** @return true when the circuit has no gates. */
    bool empty() const { return ops.empty(); }

    /** @return all gates in program order. */
    const std::vector<Gate> &gates() const { return ops; }

    /** @return aggregate op statistics. */
    OpCounts counts() const;

    auto begin() const { return ops.begin(); }
    auto end() const { return ops.end(); }

  private:
    void validate(const Gate &g) const;

    std::string label;
    int nq = 0;
    std::vector<Gate> ops;
};

/**
 * @return a deterministic 64-bit fingerprint of @p circ — the label,
 * qubit count and every gate (kind, angle bits, operands) folded
 * through an FNV-1a/splitmix mix.  Equal circuits always hash equal;
 * the service layer uses the fingerprint to key cached prepare
 * artifacts, so it must be stable across processes and platforms
 * (it hashes values, never pointers or iteration order).
 */
uint64_t fingerprint(const Circuit &circ);

} // namespace qsurf::circuit

#endif // QSURF_CIRCUIT_CIRCUIT_H
