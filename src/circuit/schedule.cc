#include "circuit/schedule.h"

#include <algorithm>

namespace qsurf::circuit {

LevelSchedule
levelize(const Dag &dag)
{
    auto n = static_cast<size_t>(dag.size());
    LevelSchedule out;
    out.asap.assign(n, 0);
    out.alap.assign(n, 0);

    // Program order is topological, so a forward sweep fixes ASAP...
    for (int i = 0; i < dag.size(); ++i)
        for (int p : dag.preds(i))
            out.asap[static_cast<size_t>(i)] = std::max(
                out.asap[static_cast<size_t>(i)],
                out.asap[static_cast<size_t>(p)] + 1);

    for (size_t i = 0; i < n; ++i)
        out.depth = std::max(out.depth, out.asap[i] + 1);

    // ...and a backward sweep fixes ALAP.
    std::fill(out.alap.begin(), out.alap.end(), out.depth - 1);
    for (int i = dag.size() - 1; i >= 0; --i)
        for (int s : dag.succs(i))
            out.alap[static_cast<size_t>(i)] = std::min(
                out.alap[static_cast<size_t>(i)],
                out.alap[static_cast<size_t>(s)] - 1);

    return out;
}

std::vector<int>
criticality(const Dag &dag)
{
    auto n = static_cast<size_t>(dag.size());
    std::vector<int> height(n, 0);
    for (int i = dag.size() - 1; i >= 0; --i)
        for (int s : dag.succs(i))
            height[static_cast<size_t>(i)] = std::max(
                height[static_cast<size_t>(i)],
                height[static_cast<size_t>(s)] + 1);
    return height;
}

ParallelismProfile
parallelismProfile(const Circuit &circ)
{
    Dag dag(circ);
    LevelSchedule sched = levelize(dag);

    ParallelismProfile out;
    out.depth = sched.depth;
    out.total_gates = static_cast<uint64_t>(circ.size());
    out.gates_per_level.assign(static_cast<size_t>(sched.depth), 0);
    for (int level : sched.asap)
        ++out.gates_per_level[static_cast<size_t>(level)];
    out.factor = sched.depth
        ? static_cast<double>(circ.size()) / sched.depth
        : 0.0;
    return out;
}

} // namespace qsurf::circuit
