/**
 * @file
 * Qubit-interaction graph extraction.
 *
 * Section 6.2 maps each logical qubit to a vertex and weights each
 * edge by how often the two qubits interact (2-qubit gates).  The
 * partitioner consumes this graph to produce the interaction-aware
 * tile layout.
 */

#ifndef QSURF_CIRCUIT_INTERACTION_H
#define QSURF_CIRCUIT_INTERACTION_H

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "circuit/circuit.h"

namespace qsurf::circuit {

/** Sparse weighted undirected qubit-interaction graph. */
struct InteractionGraph
{
    int num_qubits = 0;
    /** (lo, hi) qubit pair -> number of 2-qubit gates between them. */
    std::map<std::pair<int32_t, int32_t>, uint64_t> edges;

    /** @return total interaction weight incident to @p q. */
    uint64_t degree(int32_t q) const;

    /** @return total weight across all edges. */
    uint64_t totalWeight() const;
};

/**
 * Build the interaction graph of @p circ.  Toffolis contribute weight
 * to all three operand pairs (they decompose into CNOTs among them).
 */
InteractionGraph interactionGraph(const Circuit &circ);

} // namespace qsurf::circuit

#endif // QSURF_CIRCUIT_INTERACTION_H
