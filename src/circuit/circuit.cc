#include "circuit/circuit.h"

#include <cstring>

#include "common/logging.h"

namespace qsurf::circuit {

Circuit::Circuit(int num_qubits)
{
    fatalIf(num_qubits < 0, "negative qubit count ", num_qubits);
    nq = num_qubits;
}

Circuit::Circuit(std::string name, int num_qubits)
    : Circuit(num_qubits)
{
    label = std::move(name);
}

void
Circuit::ensureQubits(int num_qubits)
{
    nq = std::max(nq, num_qubits);
}

void
Circuit::validate(const Gate &g) const
{
    int arity = g.arity();
    for (int i = 0; i < arity; ++i) {
        int32_t q = g.qubit[static_cast<size_t>(i)];
        fatalIf(q < 0 || q >= nq, "gate ", gateName(g.kind), " operand ",
                i, " = ", q, " out of range [0,", nq, ")");
    }
    // Operands of one gate must be distinct qubits.
    for (int i = 0; i < arity; ++i)
        for (int j = i + 1; j < arity; ++j)
            fatalIf(g.qubit[static_cast<size_t>(i)]
                        == g.qubit[static_cast<size_t>(j)],
                    "gate ", gateName(g.kind),
                    " repeats operand qubit ",
                    g.qubit[static_cast<size_t>(i)]);
}

int
Circuit::addGate(GateKind kind, int32_t a, int32_t b, int32_t c)
{
    Gate g;
    g.kind = kind;
    g.qubit = {a, b, c};
    return addGate(g);
}

int
Circuit::addRz(double angle, int32_t q)
{
    Gate g;
    g.kind = GateKind::Rz;
    g.angle = angle;
    g.qubit = {q, -1, -1};
    return addGate(g);
}

int
Circuit::addGate(const Gate &g)
{
    validate(g);
    ops.push_back(g);
    return static_cast<int>(ops.size()) - 1;
}

void
Circuit::append(const Circuit &other)
{
    ensureQubits(other.numQubits());
    ops.reserve(ops.size() + other.ops.size());
    for (const Gate &g : other.ops)
        addGate(g);
}

OpCounts
Circuit::counts() const
{
    OpCounts c;
    c.total = ops.size();
    for (const Gate &g : ops) {
        switch (g.arity()) {
          case 1:
            ++c.single_qubit;
            break;
          case 2:
            ++c.two_qubit;
            break;
          default:
            ++c.three_qubit;
            break;
        }
        if (consumesMagicState(g.kind))
            ++c.t_gates;
        if (isMeasurement(g.kind))
            ++c.measurements;
    }
    return c;
}

namespace {

/** FNV-1a step over one 64-bit word, then a splitmix finalizer mix
    so adjacent small integers diverge across the whole word. */
uint64_t
mix(uint64_t h, uint64_t v)
{
    h = (h ^ v) * 0x100000001b3ULL;
    h ^= h >> 29;
    h *= 0xbf58476d1ce4e5b9ULL;
    return h;
}

} // namespace

uint64_t
fingerprint(const Circuit &circ)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : circ.name())
        h = mix(h, static_cast<uint64_t>(static_cast<uint8_t>(c)));
    h = mix(h, static_cast<uint64_t>(circ.numQubits()));
    for (const Gate &g : circ) {
        h = mix(h, static_cast<uint64_t>(g.kind));
        // Hash the angle's bit pattern: exact, and avoids -0.0/NaN
        // comparison pitfalls.  Only Rz carries a meaningful angle,
        // but every gate stores one deterministically.
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(g.angle));
        std::memcpy(&bits, &g.angle, sizeof(bits));
        h = mix(h, bits);
        for (int32_t q : g.operands())
            h = mix(h, static_cast<uint64_t>(
                           static_cast<uint32_t>(q)));
    }
    return h ? h : 1; // 0 is the "unset" sentinel downstream.
}

} // namespace qsurf::circuit
