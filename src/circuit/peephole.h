/**
 * @file
 * Logical-level peephole optimization (the frontend's "Logical Op.
 * Estimate" stage of Figure 4 reduces operation counts before
 * error-correction overheads multiply them — Section 5.4: "a reduced
 * operation count yields multiplicative benefits").
 *
 * Two rewrites, applied to fixpoint:
 *  - cancellation of adjacent self-inverse / inverse pairs on the
 *    same wire(s): H·H, X·X, Y·Y, Z·Z, S·Sdag, T·Tdag, CNOT·CNOT,
 *    CZ·CZ, Swap·Swap;
 *  - merging of adjacent Rz rotations on the same wire (angles add;
 *    a merged angle of ~0 cancels entirely).
 *
 * "Adjacent" means no other gate touches any shared operand between
 * the two — exactly wire adjacency in the dependence DAG.
 */

#ifndef QSURF_CIRCUIT_PEEPHOLE_H
#define QSURF_CIRCUIT_PEEPHOLE_H

#include <cstdint>

#include "circuit/circuit.h"

namespace qsurf::circuit {

/** Statistics from one peephole() run. */
struct PeepholeStats
{
    uint64_t cancelled_pairs = 0; ///< Inverse pairs removed.
    uint64_t merged_rotations = 0; ///< Rz pairs fused.
    int passes = 0;               ///< Passes until fixpoint.
};

/**
 * Optimize @p circ to fixpoint (bounded by @p max_passes).
 *
 * @param circ       input circuit.
 * @param stats      optional out-param for rewrite counts.
 * @param max_passes safety bound on fixpoint iteration.
 * @return the optimized circuit (semantics preserved).
 */
Circuit peephole(const Circuit &circ, PeepholeStats *stats = nullptr,
                 int max_passes = 16);

} // namespace qsurf::circuit

#endif // QSURF_CIRCUIT_PEEPHOLE_H
