#include "circuit/decompose.h"

#include "common/logging.h"

namespace qsurf::circuit {

namespace {

/** Append the 15-gate Clifford+T Toffoli network (Nielsen & Chuang). */
void
emitToffoli(Circuit &out, int32_t a, int32_t b, int32_t c)
{
    out.addGate(GateKind::H, c);
    out.addGate(GateKind::CNOT, b, c);
    out.addGate(GateKind::Tdag, c);
    out.addGate(GateKind::CNOT, a, c);
    out.addGate(GateKind::T, c);
    out.addGate(GateKind::CNOT, b, c);
    out.addGate(GateKind::Tdag, c);
    out.addGate(GateKind::CNOT, a, c);
    out.addGate(GateKind::T, b);
    out.addGate(GateKind::T, c);
    out.addGate(GateKind::H, c);
    out.addGate(GateKind::CNOT, a, b);
    out.addGate(GateKind::T, a);
    out.addGate(GateKind::Tdag, b);
    out.addGate(GateKind::CNOT, a, b);
}

/**
 * Append a deterministic H/T string standing in for the Clifford+T
 * approximation of Rz(angle).  The exact string does not matter for
 * architecture studies — only its length and T count do — so we emit
 * a fixed pattern keyed off the angle for determinism.
 */
void
emitRz(Circuit &out, const DecomposeConfig &cfg, double angle, int32_t q)
{
    int len = cfg.rz_sequence_length;
    auto t_count = static_cast<int>(len * cfg.rz_t_fraction);
    // Alternate T-ish and H gates; flip T/Tdag with the angle sign.
    GateKind t_kind = angle >= 0 ? GateKind::T : GateKind::Tdag;
    int emitted_t = 0;
    for (int i = 0; i < len; ++i) {
        if (emitted_t < t_count && i % 2 == 0) {
            out.addGate(t_kind, q);
            ++emitted_t;
        } else {
            out.addGate(i % 4 == 1 ? GateKind::H : GateKind::S, q);
        }
    }
}

} // namespace

Circuit
decompose(const Circuit &circ, const DecomposeConfig &cfg)
{
    fatalIf(cfg.rz_sequence_length < 1,
            "rz_sequence_length must be positive, got ",
            cfg.rz_sequence_length);

    Circuit out(circ.name(), circ.numQubits());
    out.reserve(decomposedSize(circ, cfg));
    for (const Gate &g : circ) {
        switch (g.kind) {
          case GateKind::Toffoli:
            emitToffoli(out, g.qubit[0], g.qubit[1], g.qubit[2]);
            break;
          case GateKind::Rz:
            emitRz(out, cfg, g.angle, g.qubit[0]);
            break;
          case GateKind::Swap:
            if (cfg.expand_swap) {
                out.addGate(GateKind::CNOT, g.qubit[0], g.qubit[1]);
                out.addGate(GateKind::CNOT, g.qubit[1], g.qubit[0]);
                out.addGate(GateKind::CNOT, g.qubit[0], g.qubit[1]);
            } else {
                out.addGate(g);
            }
            break;
          default:
            out.addGate(g);
            break;
        }
    }
    return out;
}

uint64_t
decomposedSize(const Circuit &circ, const DecomposeConfig &cfg)
{
    uint64_t n = 0;
    for (const Gate &g : circ) {
        switch (g.kind) {
          case GateKind::Toffoli:
            n += 15;
            break;
          case GateKind::Rz:
            n += static_cast<uint64_t>(cfg.rz_sequence_length);
            break;
          case GateKind::Swap:
            n += cfg.expand_swap ? 3 : 1;
            break;
          default:
            n += 1;
            break;
        }
    }
    return n;
}

} // namespace qsurf::circuit
