/**
 * @file
 * Logical-level schedule analysis (the "Logical-Level Analysis" stage
 * of Figure 4): ASAP/ALAP levels, critical path, per-gate criticality,
 * and the parallelism profile that feeds Table 2 and the backend
 * priority policies.
 */

#ifndef QSURF_CIRCUIT_SCHEDULE_H
#define QSURF_CIRCUIT_SCHEDULE_H

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/dag.h"

namespace qsurf::circuit {

/** Result of levelized (unit-latency list) scheduling. */
struct LevelSchedule
{
    /** Earliest level of each gate (unit latency per level). */
    std::vector<int> asap;
    /** Latest level of each gate without stretching the schedule. */
    std::vector<int> alap;
    /** Critical-path length in levels (== max asap + 1). */
    int depth = 0;

    /** @return slack (alap - asap) of gate @p i. */
    int
    slack(int i) const
    {
        return alap[static_cast<size_t>(i)] - asap[static_cast<size_t>(i)];
    }
};

/** Compute ASAP/ALAP levels with unit gate latency. */
LevelSchedule levelize(const Dag &dag);

/**
 * Per-gate criticality: the height of the gate (longest path from the
 * gate to any sink, in gates).  This is the metric Policy 3 sorts by
 * ("how many future operations depend on it" — Section 6.3).
 */
std::vector<int> criticality(const Dag &dag);

/** Parallelism statistics of a circuit (Table 2). */
struct ParallelismProfile
{
    /** Number of gates eligible at each ASAP level. */
    std::vector<int> gates_per_level;
    /** Critical-path depth in levels. */
    int depth = 0;
    /** Total gates. */
    uint64_t total_gates = 0;
    /**
     * Average number of logical operations concurrently executable
     * under ideal (resource-unconstrained) scheduling — the paper's
     * "parallelism factor".
     */
    double factor = 0;
};

/** Compute the ideal-parallelizability profile of a circuit. */
ParallelismProfile parallelismProfile(const Circuit &circ);

} // namespace qsurf::circuit

#endif // QSURF_CIRCUIT_SCHEDULE_H
