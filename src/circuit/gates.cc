#include "circuit/gates.h"

#include <array>
#include <unordered_map>

#include "common/logging.h"

namespace qsurf::circuit {

namespace {

struct GateInfo
{
    GateKind kind;
    const char *name;
    int arity;
    bool magic;
    bool meas;
    bool prep;
    bool clifford;
    bool decompose;
};

constexpr std::array<GateInfo, num_gate_kinds> gate_table{{
    {GateKind::H,       "H",       1, false, false, false, true,  false},
    {GateKind::X,       "X",       1, false, false, false, true,  false},
    {GateKind::Y,       "Y",       1, false, false, false, true,  false},
    {GateKind::Z,       "Z",       1, false, false, false, true,  false},
    {GateKind::S,       "S",       1, false, false, false, true,  false},
    {GateKind::Sdag,    "Sdag",    1, false, false, false, true,  false},
    {GateKind::T,       "T",       1, true,  false, false, false, false},
    {GateKind::Tdag,    "Tdag",    1, true,  false, false, false, false},
    {GateKind::Rz,      "Rz",      1, false, false, false, false, true},
    {GateKind::CNOT,    "CNOT",    2, false, false, false, true,  false},
    {GateKind::CZ,      "CZ",      2, false, false, false, true,  false},
    {GateKind::Swap,    "Swap",    2, false, false, false, true,  false},
    {GateKind::Toffoli, "Toffoli", 3, false, false, false, false, true},
    {GateKind::PrepZ,   "PrepZ",   1, false, false, true,  true,  false},
    {GateKind::PrepX,   "PrepX",   1, false, false, true,  true,  false},
    {GateKind::MeasZ,   "MeasZ",   1, false, true,  false, true,  false},
    {GateKind::MeasX,   "MeasX",   1, false, true,  false, true,  false},
}};

const GateInfo &
info(GateKind kind)
{
    auto idx = static_cast<size_t>(kind);
    panicIf(idx >= gate_table.size(), "bad GateKind ", idx);
    panicIf(gate_table[idx].kind != kind, "gate table out of order");
    return gate_table[idx];
}

} // namespace

int
gateArity(GateKind kind)
{
    return info(kind).arity;
}

const std::string &
gateName(GateKind kind)
{
    static std::array<std::string, num_gate_kinds> names = [] {
        std::array<std::string, num_gate_kinds> out;
        for (const auto &g : gate_table)
            out[static_cast<size_t>(g.kind)] = g.name;
        return out;
    }();
    return names[static_cast<size_t>(kind)];
}

std::optional<GateKind>
gateFromName(const std::string &name)
{
    static const std::unordered_map<std::string, GateKind> lookup = [] {
        std::unordered_map<std::string, GateKind> out;
        for (const auto &g : gate_table)
            out.emplace(g.name, g.kind);
        return out;
    }();
    auto it = lookup.find(name);
    if (it == lookup.end())
        return std::nullopt;
    return it->second;
}

bool
consumesMagicState(GateKind kind)
{
    return info(kind).magic;
}

bool
isMeasurement(GateKind kind)
{
    return info(kind).meas;
}

bool
isPreparation(GateKind kind)
{
    return info(kind).prep;
}

bool
isClifford(GateKind kind)
{
    return info(kind).clifford;
}

bool
needsDecomposition(GateKind kind)
{
    return info(kind).decompose;
}

} // namespace qsurf::circuit
