/**
 * @file
 * The logical-level gate set (QASM ISA of Section 5.3).
 *
 * The set is the standard fault-tolerant basis: Clifford gates,
 * the T gate (which consumes a magic state, Section 2.2), arbitrary
 * Z-rotations (decomposed to Clifford+T before backend mapping),
 * preparation and measurement.
 */

#ifndef QSURF_CIRCUIT_GATES_H
#define QSURF_CIRCUIT_GATES_H

#include <optional>
#include <string>

namespace qsurf::circuit {

/** Logical gate opcodes. */
enum class GateKind : uint8_t
{
    H,          ///< Hadamard.
    X,          ///< Pauli-X (bit flip).
    Y,          ///< Pauli-Y.
    Z,          ///< Pauli-Z (phase flip).
    S,          ///< Phase gate (Z^1/2).
    Sdag,       ///< Inverse phase gate.
    T,          ///< Z^1/4; consumes one magic state.
    Tdag,       ///< Inverse T; consumes one magic state.
    Rz,         ///< Z-rotation by an arbitrary angle (pre-decomposition).
    CNOT,       ///< Controlled-NOT (2 qubits: control, target).
    CZ,         ///< Controlled-Z (2 qubits).
    Swap,       ///< Swap (2 qubits).
    Toffoli,    ///< Doubly-controlled NOT (3 qubits, pre-decomposition).
    PrepZ,      ///< Initialize |0>.
    PrepX,      ///< Initialize |+>.
    MeasZ,      ///< Z-basis measurement.
    MeasX,      ///< X-basis measurement.
};

/** Number of distinct GateKind values (for table sizing). */
inline constexpr int num_gate_kinds = 17;

/** @return number of qubit operands of @p kind (1, 2 or 3). */
int gateArity(GateKind kind);

/** @return canonical mnemonic, e.g. "CNOT". */
const std::string &gateName(GateKind kind);

/** @return the GateKind for a mnemonic, or nullopt if unknown. */
std::optional<GateKind> gateFromName(const std::string &name);

/** @return true for T/Tdag — gates that consume a magic state. */
bool consumesMagicState(GateKind kind);

/** @return true for MeasZ/MeasX. */
bool isMeasurement(GateKind kind);

/** @return true for PrepZ/PrepX. */
bool isPreparation(GateKind kind);

/** @return true for gates in the Clifford group (cheap transversally). */
bool isClifford(GateKind kind);

/**
 * @return true when the gate must be expanded by decompose() before
 * backend mapping (Rz, Toffoli).
 */
bool needsDecomposition(GateKind kind);

} // namespace qsurf::circuit

#endif // QSURF_CIRCUIT_GATES_H
