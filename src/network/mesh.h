/**
 * @file
 * Circuit-switched 2-D mesh (Section 6.1).
 *
 * Braids are messages routed on the mesh formed by tile corners:
 * "black defects are messages routed in the mesh, and the tile
 * corners are routers" (Figure 5).  Braids claim every node and link
 * of their route atomically when they open (the n-hops-in-1-cycle
 * property) and release them when they close.  Because defects
 * cannot coexist closely, there are no buffers and no virtual
 * channels: a node or link has at most one owner.
 */

#ifndef QSURF_NETWORK_MESH_H
#define QSURF_NETWORK_MESH_H

#include <cstdint>
#include <vector>

#include "common/geometry.h"

namespace qsurf::network {

/** A concrete route: the ordered list of routers it passes through. */
struct Path
{
    std::vector<Coord> nodes;

    /** @return number of links (hops). */
    int hops() const { return static_cast<int>(nodes.size()) - 1; }

    bool empty() const { return nodes.empty(); }

    /** @return source router. */
    const Coord &source() const { return nodes.front(); }

    /** @return destination router. */
    const Coord &dest() const { return nodes.back(); }
};

/**
 * The mesh: a width x height grid of routers with unit-capacity
 * links, exclusive circuit-switched ownership, and busy-time
 * accounting.
 */
class Mesh
{
  public:
    /** No-owner sentinel. */
    static constexpr int no_owner = -1;

    Mesh(int width, int height);

    int width() const { return w; }
    int height() const { return h; }

    /** @return total routers. */
    int numNodes() const { return w * h; }

    /** @return total links. */
    int numLinks() const { return static_cast<int>(link_owner.size()); }

    /** @return true when @p c is a valid router coordinate. */
    bool contains(const Coord &c) const;

    /** @return owner of router @p c, or no_owner. */
    int nodeOwner(const Coord &c) const;

    /** @return owner of the link a-b (must be adjacent routers). */
    int linkOwner(const Coord &a, const Coord &b) const;

    /**
     * @return true when every node and link of @p path is free or
     * already owned by @p owner.
     */
    bool routeFree(const Path &path, int owner) const;

    /**
     * Claim every node and link of @p path for @p owner.
     * panic()s if any resource is held by someone else — call
     * routeFree first.
     */
    void claim(const Path &path, int owner);

    /** Release every node and link of @p path owned by @p owner. */
    void release(const Path &path, int owner);

    /** @return true if router @p c is free or owned by @p owner. */
    bool nodeAvailable(const Coord &c, int owner) const;

    /** @return true if link a-b is free or owned by @p owner. */
    bool linkAvailable(const Coord &a, const Coord &b, int owner) const;

    /** Advance time one cycle, accumulating busy-link statistics. */
    void tick();

    /** @return cycles ticked so far. */
    uint64_t cycles() const { return ticks; }

    /** @return currently claimed links. */
    int busyLinks() const { return busy_links; }

    /** @return average fraction of links busy per cycle so far. */
    double utilization() const;

    /** Clear ownership and statistics. */
    void reset();

  private:
    int nodeIndex(const Coord &c) const;
    int linkIndex(const Coord &a, const Coord &b) const;

    int w;
    int h;
    std::vector<int> node_owner;
    std::vector<int> link_owner;
    int busy_links = 0;
    uint64_t ticks = 0;
    uint64_t busy_link_cycles = 0;
};

} // namespace qsurf::network

#endif // QSURF_NETWORK_MESH_H
