/**
 * @file
 * Circuit-switched 2-D mesh (Section 6.1).
 *
 * Braids are messages routed on the mesh formed by tile corners:
 * "black defects are messages routed in the mesh, and the tile
 * corners are routers" (Figure 5).  Braids claim every node and link
 * of their route atomically when they open (the n-hops-in-1-cycle
 * property) and release them when they close.  Because defects
 * cannot coexist closely, there are no buffers and no virtual
 * channels: a node or link has at most one owner.
 *
 * The claim/release path is the simulators' innermost loop, so it is
 * allocation-free: Path keeps short routes in inline storage,
 * link indices come from tables precomputed at construction, and
 * tryClaim() walks a route once, validating and recording indices in
 * a single traversal instead of the routeFree-then-claim double walk.
 * Per-coordinate validity checks on the hot entries (tryClaim,
 * release, routeFree, the *Available queries) are debug-only
 * assert()s — callers own path validity there; the checked panics
 * remain on the cold claim() entry.
 */

#ifndef QSURF_NETWORK_MESH_H
#define QSURF_NETWORK_MESH_H

#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "common/small_vector.h"

namespace qsurf::network {

/** A concrete route: the ordered list of routers it passes through. */
struct Path
{
    /** Inline capacity covering typical dimension-ordered routes. */
    using Nodes = SmallVector<Coord, 16>;

    Nodes nodes;

    /** @return number of links (hops). */
    int hops() const { return static_cast<int>(nodes.size()) - 1; }

    bool empty() const { return nodes.empty(); }

    /** @return source router. */
    const Coord &source() const { return nodes.front(); }

    /** @return destination router. */
    const Coord &dest() const { return nodes.back(); }
};

/**
 * The mesh: a width x height grid of routers with unit-capacity
 * links, exclusive circuit-switched ownership, and busy-time
 * accounting.
 */
class Mesh
{
  public:
    /** No-owner sentinel. */
    static constexpr int no_owner = -1;

    /**
     * Permanent-defect sentinel.  A defective node or link carries
     * this owner forever: every availability check, tryClaim() walk
     * and BFS expansion sees it as "held by someone else" (real
     * owner ids are >= 0), release() cannot free it, and reset()
     * re-applies it — so damage needs no branch on any hot path.
     */
    static constexpr int defect_owner = -2;

    Mesh(int width, int height);

    int width() const { return w; }
    int height() const { return h; }

    /** @return total routers. */
    int numNodes() const { return w * h; }

    /** @return total links. */
    int numLinks() const { return static_cast<int>(link_owner.size()); }

    /** @return true when @p c is a valid router coordinate. */
    bool contains(const Coord &c) const;

    /** @return owner of router @p c, or no_owner. */
    int nodeOwner(const Coord &c) const;

    /** @return owner of the link a-b (must be adjacent routers). */
    int linkOwner(const Coord &a, const Coord &b) const;

    /**
     * @return true when every node and link of @p path is free or
     * already owned by @p owner.
     */
    bool routeFree(const Path &path, int owner) const;

    /**
     * Walk @p path once: validate that every node and link is free
     * (or already owned by @p owner) and, when they all are, claim
     * them using the indices recorded during the walk.  @return true
     * on success; on failure the mesh is unmodified.
     */
    bool tryClaim(const Path &path, int owner);

    /**
     * Claim every node and link of @p path for @p owner.
     * panic()s if any resource is held by someone else — use
     * tryClaim() when failure is expected.
     */
    void claim(const Path &path, int owner);

    /** Release every node and link of @p path owned by @p owner. */
    void release(const Path &path, int owner);

    /** @return true if router @p c is free or owned by @p owner. */
    bool nodeAvailable(const Coord &c, int owner) const;

    /** @return true if link a-b is free or owned by @p owner. */
    bool linkAvailable(const Coord &a, const Coord &b, int owner) const;

    /**
     * Mark router @p c permanently defective (idempotent).  Apply
     * before simulation starts: the router must not be claimed.
     */
    void disableNode(const Coord &c);

    /** Mark link a-b permanently defective (idempotent, adjacent
     *  routers, must not be claimed). */
    void disableLink(const Coord &a, const Coord &b);

    /** @return true when router @p c is defective. */
    bool
    nodeDefective(const Coord &c) const
    {
        return nodeOwner(c) == defect_owner;
    }

    /** @return true when link a-b is defective. */
    bool
    linkDefective(const Coord &a, const Coord &b) const
    {
        return linkOwner(a, b) == defect_owner;
    }

    /** @return permanently defective routers. */
    int
    numDefectiveNodes() const
    {
        return static_cast<int>(defect_nodes.size());
    }

    /** @return permanently defective links. */
    int
    numDefectiveLinks() const
    {
        return static_cast<int>(defect_links.size());
    }

    /** Advance time one cycle, accumulating busy-link statistics. */
    void tick() { tick(1); }

    /**
     * Advance time @p n cycles at once.  Ownership is unchanged, so
     * busy-link accounting stays exact: each elided cycle would have
     * accumulated the same busyLinks().  This is what lets the
     * event-driven schedulers fast-forward without drifting the
     * utilization statistics.
     */
    void
    tick(uint64_t n)
    {
        ticks += n;
        busy_link_cycles += static_cast<uint64_t>(busy_links) * n;
    }

    /** @return cycles ticked so far. */
    uint64_t cycles() const { return ticks; }

    /** @return currently claimed links. */
    int busyLinks() const { return busy_links; }

    /**
     * @return the maximum simultaneously claimed links seen so far —
     * the congestion high-water mark mixed-scheme arbitration reacts
     * to (a braid track and a surgery corridor holding links at the
     * same time both count).
     */
    int peakBusyLinks() const { return peak_busy_links; }

    /** @return the fraction of links claimed right now, in [0, 1]. */
    double
    loadNow() const
    {
        return numLinks()
            ? static_cast<double>(busy_links) / numLinks()
            : 0.0;
    }

    /** @return average fraction of links busy per cycle so far. */
    double utilization() const;

    /** Clear ownership and statistics. */
    void reset();

  private:
    int nodeIndex(const Coord &c) const;
    int linkIndex(const Coord &a, const Coord &b) const;

    /** Hot-path node index: bounds are debug-only assert()s. */
    int nodeIndexFast(const Coord &c) const;

    /**
     * Hot-path link index from the precomputed tables, given the two
     * endpoints' node indices; adjacency is a debug-only assert().
     */
    int linkIndexFast(int ia, int ib) const;

    int w;
    int h;
    std::vector<int> node_owner;
    std::vector<int> link_owner;

    /** Link index of the +x link of each node (-1 on the edge). */
    std::vector<int32_t> right_link;

    /** Link index of the +y link of each node (-1 on the edge). */
    std::vector<int32_t> down_link;

    /** tryClaim() scratch: indices recorded by the validation walk. */
    std::vector<int32_t> walk_nodes;
    std::vector<int32_t> walk_links;

    /** Defective resource indices, re-applied by reset(). */
    std::vector<int32_t> defect_nodes;
    std::vector<int32_t> defect_links;

    int busy_links = 0;
    int peak_busy_links = 0;
    uint64_t ticks = 0;
    uint64_t busy_link_cycles = 0;
};

} // namespace qsurf::network

#endif // QSURF_NETWORK_MESH_H
