#include "network/route.h"

#include <algorithm>
#include <array>
#include <deque>
#include <vector>

#include "common/logging.h"

namespace qsurf::network {

namespace {

void
walkX(Path &path, Coord from, int to_x)
{
    int step = to_x > from.x ? 1 : -1;
    while (from.x != to_x) {
        from.x += step;
        path.nodes.push_back(from);
    }
}

void
walkY(Path &path, Coord from, int to_y)
{
    int step = to_y > from.y ? 1 : -1;
    while (from.y != to_y) {
        from.y += step;
        path.nodes.push_back(from);
    }
}

} // namespace

Path
xyRoute(const Coord &src, const Coord &dst)
{
    Path path;
    path.nodes.push_back(src);
    walkX(path, src, dst.x);
    walkY(path, Coord{dst.x, src.y}, dst.y);
    return path;
}

Path
yxRoute(const Coord &src, const Coord &dst)
{
    Path path;
    path.nodes.push_back(src);
    walkY(path, src, dst.y);
    walkX(path, Coord{src.x, dst.y}, dst.x);
    return path;
}

std::optional<Path>
adaptiveRoute(const Mesh &mesh, const Coord &src, const Coord &dst,
              int owner)
{
    fatalIf(!mesh.contains(src) || !mesh.contains(dst),
            "route endpoint outside the mesh");
    if (!mesh.nodeAvailable(src, owner)
        || !mesh.nodeAvailable(dst, owner))
        return std::nullopt;
    if (src == dst)
        return Path{{src}};

    // BFS over free routers/links.
    std::vector<Coord> prev(
        static_cast<size_t>(mesh.numNodes()), Coord{-1, -1});
    std::vector<char> seen(static_cast<size_t>(mesh.numNodes()), 0);
    auto idx = [&mesh](const Coord &c) {
        return static_cast<size_t>(linearIndex(c, mesh.width()));
    };

    std::deque<Coord> frontier{src};
    seen[idx(src)] = 1;
    bool found = false;
    while (!frontier.empty() && !found) {
        Coord cur = frontier.front();
        frontier.pop_front();
        static constexpr std::array<Coord, 4> dirs{
            {{1, 0}, {-1, 0}, {0, 1}, {0, -1}}};
        for (const Coord &d : dirs) {
            Coord next{cur.x + d.x, cur.y + d.y};
            if (!mesh.contains(next) || seen[idx(next)])
                continue;
            if (!mesh.nodeAvailable(next, owner)
                || !mesh.linkAvailable(cur, next, owner))
                continue;
            seen[idx(next)] = 1;
            prev[idx(next)] = cur;
            if (next == dst) {
                found = true;
                break;
            }
            frontier.push_back(next);
        }
    }
    if (!found)
        return std::nullopt;

    Path path;
    for (Coord c = dst; !(c == src); c = prev[idx(c)])
        path.nodes.push_back(c);
    path.nodes.push_back(src);
    std::reverse(path.nodes.begin(), path.nodes.end());
    return path;
}

} // namespace qsurf::network
