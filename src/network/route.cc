#include "network/route.h"

#include <algorithm>
#include <array>

#include "common/logging.h"

namespace qsurf::network {

namespace {

void
walkX(Path &path, Coord from, int to_x)
{
    int step = to_x > from.x ? 1 : -1;
    while (from.x != to_x) {
        from.x += step;
        path.nodes.push_back(from);
    }
}

void
walkY(Path &path, Coord from, int to_y)
{
    int step = to_y > from.y ? 1 : -1;
    while (from.y != to_y) {
        from.y += step;
        path.nodes.push_back(from);
    }
}

} // namespace

Path
xyRoute(const Coord &src, const Coord &dst)
{
    Path path;
    path.nodes.push_back(src);
    walkX(path, src, dst.x);
    walkY(path, Coord{dst.x, src.y}, dst.y);
    return path;
}

Path
yxRoute(const Coord &src, const Coord &dst)
{
    Path path;
    path.nodes.push_back(src);
    walkY(path, src, dst.y);
    walkX(path, Coord{src.x, dst.y}, dst.x);
    return path;
}

std::optional<Path>
adaptiveRoute(const Mesh &mesh, const Coord &src, const Coord &dst,
              int owner, BfsScratch &scratch)
{
    fatalIf(!mesh.contains(src) || !mesh.contains(dst),
            "route endpoint outside the mesh");
    if (!mesh.nodeAvailable(src, owner)
        || !mesh.nodeAvailable(dst, owner))
        return std::nullopt;
    if (src == dst)
        return Path{{src}};

    // BFS over free routers/links.  Expansion order (east, west,
    // south, north; first-found wins) is part of the deterministic
    // results contract — it must not change.
    int width = mesh.width();
    auto idx = [width](const Coord &c) {
        return linearIndex(c, width);
    };

    scratch.beginSearch(mesh.numNodes());
    std::vector<int32_t> &frontier = scratch.frontier();
    frontier.push_back(idx(src));
    scratch.visit(idx(src), -1);

    bool found = false;
    for (size_t head = 0; head < frontier.size() && !found; ++head) {
        Coord cur = fromLinearIndex(frontier[head], width);
        static constexpr std::array<Coord, 4> dirs{
            {{1, 0}, {-1, 0}, {0, 1}, {0, -1}}};
        for (const Coord &d : dirs) {
            Coord next{cur.x + d.x, cur.y + d.y};
            if (!mesh.contains(next) || scratch.seen(idx(next)))
                continue;
            if (!mesh.nodeAvailable(next, owner)
                || !mesh.linkAvailable(cur, next, owner))
                continue;
            scratch.visit(idx(next), idx(cur));
            if (next == dst) {
                found = true;
                break;
            }
            frontier.push_back(idx(next));
        }
    }
    if (!found)
        return std::nullopt;

    Path path;
    for (int c = idx(dst); c >= 0; c = scratch.prev(c))
        path.nodes.push_back(fromLinearIndex(c, width));
    std::reverse(path.nodes.begin(), path.nodes.end());
    return path;
}

std::optional<Path>
adaptiveRoute(const Mesh &mesh, const Coord &src, const Coord &dst,
              int owner)
{
    BfsScratch scratch;
    return adaptiveRoute(mesh, src, dst, owner, scratch);
}

} // namespace qsurf::network
