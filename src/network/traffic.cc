#include "network/traffic.h"

#include <deque>
#include <queue>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "network/route.h"

namespace qsurf::network {

const char *
trafficPatternName(TrafficPattern pattern)
{
    switch (pattern) {
      case TrafficPattern::Uniform:   return "uniform";
      case TrafficPattern::Transpose: return "transpose";
      case TrafficPattern::Neighbor:  return "neighbor";
      case TrafficPattern::Hotspot:   return "hotspot";
    }
    return "?";
}

namespace {

struct Request
{
    Coord src;
    Coord dst;
    uint64_t issued;
};

Coord
pickDestination(TrafficPattern pattern, const Coord &src, int w,
                int h, Rng &rng)
{
    switch (pattern) {
      case TrafficPattern::Uniform:
        return Coord{static_cast<int>(rng.below(
                         static_cast<uint64_t>(w))),
                     static_cast<int>(rng.below(
                         static_cast<uint64_t>(h)))};
      case TrafficPattern::Transpose:
        return Coord{src.y % w, src.x % h};
      case TrafficPattern::Neighbor: {
        Coord d = src;
        if (rng.chance(0.5))
            d.x = std::min(w - 1, std::max(0, d.x + (rng.chance(0.5)
                                                         ? 1
                                                         : -1)));
        else
            d.y = std::min(h - 1, std::max(0, d.y + (rng.chance(0.5)
                                                         ? 1
                                                         : -1)));
        return d;
      }
      case TrafficPattern::Hotspot:
        return Coord{w / 2, h / 2};
    }
    panic("bad pattern");
}

} // namespace

TrafficResult
runTraffic(int width, int height, const TrafficOptions &opts)
{
    fatalIf(opts.injection_rate < 0 || opts.injection_rate > 1,
            "injection rate must be in [0,1], got ",
            opts.injection_rate);
    fatalIf(opts.hold_cycles < 1, "hold cycles must be >= 1");
    fatalIf(opts.cycles < 1, "need at least one cycle");

    Mesh mesh(width, height);
    Rng rng(opts.seed);
    TrafficResult out;

    std::deque<Request> pending;
    // (release cycle, owner id) of granted routes.
    std::priority_queue<std::pair<uint64_t, int>,
                        std::vector<std::pair<uint64_t, int>>,
                        std::greater<>>
        active;
    std::vector<Path> routes;
    double total_wait = 0;

    for (uint64_t cycle = 0; cycle < opts.cycles; ++cycle) {
        // Release expired routes.
        while (!active.empty() && active.top().first <= cycle) {
            int id = active.top().second;
            active.pop();
            mesh.release(routes[static_cast<size_t>(id)], id);
            ++out.completed;
        }

        // Inject new requests (Bernoulli per node).
        for (int y = 0; y < height; ++y)
            for (int x = 0; x < width; ++x)
                if (rng.chance(opts.injection_rate)) {
                    Coord src{x, y};
                    Coord dst = pickDestination(opts.pattern, src,
                                                width, height, rng);
                    if (!(dst == src)) {
                        pending.push_back(Request{src, dst, cycle});
                        ++out.offered;
                    }
                }

        // Grant from the head of the queue.
        int attempts = 0;
        size_t scan = 0;
        while (scan < pending.size()
               && attempts < opts.max_attempts_per_cycle) {
            const Request &req = pending[scan];
            int id = static_cast<int>(routes.size());
            Path path = xyRoute(req.src, req.dst);
            bool placed = mesh.routeFree(path, id);
            if (!placed) {
                auto detour =
                    adaptiveRoute(mesh, req.src, req.dst, id);
                if (detour) {
                    path = *detour;
                    placed = true;
                }
            }
            if (placed) {
                mesh.claim(path, id);
                routes.push_back(std::move(path));
                active.emplace(
                    cycle + static_cast<uint64_t>(opts.hold_cycles),
                    id);
                total_wait += static_cast<double>(cycle - req.issued);
                ++out.granted;
                pending.erase(pending.begin()
                              + static_cast<long>(scan));
                continue;
            }
            ++attempts;
            ++scan;
        }

        mesh.tick();
    }

    out.mean_wait =
        out.granted ? total_wait / static_cast<double>(out.granted)
                    : 0.0;
    out.utilization = mesh.utilization();
    out.acceptance = out.offered
        ? static_cast<double>(out.granted)
            / static_cast<double>(out.offered)
        : 0.0;
    return out;
}

} // namespace qsurf::network
