/**
 * @file
 * Route construction: dimension-ordered (XY / YX) paths and the
 * adaptive breadth-first detour used "to improve forward progress in
 * a busy network ... after certain timeouts" (Section 6.1).
 *
 * The detour search runs on every escalated placement attempt of
 * every congested cycle, so its working set (predecessor, visited
 * and frontier arrays) lives in a caller-owned BfsScratch that is
 * epoch-stamped and reused: after the first search on a mesh, no
 * further allocations happen regardless of how many searches run.
 */

#ifndef QSURF_NETWORK_ROUTE_H
#define QSURF_NETWORK_ROUTE_H

#include <cstdint>
#include <optional>
#include <vector>

#include "network/mesh.h"

namespace qsurf::network {

/** @return the X-then-Y dimension-ordered path from src to dst. */
Path xyRoute(const Coord &src, const Coord &dst);

/** @return the Y-then-X dimension-ordered path from src to dst. */
Path yxRoute(const Coord &src, const Coord &dst);

/**
 * Reusable working set of adaptiveRoute().  Visited marks are epoch
 * stamps, so clearing between searches is a single counter bump;
 * the arrays only (re)allocate when the mesh grows or the epoch
 * counter wraps.
 */
class BfsScratch
{
  public:
    /** Size the arrays for @p num_nodes and open a fresh epoch. */
    void
    beginSearch(int num_nodes)
    {
        auto n = static_cast<size_t>(num_nodes);
        if (prev_.size() < n || epoch_ == UINT32_MAX) {
            prev_.assign(n, -1);
            seen_.assign(n, 0);
            epoch_ = 0;
        }
        ++epoch_;
        frontier_.clear();
    }

    bool
    seen(int node) const
    {
        return seen_[static_cast<size_t>(node)] == epoch_;
    }

    void
    visit(int node, int from)
    {
        seen_[static_cast<size_t>(node)] = epoch_;
        prev_[static_cast<size_t>(node)] = from;
    }

    int prev(int node) const { return prev_[static_cast<size_t>(node)]; }

    /** FIFO frontier of node indices (vector + read cursor). */
    std::vector<int32_t> &frontier() { return frontier_; }

  private:
    std::vector<int32_t> prev_;
    std::vector<uint32_t> seen_;
    std::vector<int32_t> frontier_;
    uint32_t epoch_ = 0;
};

/**
 * Shortest path through currently-free resources, found by BFS.
 *
 * @param mesh    the mesh with current ownership state.
 * @param src     source router.
 * @param dst     destination router.
 * @param owner   requester id; resources it already owns count as
 *                available (needed to re-route its own braid).
 * @param scratch caller-owned reusable working set.
 * @return a free path, or nullopt when src and dst are disconnected
 *         in the free subgraph.
 */
std::optional<Path> adaptiveRoute(const Mesh &mesh, const Coord &src,
                                  const Coord &dst, int owner,
                                  BfsScratch &scratch);

/** Convenience overload allocating a one-shot scratch. */
std::optional<Path> adaptiveRoute(const Mesh &mesh, const Coord &src,
                                  const Coord &dst, int owner);

} // namespace qsurf::network

#endif // QSURF_NETWORK_ROUTE_H
