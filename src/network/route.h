/**
 * @file
 * Route construction: dimension-ordered (XY / YX) paths and the
 * adaptive breadth-first detour used "to improve forward progress in
 * a busy network ... after certain timeouts" (Section 6.1).
 *
 * The detour search runs on every escalated placement attempt of
 * every congested cycle, so its working set (predecessor, visited
 * and frontier arrays) lives in a caller-owned BfsScratch that is
 * epoch-stamped and reused: after the first search on a mesh, no
 * further allocations happen regardless of how many searches run.
 */

#ifndef QSURF_NETWORK_ROUTE_H
#define QSURF_NETWORK_ROUTE_H

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/arena.h"
#include "network/mesh.h"

namespace qsurf::network {

/** @return the X-then-Y dimension-ordered path from src to dst. */
Path xyRoute(const Coord &src, const Coord &dst);

/** @return the Y-then-X dimension-ordered path from src to dst. */
Path yxRoute(const Coord &src, const Coord &dst);

/**
 * Reusable working set of adaptiveRoute().  Visited marks are epoch
 * stamps, so clearing between searches is a single counter bump;
 * the arrays only (re)allocate when the mesh grows or the epoch
 * counter wraps.
 */
class BfsScratch
{
  public:
    /**
     * Size the arrays for @p num_nodes and open a fresh epoch.  The
     * backing store comes from the thread's bound scratch arena when
     * one is set (Arena::Scope; the sweep driver and compile service
     * bind one per work unit), otherwise from the heap; an arena
     * reset between searches is detected via its generation counter
     * and re-acquires the arrays.  Results never depend on which
     * store backs the search.
     */
    void
    beginSearch(int num_nodes)
    {
        auto n = static_cast<size_t>(num_nodes);
        Arena *a = Arena::scratch();
        bool recycled = a != arena_
            || (a && a->generation() != arena_generation_);
        if (cap_ < n || recycled || epoch_ == UINT32_MAX) {
            if (cap_ < n || recycled) {
                arena_ = a;
                arena_generation_ = a ? a->generation() : 0;
                size_t want = std::max(cap_, n);
                if (a) {
                    prev_ = a->allocArray<int32_t>(want);
                    seen_ = a->allocArray<uint32_t>(want);
                    heap_.reset();
                } else {
                    heap_ = std::make_unique<char[]>(
                        want * (sizeof(int32_t) + sizeof(uint32_t)));
                    prev_ = reinterpret_cast<int32_t *>(heap_.get());
                    seen_ = reinterpret_cast<uint32_t *>(
                        heap_.get() + want * sizeof(int32_t));
                }
                cap_ = want;
            }
            std::fill(prev_, prev_ + cap_, -1);
            std::fill(seen_, seen_ + cap_, 0u);
            epoch_ = 0;
        }
        ++epoch_;
        frontier_.clear();
    }

    bool
    seen(int node) const
    {
        return seen_[static_cast<size_t>(node)] == epoch_;
    }

    void
    visit(int node, int from)
    {
        seen_[static_cast<size_t>(node)] = epoch_;
        prev_[static_cast<size_t>(node)] = from;
    }

    int prev(int node) const { return prev_[static_cast<size_t>(node)]; }

    /** FIFO frontier of node indices (vector + read cursor). */
    std::vector<int32_t> &frontier() { return frontier_; }

  private:
    int32_t *prev_ = nullptr;
    uint32_t *seen_ = nullptr;
    size_t cap_ = 0;
    Arena *arena_ = nullptr; ///< Backing arena; null = heap_.
    uint64_t arena_generation_ = 0;
    std::unique_ptr<char[]> heap_;
    std::vector<int32_t> frontier_;
    uint32_t epoch_ = 0;
};

/**
 * Shortest path through currently-free resources, found by BFS.
 *
 * @param mesh    the mesh with current ownership state.
 * @param src     source router.
 * @param dst     destination router.
 * @param owner   requester id; resources it already owns count as
 *                available (needed to re-route its own braid).
 * @param scratch caller-owned reusable working set.
 * @return a free path, or nullopt when src and dst are disconnected
 *         in the free subgraph.
 */
std::optional<Path> adaptiveRoute(const Mesh &mesh, const Coord &src,
                                  const Coord &dst, int owner,
                                  BfsScratch &scratch);

/** Convenience overload allocating a one-shot scratch. */
std::optional<Path> adaptiveRoute(const Mesh &mesh, const Coord &src,
                                  const Coord &dst, int owner);

} // namespace qsurf::network

#endif // QSURF_NETWORK_ROUTE_H
