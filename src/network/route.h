/**
 * @file
 * Route construction: dimension-ordered (XY / YX) paths and the
 * adaptive breadth-first detour used "to improve forward progress in
 * a busy network ... after certain timeouts" (Section 6.1).
 */

#ifndef QSURF_NETWORK_ROUTE_H
#define QSURF_NETWORK_ROUTE_H

#include <optional>

#include "network/mesh.h"

namespace qsurf::network {

/** @return the X-then-Y dimension-ordered path from src to dst. */
Path xyRoute(const Coord &src, const Coord &dst);

/** @return the Y-then-X dimension-ordered path from src to dst. */
Path yxRoute(const Coord &src, const Coord &dst);

/**
 * Shortest path through currently-free resources, found by BFS.
 *
 * @param mesh   the mesh with current ownership state.
 * @param src    source router.
 * @param dst    destination router.
 * @param owner  requester id; resources it already owns count as
 *               available (needed to re-route its own braid).
 * @return a free path, or nullopt when src and dst are disconnected
 *         in the free subgraph.
 */
std::optional<Path> adaptiveRoute(const Mesh &mesh, const Coord &src,
                                  const Coord &dst, int owner);

} // namespace qsurf::network

#endif // QSURF_NETWORK_ROUTE_H
