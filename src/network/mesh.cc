#include "network/mesh.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"

namespace qsurf::network {

Mesh::Mesh(int width, int height)
    : w(width), h(height)
{
    fatalIf(w < 1 || h < 1, "mesh must be at least 1x1, got ", w, "x",
            h);
    node_owner.assign(static_cast<size_t>(w * h), no_owner);
    // Horizontal links first ((w-1) per row), then vertical.
    link_owner.assign(static_cast<size_t>((w - 1) * h + w * (h - 1)),
                      no_owner);

    // Per-node link tables: the hot path never recomputes a link
    // index from coordinates.
    right_link.assign(static_cast<size_t>(w * h), -1);
    down_link.assign(static_cast<size_t>(w * h), -1);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            auto n = static_cast<size_t>(y * w + x);
            if (x < w - 1)
                right_link[n] = y * (w - 1) + x;
            if (y < h - 1)
                down_link[n] = (w - 1) * h + y * w + x;
        }
    }
}

bool
Mesh::contains(const Coord &c) const
{
    return c.x >= 0 && c.x < w && c.y >= 0 && c.y < h;
}

int
Mesh::nodeIndex(const Coord &c) const
{
    panicIf(!contains(c), "router ", c.x, ",", c.y, " outside ", w, "x",
            h, " mesh");
    return linearIndex(c, w);
}

int
Mesh::nodeIndexFast(const Coord &c) const
{
    assert(contains(c) && "router outside the mesh");
    return linearIndex(c, w);
}

int
Mesh::linkIndex(const Coord &a, const Coord &b) const
{
    panicIf(manhattan(a, b) != 1, "link endpoints not adjacent");
    panicIf(!contains(a) || !contains(b), "link endpoint outside mesh");
    const Coord &lo = a < b ? a : b;
    if (a.y == b.y)
        return lo.y * (w - 1) + lo.x;
    return (w - 1) * h + lo.y * w + lo.x;
}

int
Mesh::linkIndexFast(int ia, int ib) const
{
    int lo = std::min(ia, ib);
    // Index distance 1 is a horizontal hop — except on a 1-wide
    // mesh, where only vertical links exist.
    int li = std::abs(ib - ia) == 1 && w > 1
        ? right_link[static_cast<size_t>(lo)]
        : down_link[static_cast<size_t>(lo)];
    assert((std::abs(ib - ia) == 1 || std::abs(ib - ia) == w)
           && "link endpoints not adjacent");
    assert(li >= 0 && "link leaves the mesh");
    return li;
}

int
Mesh::nodeOwner(const Coord &c) const
{
    return node_owner[static_cast<size_t>(nodeIndex(c))];
}

int
Mesh::linkOwner(const Coord &a, const Coord &b) const
{
    return link_owner[static_cast<size_t>(linkIndex(a, b))];
}

bool
Mesh::nodeAvailable(const Coord &c, int owner) const
{
    int cur = node_owner[static_cast<size_t>(nodeIndexFast(c))];
    return cur == no_owner || cur == owner;
}

bool
Mesh::linkAvailable(const Coord &a, const Coord &b, int owner) const
{
    int cur = link_owner[static_cast<size_t>(
        linkIndexFast(nodeIndexFast(a), nodeIndexFast(b)))];
    return cur == no_owner || cur == owner;
}

void
Mesh::disableNode(const Coord &c)
{
    auto &slot = node_owner[static_cast<size_t>(nodeIndex(c))];
    if (slot == defect_owner)
        return;
    panicIf(slot != no_owner,
            "cannot disable claimed router ", c.x, ",", c.y);
    slot = defect_owner;
    defect_nodes.push_back(
        static_cast<int32_t>(nodeIndex(c)));
}

void
Mesh::disableLink(const Coord &a, const Coord &b)
{
    int li = linkIndex(a, b);
    auto &slot = link_owner[static_cast<size_t>(li)];
    if (slot == defect_owner)
        return;
    panicIf(slot != no_owner, "cannot disable a claimed link");
    slot = defect_owner;
    defect_links.push_back(static_cast<int32_t>(li));
}

bool
Mesh::routeFree(const Path &path, int owner) const
{
    if (path.empty())
        return true;
    int prev = -1;
    for (const Coord &c : path.nodes) {
        int ni = nodeIndexFast(c);
        int cur = node_owner[static_cast<size_t>(ni)];
        if (cur != no_owner && cur != owner)
            return false;
        if (prev >= 0) {
            int li = linkIndexFast(prev, ni);
            cur = link_owner[static_cast<size_t>(li)];
            if (cur != no_owner && cur != owner)
                return false;
        }
        prev = ni;
    }
    return true;
}

bool
Mesh::tryClaim(const Path &path, int owner)
{
    assert(owner != no_owner && "cannot claim with the no-owner id");

    // Single traversal: validate while recording every index the
    // claim will touch, so success never re-derives them.
    walk_nodes.clear();
    walk_links.clear();
    int prev = -1;
    for (const Coord &c : path.nodes) {
        int ni = nodeIndexFast(c);
        int cur = node_owner[static_cast<size_t>(ni)];
        if (cur != no_owner && cur != owner)
            return false;
        if (prev >= 0) {
            int li = linkIndexFast(prev, ni);
            cur = link_owner[static_cast<size_t>(li)];
            if (cur != no_owner && cur != owner)
                return false;
            walk_links.push_back(li);
        }
        walk_nodes.push_back(ni);
        prev = ni;
    }

    for (int32_t ni : walk_nodes)
        node_owner[static_cast<size_t>(ni)] = owner;
    for (int32_t li : walk_links) {
        auto &slot = link_owner[static_cast<size_t>(li)];
        if (slot == no_owner)
            ++busy_links;
        slot = owner;
    }
    peak_busy_links = std::max(peak_busy_links, busy_links);
    return true;
}

void
Mesh::claim(const Path &path, int owner)
{
    panicIf(owner == no_owner, "cannot claim with the no-owner id");
    // Cold entry: keep the checked per-coordinate validation that
    // the hot tryClaim() walk demotes to asserts.
    for (size_t i = 0; i < path.nodes.size(); ++i) {
        nodeIndex(path.nodes[i]);
        if (i + 1 < path.nodes.size())
            linkIndex(path.nodes[i], path.nodes[i + 1]);
    }
    panicIf(!tryClaim(path, owner), "claim on a busy route");
}

void
Mesh::release(const Path &path, int owner)
{
    int prev = -1;
    for (const Coord &c : path.nodes) {
        int ni = nodeIndexFast(c);
        auto &node = node_owner[static_cast<size_t>(ni)];
        if (node == owner)
            node = no_owner;
        if (prev >= 0) {
            auto &link = link_owner[static_cast<size_t>(
                linkIndexFast(prev, ni))];
            if (link == owner) {
                link = no_owner;
                --busy_links;
            }
        }
        prev = ni;
    }
}

double
Mesh::utilization() const
{
    if (ticks == 0 || numLinks() == 0)
        return 0;
    return static_cast<double>(busy_link_cycles)
        / (static_cast<double>(ticks) * numLinks());
}

void
Mesh::reset()
{
    std::fill(node_owner.begin(), node_owner.end(), no_owner);
    std::fill(link_owner.begin(), link_owner.end(), no_owner);
    // Damage is permanent: a reset clears ownership, not physics.
    for (int32_t ni : defect_nodes)
        node_owner[static_cast<size_t>(ni)] = defect_owner;
    for (int32_t li : defect_links)
        link_owner[static_cast<size_t>(li)] = defect_owner;
    busy_links = 0;
    peak_busy_links = 0;
    ticks = 0;
    busy_link_cycles = 0;
}

} // namespace qsurf::network
