#include "network/mesh.h"

#include <algorithm>

#include "common/logging.h"

namespace qsurf::network {

Mesh::Mesh(int width, int height)
    : w(width), h(height)
{
    fatalIf(w < 1 || h < 1, "mesh must be at least 1x1, got ", w, "x",
            h);
    node_owner.assign(static_cast<size_t>(w * h), no_owner);
    // Horizontal links first ((w-1) per row), then vertical.
    link_owner.assign(static_cast<size_t>((w - 1) * h + w * (h - 1)),
                      no_owner);
}

bool
Mesh::contains(const Coord &c) const
{
    return c.x >= 0 && c.x < w && c.y >= 0 && c.y < h;
}

int
Mesh::nodeIndex(const Coord &c) const
{
    panicIf(!contains(c), "router ", c.x, ",", c.y, " outside ", w, "x",
            h, " mesh");
    return linearIndex(c, w);
}

int
Mesh::linkIndex(const Coord &a, const Coord &b) const
{
    panicIf(manhattan(a, b) != 1, "link endpoints not adjacent");
    panicIf(!contains(a) || !contains(b), "link endpoint outside mesh");
    const Coord &lo = a < b ? a : b;
    if (a.y == b.y)
        return lo.y * (w - 1) + lo.x;
    return (w - 1) * h + lo.y * w + lo.x;
}

int
Mesh::nodeOwner(const Coord &c) const
{
    return node_owner[static_cast<size_t>(nodeIndex(c))];
}

int
Mesh::linkOwner(const Coord &a, const Coord &b) const
{
    return link_owner[static_cast<size_t>(linkIndex(a, b))];
}

bool
Mesh::nodeAvailable(const Coord &c, int owner) const
{
    int cur = nodeOwner(c);
    return cur == no_owner || cur == owner;
}

bool
Mesh::linkAvailable(const Coord &a, const Coord &b, int owner) const
{
    int cur = linkOwner(a, b);
    return cur == no_owner || cur == owner;
}

bool
Mesh::routeFree(const Path &path, int owner) const
{
    if (path.empty())
        return true;
    for (const Coord &c : path.nodes)
        if (!nodeAvailable(c, owner))
            return false;
    for (size_t i = 0; i + 1 < path.nodes.size(); ++i)
        if (!linkAvailable(path.nodes[i], path.nodes[i + 1], owner))
            return false;
    return true;
}

void
Mesh::claim(const Path &path, int owner)
{
    panicIf(owner == no_owner, "cannot claim with the no-owner id");
    panicIf(!routeFree(path, owner), "claim on a busy route");
    for (const Coord &c : path.nodes)
        node_owner[static_cast<size_t>(nodeIndex(c))] = owner;
    for (size_t i = 0; i + 1 < path.nodes.size(); ++i) {
        int li = linkIndex(path.nodes[i], path.nodes[i + 1]);
        if (link_owner[static_cast<size_t>(li)] == no_owner)
            ++busy_links;
        link_owner[static_cast<size_t>(li)] = owner;
    }
}

void
Mesh::release(const Path &path, int owner)
{
    for (const Coord &c : path.nodes) {
        auto &slot = node_owner[static_cast<size_t>(nodeIndex(c))];
        if (slot == owner)
            slot = no_owner;
    }
    for (size_t i = 0; i + 1 < path.nodes.size(); ++i) {
        int li = linkIndex(path.nodes[i], path.nodes[i + 1]);
        auto &slot = link_owner[static_cast<size_t>(li)];
        if (slot == owner) {
            slot = no_owner;
            --busy_links;
        }
    }
}

void
Mesh::tick()
{
    ++ticks;
    busy_link_cycles += static_cast<uint64_t>(busy_links);
}

double
Mesh::utilization() const
{
    if (ticks == 0 || numLinks() == 0)
        return 0;
    return static_cast<double>(busy_link_cycles)
        / (static_cast<double>(ticks) * numLinks());
}

void
Mesh::reset()
{
    std::fill(node_owner.begin(), node_owner.end(), no_owner);
    std::fill(link_owner.begin(), link_owner.end(), no_owner);
    busy_links = 0;
    ticks = 0;
    busy_link_cycles = 0;
}

} // namespace qsurf::network
