/**
 * @file
 * Synthetic traffic characterization of the circuit-switched braid
 * mesh (in the spirit of classic NoC synthetic-traffic studies).
 *
 * Braids claim whole routes exclusively and hold them for d cycles,
 * so the mesh saturates at far lower offered load than a buffered
 * packet network.  This module measures that saturation point — the
 * empirical basis for the `dd_max_utilization` constant in the
 * analytic design-space model (estimate::ModelConstants).
 */

#ifndef QSURF_NETWORK_TRAFFIC_H
#define QSURF_NETWORK_TRAFFIC_H

#include <cstdint>

#include "network/mesh.h"

namespace qsurf::network {

/** Classic synthetic traffic patterns. */
enum class TrafficPattern : uint8_t
{
    Uniform,   ///< Uniform random source/destination pairs.
    Transpose, ///< (x, y) -> (y, x): long diagonal routes.
    Neighbor,  ///< Destination one hop away: minimal routes.
    Hotspot,   ///< All destinations at the mesh center.
};

/** @return a printable name for @p pattern. */
const char *trafficPatternName(TrafficPattern pattern);

/** Traffic-run configuration. */
struct TrafficOptions
{
    TrafficPattern pattern = TrafficPattern::Uniform;

    /** New route requests per node per cycle (offered load). */
    double injection_rate = 0.01;

    /** Cycles each granted route is held (the braid's d). */
    int hold_cycles = 5;

    /** Simulated cycles. */
    uint64_t cycles = 2000;

    /** Placement attempts per cycle (head-of-queue first). */
    int max_attempts_per_cycle = 64;

    /** RNG seed. */
    uint64_t seed = 1;
};

/** Measured behaviour of one traffic run. */
struct TrafficResult
{
    uint64_t offered = 0;    ///< Requests generated.
    uint64_t granted = 0;    ///< Routes successfully placed.
    uint64_t completed = 0;  ///< Routes that ran to release.
    double mean_wait = 0;    ///< Cycles from request to grant.
    double utilization = 0;  ///< Average busy-link fraction.
    double acceptance = 0;   ///< granted / offered.
};

/**
 * Drive @p pattern traffic over a fresh width x height mesh and
 * measure throughput, waiting time and link utilization.
 */
TrafficResult runTraffic(int width, int height,
                         const TrafficOptions &opts = {});

} // namespace qsurf::network

#endif // QSURF_NETWORK_TRAFFIC_H
