/**
 * @file
 * Braid scheduling via message passing (Sections 6.1 and 6.3).
 *
 * The 3-D space-time braid volume is overconstrained to a 2-D
 * circuit-switched routing problem: each 2-qubit logical operation
 * becomes two braid segments (Figure 5's part 1 / part 2) that claim
 * an entire route atomically, hold it for d stabilization cycles and
 * release it; each T gate becomes one braid to a magic-state factory
 * tile.  A dependence-driven ready queue issues braids greedily each
 * cycle; the priority Policies 0-6 of Section 6.3 order the queue.
 *
 * The simulation discovers a static schedule that is replayed at
 * execution time, so the routing heuristics need not be deadlock- or
 * livelock-free (Section 6.1): a braid that cannot be placed simply
 * retries, adapts its route (XY -> YX -> breadth-first detour) and is
 * eventually dropped/re-injected at the back of the queue.
 */

#ifndef QSURF_BRAID_SCHEDULER_H
#define QSURF_BRAID_SCHEDULER_H

#include <cstdint>
#include <vector>

#include "braid/tiled_arch.h"
#include "circuit/circuit.h"
#include "circuit/dag.h"
#include "circuit/interaction.h"
#include "obs/trace.h"

namespace qsurf::braid {

/** The braid prioritization policies of Section 6.3. */
enum class Policy : int
{
    ProgramOrder = 0, ///< No optimization; events in program order.
    Interleave = 1,   ///< Events interleave; ops in program order.
    Layout = 2,       ///< Interleave + interaction-aware layout.
    Criticality = 3,  ///< + sort by highest criticality first.
    Length = 4,       ///< + sort by longest braid first.
    Type = 5,         ///< + sort closing braids before opening.
    Combined = 6,     ///< All of the above (see Section 6.3).
};

/** All policies in order, for sweeps. */
inline constexpr int num_policies = 7;

/** @return "Policy N". */
const char *policyName(Policy policy);

/** Simulation knobs. */
struct BraidOptions
{
    /** Code distance d: braid stabilization time in cycles. */
    int code_distance = 5;

    /** Data tiles per magic-state factory tile. */
    int tiles_per_factory = 8;

    /** Cycles an op waits before trying the YX route. */
    int adapt_timeout = 4;

    /** Cycles before falling back to the adaptive BFS detour. */
    int bfs_timeout = 8;

    /** Cycles before the op is dropped and re-injected. */
    int drop_timeout = 16;

    /** Cap on failed placement attempts per cycle. */
    int max_attempts_per_cycle = 64;

    /**
     * Cycles a factory needs to distill one magic state; 0 means
     * production is never the bottleneck (Section 4.3's factories
     * sized off the critical path).  Non-zero values expose the
     * space-vs-time factory tradeoff as an ablation.
     */
    int magic_production_cycles = 0;

    /** Distilled states a factory can buffer. */
    int magic_buffer_capacity = 2;

    /** Safety bound on simulated cycles. */
    uint64_t max_cycles = 100'000'000;

    /**
     * Event-driven time skipping: when a placement pass claims
     * nothing, jump straight to the next retirement / escalation
     * threshold / factory replenishment instead of ticking one cycle
     * at a time.  Results are bit-identical either way; disabling
     * reproduces the original loop for A/B perf measurement.
     */
    bool fast_forward = true;

    /**
     * Use the pre-optimization claim paths (double-walk claims,
     * per-detour BFS allocation); identical results, original cost.
     * Together with fast_forward = false this reproduces the
     * pre-change simulator for honest baseline measurement.
     */
    bool legacy_paths = false;

    /** Layout RNG seed. */
    uint64_t seed = 1;

    /** Fabric damage recipe (see fabric/defect.h).  The default is
     *  the perfect mesh every run assumed before defect awareness. */
    fabric::DefectParams defects;

    /** Structured-event trace hook; null disables tracing (see
     *  obs/trace.h).  Never changes results. */
    obs::TraceRecorder *trace = nullptr;
};

/** Results of one braid-scheduling run (one Figure 6 bar). */
struct BraidResult
{
    /** Total cycles to complete the program. */
    uint64_t schedule_cycles = 0;

    /** Dependence-limited lower bound (unbounded resources). */
    uint64_t critical_path_cycles = 0;

    /** Average fraction of mesh links busy (Figure 6 red curve). */
    double mesh_utilization = 0;

    /** Braid segments successfully placed. */
    uint64_t braids_placed = 0;

    /** Failed placement attempts (route conflicts). */
    uint64_t placement_failures = 0;

    /** Placements that needed the YX fallback. */
    uint64_t yx_fallbacks = 0;

    /** Placements that needed the BFS detour. */
    uint64_t bfs_detours = 0;

    /** Drop/re-inject events. */
    uint64_t drops = 0;

    /** T placements refused because no factory had a state ready. */
    uint64_t magic_starvations = 0;

    /** Interaction-weighted layout cost (Section 6.2 objective). */
    double layout_cost = 0;

    /** Cycles elided by the event-driven fast-forward. */
    uint64_t ff_skipped_cycles = 0;

    /** Fraction of fabric tiles dead (0 on a perfect fabric). */
    double defect_dead_fraction = 0;

    /** Mean per-tile error-rate multiplier over live tiles (1 on a
     *  perfect fabric). */
    double defect_avg_multiplier = 1;

    /** Permanently defective mesh routers. */
    uint64_t defective_nodes = 0;

    /** Permanently defective mesh links. */
    uint64_t defective_links = 0;

    /** @return schedule length / critical path (Figure 6 blue bar). */
    double
    ratio() const
    {
        return critical_path_cycles
            ? static_cast<double>(schedule_cycles)
                / static_cast<double>(critical_path_cycles)
            : 0.0;
    }
};

/**
 * The expensive prepare artifact of braid scheduling: everything the
 * simulator derives from the circuit and the seeded layout alone —
 * the dependence DAG, the interaction graph, the tiled machine and
 * the per-gate criticality.  Immutable once built and shared across
 * concurrent runs; scheduleBraids() handed one skips straight to the
 * cycle loop, and building it inline is bit-identical.
 */
struct BraidPrepared
{
    circuit::Dag dag;
    circuit::InteractionGraph graph;
    TiledArch arch;
    std::vector<int> crit;

    BraidPrepared(const circuit::Circuit &circ,
                  const TiledArchOptions &arch_opts);
};

/**
 * @return the TiledArchOptions (@p policy, @p opts) resolve to — the
 * layout inputs a cached BraidPrepared must have been built with
 * (Policies 2+ use the interaction-aware layout).
 */
TiledArchOptions braidArchOptions(Policy policy,
                                  const BraidOptions &opts);

/**
 * Dependence-limited critical path of @p circ in braid cycles, using
 * the same latency model as the simulator: 1-qubit ops d, T gates
 * d+1 (factory braid), 2-qubit ops 2d+2 (two braid segments).
 */
uint64_t braidCriticalPath(const circuit::Circuit &circ, int d);

/**
 * Simulate braid scheduling of @p circ (which must already be
 * decomposed to Clifford+T) under @p policy.
 */
BraidResult scheduleBraids(const circuit::Circuit &circ, Policy policy,
                           const BraidOptions &opts = {});

/**
 * Same simulation, reusing @p prepared (built for this circuit with
 * braidArchOptions(policy, opts)); bit-identical to the inline path.
 */
BraidResult scheduleBraids(const circuit::Circuit &circ, Policy policy,
                           const BraidOptions &opts,
                           const BraidPrepared &prepared);

} // namespace qsurf::braid

#endif // QSURF_BRAID_SCHEDULER_H
