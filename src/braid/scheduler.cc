#include "braid/scheduler.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "circuit/dag.h"
#include "circuit/schedule.h"
#include "common/logging.h"
#include "engine/sim.h"
#include "network/route.h"

namespace qsurf::braid {

const char *
policyName(Policy policy)
{
    static const char *names[num_policies] = {
        "Policy 0", "Policy 1", "Policy 2", "Policy 3",
        "Policy 4", "Policy 5", "Policy 6",
    };
    auto i = static_cast<size_t>(policy);
    panicIf(i >= num_policies, "bad policy ", static_cast<int>(policy));
    return names[i];
}

namespace {

using circuit::GateKind;

/** How an op uses the machine. */
enum class OpClass : uint8_t
{
    Local, ///< 1-qubit non-T gate: tile-local, d cycles.
    TGate, ///< T/Tdag: one braid to a factory, d+1 cycles.
    TwoQ,  ///< 2-qubit gate: two braid segments, 2d+2 cycles.
};

/** Progress of one op through its stages. */
enum class Stage : uint8_t
{
    Blocked,    ///< Dependencies outstanding.
    Ready,      ///< First segment (or local body) may start.
    Seg1Active, ///< First braid segment stabilizing.
    Seg2Ready,  ///< Second segment may start (closing braid).
    Seg2Active, ///< Second braid segment stabilizing.
    Done,
};

struct OpRec
{
    OpClass cls = OpClass::Local;
    Stage stage = Stage::Blocked;
    int32_t qa = -1;
    int32_t qb = -1;
    int pending_preds = 0;
    int wait = 0;          ///< Cycles spent failing to place.
    int est_len = 0;       ///< Manhattan estimate for Policy 4/6.
    network::Path route;   ///< Currently claimed route.
};

OpClass
classify(const circuit::Gate &g)
{
    if (consumesMagicState(g.kind))
        return OpClass::TGate;
    int arity = g.arity();
    fatalIf(arity > 2, "gate ", circuit::gateName(g.kind),
            " must be decomposed before braid scheduling");
    return arity == 2 ? OpClass::TwoQ : OpClass::Local;
}

uint64_t
opLatency(OpClass cls, int d)
{
    switch (cls) {
      case OpClass::Local:
        return static_cast<uint64_t>(d);
      case OpClass::TGate:
        return static_cast<uint64_t>(d) + 1;
      case OpClass::TwoQ:
        return 2 * static_cast<uint64_t>(d) + 2;
    }
    panic("bad OpClass");
}

/** The simulator. */
class Simulator
{
  public:
    Simulator(const circuit::Circuit &circ, Policy policy,
              const BraidOptions &opts, const BraidPrepared &prep)
        : circ(circ), policy(policy), opts(opts), dag(prep.dag),
          graph(prep.graph), arch(prep.arch), mesh(arch.makeMesh()),
          claim_opts(makeClaimOptions(opts)),
          claimer(mesh, claim_opts), crit(prep.crit),
          trace(opts.trace)
    {
        if (trace) {
            trace->meshDims(mesh.width(), mesh.height());
            obs::traceMeshDefects(trace, mesh);
        }
        // Factory preference orders are a pure function of the
        // static layout; memoize them per qubit so a stalled T gate
        // doesn't re-sort the factory list every failed attempt.
        factory_order.resize(
            static_cast<size_t>(graph.num_qubits));
        for (int q = 0; q < graph.num_qubits; ++q)
            factory_order[static_cast<size_t>(q)] =
                arch.factoriesByDistance(q);
        buildOps();
        factories.configure(arch.numFactories(),
                            opts.magic_production_cycles,
                            opts.magic_buffer_capacity);
        factories.setTrace(trace);
        // Policy 6 treats the top criticality quartile as "highest
        // criticality" (short-first); the rest go long-first.
        std::vector<int> sorted_crit = crit;
        std::sort(sorted_crit.begin(), sorted_crit.end());
        crit_threshold = sorted_crit.empty()
            ? 0
            : sorted_crit[sorted_crit.size() * 3 / 4];
    }

    BraidResult
    run()
    {
        seedReady();
        uint64_t completed = 0;
        auto total = static_cast<uint64_t>(circ.size());

        while (completed < total) {
            fatalIf(cycle > opts.max_cycles,
                    "braid simulation exceeded ", opts.max_cycles,
                    " cycles; likely a configuration problem");
            factories.replenish(cycle);
            placementPhase();
            if (opts.fast_forward)
                fastForwardPhase();
            mesh.tick();
            ++cycle;
            completed += completionPhase();
        }

        BraidResult out;
        out.schedule_cycles = cycle;
        out.critical_path_cycles =
            braidCriticalPath(circ, opts.code_distance);
        out.mesh_utilization = mesh.utilization();
        out.braids_placed = braids_placed;
        out.placement_failures = placement_failures;
        out.yx_fallbacks = claimer.transposeFallbacks();
        out.bfs_detours = claimer.bfsDetours();
        out.drops = drops;
        out.magic_starvations = magic_starvations;
        out.layout_cost = arch.layoutCost(graph);
        out.ff_skipped_cycles = ff.skipped();
        out.defect_dead_fraction = arch.defects().deadFraction();
        out.defect_avg_multiplier =
            arch.defects().avgErrorMultiplier();
        out.defective_nodes =
            static_cast<uint64_t>(mesh.numDefectiveNodes());
        out.defective_links =
            static_cast<uint64_t>(mesh.numDefectiveLinks());
        return out;
    }

  private:
    static engine::RouteClaimOptions
    makeClaimOptions(const BraidOptions &opts)
    {
        engine::RouteClaimOptions c;
        c.adapt_timeout = opts.adapt_timeout;
        c.bfs_timeout = opts.bfs_timeout;
        c.legacy_paths = opts.legacy_paths;
        return c;
    }

    void
    buildOps()
    {
        ops.resize(static_cast<size_t>(circ.size()));
        for (int i = 0; i < circ.size(); ++i) {
            const circuit::Gate &g = circ.gate(i);
            OpRec &op = ops[static_cast<size_t>(i)];
            op.cls = classify(g);
            op.qa = g.qubit[0];
            op.qb = g.arity() == 2 ? g.qubit[1] : -1;
            op.pending_preds =
                static_cast<int>(dag.preds(i).size());
            op.est_len = estimateLength(op);
        }
    }

    int
    estimateLength(const OpRec &op) const
    {
        switch (op.cls) {
          case OpClass::Local:
            return 0;
          case OpClass::TGate: {
            int f = factory_order[static_cast<size_t>(op.qa)]
                        .front();
            return manhattan(arch.terminal(op.qa),
                             arch.factoryTerminal(f));
          }
          case OpClass::TwoQ:
            return manhattan(arch.terminal(op.qa),
                             arch.terminal(op.qb));
        }
        panic("bad OpClass");
    }

    void
    seedReady()
    {
        for (int i = 0; i < circ.size(); ++i)
            if (ops[static_cast<size_t>(i)].pending_preds == 0)
                makeReady(i, Stage::Ready);
    }

    void
    makeReady(int i, Stage stage)
    {
        ops[static_cast<size_t>(i)].stage = stage;
        ops[static_cast<size_t>(i)].wait = 0;
        ready.insert(makeEntry(i));
        if (trace)
            trace->record({cycle, obs::EventKind::OpReady, i,
                           stage == Stage::Seg2Ready ? 1 : 0});
    }

    /** Build the policy-specific sort key (Section 6.3). */
    engine::ReadyEntry
    makeEntry(int i)
    {
        const OpRec &op = ops[static_cast<size_t>(i)];
        engine::ReadyEntry e;
        e.id = i;
        bool closing = op.stage == Stage::Seg2Ready;
        switch (policy) {
          case Policy::ProgramOrder:
          case Policy::Interleave:
          case Policy::Layout:
            // FIFO by readiness.
            break;
          case Policy::Criticality:
            e.k1 = -crit[static_cast<size_t>(i)];
            break;
          case Policy::Length:
            e.k1 = -op.est_len;
            break;
          case Policy::Type:
            e.k1 = closing ? 0 : 1;
            break;
          case Policy::Combined:
            e.k1 = closing ? 0 : 1;
            e.k2 = -crit[static_cast<size_t>(i)];
            e.k3 = crit[static_cast<size_t>(i)] >= crit_threshold
                ? op.est_len   // highest criticality: short first.
                : -op.est_len; // lower criticality: long first.
            break;
        }
        return e;
    }

    /**
     * Try to claim a route for op @p i (stage-appropriate segment)
     * via the engine's shared XY -> YX -> BFS escalation.
     */
    bool
    tryPlace(int i)
    {
        OpRec &op = ops[static_cast<size_t>(i)];
        if (op.cls == OpClass::Local) {
            if (trace)
                trace->record({cycle, obs::EventKind::OpIssue, i, 0,
                               opts.code_distance});
            activate(i, opts.code_distance);
            return true;
        }

        Coord src = arch.terminal(op.qa);
        // Candidate destinations: (router, factory index or -1).
        std::vector<std::pair<Coord, int>> &dsts = dsts_scratch;
        dsts.clear();
        if (op.cls == OpClass::TwoQ) {
            dsts.emplace_back(arch.terminal(op.qb), -1);
        } else if (!engine::appendStockedFactories(
                       factories,
                       factory_order[static_cast<size_t>(op.qa)],
                       op.wait, opts.adapt_timeout, dsts,
                       [this](int f) {
                           return arch.factoryTerminal(f);
                       })) {
            ++magic_starvations;
            ++pass_starved;
            if (trace
                && obs::stallEventGate(op.wait, opts.adapt_timeout,
                                       opts.bfs_timeout))
                trace->record(
                    {cycle, obs::EventKind::FactoryStarve, i});
            return false;
        }

        // Figure 5: the two segments take different geometries; we
        // open part 1 XY-first and part 2 YX-first.
        bool closing = op.stage == Stage::Seg2Ready;
        uint64_t transpose_before = 0;
        uint64_t bfs_before = 0;
        if (trace) {
            transpose_before = claimer.transposeFallbacks();
            bfs_before = claimer.bfsDetours();
        }
        for (const auto &[dst, factory] : dsts) {
            auto path =
                claimer.tryClaim(src, dst, i, op.wait, closing);
            if (path) {
                factories.consume(factory);
                if (trace) {
                    int64_t stage =
                        claimer.bfsDetours() > bfs_before ? 2
                        : claimer.transposeFallbacks()
                                > transpose_before
                            ? 1
                            : 0;
                    trace->record({cycle,
                                   obs::EventKind::RouteClaim, i,
                                   stage, path->hops(), factory});
                    if (stage > 0)
                        trace->record(
                            {cycle, obs::EventKind::RouteFallback,
                             i, stage});
                    trace->routeHeld(
                        *path, cycle,
                        static_cast<uint64_t>(opts.code_distance)
                            + 1);
                    trace->record(
                        {cycle, obs::EventKind::OpIssue, i,
                         op.cls == OpClass::TGate ? 1 : 2,
                         opts.code_distance + 1});
                }
                placed(i, std::move(*path));
                return true;
            }
        }
        if (trace
            && obs::stallEventGate(op.wait, opts.adapt_timeout,
                                   opts.bfs_timeout))
            trace->record({cycle, obs::EventKind::RouteDeny, i,
                           op.wait});
        return false;
    }

    /** Record a successful placement on an already-claimed route. */
    void
    placed(int i, network::Path path)
    {
        OpRec &op = ops[static_cast<size_t>(i)];
        op.route = std::move(path);
        ++braids_placed;
        // Braid open consumes one cycle, then d stabilization rounds.
        activate(i, opts.code_distance + 1);
    }

    void
    activate(int i, int duration)
    {
        OpRec &op = ops[static_cast<size_t>(i)];
        op.stage = op.stage == Stage::Seg2Ready ? Stage::Seg2Active
                                                : Stage::Seg1Active;
        expiry.schedule(cycle + static_cast<uint64_t>(duration), i);
    }

    /** Greedy placement, policy-ordered; Policy 0 is one-at-a-time. */
    void
    placementPhase()
    {
        pass_placed = 0;
        pass_dropped = 0;
        pass_starved = 0;
        attempted.clear();

        if (policy == Policy::ProgramOrder) {
            programOrderPlacement();
            return;
        }

        int failures = 0;
        dropped_scratch.clear();
        auto it = ready.begin();
        while (it != ready.end()
               && failures < opts.max_attempts_per_cycle) {
            int i = it->id;
            int wait_used = ops[static_cast<size_t>(i)].wait;
            if (tryPlace(i)) {
                ++pass_placed;
                it = ready.erase(it);
                continue;
            }
            ++failures;
            ++placement_failures;
            OpRec &op = ops[static_cast<size_t>(i)];
            ++op.wait;
            if (op.wait >= opts.drop_timeout) {
                // Drop and re-inject at the back of the queue.
                ++drops;
                ++pass_dropped;
                op.wait = 0;
                it = ready.erase(it);
                dropped_scratch.push_back(i);
                if (trace)
                    trace->record(
                        {cycle, obs::EventKind::RouteDrop, i});
                continue;
            }
            attempted.push_back({i, wait_used});
            ++it;
        }
        for (int i : dropped_scratch)
            ready.insert(makeEntry(i));
    }

    /**
     * Policy 0: only the program-order-next event may start, at most
     * one per cycle; nothing may bypass a blocked event.
     */
    void
    programOrderPlacement()
    {
        auto head = ready.end();
        for (auto it = ready.begin(); it != ready.end(); ++it)
            if (head == ready.end() || it->id < head->id)
                head = it;
        if (head == ready.end())
            return;

        int i = head->id;
        int wait_used = ops[static_cast<size_t>(i)].wait;
        if (tryPlace(i)) {
            ++pass_placed;
            ready.erase(head);
            return;
        }
        ++placement_failures;
        OpRec &op = ops[static_cast<size_t>(i)];
        ++op.wait;
        if (op.wait >= opts.drop_timeout) {
            // Dropping is meaningless under strict order; keep the
            // route-adaptivity escalation armed and count the event.
            ++drops;
            ++pass_dropped;
            op.wait = opts.bfs_timeout;
            if (trace)
                trace->record({cycle, obs::EventKind::RouteDrop, i});
        }
        attempted.push_back({i, wait_used});
    }

    /**
     * When the pass above placed nothing (and dropped nothing, so
     * the ready queue kept its order), every iteration until the
     * next interesting event is a pure repetition: same failed
     * attempts, same starvations, wait counters +1 each.  Jump
     * there, accounting the elided iterations in bulk.
     */
    void
    fastForwardPhase()
    {
        if (pass_placed > 0 || pass_dropped > 0)
            return;
        uint64_t skip = engine::fastForwardAfterStall(
            ff, expiry, mesh, cycle, opts.max_cycles + 1, attempted,
            [this](int i) -> int & {
                return ops[static_cast<size_t>(i)].wait;
            },
            claim_opts, opts.drop_timeout, placement_failures,
            [this](engine::FastForward &planner) {
                // A replenishment that raises a stock can change a
                // T gate's candidate factories.
                factories.registerEvents(planner);
            });
        if (trace && skip > 0)
            trace->record({cycle, obs::EventKind::FastForwardSkip,
                           -1, static_cast<int64_t>(skip)});
        cycle += skip;
        magic_starvations += pass_starved * skip;
    }

    /** Retire expired segments; returns number of ops completed. */
    uint64_t
    completionPhase()
    {
        uint64_t completed = 0;
        while (auto ripe = expiry.popRipe(cycle)) {
            int i = *ripe;
            OpRec &op = ops[static_cast<size_t>(i)];
            if (!op.route.empty()) {
                mesh.release(op.route, i);
                op.route = network::Path{};
            }
            if (op.cls == OpClass::TwoQ
                && op.stage == Stage::Seg1Active) {
                makeReady(i, Stage::Seg2Ready);
                continue;
            }
            op.stage = Stage::Done;
            ++completed;
            if (trace)
                trace->record({cycle, obs::EventKind::OpRetire, i});
            for (int s : dag.succs(i))
                if (--ops[static_cast<size_t>(s)].pending_preds == 0)
                    makeReady(s, Stage::Ready);
        }
        return completed;
    }

    const circuit::Circuit &circ;
    Policy policy;
    const BraidOptions &opts;
    const circuit::Dag &dag;
    const circuit::InteractionGraph &graph;
    const TiledArch &arch;
    network::Mesh mesh;
    engine::RouteClaimOptions claim_opts;
    engine::RouteClaimer claimer;

    std::vector<OpRec> ops;
    const std::vector<int> &crit;
    std::vector<std::vector<int>> factory_order; ///< Per qubit.
    int crit_threshold = 0;
    engine::ReadyQueue ready;
    engine::ExpiryQueue expiry;
    engine::FastForward ff;
    uint64_t cycle = 0;

    /** Per-pass bookkeeping feeding fastForwardPhase(). */
    uint64_t pass_placed = 0;
    uint64_t pass_dropped = 0;
    uint64_t pass_starved = 0;
    std::vector<std::pair<int, int>> attempted; ///< (id, wait used).
    std::vector<int> dropped_scratch;
    std::vector<std::pair<Coord, int>> dsts_scratch;

    engine::MagicFactoryPool factories;
    obs::TraceRecorder *trace;

    uint64_t braids_placed = 0;
    uint64_t placement_failures = 0;
    uint64_t drops = 0;
    uint64_t magic_starvations = 0;
};

} // namespace

uint64_t
braidCriticalPath(const circuit::Circuit &circ, int d)
{
    fatalIf(d < 1, "code distance must be >= 1, got ", d);
    circuit::Dag dag(circ);
    std::vector<uint64_t> finish(static_cast<size_t>(circ.size()), 0);
    uint64_t best = 0;
    for (int i = 0; i < circ.size(); ++i) {
        uint64_t start = 0;
        for (int p : dag.preds(i))
            start = std::max(start, finish[static_cast<size_t>(p)]);
        uint64_t lat = opLatency(classify(circ.gate(i)), d);
        finish[static_cast<size_t>(i)] = start + lat;
        best = std::max(best, finish[static_cast<size_t>(i)]);
    }
    return best;
}

BraidPrepared::BraidPrepared(const circuit::Circuit &circ,
                             const TiledArchOptions &arch_opts)
    : dag(circ), graph(circuit::interactionGraph(circ)),
      arch(graph, arch_opts), crit(circuit::criticality(dag))
{
}

TiledArchOptions
braidArchOptions(Policy policy, const BraidOptions &opts)
{
    TiledArchOptions a;
    a.tiles_per_factory = opts.tiles_per_factory;
    a.optimized_layout = static_cast<int>(policy) >= 2;
    a.seed = opts.seed;
    a.defects = opts.defects;
    return a;
}

BraidResult
scheduleBraids(const circuit::Circuit &circ, Policy policy,
               const BraidOptions &opts)
{
    fatalIf(circ.empty(), "cannot schedule an empty circuit");
    BraidPrepared prepared(circ, braidArchOptions(policy, opts));
    return scheduleBraids(circ, policy, opts, prepared);
}

BraidResult
scheduleBraids(const circuit::Circuit &circ, Policy policy,
               const BraidOptions &opts, const BraidPrepared &prepared)
{
    fatalIf(circ.empty(), "cannot schedule an empty circuit");
    fatalIf(opts.code_distance < 1, "code distance must be >= 1");
    return Simulator(circ, policy, opts, prepared).run();
}

} // namespace qsurf::braid
