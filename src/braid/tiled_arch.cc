#include "braid/tiled_arch.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace qsurf::braid {

namespace {

/** Convert the interaction graph into a partitioner graph. */
partition::Graph
toPartitionGraph(const circuit::InteractionGraph &ig)
{
    partition::Graph g(ig.num_qubits);
    for (const auto &[pair, w] : ig.edges)
        g.addEdge(pair.first, pair.second,
                  static_cast<int64_t>(w));
    return g;
}

} // namespace

Coord
TiledArch::tileCenter(const Coord &tile)
{
    return Coord{2 * tile.x + 1, 2 * tile.y + 1};
}

TiledArch::TiledArch(const circuit::InteractionGraph &graph,
                     const TiledArchOptions &opts)
{
    nq = graph.num_qubits;
    fatalIf(nq < 1, "tiled architecture needs at least one qubit");
    fatalIf(opts.tiles_per_factory < 1,
            "tiles_per_factory must be >= 1");

    // Near-square data region plus one factory column on the right.
    auto [dw, dh] = partition::gridShape(nq);
    int nfac = std::max(1, nq / opts.tiles_per_factory);
    tw = dw + 1;
    th = std::max(dh, std::min(nfac, dh));

    // Factory tiles: rightmost column, spread top to bottom.
    nfac = std::min(nfac, th);
    for (int i = 0; i < nfac; ++i) {
        int y = nfac == 1 ? th / 2
                          : i * (th - 1) / (nfac - 1);
        factories.push_back(Coord{tw - 1, y});
    }

    // Data-qubit placement on the data region.
    qubit_tile.resize(static_cast<size_t>(nq));
    partition::GridLayout layout;
    if (opts.optimized_layout) {
        partition::Graph pg = toPartitionGraph(graph);
        layout = partition::layoutOnGrid(pg, dw, dh, opts.seed);
    } else {
        layout = partition::naiveLayout(nq, dw, dh);
    }
    for (int q = 0; q < nq; ++q)
        qubit_tile[static_cast<size_t>(q)] =
            layout.position[static_cast<size_t>(q)];
}

Coord
TiledArch::tileOf(int32_t q) const
{
    panicIf(q < 0 || q >= nq, "qubit ", q, " out of range");
    return qubit_tile[static_cast<size_t>(q)];
}

Coord
TiledArch::terminal(int32_t q) const
{
    return tileCenter(tileOf(q));
}

Coord
TiledArch::factoryTerminal(int f) const
{
    panicIf(f < 0 || f >= numFactories(), "factory ", f,
            " out of range");
    return tileCenter(factories[static_cast<size_t>(f)]);
}

std::vector<int>
TiledArch::factoriesByDistance(int32_t q) const
{
    Coord tile = tileOf(q);
    std::vector<int> order(factories.size());
    for (size_t i = 0; i < factories.size(); ++i)
        order[i] = static_cast<int>(i);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return manhattan(tile, factories[static_cast<size_t>(a)])
             < manhattan(tile, factories[static_cast<size_t>(b)]);
    });
    return order;
}

network::Mesh
TiledArch::makeMesh() const
{
    return network::Mesh(2 * tw + 1, 2 * th + 1);
}

double
TiledArch::layoutCost(const circuit::InteractionGraph &graph) const
{
    double sum = 0;
    for (const auto &[pair, w] : graph.edges)
        sum += static_cast<double>(w)
             * manhattan(tileOf(pair.first), tileOf(pair.second));
    return sum;
}

} // namespace qsurf::braid
