#include "braid/tiled_arch.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace qsurf::braid {

namespace {

/** Convert the interaction graph into a partitioner graph. */
partition::Graph
toPartitionGraph(const circuit::InteractionGraph &ig)
{
    partition::Graph g(ig.num_qubits);
    for (const auto &[pair, w] : ig.edges)
        g.addEdge(pair.first, pair.second,
                  static_cast<int64_t>(w));
    return g;
}

} // namespace

Coord
TiledArch::tileCenter(const Coord &tile)
{
    return Coord{2 * tile.x + 1, 2 * tile.y + 1};
}

TiledArch::TiledArch(const circuit::InteractionGraph &graph,
                     const TiledArchOptions &opts)
{
    nq = graph.num_qubits;
    fatalIf(nq < 1, "tiled architecture needs at least one qubit");
    fatalIf(opts.tiles_per_factory < 1,
            "tiles_per_factory must be >= 1");

    // Near-square data region plus one factory column on the right.
    // On a damaged fabric the grid grows one data row at a time until
    // the live cells hold every qubit and at least one factory tile
    // survives; the map re-materializes per candidate grid, so the
    // machine is still a pure function of (graph, options).
    auto [dw, dh0] = partition::gridShape(nq);
    int dh = dh0;
    int want_fac = std::max(1, nq / opts.tiles_per_factory);
    for (int grow = 0;; ++grow) {
        fatalIf(grow > 256, "defect map leaves no room for ", nq,
                " qubits");
        tw = dw + 1;
        th = std::max(dh, std::min(want_fac, dh));
        defect_map = fabric::DefectMap::materialize(opts.defects, tw,
                                                    th);
        int live = 0;
        for (int y = 0; y < dh; ++y)
            for (int x = 0; x < dw; ++x)
                live += !defect_map.deadTile(x, y);
        if (live < nq) {
            ++dh;
            continue;
        }

        // Factory tiles: rightmost column, spread top to bottom.
        // A dead nominal position slides to the nearest live row in
        // the column (below first on ties); dead rows beyond that
        // drop the factory.
        factories.clear();
        int nfac = std::min(want_fac, th);
        std::vector<uint8_t> used(static_cast<size_t>(th), 0);
        for (int i = 0; i < nfac; ++i) {
            int y = nfac == 1 ? th / 2
                              : i * (th - 1) / (nfac - 1);
            int pick = -1;
            for (int d = 0; d < th && pick < 0; ++d)
                for (int s : {y + d, y - d}) {
                    if (s < 0 || s >= th
                        || used[static_cast<size_t>(s)]
                        || defect_map.deadTile(tw - 1, s))
                        continue;
                    pick = s;
                    break;
                }
            if (pick >= 0) {
                used[static_cast<size_t>(pick)] = 1;
                factories.push_back(Coord{tw - 1, pick});
            }
        }
        if (factories.empty()) {
            ++dh;
            continue;
        }
        break;
    }

    // Data-qubit placement on the live cells of the data region.
    partition::CellMask mask;
    if (!defect_map.empty()) {
        mask.assign(static_cast<size_t>(dw * dh), 0);
        for (int y = 0; y < dh; ++y)
            for (int x = 0; x < dw; ++x)
                if (defect_map.deadTile(x, y))
                    mask[static_cast<size_t>(y * dw + x)] = 1;
    }
    qubit_tile.resize(static_cast<size_t>(nq));
    partition::GridLayout layout;
    if (opts.optimized_layout) {
        partition::Graph pg = toPartitionGraph(graph);
        layout = partition::layoutOnGrid(pg, dw, dh, opts.seed, mask);
    } else {
        layout = partition::naiveLayout(nq, dw, dh, mask);
    }
    for (int q = 0; q < nq; ++q)
        qubit_tile[static_cast<size_t>(q)] =
            layout.position[static_cast<size_t>(q)];
}

Coord
TiledArch::tileOf(int32_t q) const
{
    panicIf(q < 0 || q >= nq, "qubit ", q, " out of range");
    return qubit_tile[static_cast<size_t>(q)];
}

Coord
TiledArch::terminal(int32_t q) const
{
    return tileCenter(tileOf(q));
}

Coord
TiledArch::factoryTerminal(int f) const
{
    panicIf(f < 0 || f >= numFactories(), "factory ", f,
            " out of range");
    return tileCenter(factories[static_cast<size_t>(f)]);
}

std::vector<int>
TiledArch::factoriesByDistance(int32_t q) const
{
    Coord tile = tileOf(q);
    std::vector<int> order(factories.size());
    for (size_t i = 0; i < factories.size(); ++i)
        order[i] = static_cast<int>(i);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return manhattan(tile, factories[static_cast<size_t>(a)])
             < manhattan(tile, factories[static_cast<size_t>(b)]);
    });
    return order;
}

network::Mesh
TiledArch::makeMesh() const
{
    network::Mesh mesh(2 * tw + 1, 2 * th + 1);
    if (defect_map.empty())
        return mesh;
    // A dead tile loses its center router; a broken tile-to-tile
    // coupler loses the two mesh links of the straight segment
    // between the tile centers (through-traffic on the channel
    // between them still flows).
    for (const Coord &t : defect_map.deadTiles())
        mesh.disableNode(tileCenter(t));
    for (const auto &[a, b] : defect_map.disabledLinks()) {
        Coord ca = tileCenter(a);
        Coord cb = tileCenter(b);
        Coord mid{(ca.x + cb.x) / 2, (ca.y + cb.y) / 2};
        mesh.disableLink(ca, mid);
        mesh.disableLink(mid, cb);
    }
    return mesh;
}

double
TiledArch::layoutCost(const circuit::InteractionGraph &graph) const
{
    double sum = 0;
    for (const auto &[pair, w] : graph.edges)
        sum += static_cast<double>(w)
             * manhattan(tileOf(pair.first), tileOf(pair.second));
    return sum;
}

} // namespace qsurf::braid
