/**
 * @file
 * Tiled architecture for double-defect QEC (Section 4.5, Figure 3b).
 *
 * One tile per logical qubit on a 2-D grid; braid channels run
 * between tiles and through them.  The routing mesh places a router
 * at every tile center and every channel point between tiles — a
 * (2W+1) x (2H+1) router grid for a W x H tile grid — so braids
 * between distinct tiles never contend on terminals, only on the
 * shared channel fabric.  Dedicated magic-state factory tiles sit in
 * a right-hand column, supplying surrounding tiles (Figure 3b).
 */

#ifndef QSURF_BRAID_TILED_ARCH_H
#define QSURF_BRAID_TILED_ARCH_H

#include <vector>

#include "circuit/interaction.h"
#include "common/geometry.h"
#include "fabric/defect.h"
#include "network/mesh.h"
#include "partition/layout.h"

namespace qsurf::braid {

/** Configuration of the tiled double-defect machine. */
struct TiledArchOptions
{
    /** Data tiles per magic-state factory tile (1:8 by default). */
    int tiles_per_factory = 8;

    /** Use the interaction-aware layout (Policies 2+). */
    bool optimized_layout = false;

    /** Layout RNG seed. */
    uint64_t seed = 1;

    /** Fabric damage: dead tiles are never placed on, their routers
     *  never claimed; the grid grows until the live cells fit. */
    fabric::DefectParams defects;
};

/**
 * The tile grid: placement of logical data qubits and factory tiles,
 * plus the mapping from tiles to routing-mesh coordinates.
 */
class TiledArch
{
  public:
    /**
     * Build the machine for @p graph (one vertex per logical qubit),
     * sizing a near-square grid of data tiles plus a factory column.
     */
    TiledArch(const circuit::InteractionGraph &graph,
              const TiledArchOptions &opts);

    /** @return number of logical data qubits. */
    int numQubits() const { return nq; }

    /** @return tile-grid width (including the factory column). */
    int tileWidth() const { return tw; }

    /** @return tile-grid height. */
    int tileHeight() const { return th; }

    /** @return number of magic-state factory tiles. */
    int numFactories() const { return static_cast<int>(factories.size()); }

    /** @return router coordinate of qubit @p q's tile center. */
    Coord terminal(int32_t q) const;

    /** @return router coordinate of factory @p f's tile center. */
    Coord factoryTerminal(int f) const;

    /**
     * @return factory indices sorted by Manhattan distance from the
     * tile of @p q (nearest first).
     */
    std::vector<int> factoriesByDistance(int32_t q) const;

    /** @return a routing mesh sized for this machine (fresh state). */
    network::Mesh makeMesh() const;

    /** @return tile-grid position of qubit @p q. */
    Coord tileOf(int32_t q) const;

    /**
     * @return sum of interaction-weighted Manhattan tile distances —
     * the layout objective of Section 6.2.
     */
    double layoutCost(const circuit::InteractionGraph &graph) const;

    /** @return the materialized defect map (empty when healthy). */
    const fabric::DefectMap &defects() const { return defect_map; }

  private:
    static Coord tileCenter(const Coord &tile);

    int nq;
    int tw;
    int th;
    std::vector<Coord> qubit_tile;
    std::vector<Coord> factories;
    fabric::DefectMap defect_map;
};

} // namespace qsurf::braid

#endif // QSURF_BRAID_TILED_ARCH_H
