#include "engine/registry.h"

#include <algorithm>

#include "common/logging.h"

namespace qsurf::engine {

void
Registry::add(std::unique_ptr<Backend> backend)
{
    panicIf(!backend, "cannot register a null backend");
    std::string name = backend->name();
    fatalIf(name.empty(), "backend names must be non-empty");

    std::lock_guard<std::mutex> lock(mutex);
    for (const auto &e : entries)
        fatalIf(e->name() == name,
                "backend '", name, "' is already registered");
    entries.push_back(std::move(backend));
}

const Backend &
Registry::get(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex);
    for (const auto &e : entries)
        if (e->name() == name)
            return *e;

    std::string known;
    for (const auto &e : entries)
        known += (known.empty() ? "" : ", ") + e->name();
    fatal("unknown backend '", name, "' (registered: ", known, ")");
}

bool
Registry::contains(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex);
    for (const auto &e : entries)
        if (e->name() == name)
            return true;
    return false;
}

std::vector<std::string>
Registry::names() const
{
    std::lock_guard<std::mutex> lock(mutex);
    std::vector<std::string> out;
    out.reserve(entries.size());
    for (const auto &e : entries)
        out.push_back(e->name());
    std::sort(out.begin(), out.end());
    return out;
}

Registry &
Registry::global()
{
    static Registry *instance = [] {
        auto *r = new Registry;
        registerBuiltinBackends(*r);
        return r;
    }();
    return *instance;
}

} // namespace qsurf::engine
