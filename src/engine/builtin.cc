/**
 * @file
 * The built-in backends behind the engine interface: the two
 * run-to-completion simulators (braided double-defect, Multi-SIMD
 * planar) and the two analytic design-space models the large-scale
 * figure sweeps run on.
 */

#include <cmath>
#include <memory>
#include <sstream>

#include "braid/scheduler.h"
#include "common/logging.h"
#include "engine/registry.h"
#include "estimate/model.h"
#include "hybrid/backend.h"
#include "planar/planar.h"
#include "surgery/backend.h"

namespace qsurf::engine {

namespace {

/** Seconds per surface-code cycle for @p tech. */
double
cycleSeconds(const qec::Technology &tech)
{
    return tech.surfaceCycleNs() * 1e-9;
}

/** Cached tiled-machine artifact of the double-defect backend. */
class BraidArtifact final : public PreparedArtifact
{
  public:
    BraidArtifact(const circuit::Circuit &circ,
                  const braid::TiledArchOptions &opts)
        : prep(circ, opts)
    {
    }

    braid::BraidPrepared prep;
};

/** Cached SIMD-machine artifact of the planar backend. */
class PlanarArtifact final : public PreparedArtifact
{
  public:
    PlanarArtifact(const circuit::Circuit &circ,
                   const planar::PlanarOptions &opts)
        : prep(circ, opts)
    {
    }

    planar::PlanarPrepared prep;
};

/** Braid simulation on the tiled double-defect machine. */
class DoubleDefectBackend : public Backend
{
  public:
    std::string name() const override { return backends::double_defect; }

    qec::CodeKind
    code() const override
    {
        return qec::CodeKind::DoubleDefect;
    }

    void
    prepare(const WorkItem &item) const override
    {
        Backend::prepare(item);
        fatalIf(item.config.policy < 0
                    || item.config.policy >= braid::num_policies,
                "braid policy must be in [0, ", braid::num_policies,
                "), got ", item.config.policy);
    }

    Metrics
    run(const WorkItem &item) const override
    {
        return run(item, nullptr);
    }

    std::string
    artifactKey(const WorkItem &item) const override
    {
        std::ostringstream os;
        os << "tiled/fp=" << std::hex << item.resolveFingerprint()
           << "/seed=" << item.config.seed << std::dec
           << "/d=" << item.resolveDistance()
           << "/opt=" << (item.config.policy >= 2 ? 1 : 0)
           << "/tpf=" << braid::BraidOptions{}.tiles_per_factory
           << defectKeySuffix(item.config.defectParams());
        return os.str();
    }

    std::shared_ptr<const PreparedArtifact>
    buildArtifact(const WorkItem &item) const override
    {
        braid::BraidOptions opts;
        opts.seed = item.config.seed;
        opts.defects = item.config.defectParams();
        return std::make_shared<const BraidArtifact>(
            *item.circuit,
            braid::braidArchOptions(
                static_cast<braid::Policy>(item.config.policy),
                opts));
    }

    Metrics
    run(const WorkItem &item,
        const PreparedArtifact *artifact) const override
    {
        int d = item.resolveDistance();
        braid::BraidOptions opts;
        opts.code_distance = d;
        opts.seed = item.config.seed;
        opts.fast_forward = item.config.fast_forward;
        opts.legacy_paths = item.config.legacy_baseline;
        opts.adapt_timeout = item.config.adapt_timeout;
        opts.bfs_timeout = item.config.bfs_timeout;
        opts.drop_timeout = item.config.drop_timeout;
        opts.max_cycles = item.config.max_cycles;
        opts.magic_production_cycles =
            item.config.magic_production_cycles;
        opts.magic_buffer_capacity =
            item.config.magic_buffer_capacity;
        opts.defects = item.config.defectParams();
        opts.trace = item.config.trace;
        auto policy =
            static_cast<braid::Policy>(item.config.policy);
        braid::BraidResult r;
        if (artifact) {
            auto *a = dynamic_cast<const BraidArtifact *>(artifact);
            panicIf(!a, "backend '", name(),
                    "' was handed an artifact of the wrong type");
            r = braid::scheduleBraids(*item.circuit, policy, opts,
                                      a->prep);
        } else {
            r = braid::scheduleBraids(*item.circuit, policy, opts);
        }

        Metrics m;
        m.backend = name();
        m.code = code();
        m.code_distance = d;
        m.schedule_cycles = r.schedule_cycles;
        m.critical_path_cycles = r.critical_path_cycles;
        m.physical_qubits = physicalQubits(
            code(), static_cast<double>(item.circuit->numQubits()),
            d);
        m.seconds = static_cast<double>(r.schedule_cycles)
            * cycleSeconds(item.config.tech);
        m.set("mesh_utilization", r.mesh_utilization);
        m.set("braids_placed",
              static_cast<double>(r.braids_placed));
        m.set("placement_failures",
              static_cast<double>(r.placement_failures));
        m.set("yx_fallbacks", static_cast<double>(r.yx_fallbacks));
        m.set("bfs_detours", static_cast<double>(r.bfs_detours));
        m.set("drops", static_cast<double>(r.drops));
        m.set("magic_starvations",
              static_cast<double>(r.magic_starvations));
        m.set("layout_cost", r.layout_cost);
        m.set("ff_skipped_cycles",
              static_cast<double>(r.ff_skipped_cycles));
        m.set("ff_skip_ratio",
              r.schedule_cycles
                  ? static_cast<double>(r.ff_skipped_cycles)
                      / static_cast<double>(r.schedule_cycles)
                  : 0.0);
        // Only on damaged fabrics, so defect-free rows stay
        // byte-identical to pre-defect-awareness output.
        if (item.config.defectParams().enabled()) {
            m.set("defect_dead_fraction", r.defect_dead_fraction);
            m.set("defect_avg_multiplier", r.defect_avg_multiplier);
            m.set("defective_nodes",
                  static_cast<double>(r.defective_nodes));
            m.set("defective_links",
                  static_cast<double>(r.defective_links));
            m.set("logical_error_proxy",
                  logicalErrorProxy(
                      static_cast<double>(
                          item.circuit->numQubits()),
                      r.schedule_cycles, d,
                      item.config.tech.p_physical,
                      r.defect_avg_multiplier));
        }
        return m;
    }
};

/** Multi-SIMD scheduling + EPR pipelining on the planar machine. */
class PlanarBackend : public Backend
{
  public:
    std::string name() const override { return backends::planar; }

    qec::CodeKind code() const override { return qec::CodeKind::Planar; }

    Metrics
    run(const WorkItem &item) const override
    {
        return run(item, nullptr);
    }

    std::string
    artifactKey(const WorkItem &item) const override
    {
        // The SIMD machine and schedule don't depend on the seed,
        // so it stays out of the key (one artifact serves every
        // seed); the resolved distance stays in so distance sweeps
        // key separately, like every other layout artifact.
        std::ostringstream os;
        os << "simd/fp=" << std::hex << item.resolveFingerprint()
           << std::dec << "/d=" << item.resolveDistance()
           << "/r=" << item.config.num_simd_regions
           << "/cap=" << item.config.region_capacity
           << "/legacy=" << (item.config.legacy_baseline ? 1 : 0);
        return os.str();
    }

    std::shared_ptr<const PreparedArtifact>
    buildArtifact(const WorkItem &item) const override
    {
        planar::PlanarOptions opts;
        opts.num_regions = item.config.num_simd_regions;
        opts.region_capacity = item.config.region_capacity;
        opts.legacy_level_scan = item.config.legacy_baseline;
        return std::make_shared<const PlanarArtifact>(*item.circuit,
                                                      opts);
    }

    Metrics
    run(const WorkItem &item,
        const PreparedArtifact *artifact) const override
    {
        int d = item.resolveDistance();
        planar::PlanarOptions opts;
        opts.code_distance = d;
        opts.num_regions = item.config.num_simd_regions;
        opts.region_capacity = item.config.region_capacity;
        opts.epr_window_steps = item.config.epr_window_steps;
        opts.epr_bandwidth = item.config.epr_bandwidth;
        opts.tech = item.config.tech;
        opts.legacy_level_scan = item.config.legacy_baseline;
        opts.trace = item.config.trace;
        planar::PlanarResult r;
        if (artifact) {
            auto *a = dynamic_cast<const PlanarArtifact *>(artifact);
            panicIf(!a, "backend '", name(),
                    "' was handed an artifact of the wrong type");
            r = planar::runPlanar(*item.circuit, opts, a->prep);
        } else {
            r = planar::runPlanar(*item.circuit, opts);
        }

        Metrics m;
        m.backend = name();
        m.code = code();
        m.code_distance = d;
        m.schedule_cycles = r.schedule_cycles;
        m.critical_path_cycles = r.critical_path_cycles;
        m.physical_qubits = physicalQubits(
            code(), static_cast<double>(item.circuit->numQubits()),
            d);
        m.seconds = static_cast<double>(r.schedule_cycles)
            * cycleSeconds(item.config.tech);
        m.set("steps", static_cast<double>(r.steps));
        m.set("teleports", static_cast<double>(r.teleports));
        m.set("stall_cycles", static_cast<double>(r.stall_cycles));
        m.set("peak_live_eprs",
              static_cast<double>(r.peak_live_eprs));
        m.set("avg_live_eprs", r.avg_live_eprs);
        m.set("teleport_rate", r.teleport_rate);
        return m;
    }
};

/**
 * Analytic design-space model (Section 7): runs the Figures 7-9
 * sweeps at computation sizes far beyond direct simulation.
 */
class ModelBackend : public Backend
{
  public:
    explicit ModelBackend(qec::CodeKind kind) : kind(kind) {}

    std::string
    name() const override
    {
        return kind == qec::CodeKind::Planar
            ? backends::planar_model
            : backends::double_defect_model;
    }

    qec::CodeKind code() const override { return kind; }

    bool needsCircuit() const override { return false; }

    void
    prepare(const WorkItem &item) const override
    {
        Backend::prepare(item);
        fatalIf(item.config.kq <= 0 && !item.circuit,
                "backend '", name(), "' needs a computation size "
                "(config.kq) or a circuit to derive one from");
    }

    Metrics
    run(const WorkItem &item) const override
    {
        estimate::ResourceModel model(item.app, item.config.tech);
        double kq = item.logicalOps();
        estimate::ResourceEstimate e = model.estimate(kind, kq);

        Metrics m;
        m.backend = name();
        m.code = kind;
        m.code_distance = e.code_distance;
        m.schedule_cycles =
            static_cast<uint64_t>(std::llround(e.total_cycles));
        m.critical_path_cycles = static_cast<uint64_t>(std::llround(
            e.total_cycles / e.congestion_inflation));
        m.physical_qubits = e.physical_qubits;
        m.seconds = e.seconds;
        m.set("kq", kq);
        m.set("logical_qubits", e.logical_qubits);
        m.set("total_tiles", e.total_tiles);
        m.set("logical_depth", e.logical_depth);
        m.set("step_cycles", e.step_cycles);
        m.set("congestion_inflation", e.congestion_inflation);
        m.set("total_cycles", e.total_cycles);
        return m;
    }

  private:
    qec::CodeKind kind;
};

} // namespace

void
registerBuiltinBackends(Registry &registry)
{
    registry.add(std::make_unique<PlanarBackend>());
    registry.add(std::make_unique<DoubleDefectBackend>());
    registry.add(
        std::make_unique<ModelBackend>(qec::CodeKind::Planar));
    registry.add(
        std::make_unique<ModelBackend>(qec::CodeKind::DoubleDefect));
    surgery::registerSurgeryBackends(registry);
    hybrid::registerHybridBackend(registry);
}

} // namespace qsurf::engine
