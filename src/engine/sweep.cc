#include "engine/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "circuit/decompose.h"
#include "common/arena.h"
#include "common/json.h"
#include "common/logging.h"
#include "service/artifact.h"

namespace qsurf::engine {

namespace {

constexpr const char *kRowsStreamName = "qsurf-sweep-rows";
constexpr int kRowsStreamVersion = 1;

qec::CodeKind
parseCodeKind(const std::string &name)
{
    for (qec::CodeKind kind :
         {qec::CodeKind::Planar, qec::CodeKind::DoubleDefect})
        if (name == qec::codeKindName(kind))
            return kind;
    fatal("unknown code kind '", name, "' in sweep row");
}

double
numberField(const JsonValue &row, const std::string &key,
            bool required = true, double fallback = 0)
{
    const JsonValue *v = row.find(key);
    if (!v) {
        fatalIf(required, "sweep row is missing '", key, "'");
        return fallback;
    }
    fatalIf(!v->isNumber(), "sweep row field '", key,
            "' is not a number");
    return v->num;
}

std::string
stringField(const JsonValue &row, const std::string &key)
{
    const JsonValue *v = row.find(key);
    fatalIf(!v || !v->isString(), "sweep row is missing string '",
            key, "'");
    return v->str;
}

/** The rows path the options resolve to, or "" when streaming is
 *  off. */
std::string
resolveRowsPath(const SweepOptions &opts)
{
    if (!opts.stream_rows)
        return {};
    if (!opts.rows_path.empty())
        return opts.rows_path;
    if (!opts.json_path.empty())
        return opts.json_path + ".rows";
    return {};
}

void
hashCombine(uint64_t &h, const void *data, size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull; // FNV-1a.
    }
}

template <typename T>
void
hashValue(uint64_t &h, const T &v)
{
    hashCombine(h, &v, sizeof(v));
}

void
hashString(uint64_t &h, const std::string &s)
{
    uint64_t len = s.size();
    hashValue(h, len);
    hashCombine(h, s.data(), s.size());
}

} // namespace

size_t
SweepGrid::points() const
{
    return apps.size() * sizes.size() * distances.size()
        * policies.size() * arbiters.size()
        * layout_objectives.size() * epr_windows.size()
        * defects.size() * backends.size();
}

uint64_t
sweepGridFingerprint(const SweepGrid &grid)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (const AppPoint &app : grid.apps) {
        hashValue(h, app.kind);
        hashValue(h, app.gen.problem_size);
        hashValue(h, app.gen.max_iterations);
        hashString(h, app.label);
        uint64_t fp =
            app.circuit ? circuit::fingerprint(*app.circuit) : 0;
        hashValue(h, fp);
    }
    for (const std::string &b : grid.backends)
        hashString(h, b);
    for (int v : grid.policies)
        hashValue(h, v);
    for (int v : grid.arbiters)
        hashValue(h, v);
    for (int v : grid.layout_objectives)
        hashValue(h, v);
    for (int v : grid.epr_windows)
        hashValue(h, v);
    for (int v : grid.distances)
        hashValue(h, v);
    for (double v : grid.sizes)
        hashValue(h, v);
    for (double v : grid.defects)
        hashValue(h, v);
    const RunConfig &c = grid.base;
    hashValue(h, c.tech.p_physical);
    hashValue(h, c.tech.t_two_qubit_ns);
    hashValue(h, c.tech.single_qubit_speedup);
    hashValue(h, c.tech.t_measure_ns);
    hashValue(h, c.code_distance);
    hashValue(h, c.policy);
    hashValue(h, c.epr_window_steps);
    hashValue(h, c.epr_bandwidth);
    hashValue(h, c.num_simd_regions);
    hashValue(h, c.region_capacity);
    hashValue(h, c.kq);
    hashValue(h, c.fast_forward);
    hashValue(h, c.legacy_baseline);
    hashValue(h, c.magic_production_cycles);
    hashValue(h, c.magic_buffer_capacity);
    hashValue(h, c.adapt_timeout);
    hashValue(h, c.bfs_timeout);
    hashValue(h, c.drop_timeout);
    hashValue(h, c.max_cycles);
    hashValue(h, c.hybrid_arbiter);
    hashValue(h, c.layout_objective);
    hashValue(h, c.lane_spacing);
    hashValue(h, c.defect_density);
    hashValue(h, c.defect_seed);
    hashString(h, c.defect_spec);
    hashValue(h, c.seed);
    return h;
}

namespace {

/** Expansion with the per-point backend pointers run() needs. */
std::vector<SweepPoint>
expandPoints(const SweepGrid &grid, const Registry &registry,
             std::vector<const Backend *> *item_backend)
{
    fatalIf(grid.apps.empty(), "sweep grid needs at least one app");
    fatalIf(grid.backends.empty(),
            "sweep grid needs at least one backend");
    fatalIf(grid.policies.empty() || grid.arbiters.empty()
                || grid.layout_objectives.empty()
                || grid.epr_windows.empty()
                || grid.distances.empty() || grid.sizes.empty()
                || grid.defects.empty(),
            "sweep grid axes must be non-empty");
    grid.base.tech.check();

    // Resolve backends up front so name typos fail before any work.
    std::vector<const Backend *> backends;
    backends.reserve(grid.backends.size());
    for (const std::string &name : grid.backends)
        backends.push_back(&registry.get(name));

    // Expand the grid: app (outer) x size x distance x policy x
    // arbiter x layout objective x EPR window x defect density x
    // backend (inner).
    std::vector<SweepPoint> points;
    points.reserve(grid.points());
    if (item_backend)
        item_backend->reserve(grid.points());
    for (size_t a = 0; a < grid.apps.size(); ++a) {
        const AppPoint &app = grid.apps[a];
        std::string app_name = app.label;
        if (app_name.empty() && app.circuit)
            app_name = app.circuit->name();
        if (app_name.empty())
            app_name = apps::appSpec(app.kind).name;
        for (double kq : grid.sizes) {
            for (int d : grid.distances) {
                for (int policy : grid.policies) {
                    for (int arbiter : grid.arbiters) {
                        for (int objective : grid.layout_objectives) {
                            for (int window : grid.epr_windows) {
                              for (double defect : grid.defects) {
                                for (size_t b = 0;
                                     b < backends.size(); ++b) {
                                    SweepPoint p;
                                    p.index = points.size();
                                    p.app_index = a;
                                    p.app_name = app_name;
                                    p.backend = grid.backends[b];
                                    p.policy = policy;
                                    p.arbiter = arbiter;
                                    p.layout_objective = objective;
                                    p.epr_window = window;
                                    p.distance = d;
                                    p.kq = kq;
                                    p.defect = defect;
                                    points.push_back(std::move(p));
                                    if (item_backend)
                                        item_backend->push_back(
                                            backends[b]);
                                }
                              }
                            }
                        }
                    }
                }
            }
        }
    }
    return points;
}

} // namespace

std::vector<SweepPoint>
expandSweepPoints(const SweepGrid &grid, const Registry &registry)
{
    return expandPoints(grid, registry, nullptr);
}

std::vector<SweepPoint>
SweepDriver::run(const SweepGrid &grid, const SweepOptions &opts) const
{
    std::vector<const Backend *> item_backend;
    std::vector<SweepPoint> points =
        expandPoints(grid, registry, &item_backend);

    service::PrepareCache *cache = opts.use_cache
        ? (opts.cache ? opts.cache : &service::PrepareCache::global())
        : nullptr;

    // Resume: merge rows an interrupted run already finished, so
    // only the remainder executes.
    std::vector<uint8_t> done(points.size(), 0);
    std::string rows_path = resolveRowsPath(opts);
    size_t resumed = 0;
    size_t rows_valid_bytes = 0;
    if (opts.resume && !rows_path.empty()) {
        resumed = loadSweepRows(rows_path, grid, opts.title, points,
                                done, &rows_valid_bytes);
        if (resumed)
            inform("resuming sweep: ", resumed, " of ",
                   points.size(), " points from '", rows_path, "'");
    }

    auto selected = [&](size_t i) {
        return !done[i]
            && (!opts.point_filter || opts.point_filter(i));
    };

    // Generate and decompose each app's circuit once, serially, so
    // workers share immutable inputs and generation cost is paid per
    // app point rather than per grid point.  Only apps some selected
    // point actually needs are built (a shard worker skips apps
    // entirely outside its slice).  With the cache on, the
    // decomposed program is shared across sweeps too (and its
    // fingerprint rides along so artifact keys skip rehashing).
    std::vector<bool> app_needed(grid.apps.size(), false);
    for (size_t i = 0; i < points.size(); ++i)
        if (selected(i) && item_backend[i]->needsCircuit())
            app_needed[points[i].app_index] = true;

    std::vector<std::shared_ptr<const circuit::Circuit>> circuits(
        grid.apps.size());
    std::vector<uint64_t> fingerprints(grid.apps.size(), 0);
    for (size_t a = 0; a < grid.apps.size(); ++a) {
        if (!app_needed[a])
            continue;
        const AppPoint &app = grid.apps[a];
        if (cache) {
            std::shared_ptr<const service::CachedProgram> prog =
                app.circuit
                ? service::cachedProgram(*cache, *app.circuit)
                : service::cachedAppProgram(*cache, app.kind,
                                            app.gen);
            // Aliasing share: the circuit pointer keeps the whole
            // program alive.
            circuits[a] = {prog, &prog->circ};
            fingerprints[a] = prog->fingerprint;
        } else {
            circuits[a] = std::make_shared<const circuit::Circuit>(
                circuit::decompose(
                    app.circuit ? *app.circuit
                                : apps::generate(app.kind, app.gen)));
        }
    }

    // Prepare (validate) every selected item up front on the
    // caller's thread: configuration errors surface as clean
    // fatal()s, not as exceptions racing out of the pool.
    std::vector<WorkItem> items(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
        if (!selected(i))
            continue;
        const SweepPoint &p = points[i];
        const Backend *backend = item_backend[i];
        WorkItem &item = items[i];
        item.app = grid.apps[p.app_index].kind;
        item.app_name = p.app_name;
        item.circuit = backend->needsCircuit()
            ? circuits[p.app_index].get()
            : nullptr;
        item.circuit_fingerprint = backend->needsCircuit()
            ? fingerprints[p.app_index]
            : 0;
        item.config = grid.base;
        item.config.policy = p.policy;
        item.config.hybrid_arbiter = p.arbiter;
        item.config.layout_objective = p.layout_objective;
        if (p.epr_window >= 0)
            item.config.epr_window_steps = p.epr_window;
        item.config.code_distance = p.distance;
        item.config.kq = p.kq;
        // The defect axis sets the density; map seed and explicit
        // spec ride along from the base config.
        item.config.defect_density = p.defect;
        // Seeds vary per application point, never along the policy/
        // distance/size axes: a figure compares those on the *same*
        // seeded machine layout (the paper's methodology), and the
        // derivation depends only on the grid, never on threading.
        item.config.seed = mixSeed(grid.base.seed, p.app_index);
        backend->prepare(item);
    }

    // The row stream: one flushed line per completed point, so a
    // killed run leaves a valid, resumable partial file.  Appends
    // after a successful resume — first dropping any torn tail the
    // killed run left, or the next row would fuse with it —
    // otherwise truncates and writes a fresh header.
    std::ofstream rows_stream;
    std::mutex row_mutex;
    if (!rows_path.empty()) {
        if (resumed) {
            std::error_code ec;
            std::filesystem::resize_file(rows_path,
                                         rows_valid_bytes, ec);
            fatalIf(static_cast<bool>(ec), "cannot truncate '",
                    rows_path, "': ", ec.message());
        }
        rows_stream.open(rows_path, resumed
                                        ? std::ios::app
                                        : std::ios::trunc);
        fatalIf(!rows_stream, "cannot open '", rows_path,
                "' for writing");
        if (!resumed) {
            writeSweepRowsHeader(rows_stream, grid, opts.title);
            rows_stream << "\n";
            rows_stream.flush();
        }
    }

    // Execute across the pool.  Work items are independent and
    // deterministic in their own (config, circuit), so any
    // assignment of items to threads produces identical results.
    int threads = opts.num_threads >= 1 ? opts.num_threads
                                        : defaultThreads();
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto worker = [&] {
        // Per-worker scratch arena, reset per point: BFS working
        // sets and row assembly bump-allocate here instead of the
        // global heap (results are bit-identical either way).
        Arena arena;
        for (;;) {
            size_t i = next.fetch_add(1);
            if (i >= points.size() || failed.load())
                return;
            if (!selected(i))
                continue;
            try {
                if (opts.use_arena)
                    arena.reset();
                Arena::Scope scope(opts.use_arena ? &arena
                                                  : nullptr);
                Arena::Stats arena_before = arena.stats();
                uint64_t heap_before = opts.heap_alloc_counter
                    ? opts.heap_alloc_counter()
                    : 0;
                // Artifact fetch is timed apart from the run: warm
                // sweeps report near-zero prepare_ms while wall_ms
                // keeps measuring the simulation itself.  Concurrent
                // workers landing on one key build it once
                // (single-flight) and share the artifact.
                std::shared_ptr<const PreparedArtifact> artifact;
                if (cache) {
                    auto prep_start = std::chrono::steady_clock::now();
                    artifact = service::fetchArtifact(
                        *cache, *item_backend[i], items[i]);
                    points[i].prepare_ms =
                        std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now()
                            - prep_start)
                            .count();
                }
                // Each item is executed by exactly one worker, so
                // wiring a per-run recorder into its config races
                // with nothing.
                std::unique_ptr<obs::RunRecorder> rec;
                if (opts.trace) {
                    rec = opts.trace->beginRun(i, points[i].app_name,
                                               points[i].backend);
                    items[i].config.trace = rec.get();
                }
                auto start = std::chrono::steady_clock::now();
                points[i].metrics =
                    item_backend[i]->run(items[i], artifact.get());
                points[i].wall_ms =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
                if (rec) {
                    items[i].config.trace = nullptr;
                    opts.trace->endRun(std::move(rec));
                }
                if (opts.use_arena) {
                    Arena::Stats after = arena.stats();
                    points[i].arena_allocs =
                        after.allocations - arena_before.allocations;
                    points[i].arena_bytes =
                        after.bytes - arena_before.bytes;
                }
                if (opts.heap_alloc_counter)
                    points[i].heap_allocs =
                        opts.heap_alloc_counter() - heap_before;
                if (opts.metrics) {
                    opts.metrics->observe("sweep.phase.prepare_ms",
                                          points[i].prepare_ms);
                    opts.metrics->observe("sweep.phase.run_ms",
                                          points[i].wall_ms);
                }
                if (rows_stream.is_open() || opts.on_row) {
                    // Assembled in the arena: steady-state row
                    // emission costs zero heap allocations.
                    ArenaStreamBuf buf;
                    std::ostream ros(&buf);
                    writeSweepRowLine(ros, points[i]);
                    std::string_view line(buf.data(), buf.size());
                    std::lock_guard<std::mutex> lock(row_mutex);
                    if (rows_stream.is_open()) {
                        rows_stream << line << "\n";
                        rows_stream.flush();
                    }
                    if (opts.on_row)
                        opts.on_row(points[i], line);
                }
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                failed.store(true);
                return;
            }
        }
    };

    if (threads == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<size_t>(threads));
        for (int t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }
    if (first_error)
        std::rethrow_exception(first_error);

    if (!opts.json_path.empty()) {
        std::ofstream os(opts.json_path);
        fatalIf(!os, "cannot open '", opts.json_path,
                "' for writing");
        writeSweepJson(os, opts.title, points, cache);
    }
    return points;
}

int
defaultThreads()
{
    // QSURF_THREADS overrides the interactive clamp, so batch
    // machines can use their full width without touching every
    // bench's flags.
    if (const char *env = std::getenv("QSURF_THREADS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1)
            return static_cast<int>(std::min<long>(v, 1 << 16));
        warn("ignoring invalid QSURF_THREADS='", env,
             "' (want a positive integer)");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return static_cast<int>(std::min(8u, std::max(1u, hw)));
}

void
writeSweepRow(JsonWriter &j, const SweepPoint &p, bool timing)
{
    j.beginObject();
    j.field("app", p.app_name);
    j.field("backend", p.backend);
    j.field("code", qec::codeKindName(p.metrics.code));
    j.field("policy", p.policy);
    j.field("arbiter", p.arbiter);
    j.field("layout_objective", p.layout_objective);
    if (p.epr_window >= 0)
        j.field("epr_window", p.epr_window);
    j.field("code_distance", p.metrics.code_distance);
    if (p.kq > 0)
        j.field("kq", p.kq);
    // Emitted only when damaged, like the optional axes above, so
    // density-0 rows stay byte-identical to pre-defect output.
    if (p.defect > 0)
        j.field("defect", p.defect);
    j.field("schedule_cycles", p.metrics.schedule_cycles);
    j.field("critical_path_cycles", p.metrics.critical_path_cycles);
    j.field("ratio", p.metrics.ratio());
    j.field("physical_qubits", p.metrics.physical_qubits);
    j.field("seconds", p.metrics.seconds);
    j.field("space_time", p.metrics.spaceTime());
    if (timing) {
        j.field("wall_ms", p.wall_ms);
        j.field("prepare_ms", p.prepare_ms);
        j.field("sim_cycles_per_sec", p.simCyclesPerSec());
        j.field("arena_allocs", p.arena_allocs);
        j.field("arena_bytes", p.arena_bytes);
        j.field("heap_allocs", p.heap_allocs);
    }
    if (!p.metrics.extras.empty()) {
        j.key("extras");
        j.beginObject();
        for (const auto &[name, v] : p.metrics.extras)
            j.field(name, v);
        j.endObject();
    }
    j.endObject();
}

void
writeSweepRowLine(std::ostream &os, const SweepPoint &p)
{
    // The "index" field rides outside writeSweepRow on purpose: the
    // full document's rows are implicitly ordered, a streamed /
    // wire-framed row must identify itself.
    JsonWriter j(os, /*compact=*/true);
    j.beginObject();
    j.field("index", static_cast<uint64_t>(p.index));
    j.key("row");
    writeSweepRow(j, p);
    j.endObject();
}

SweepPoint
parseSweepRowLine(const std::string &line)
{
    JsonValue doc = parseJson(line);
    fatalIf(!doc.isObject(), "sweep row line is not an object");
    SweepPoint p;
    p.index = static_cast<size_t>(numberField(doc, "index"));
    const JsonValue *row = doc.find("row");
    fatalIf(!row || !row->isObject(),
            "sweep row line is missing the 'row' object");
    p.app_name = stringField(*row, "app");
    p.backend = stringField(*row, "backend");
    p.metrics.backend = p.backend;
    p.metrics.code = parseCodeKind(stringField(*row, "code"));
    p.policy = static_cast<int>(numberField(*row, "policy"));
    p.arbiter = static_cast<int>(numberField(*row, "arbiter"));
    p.layout_objective =
        static_cast<int>(numberField(*row, "layout_objective"));
    p.epr_window = static_cast<int>(
        numberField(*row, "epr_window", false, -1));
    p.metrics.code_distance =
        static_cast<int>(numberField(*row, "code_distance"));
    p.kq = numberField(*row, "kq", false, 0);
    p.defect = numberField(*row, "defect", false, 0);
    p.metrics.schedule_cycles = static_cast<uint64_t>(
        numberField(*row, "schedule_cycles"));
    p.metrics.critical_path_cycles = static_cast<uint64_t>(
        numberField(*row, "critical_path_cycles"));
    p.metrics.physical_qubits =
        numberField(*row, "physical_qubits");
    p.metrics.seconds = numberField(*row, "seconds");
    p.wall_ms = numberField(*row, "wall_ms", false, 0);
    p.prepare_ms = numberField(*row, "prepare_ms", false, 0);
    p.arena_allocs = static_cast<uint64_t>(
        numberField(*row, "arena_allocs", false, 0));
    p.arena_bytes = static_cast<uint64_t>(
        numberField(*row, "arena_bytes", false, 0));
    p.heap_allocs = static_cast<uint64_t>(
        numberField(*row, "heap_allocs", false, 0));
    if (const JsonValue *extras = row->find("extras")) {
        fatalIf(!extras->isObject(),
                "sweep row 'extras' is not an object");
        for (const auto &[name, v] : extras->members) {
            fatalIf(!v.isNumber(), "sweep row extra '", name,
                    "' is not a number");
            p.metrics.extras.emplace_back(name, v.num);
        }
    }
    return p;
}

std::string
canonicalSweepRows(const std::vector<SweepPoint> &points)
{
    std::ostringstream os;
    JsonWriter j(os, /*compact=*/true);
    j.beginArray();
    for (const SweepPoint &p : points)
        writeSweepRow(j, p, /*timing=*/false);
    j.endArray();
    return os.str();
}

void
writeSweepRowsHeader(std::ostream &os, const SweepGrid &grid,
                     const std::string &title)
{
    JsonWriter j(os, /*compact=*/true);
    j.beginObject();
    j.field("stream", kRowsStreamName);
    j.field("version", kRowsStreamVersion);
    j.field("title", title);
    j.field("points", static_cast<uint64_t>(grid.points()));
    j.field("grid_fingerprint", sweepGridFingerprint(grid));
    j.endObject();
}

size_t
loadSweepRows(const std::string &path, const SweepGrid &grid,
              const std::string &title,
              std::vector<SweepPoint> &points,
              std::vector<uint8_t> &done, size_t *valid_bytes)
{
    if (valid_bytes)
        *valid_bytes = 0;
    std::ifstream in(path);
    if (!in)
        return 0;
    std::string line;
    if (!std::getline(in, line) || in.eof())
        return 0;
    // Header check: never merge rows from a different experiment.
    try {
        JsonValue header = parseJson(line);
        const JsonValue *stream = header.find("stream");
        const JsonValue *fp = header.find("grid_fingerprint");
        const JsonValue *n = header.find("points");
        const JsonValue *t = header.find("title");
        if (!stream || !stream->isString()
            || stream->str != kRowsStreamName || !fp
            || !fp->isNumber()
            || fp->num
                != static_cast<double>(sweepGridFingerprint(grid))
            || !n || !n->isNumber()
            || n->num != static_cast<double>(grid.points()) || !t
            || !t->isString() || t->str != title) {
            warn("row stream '", path,
                 "' does not match this sweep; running fresh");
            return 0;
        }
    } catch (const FatalError &) {
        warn("row stream '", path,
             "' has a malformed header; running fresh");
        return 0;
    }

    // Bytes of the validated prefix: every line below only counts
    // once it parsed AND carried its terminating newline.
    size_t consumed = line.size() + 1;
    size_t merged = 0;
    while (std::getline(in, line)) {
        if (in.eof()) {
            // The writer terminates every row with a newline, so an
            // unterminated final line is torn by definition — even
            // when it happens to parse.
            warn("row stream '", path,
                 "' ends in a torn line; ignoring it");
            break;
        }
        if (line.empty()) {
            consumed += 1;
            continue;
        }
        SweepPoint row;
        try {
            row = parseSweepRowLine(line);
        } catch (const FatalError &) {
            // A torn final line is exactly what a killed run leaves
            // behind; everything before it is still good.
            warn("row stream '", path,
                 "' ends in a torn line; ignoring it");
            break;
        }
        fatalIf(row.index >= points.size(), "row stream '", path,
                "' names out-of-range index ", row.index);
        SweepPoint &dst = points[row.index];
        fatalIf(row.app_name != dst.app_name
                    || row.backend != dst.backend
                    || row.policy != dst.policy
                    || row.arbiter != dst.arbiter
                    || row.layout_objective != dst.layout_objective
                    || row.epr_window != dst.epr_window
                    || row.defect != dst.defect,
                "row stream '", path, "' row ", row.index,
                " disagrees with the grid expansion");
        size_t index = dst.index;
        size_t app_index = dst.app_index;
        int distance = dst.distance;
        double kq = dst.kq;
        dst = std::move(row);
        dst.index = index;
        dst.app_index = app_index;
        dst.distance = distance;
        dst.kq = kq;
        if (!done[dst.index])
            ++merged;
        done[dst.index] = 1;
        consumed += line.size() + 1;
    }
    if (valid_bytes)
        *valid_bytes = consumed;
    return merged;
}

void
writeSweepJson(std::ostream &os, const std::string &title,
               const std::vector<SweepPoint> &points,
               const service::PrepareCache *cache, bool timing)
{
    JsonWriter j(os);
    j.beginObject();
    j.field("title", title);
    j.field("points", static_cast<uint64_t>(points.size()));
    j.key("results");
    j.beginArray();
    for (const SweepPoint &p : points)
        writeSweepRow(j, p, timing);
    j.endArray();
    if (cache) {
        service::CacheStats s = cache->stats();
        j.key("cache");
        j.beginObject();
        j.field("hits", s.hits);
        j.field("misses", s.misses);
        j.field("evictions", s.evictions);
        j.field("entries", s.entries);
        j.field("hit_ratio", s.hitRatio());
        j.endObject();
    }
    j.endObject();
    os << "\n";
}

} // namespace qsurf::engine
