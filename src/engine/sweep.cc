#include "engine/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>

#include "circuit/decompose.h"
#include "common/json.h"
#include "common/logging.h"
#include "service/artifact.h"

namespace qsurf::engine {

size_t
SweepGrid::points() const
{
    return apps.size() * sizes.size() * distances.size()
        * policies.size() * arbiters.size()
        * layout_objectives.size() * backends.size();
}

std::vector<SweepPoint>
SweepDriver::run(const SweepGrid &grid, const SweepOptions &opts) const
{
    fatalIf(grid.apps.empty(), "sweep grid needs at least one app");
    fatalIf(grid.backends.empty(),
            "sweep grid needs at least one backend");
    fatalIf(grid.policies.empty() || grid.arbiters.empty()
                || grid.layout_objectives.empty()
                || grid.distances.empty() || grid.sizes.empty(),
            "sweep grid axes must be non-empty");
    grid.base.tech.check();

    // Resolve backends up front so name typos fail before any work.
    std::vector<const Backend *> backends;
    backends.reserve(grid.backends.size());
    bool any_circuit = false;
    for (const std::string &name : grid.backends) {
        const Backend &b = registry.get(name);
        backends.push_back(&b);
        any_circuit = any_circuit || b.needsCircuit();
    }

    service::PrepareCache *cache = opts.use_cache
        ? (opts.cache ? opts.cache : &service::PrepareCache::global())
        : nullptr;

    // Generate and decompose each app's circuit once, serially, so
    // workers share immutable inputs and generation cost is paid per
    // app point rather than per grid point.  With the cache on, the
    // decomposed program is shared across sweeps too (and its
    // fingerprint rides along so artifact keys skip rehashing).
    std::vector<std::shared_ptr<const circuit::Circuit>> circuits;
    std::vector<uint64_t> fingerprints(grid.apps.size(), 0);
    if (any_circuit) {
        circuits.reserve(grid.apps.size());
        for (size_t a = 0; a < grid.apps.size(); ++a) {
            const AppPoint &app = grid.apps[a];
            if (cache) {
                std::shared_ptr<const service::CachedProgram> prog =
                    app.circuit
                    ? service::cachedProgram(*cache, *app.circuit)
                    : service::cachedAppProgram(*cache, app.kind,
                                                app.gen);
                // Aliasing share: the circuit pointer keeps the
                // whole program alive.
                circuits.emplace_back(prog, &prog->circ);
                fingerprints[a] = prog->fingerprint;
            } else {
                circuits.push_back(
                    std::make_shared<const circuit::Circuit>(
                        circuit::decompose(
                            app.circuit
                                ? *app.circuit
                                : apps::generate(app.kind,
                                                 app.gen))));
            }
        }
    }

    // Expand the grid: app (outer) x size x distance x policy x
    // arbiter x layout objective x backend (inner).
    std::vector<SweepPoint> points;
    std::vector<const Backend *> item_backend;
    points.reserve(grid.points());
    item_backend.reserve(grid.points());
    for (size_t a = 0; a < grid.apps.size(); ++a) {
        const AppPoint &app = grid.apps[a];
        std::string app_name = app.label;
        if (app_name.empty() && app.circuit)
            app_name = app.circuit->name();
        if (app_name.empty())
            app_name = apps::appSpec(app.kind).name;
        for (double kq : grid.sizes) {
            for (int d : grid.distances) {
                for (int policy : grid.policies) {
                    for (int arbiter : grid.arbiters) {
                        for (int objective : grid.layout_objectives) {
                            for (const Backend *backend : backends) {
                                SweepPoint p;
                                p.index = points.size();
                                p.app_index = a;
                                p.app_name = app_name;
                                p.backend = backend->name();
                                p.policy = policy;
                                p.arbiter = arbiter;
                                p.layout_objective = objective;
                                p.distance = d;
                                p.kq = kq;
                                points.push_back(std::move(p));
                                item_backend.push_back(backend);
                            }
                        }
                    }
                }
            }
        }
    }

    // Prepare (validate) every item up front on the caller's thread:
    // configuration errors surface as clean fatal()s, not as
    // exceptions racing out of the pool.
    std::vector<WorkItem> items(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
        const SweepPoint &p = points[i];
        const Backend *backend = item_backend[i];
        WorkItem &item = items[i];
        item.app = grid.apps[p.app_index].kind;
        item.app_name = p.app_name;
        item.circuit = backend->needsCircuit()
            ? circuits[p.app_index].get()
            : nullptr;
        item.circuit_fingerprint = backend->needsCircuit()
            ? fingerprints[p.app_index]
            : 0;
        item.config = grid.base;
        item.config.policy = p.policy;
        item.config.hybrid_arbiter = p.arbiter;
        item.config.layout_objective = p.layout_objective;
        item.config.code_distance = p.distance;
        item.config.kq = p.kq;
        // Seeds vary per application point, never along the policy/
        // distance/size axes: a figure compares those on the *same*
        // seeded machine layout (the paper's methodology), and the
        // derivation depends only on the grid, never on threading.
        item.config.seed = mixSeed(grid.base.seed, p.app_index);
        backend->prepare(item);
    }

    // Execute across the pool.  Work items are independent and
    // deterministic in their own (config, circuit), so any
    // assignment of items to threads produces identical results.
    int threads = opts.num_threads >= 1 ? opts.num_threads
                                        : defaultThreads();
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto worker = [&] {
        for (;;) {
            size_t i = next.fetch_add(1);
            if (i >= points.size() || failed.load())
                return;
            try {
                // Artifact fetch is timed apart from the run: warm
                // sweeps report near-zero prepare_ms while wall_ms
                // keeps measuring the simulation itself.  Concurrent
                // workers landing on one key build it once
                // (single-flight) and share the artifact.
                std::shared_ptr<const PreparedArtifact> artifact;
                if (cache) {
                    auto prep_start = std::chrono::steady_clock::now();
                    artifact = service::fetchArtifact(
                        *cache, *item_backend[i], items[i]);
                    points[i].prepare_ms =
                        std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now()
                            - prep_start)
                            .count();
                }
                // Each item is executed by exactly one worker, so
                // wiring a per-run recorder into its config races
                // with nothing.
                std::unique_ptr<obs::RunRecorder> rec;
                if (opts.trace) {
                    rec = opts.trace->beginRun(i, points[i].app_name,
                                               points[i].backend);
                    items[i].config.trace = rec.get();
                }
                auto start = std::chrono::steady_clock::now();
                points[i].metrics =
                    item_backend[i]->run(items[i], artifact.get());
                points[i].wall_ms =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
                if (rec) {
                    items[i].config.trace = nullptr;
                    opts.trace->endRun(std::move(rec));
                }
                if (opts.metrics) {
                    opts.metrics->observe("sweep.phase.prepare_ms",
                                          points[i].prepare_ms);
                    opts.metrics->observe("sweep.phase.run_ms",
                                          points[i].wall_ms);
                }
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                failed.store(true);
                return;
            }
        }
    };

    if (threads == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<size_t>(threads));
        for (int t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }
    if (first_error)
        std::rethrow_exception(first_error);

    if (!opts.json_path.empty()) {
        std::ofstream os(opts.json_path);
        fatalIf(!os, "cannot open '", opts.json_path,
                "' for writing");
        writeSweepJson(os, opts.title, points, cache);
    }
    return points;
}

int
defaultThreads()
{
    // QSURF_THREADS overrides the interactive clamp, so batch
    // machines can use their full width without touching every
    // bench's flags.
    if (const char *env = std::getenv("QSURF_THREADS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1)
            return static_cast<int>(std::min<long>(v, 1 << 16));
        warn("ignoring invalid QSURF_THREADS='", env,
             "' (want a positive integer)");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return static_cast<int>(std::min(8u, std::max(1u, hw)));
}

void
writeSweepJson(std::ostream &os, const std::string &title,
               const std::vector<SweepPoint> &points,
               const service::PrepareCache *cache)
{
    JsonWriter j(os);
    j.beginObject();
    j.field("title", title);
    j.field("points", static_cast<uint64_t>(points.size()));
    j.key("results");
    j.beginArray();
    for (const SweepPoint &p : points) {
        j.beginObject();
        j.field("app", p.app_name);
        j.field("backend", p.backend);
        j.field("code", qec::codeKindName(p.metrics.code));
        j.field("policy", p.policy);
        j.field("arbiter", p.arbiter);
        j.field("layout_objective", p.layout_objective);
        j.field("code_distance", p.metrics.code_distance);
        if (p.kq > 0)
            j.field("kq", p.kq);
        j.field("schedule_cycles", p.metrics.schedule_cycles);
        j.field("critical_path_cycles",
                p.metrics.critical_path_cycles);
        j.field("ratio", p.metrics.ratio());
        j.field("physical_qubits", p.metrics.physical_qubits);
        j.field("seconds", p.metrics.seconds);
        j.field("space_time", p.metrics.spaceTime());
        j.field("wall_ms", p.wall_ms);
        j.field("prepare_ms", p.prepare_ms);
        j.field("sim_cycles_per_sec", p.simCyclesPerSec());
        if (!p.metrics.extras.empty()) {
            j.key("extras");
            j.beginObject();
            for (const auto &[name, v] : p.metrics.extras)
                j.field(name, v);
            j.endObject();
        }
        j.endObject();
    }
    j.endArray();
    if (cache) {
        service::CacheStats s = cache->stats();
        j.key("cache");
        j.beginObject();
        j.field("hits", s.hits);
        j.field("misses", s.misses);
        j.field("evictions", s.evictions);
        j.field("entries", s.entries);
        j.field("hit_ratio", s.hitRatio());
        j.endObject();
    }
    j.endObject();
    os << "\n";
}

} // namespace qsurf::engine
