/**
 * @file
 * Backend registry: the single place callers look up engines by
 * name.  The global registry comes pre-populated with the built-in
 * backends (the two simulators and the two analytic design-space
 * models); additional backends register at startup and immediately
 * become available to the toolflow, the sweep driver and every
 * figure bench.
 */

#ifndef QSURF_ENGINE_REGISTRY_H
#define QSURF_ENGINE_REGISTRY_H

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/backend.h"

namespace qsurf::engine {

/** Built-in backend names. */
namespace backends {

/** Braid simulation on the tiled double-defect machine. */
inline constexpr const char *double_defect = "double-defect";

/** Multi-SIMD scheduling + EPR pipelining on the planar machine. */
inline constexpr const char *planar = "planar";

/** Analytic design-space model of the double-defect machine. */
inline constexpr const char *double_defect_model =
    "double-defect-model";

/** Analytic design-space model of the planar machine. */
inline constexpr const char *planar_model = "planar-model";

/** Lattice-surgery chain simulation on the patch machine. */
inline constexpr const char *surgery_sim = "planar/surgery-sim";

/** Analytic lattice-surgery model (Section 8.2). */
inline constexpr const char *surgery_model = "planar/surgery-model";

/** Mixed-scheme simulation: per-op braid / teleport / surgery
 *  arbitration on one shared patch machine. */
inline constexpr const char *hybrid_mixed = "hybrid/mixed-sim";

} // namespace backends

/** A named set of backends.  Thread-safe. */
class Registry
{
  public:
    Registry() = default;

    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /**
     * Register @p backend under its name().
     * fatal()s on a duplicate name.
     */
    void add(std::unique_ptr<Backend> backend);

    /**
     * @return the backend registered as @p name.
     * fatal()s on an unknown name, listing what is registered.
     */
    const Backend &get(const std::string &name) const;

    /** @return true when @p name is registered. */
    bool contains(const std::string &name) const;

    /** @return all registered names, sorted. */
    std::vector<std::string> names() const;

    /**
     * The process-wide registry, with the built-in backends already
     * registered.
     */
    static Registry &global();

  private:
    mutable std::mutex mutex;
    std::vector<std::unique_ptr<Backend>> entries;
};

/**
 * Register the built-in backends into @p registry (used by
 * Registry::global(); exposed so tests can build private registries).
 */
void registerBuiltinBackends(Registry &registry);

} // namespace qsurf::engine

#endif // QSURF_ENGINE_REGISTRY_H
