#include "engine/sim.h"

#include <algorithm>

#include "common/logging.h"
#include "network/route.h"

namespace qsurf::engine {

namespace {

/** The single-walk claim, or the pre-change double walk when
 *  @p legacy (for honest A/B baselines). */
bool
claimRoute(network::Mesh &mesh, const network::Path &path, int owner,
           bool legacy)
{
    if (!legacy)
        return mesh.tryClaim(path, owner);
    if (!mesh.routeFree(path, owner))
        return false;
    mesh.claim(path, owner);
    return true;
}

} // namespace

std::optional<network::Path>
RouteClaimer::tryClaim(const Coord &src, const Coord &dst, int owner,
                       int wait, bool yx_first)
{
    network::Path first = yx_first ? network::yxRoute(src, dst)
                                   : network::xyRoute(src, dst);
    if (claimRoute(mesh_, first, owner, opts_.legacy_paths))
        return first;
    if (wait >= opts_.adapt_timeout) {
        network::Path second = yx_first ? network::xyRoute(src, dst)
                                        : network::yxRoute(src, dst);
        if (claimRoute(mesh_, second, owner, opts_.legacy_paths)) {
            ++transpose_fallbacks_;
            return second;
        }
    }
    if (wait >= opts_.bfs_timeout) {
        auto detour = opts_.legacy_paths
            ? network::adaptiveRoute(mesh_, src, dst, owner)
            : network::adaptiveRoute(mesh_, src, dst, owner,
                                     scratch_);
        if (detour) {
            ++bfs_detours_;
            mesh_.claim(*detour, owner);
            return detour;
        }
    }
    return std::nullopt;
}

void
ChainClaimer::reserveTerminal(const Coord &terminal)
{
    auto idx = static_cast<size_t>(
        linearIndex(terminal, mesh_.width()));
    if (reserved_[idx] >= 0)
        return;
    int sentinel = reserved_owner_base + num_reserved_++;
    reserved_[idx] = sentinel;
    network::Path node;
    node.nodes.push_back(terminal);
    panicIf(!mesh_.tryClaim(node, sentinel),
            "patch terminal already claimed on the mesh");
}

bool
ChainClaimer::isReserved(const Coord &c) const
{
    return reserved_[static_cast<size_t>(
               linearIndex(c, mesh_.width()))]
        >= 0;
}

void
ChainClaimer::setEndpointReserved(const Coord &c, bool reserved)
{
    int sentinel = reserved_[static_cast<size_t>(
        linearIndex(c, mesh_.width()))];
    if (sentinel < 0)
        return;
    network::Path node;
    node.nodes.push_back(c);
    // The terminal may be engaged in another live chain (two
    // commuting ops can share a qubit): only the sentinel's own
    // hold is suspended or restored, never a chain's.
    if (reserved) {
        if (mesh_.nodeOwner(c) == network::Mesh::no_owner)
            mesh_.claim(node, sentinel);
    } else if (mesh_.nodeOwner(c) == sentinel) {
        mesh_.release(node, sentinel);
    }
}

std::optional<network::Path>
ChainClaimer::tryClaim(const network::Path &primary,
                       const network::Path &fallback, int owner,
                       int wait)
{
    const Coord &src = primary.source();
    const Coord &dst = primary.dest();

    // Suspend the endpoint reservations: the two merged patches are
    // part of the chain, but stay opaque to every other chain.
    setEndpointReserved(src, false);
    setEndpointReserved(dst, false);

    if (claimRoute(mesh_, primary, owner, opts_.legacy_paths))
        return primary;
    if (wait >= opts_.adapt_timeout
        && claimRoute(mesh_, fallback, owner, opts_.legacy_paths)) {
        ++transpose_fallbacks_;
        return fallback;
    }
    if (wait >= opts_.bfs_timeout) {
        auto detour = opts_.legacy_paths
            ? network::adaptiveRoute(mesh_, src, dst, owner)
            : network::adaptiveRoute(mesh_, src, dst, owner,
                                     scratch_);
        if (detour) {
            ++bfs_detours_;
            mesh_.claim(*detour, owner);
            return detour;
        }
    }

    setEndpointReserved(src, true);
    setEndpointReserved(dst, true);
    return std::nullopt;
}

void
ChainClaimer::release(const network::Path &chain, int owner)
{
    mesh_.release(chain, owner);
    setEndpointReserved(chain.source(), true);
    setEndpointReserved(chain.dest(), true);
}

void
MagicFactoryPool::consume(int f)
{
    if (!limited() || f < 0)
        return;
    auto &stock = stock_[static_cast<size_t>(f)];
    panicIf(stock <= 0, "consumed magic state from empty factory");
    --stock;
}

LiveIntervalProfile::Summary
LiveIntervalProfile::summarize(uint64_t total_cycles) const
{
    std::vector<std::pair<uint64_t, int>> deltas = deltas_;
    std::sort(deltas.begin(), deltas.end());

    Summary out;
    int64_t live = 0;
    uint64_t prev_time = 0;
    double live_cycles = 0;
    for (const auto &[time, delta] : deltas) {
        live_cycles += static_cast<double>(live)
                     * static_cast<double>(time - prev_time);
        prev_time = time;
        live += delta;
        out.peak = std::max(
            out.peak,
            static_cast<uint64_t>(std::max<int64_t>(0, live)));
    }
    out.average = total_cycles
        ? live_cycles / static_cast<double>(total_cycles)
        : 0.0;
    return out;
}

} // namespace qsurf::engine
