#include "engine/sim.h"

#include <algorithm>

#include "network/route.h"

namespace qsurf::engine {

std::optional<network::Path>
RouteClaimer::tryClaim(const Coord &src, const Coord &dst, int owner,
                       int wait, bool yx_first)
{
    network::Path first = yx_first ? network::yxRoute(src, dst)
                                   : network::xyRoute(src, dst);
    if (mesh_.routeFree(first, owner)) {
        mesh_.claim(first, owner);
        return first;
    }
    if (wait >= opts_.adapt_timeout) {
        network::Path second = yx_first ? network::xyRoute(src, dst)
                                        : network::yxRoute(src, dst);
        if (mesh_.routeFree(second, owner)) {
            ++transpose_fallbacks_;
            mesh_.claim(second, owner);
            return second;
        }
    }
    if (wait >= opts_.bfs_timeout) {
        auto detour = network::adaptiveRoute(mesh_, src, dst, owner);
        if (detour) {
            ++bfs_detours_;
            mesh_.claim(*detour, owner);
            return detour;
        }
    }
    return std::nullopt;
}

LiveIntervalProfile::Summary
LiveIntervalProfile::summarize(uint64_t total_cycles) const
{
    std::vector<std::pair<uint64_t, int>> deltas = deltas_;
    std::sort(deltas.begin(), deltas.end());

    Summary out;
    int64_t live = 0;
    uint64_t prev_time = 0;
    double live_cycles = 0;
    for (const auto &[time, delta] : deltas) {
        live_cycles += static_cast<double>(live)
                     * static_cast<double>(time - prev_time);
        prev_time = time;
        live += delta;
        out.peak = std::max(
            out.peak,
            static_cast<uint64_t>(std::max<int64_t>(0, live)));
    }
    out.average = total_cycles
        ? live_cycles / static_cast<double>(total_cycles)
        : 0.0;
    return out;
}

} // namespace qsurf::engine
