/**
 * @file
 * The common simulation-engine abstraction every backend implements.
 *
 * The paper's evaluation is a cross-product sweep — application x
 * backend x policy x code distance — and historically each backend
 * (braided double-defect, Multi-SIMD planar, and the analytic
 * design-space models) was driven through its own bespoke code path.
 * A Backend names itself, validates a work item in prepare(), runs it
 * to completion, and returns a uniform Metrics record, so the sweep
 * driver, the toolflow and every figure bench can treat all backends
 * interchangeably; new backends (lattice-surgery mapping,
 * teleportation-based routing, ...) plug into the Registry without
 * touching any caller.
 *
 * Backends are stateless: run() is const and must be thread-safe and
 * deterministic (same WorkItem => bit-identical Metrics), which is
 * what lets the SweepDriver execute items on any number of threads
 * without changing results.
 */

#ifndef QSURF_ENGINE_BACKEND_H
#define QSURF_ENGINE_BACKEND_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apps/apps.h"
#include "circuit/circuit.h"
#include "fabric/defect.h"
#include "qec/code.h"
#include "qec/technology.h"

namespace qsurf::obs {
class TraceRecorder;
} // namespace qsurf::obs

namespace qsurf::engine {

/** Uniform result record of one backend run (one figure point). */
struct Metrics
{
    /** Registry name of the backend that produced the record. */
    std::string backend;

    /** Surface-code flavor the backend models. */
    qec::CodeKind code = qec::CodeKind::Planar;

    /** Code distance the run used (after auto-selection). */
    int code_distance = 0;

    /** Total schedule length in surface-code cycles. */
    uint64_t schedule_cycles = 0;

    /** Dependence-limited lower bound in cycles. */
    uint64_t critical_path_cycles = 0;

    /** Total physical qubits of the machine. */
    double physical_qubits = 0;

    /** Wall-clock execution time of the computation. */
    double seconds = 0;

    /**
     * Backend-specific named counters (mesh utilization, teleports,
     * stall cycles, ...), in emission order.
     */
    std::vector<std::pair<std::string, double>> extras;

    /** @return schedule length / critical path. */
    double
    ratio() const
    {
        return critical_path_cycles
            ? static_cast<double>(schedule_cycles)
                / static_cast<double>(critical_path_cycles)
            : 0.0;
    }

    /** @return the space-time product (qubits x seconds). */
    double spaceTime() const { return physical_qubits * seconds; }

    /** Append (or overwrite) the named extra counter. */
    void set(const std::string &name, double v);

    /** @return extra @p name, or @p fallback when absent. */
    double extra(const std::string &name, double fallback = 0) const;

    /** @return true when extra @p name is present. */
    bool has(const std::string &name) const;
};

/** Parameters of one backend run, common across backends. */
struct RunConfig
{
    /** Technology characteristics (Figure 4's bottom input). */
    qec::Technology tech;

    /** Code distance; 0 selects from the logical-op count and pP. */
    int code_distance = 0;

    /**
     * Braid priority policy index (Section 6.3, Policies 0-6) for
     * the double-defect backend; others ignore it.
     */
    int policy = 6;

    /** EPR lookahead window for the planar backend (steps). */
    int epr_window_steps = 32;

    /**
     * Concurrent EPR transports the planar machine's channels
     * sustain; 0 uses the architecture's channel-link count.
     */
    int epr_bandwidth = 0;

    /** SIMD regions in the planar machine. */
    int num_simd_regions = 4;

    /** Per-region broadcast capacity of the planar machine. */
    int region_capacity = 1024;

    /**
     * Computation size KQ in logical operations, for the analytic
     * model backends; 0 derives it from the circuit's op count.
     */
    double kq = 0;

    /**
     * Event-driven fast-forward in the simulated backends: jump
     * over do-nothing cycles instead of ticking them one at a time.
     * Results are bit-identical either way; disable to reproduce
     * the cycle-stepped loop for A/B perf measurement
     * (bench/perf_engine does exactly that).
     */
    bool fast_forward = true;

    /**
     * Reproduce the pre-optimization execution paths everywhere
     * they were replaced (cycle-aligned double-walk claims,
     * per-detour BFS allocation, quadratic planar level scan).
     * Combined with fast_forward = false this is the pre-change
     * simulator, bit for bit — bench/perf_engine's recorded
     * baseline.
     */
    bool legacy_baseline = false;

    /**
     * Cycles a magic-state factory needs to distill one state, for
     * the double-defect backend; 0 means production is never the
     * bottleneck (Section 4.3's factories sized off the critical
     * path).  Non-zero values expose the factory space-vs-time
     * tradeoff as a sweep axis.
     */
    int magic_production_cycles = 0;

    /** Distilled states a factory can buffer (with production on). */
    int magic_buffer_capacity = 2;

    /**
     * Route-claim escalation timeouts of the simulated backends
     * (Section 6.1): cycles a stalled op waits before trying the
     * transposed route, before the BFS detour, and before being
     * dropped and re-injected.  The defaults match the schedulers'
     * historical constants; sweeps tighten them to study contention.
     */
    int adapt_timeout = 4;
    int bfs_timeout = 8;
    int drop_timeout = 16;

    /**
     * Runaway guard of the simulated backends: a run that exceeds
     * this many simulated cycles aborts as misconfigured.  Deep
     * workloads at large code distance legitimately pass the
     * default (cycle counts scale with gates x distance); raise it
     * when the workload is known to be that big (bench/scaleout).
     */
    uint64_t max_cycles = 100'000'000;

    /**
     * Scheme arbiter of the "hybrid/mixed-sim" backend (a
     * hybrid::ArbiterKind value): 0 cost-model greedy, 1 congestion
     * reactive, 2-4 force braid/teleport/surgery.  Other backends
     * ignore it.
     */
    int hybrid_arbiter = 0;

    /**
     * Patch-layout objective of the surgery and hybrid backends (a
     * partition::LayoutObjective value): 0 braid-manhattan (the
     * Section 6.2 objective, historically reused for surgery),
     * 1 corridor (bisection seed refined against the around-patch
     * corridor length), 2 corridor+lanes (corridor objective plus
     * dedicated ancilla lanes sized into the patch mesh).  The
     * braid backends always keep the Manhattan objective.
     */
    int layout_objective = 0;

    /** Patch rows/columns between dedicated ancilla lanes
     *  (layout_objective 2). */
    int lane_spacing = 4;

    /**
     * Fabric defect density for the simulated mesh backends: the
     * fraction of tiles knocked out (and half that of tile-to-tile
     * links).  0 is the perfect fabric every run assumed before
     * defect awareness; the analytic models ignore it.
     */
    double defect_density = 0;

    /** Defect-map generator seed — independent of the layout seed,
     *  so the damage stays fixed while layouts vary. */
    uint64_t defect_seed = 0;

    /** Explicit device defect spec as JSON (see
     *  fabric::DefectParams::spec_json); non-empty overrides the
     *  generated map. */
    std::string defect_spec;

    /** Layout / tie-break RNG seed. */
    uint64_t seed = 1;

    /** @return the fabric damage recipe of this run. */
    fabric::DefectParams
    defectParams() const
    {
        return {defect_density, defect_seed, defect_spec};
    }

    /**
     * Structured-event trace hook (see obs/trace.h); null disables
     * tracing.  Recording never changes simulation behaviour —
     * Metrics are bit-identical with tracing on or off — and the
     * pointer is deliberately excluded from every artifactKey()
     * (tracing is an observation channel, not an input).  A
     * recorder is owned by exactly one run; the sweep driver wires
     * a fresh one into each item.
     */
    obs::TraceRecorder *trace = nullptr;
};

/** One unit of work handed to a backend. */
struct WorkItem
{
    /** Application the circuit (or scaling model) comes from. */
    apps::AppKind app = apps::AppKind::SQ;

    /** Display name (defaults to the app spec name). */
    std::string app_name;

    /**
     * The Clifford+T-decomposed circuit; may be null for backends
     * with needsCircuit() == false (the analytic models).
     */
    const circuit::Circuit *circuit = nullptr;

    /** Run parameters. */
    RunConfig config;

    /**
     * Optional precomputed circuit::fingerprint(*circuit); 0 means
     * "compute on demand".  Callers that resolve the circuit through
     * the service cache set it so repeated artifactKey() calls don't
     * re-hash a large gate list.
     */
    uint64_t circuit_fingerprint = 0;

    /**
     * @return the computation size: config.kq when set, otherwise
     * the circuit's logical-op count.
     */
    double logicalOps() const;

    /**
     * @return the code distance: config override when set, otherwise
     * chosen from logicalOps() and the technology error rate.
     */
    int resolveDistance() const;

    /** @return circuit_fingerprint, computing (but not storing) it
     *  from the circuit when unset; 0 without a circuit. */
    uint64_t resolveFingerprint() const;
};

/**
 * Opaque base of a backend's cacheable prepare artifact: everything
 * run() derives from the circuit and the seeded layout alone (the
 * interaction graph, machine geometry, dependence DAG, per-gate
 * criticality, ...).  Artifacts are immutable once built and safe to
 * share across threads; a backend handed one it built for the same
 * artifactKey() produces bit-identical Metrics to an inline run.
 */
class PreparedArtifact
{
  public:
    virtual ~PreparedArtifact() = default;

    PreparedArtifact() = default;
    PreparedArtifact(const PreparedArtifact &) = delete;
    PreparedArtifact &operator=(const PreparedArtifact &) = delete;
};

/**
 * A simulation or estimation backend.  Implementations must be
 * stateless across run() calls: run() is const, thread-safe and
 * deterministic in the WorkItem alone.
 */
class Backend
{
  public:
    virtual ~Backend() = default;

    /** @return the unique registry name, e.g. "double-defect". */
    virtual std::string name() const = 0;

    /** @return the surface-code flavor this backend models. */
    virtual qec::CodeKind code() const = 0;

    /** @return true when run() needs item.circuit. */
    virtual bool needsCircuit() const { return true; }

    /**
     * Validate @p item before run(); fatal() on unusable input.
     * The default checks the technology and circuit presence.
     */
    virtual void prepare(const WorkItem &item) const;

    /** Run @p item to completion. */
    virtual Metrics run(const WorkItem &item) const = 0;

    /**
     * @return the cache key of the prepare artifact run() could
     * reuse for @p item, or "" when this backend has none (the
     * analytic models).  Keys name every input the artifact depends
     * on — circuit fingerprint, seed, layout objective, lane
     * spacing, resolved distance, machine kind — so two items with
     * the same key always accept the same artifact; backends whose
     * machines coincide (surgery and hybrid share one patch
     * machine) intentionally return identical keys.
     */
    virtual std::string
    artifactKey(const WorkItem &item) const
    {
        (void)item;
        return {};
    }

    /**
     * Build the artifact artifactKey(@p item) names, or null for a
     * backend without one.  Thread-safe and deterministic, like
     * run().
     */
    virtual std::shared_ptr<const PreparedArtifact>
    buildArtifact(const WorkItem &item) const
    {
        (void)item;
        return nullptr;
    }

    /**
     * Run @p item reusing @p artifact (as returned by
     * buildArtifact() for the same artifactKey()); null falls back
     * to the inline path.  Results are bit-identical either way.
     * panic()s when handed an artifact of the wrong type.
     */
    virtual Metrics
    run(const WorkItem &item, const PreparedArtifact *artifact) const
    {
        (void)artifact;
        return run(item);
    }
};

/**
 * @return total physical qubits of a machine holding
 * @p logical_qubits logical qubits of @p code at distance @p d,
 * including the code's ancilla/factory space overhead.
 */
double physicalQubits(qec::CodeKind code, double logical_qubits,
                      int d);

/**
 * @return a deterministic per-item seed: mixes @p base_seed with
 * @p index so sweep items get decorrelated, reproducible streams
 * regardless of execution order.
 */
uint64_t mixSeed(uint64_t base_seed, uint64_t index);

/**
 * @return the "/defd=.../defs=.../spec=..." artifact-key suffix of
 * @p p, or "" when the fabric is perfect — so defect-free keys stay
 * byte-identical to their pre-defect-awareness form and every cache
 * entry built before this axis existed remains valid.
 */
std::string defectKeySuffix(const fabric::DefectParams &p);

/**
 * @return a crude end-to-end logical-error proxy for a run of
 * @p schedule_cycles cycles on @p logical_qubits logical qubits at
 * distance @p d: logical qubits x logical timesteps (cycles / d) x
 * the per-op logical error rate at the defect-inflated physical
 * rate @p p_physical * @p error_multiplier.  A comparative yield
 * metric (lower is better), not an absolute failure probability.
 */
double logicalErrorProxy(double logical_qubits,
                         uint64_t schedule_cycles, int d,
                         double p_physical,
                         double error_multiplier);

} // namespace qsurf::engine

#endif // QSURF_ENGINE_BACKEND_H
