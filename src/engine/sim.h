/**
 * @file
 * Shared simulation primitives of the backend engines.
 *
 * Both run-to-completion backends are discrete simulators built from
 * the same small set of mechanisms: a deterministic keyed ready
 * queue, an expiry queue retiring in-flight work, the route-claim
 * escalation of Section 6.1 on the circuit-switched mesh, a pool of
 * identical transport channels, and sweep-line accounting of live
 * resources.  Hoisting them here keeps the braid and planar
 * schedulers to their policy decisions and guarantees every backend
 * shares the same deterministic tie-breaking, which is what makes
 * parallel sweeps bit-identical at any thread count.
 */

#ifndef QSURF_ENGINE_SIM_H
#define QSURF_ENGINE_SIM_H

#include <cstdint>
#include <map>
#include <optional>
#include <queue>
#include <set>
#include <vector>

#include "network/mesh.h"

namespace qsurf::engine {

/**
 * Sort key of one ready item; smaller sorts first.  The three major
 * keys express a backend's priority policy; the insertion sequence
 * number (stamped by ReadyQueue) breaks all remaining ties FIFO, so
 * iteration order never depends on memory layout or hashing.
 */
struct ReadyEntry
{
    int64_t k1 = 0;
    int64_t k2 = 0;
    int64_t k3 = 0;
    uint64_t seq = 0; ///< Insertion order; stamped by ReadyQueue.
    int id = 0;       ///< Backend-defined item id; last tie-break.

    friend bool
    operator<(const ReadyEntry &a, const ReadyEntry &b)
    {
        if (a.k1 != b.k1)
            return a.k1 < b.k1;
        if (a.k2 != b.k2)
            return a.k2 < b.k2;
        if (a.k3 != b.k3)
            return a.k3 < b.k3;
        if (a.seq != b.seq)
            return a.seq < b.seq;
        return a.id < b.id;
    }
};

/**
 * Priority-ordered ready queue with deterministic FIFO tie-breaking.
 * Iteration yields entries best-first; erase/insert during a scan
 * follows std::set iterator rules.
 */
class ReadyQueue
{
  public:
    using iterator = std::set<ReadyEntry>::iterator;
    using const_iterator = std::set<ReadyEntry>::const_iterator;

    /** Insert @p e, stamping the next insertion sequence number. */
    void
    insert(ReadyEntry e)
    {
        e.seq = next_seq_++;
        entries_.insert(e);
    }

    iterator begin() { return entries_.begin(); }
    iterator end() { return entries_.end(); }
    const_iterator begin() const { return entries_.begin(); }
    const_iterator end() const { return entries_.end(); }

    /** Erase the entry at @p it; @return the next iterator. */
    iterator erase(iterator it) { return entries_.erase(it); }

    bool empty() const { return entries_.empty(); }
    size_t size() const { return entries_.size(); }

  private:
    std::set<ReadyEntry> entries_;
    uint64_t next_seq_ = 0;
};

/**
 * Min-heap of (cycle, id) retirement events.  Equal-cycle events pop
 * in ascending id order, so retirement order is deterministic.
 */
class ExpiryQueue
{
  public:
    /** Schedule item @p id to retire at @p cycle. */
    void schedule(uint64_t cycle, int id) { heap_.emplace(cycle, id); }

    bool empty() const { return heap_.empty(); }

    /**
     * Pop the earliest event due at or before @p now.
     * @return its id, or nullopt when nothing is ripe.
     */
    std::optional<int>
    popRipe(uint64_t now)
    {
        if (heap_.empty() || heap_.top().first > now)
            return std::nullopt;
        int id = heap_.top().second;
        heap_.pop();
        return id;
    }

  private:
    std::priority_queue<std::pair<uint64_t, int>,
                        std::vector<std::pair<uint64_t, int>>,
                        std::greater<>>
        heap_;
};

/** Timeouts of the route-claim escalation (Section 6.1). */
struct RouteClaimOptions
{
    /** Cycles a requester waits before trying the transposed route. */
    int adapt_timeout = 4;

    /** Cycles before falling back to the adaptive BFS detour. */
    int bfs_timeout = 8;
};

/**
 * The route-claim escalation of Section 6.1, shared by the
 * circuit-switched backends: try the preferred dimension-ordered
 * route, fall back to the transposed one once the requester has
 * waited adapt_timeout cycles, and to a breadth-first detour through
 * currently-free resources after bfs_timeout.  On success the route
 * is claimed on the mesh atomically (the n-hops-in-1-cycle property).
 */
class RouteClaimer
{
  public:
    RouteClaimer(network::Mesh &mesh, const RouteClaimOptions &opts)
        : mesh_(mesh), opts_(opts)
    {
    }

    /**
     * Try to claim a route from @p src to @p dst for @p owner.
     *
     * @param wait     cycles the owner has already failed to place;
     *                 drives the escalation.
     * @param yx_first prefer the Y-then-X geometry (Figure 5's
     *                 closing segment); the transposed fallback is
     *                 then X-then-Y.
     * @return the claimed path, or nullopt when every stage failed.
     */
    std::optional<network::Path> tryClaim(const Coord &src,
                                          const Coord &dst, int owner,
                                          int wait, bool yx_first);

    /** Successful placements that needed the transposed route. */
    uint64_t transposeFallbacks() const { return transpose_fallbacks_; }

    /** Successful placements that needed the BFS detour. */
    uint64_t bfsDetours() const { return bfs_detours_; }

  private:
    network::Mesh &mesh_;
    RouteClaimOptions opts_;
    uint64_t transpose_fallbacks_ = 0;
    uint64_t bfs_detours_ = 0;
};

/**
 * The chain-claiming variant of RouteClaimer, for lattice-surgery
 * merge/split corridors (Section 8.2).
 *
 * Chains differ from braids in two ways.  First, the corridor may
 * not pass *through* a live data patch: every patch terminal is
 * reserved up front, and a chain only touches the two patches it
 * merges (their reservations are suspended while the chain runs).
 * Second, the preferred geometry is not plain dimension-ordered —
 * callers supply corridor-aware primary/fallback routes (built by
 * the patch architecture) and the claimer escalates primary ->
 * fallback -> BFS-through-free-resources on the same timeouts as
 * RouteClaimer.  Like a braid, a granted chain owns its whole
 * corridor exclusively until release().
 */
class ChainClaimer
{
  public:
    ChainClaimer(network::Mesh &mesh, const RouteClaimOptions &opts)
        : mesh_(mesh), opts_(opts)
    {
    }

    /**
     * Reserve @p terminal as a live patch: no chain may route
     * through it (only chains terminating there may touch it).
     */
    void reserveTerminal(const Coord &terminal);

    /** @return true when @p c is a reserved patch terminal. */
    bool isReserved(const Coord &c) const;

    /**
     * Try to claim the corridor of @p primary (endpoints included)
     * for @p owner.
     *
     * @param primary  preferred corridor route; its endpoints name
     *                 the two patches being merged.
     * @param fallback alternate geometry, tried once the owner has
     *                 waited adapt_timeout cycles.
     * @param wait     cycles the owner has already failed to place.
     * @return the claimed corridor, or nullopt when every stage
     *         failed (endpoint reservations are then restored).
     */
    std::optional<network::Path>
    tryClaim(const network::Path &primary,
             const network::Path &fallback, int owner, int wait);

    /** Release @p chain and restore its endpoint reservations. */
    void release(const network::Path &chain, int owner);

    /** Successful placements that needed the fallback geometry. */
    uint64_t transposeFallbacks() const { return transpose_fallbacks_; }

    /** Successful placements that needed the BFS detour. */
    uint64_t bfsDetours() const { return bfs_detours_; }

  private:
    /** Suspend (true) or restore (false) an endpoint reservation. */
    void setEndpointReserved(const Coord &c, bool reserved);

    /** First sentinel owner id; far above any op id. */
    static constexpr int reserved_owner_base = 1 << 28;

    network::Mesh &mesh_;
    RouteClaimOptions opts_;
    std::map<Coord, int> reserved_;
    uint64_t transpose_fallbacks_ = 0;
    uint64_t bfs_detours_ = 0;
};

/**
 * A pool of identical transport channels.  acquire() reserves the
 * earliest free slot, modelling a bandwidth-limited link set whose
 * transfers queue when all channels are busy.
 */
class ChannelPool
{
  public:
    /** @param slots concurrent transfers the pool sustains. */
    explicit ChannelPool(int slots) : slots_(slots) {}

    /**
     * Reserve a slot for a transfer of @p duration cycles starting no
     * earlier than @p earliest.
     * @return the actual start cycle (>= @p earliest).
     */
    uint64_t
    acquire(uint64_t earliest, uint64_t duration)
    {
        uint64_t start = earliest;
        while (static_cast<int>(busy_until_.size()) >= slots_) {
            start = std::max(start, busy_until_.top());
            busy_until_.pop();
        }
        busy_until_.push(start + duration);
        return start;
    }

  private:
    int slots_;
    std::priority_queue<uint64_t, std::vector<uint64_t>,
                        std::greater<>>
        busy_until_;
};

/**
 * Sweep-line accounting of live intervals (+1 at start, -1 at end):
 * peak concurrency and the time-averaged population over a horizon.
 */
class LiveIntervalProfile
{
  public:
    /** Record one interval live from @p start to @p end. */
    void
    add(uint64_t start, uint64_t end)
    {
        deltas_.emplace_back(start, +1);
        deltas_.emplace_back(end, -1);
    }

    struct Summary
    {
        uint64_t peak = 0;  ///< Maximum simultaneous intervals.
        double average = 0; ///< Time-averaged population.
    };

    /** Summarize over @p total_cycles (for the average). */
    Summary summarize(uint64_t total_cycles) const;

  private:
    std::vector<std::pair<uint64_t, int>> deltas_;
};

} // namespace qsurf::engine

#endif // QSURF_ENGINE_SIM_H
