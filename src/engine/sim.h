/**
 * @file
 * Shared simulation primitives of the backend engines.
 *
 * Both run-to-completion backends are discrete simulators built from
 * the same small set of mechanisms: a deterministic keyed ready
 * queue, an expiry queue retiring in-flight work, the route-claim
 * escalation of Section 6.1 on the circuit-switched mesh, a pool of
 * identical transport channels, and sweep-line accounting of live
 * resources.  Hoisting them here keeps the braid and planar
 * schedulers to their policy decisions and guarantees every backend
 * shares the same deterministic tie-breaking, which is what makes
 * parallel sweeps bit-identical at any thread count.
 */

#ifndef QSURF_ENGINE_SIM_H
#define QSURF_ENGINE_SIM_H

#include <algorithm>
#include <cstdint>
#include <optional>
#include <queue>
#include <set>
#include <vector>

#include "common/arena.h"
#include "network/mesh.h"
#include "network/route.h"
#include "obs/trace.h"

namespace qsurf::engine {

/**
 * Sort key of one ready item; smaller sorts first.  The three major
 * keys express a backend's priority policy; the insertion sequence
 * number (stamped by ReadyQueue) breaks all remaining ties FIFO, so
 * iteration order never depends on memory layout or hashing.
 */
struct ReadyEntry
{
    int64_t k1 = 0;
    int64_t k2 = 0;
    int64_t k3 = 0;
    uint64_t seq = 0; ///< Insertion order; stamped by ReadyQueue.
    int id = 0;       ///< Backend-defined item id; last tie-break.

    friend bool
    operator<(const ReadyEntry &a, const ReadyEntry &b)
    {
        if (a.k1 != b.k1)
            return a.k1 < b.k1;
        if (a.k2 != b.k2)
            return a.k2 < b.k2;
        if (a.k3 != b.k3)
            return a.k3 < b.k3;
        if (a.seq != b.seq)
            return a.seq < b.seq;
        return a.id < b.id;
    }
};

/**
 * Priority-ordered ready queue with deterministic FIFO tie-breaking.
 * Iteration yields entries best-first; erase/insert during a scan
 * follows std::set iterator rules.  Node storage comes from the
 * thread's scratch arena when one is bound at construction (every
 * insert is a tree-node allocation — by far the hottest allocation
 * site of a simulator run), the global heap otherwise; ordering and
 * results are identical either way.
 */
class ReadyQueue
{
  public:
    using Set = std::set<ReadyEntry, std::less<ReadyEntry>,
                         ArenaAllocator<ReadyEntry>>;
    using iterator = Set::iterator;
    using const_iterator = Set::const_iterator;

    /** Insert @p e, stamping the next insertion sequence number. */
    void
    insert(ReadyEntry e)
    {
        e.seq = next_seq_++;
        entries_.insert(e);
    }

    iterator begin() { return entries_.begin(); }
    iterator end() { return entries_.end(); }
    const_iterator begin() const { return entries_.begin(); }
    const_iterator end() const { return entries_.end(); }

    /** Erase the entry at @p it; @return the next iterator. */
    iterator erase(iterator it) { return entries_.erase(it); }

    bool empty() const { return entries_.empty(); }
    size_t size() const { return entries_.size(); }

  private:
    Set entries_;
    uint64_t next_seq_ = 0;
};

/**
 * Min-heap of (cycle, id) retirement events.  Equal-cycle events pop
 * in ascending id order, so retirement order is deterministic.
 */
class ExpiryQueue
{
  public:
    /** Schedule item @p id to retire at @p cycle. */
    void schedule(uint64_t cycle, int id) { heap_.emplace(cycle, id); }

    bool empty() const { return heap_.empty(); }

    /** @return the earliest scheduled cycle, if any. */
    std::optional<uint64_t>
    nextDeadline() const
    {
        if (heap_.empty())
            return std::nullopt;
        return heap_.top().first;
    }

    /**
     * Pop the earliest event due at or before @p now.
     * @return its id, or nullopt when nothing is ripe.
     */
    std::optional<int>
    popRipe(uint64_t now)
    {
        if (heap_.empty() || heap_.top().first > now)
            return std::nullopt;
        int id = heap_.top().second;
        heap_.pop();
        return id;
    }

  private:
    using Event = std::pair<uint64_t, int>;
    std::priority_queue<Event,
                        std::vector<Event, ArenaAllocator<Event>>,
                        std::greater<>>
        heap_;
};

/** Timeouts of the route-claim escalation (Section 6.1). */
struct RouteClaimOptions
{
    /** Cycles a requester waits before trying the transposed route. */
    int adapt_timeout = 4;

    /** Cycles before falling back to the adaptive BFS detour. */
    int bfs_timeout = 8;

    /**
     * Use the pre-optimization claim paths: the routeFree-then-claim
     * double walk and a freshly allocated BFS working set per detour
     * search.  Identical results, original cost — bench/perf_engine
     * sets this to record an honest pre-change baseline.
     */
    bool legacy_paths = false;
};

/**
 * The time-skipping core of the event-driven schedulers.
 *
 * A cycle-stepped simulator spends most cycles discovering that
 * nothing can change: every in-flight op is mid-stabilization and
 * every stalled op fails placement exactly as it did last cycle.
 * After a placement pass that claims nothing (and drops nothing),
 * the mesh, the ready queue and the factory stocks are all frozen
 * until the next *interesting* event — so the scheduler may jump
 * straight to it, bulk-accounting the elided cycles (wait counters,
 * failure counters, Mesh::tick(n)) instead of replaying them.
 *
 * The planner collects the interesting-event candidates of one such
 * pass:
 *
 *  - eventAt(): an externally scheduled cycle — the next ExpiryQueue
 *    retirement (frees routes, readies successors) or the next
 *    magic-state factory replenishment that raises a stock;
 *  - stalledOp(): the next wait-threshold crossing of a stalled op.
 *    Crossing adapt_timeout or bfs_timeout changes how the op routes
 *    (and, for T gates, how many factories it considers), and
 *    reaching drop_timeout reorders the ready queue — all of which
 *    change results, so the jump must land *on* the crossing, never
 *    beyond it.
 *
 * skippable() then returns how many whole do-nothing iterations can
 * be elided so that the next executed pass is the interesting one.
 * Everything the elided iterations would have done is linear in
 * their count, which is what keeps the fast-forwarded run
 * bit-identical to the one-cycle-at-a-time loop.
 */
class FastForward
{
  public:
    /** Start planning after a no-progress pass at cycle @p now. */
    void
    begin(uint64_t now)
    {
        now_ = now;
        next_ = no_event;
    }

    /** The pass at absolute @p cycle may behave differently. */
    void
    eventAt(uint64_t cycle)
    {
        next_ = std::min(next_, cycle);
    }

    /**
     * Register the escalation thresholds of a stalled op.
     *
     * @param wait_used the wait value the pass just routed with.
     * @param wait_now  the op's wait counter after the pass (usually
     *                  wait_used + 1; Policy 0's drop handling resets
     *                  it instead).
     */
    void
    stalledOp(int wait_used, int wait_now,
              const RouteClaimOptions &route, int drop_timeout)
    {
        // Future passes route with wait_now, wait_now + 1, ...; the
        // first one whose escalation stage differs from the pass
        // just executed is interesting.
        if (wait_used < route.adapt_timeout)
            eventIn(route.adapt_timeout - wait_now + 1);
        else if (wait_used < route.bfs_timeout)
            eventIn(route.bfs_timeout - wait_now + 1);
        // The pass whose failure pushes wait to drop_timeout drops
        // and re-inserts the op, reordering the queue.
        if (drop_timeout > 0)
            eventIn(static_cast<int64_t>(drop_timeout) - wait_now);
    }

    /**
     * @return how many consecutive do-nothing iterations may be
     * elided, given that the simulation fatals past @p horizon
     * anyway (so an event-free schedule still terminates).
     */
    uint64_t
    skippable(uint64_t horizon) const
    {
        uint64_t target = std::min(next_, horizon);
        return target > now_ + 1 ? target - now_ - 1 : 0;
    }

    /** Total cycles elided so far (for skip-ratio reporting). */
    uint64_t skipped() const { return skipped_; }

    /** Record @p n elided cycles. */
    void recordSkip(uint64_t n) { skipped_ += n; }

  private:
    /** A relative candidate; clamped to land no earlier than the
     *  very next pass. */
    void
    eventIn(int64_t delta)
    {
        eventAt(now_ + static_cast<uint64_t>(std::max<int64_t>(
                           1, delta)));
    }

    static constexpr uint64_t no_event = UINT64_MAX;

    uint64_t now_ = 0;
    uint64_t next_ = no_event;
    uint64_t skipped_ = 0;
};

/**
 * The shared plan-and-account step both schedulers run after a
 * placement pass that claimed nothing and dropped nothing: gather
 * the interesting-event candidates (next retirement, each stalled
 * op's thresholds, any backend-specific events via @p extra_events),
 * and when a jump is possible, bulk-account everything the elided
 * iterations would have done uniformly — ticks, placement-failure
 * counters, wait counters.  Backend-specific bulk counters (e.g.
 * braid magic starvations) are the caller's to apply, scaled by the
 * returned skip.
 *
 * @param attempted    (op id, wait value the pass routed with).
 * @param wait_of      callable int&(int id): the op's wait counter.
 * @param extra_events callable(FastForward&) registering additional
 *                     event candidates before the jump is planned.
 * @return the number of iterations elided (0 = nothing to skip);
 *         the caller advances its cycle counter by this.
 */
template <typename WaitOf, typename ExtraEvents>
uint64_t
fastForwardAfterStall(FastForward &ff, const ExpiryQueue &expiry,
                      network::Mesh &mesh, uint64_t now,
                      uint64_t horizon,
                      const std::vector<std::pair<int, int>> &attempted,
                      WaitOf &&wait_of, const RouteClaimOptions &route,
                      int drop_timeout, uint64_t &placement_failures,
                      ExtraEvents &&extra_events)
{
    ff.begin(now);
    if (auto deadline = expiry.nextDeadline())
        ff.eventAt(*deadline);
    extra_events(ff);
    for (const auto &[id, wait_used] : attempted)
        ff.stalledOp(wait_used, wait_of(id), route, drop_timeout);

    uint64_t skip = ff.skippable(horizon);
    if (skip == 0)
        return 0;
    ff.recordSkip(skip);
    mesh.tick(skip);
    placement_failures +=
        static_cast<uint64_t>(attempted.size()) * skip;
    for (const auto &[id, wait_used] : attempted)
        wait_of(id) += static_cast<int>(skip);
    return skip;
}

/**
 * The route-claim escalation of Section 6.1, shared by the
 * circuit-switched backends: try the preferred dimension-ordered
 * route, fall back to the transposed one once the requester has
 * waited adapt_timeout cycles, and to a breadth-first detour through
 * currently-free resources after bfs_timeout.  On success the route
 * is claimed on the mesh atomically (the n-hops-in-1-cycle property).
 * Claim attempts and the BFS detour are allocation-free: validation
 * and claiming share one mesh walk, and the detour search reuses an
 * epoch-stamped scratch owned by the claimer.
 */
class RouteClaimer
{
  public:
    RouteClaimer(network::Mesh &mesh, const RouteClaimOptions &opts)
        : mesh_(mesh), opts_(opts)
    {
    }

    /**
     * Try to claim a route from @p src to @p dst for @p owner.
     *
     * @param wait     cycles the owner has already failed to place;
     *                 drives the escalation.
     * @param yx_first prefer the Y-then-X geometry (Figure 5's
     *                 closing segment); the transposed fallback is
     *                 then X-then-Y.
     * @return the claimed path, or nullopt when every stage failed.
     */
    std::optional<network::Path> tryClaim(const Coord &src,
                                          const Coord &dst, int owner,
                                          int wait, bool yx_first);

    /** Successful placements that needed the transposed route. */
    uint64_t transposeFallbacks() const { return transpose_fallbacks_; }

    /** Successful placements that needed the BFS detour. */
    uint64_t bfsDetours() const { return bfs_detours_; }

  private:
    network::Mesh &mesh_;
    RouteClaimOptions opts_;
    network::BfsScratch scratch_;
    uint64_t transpose_fallbacks_ = 0;
    uint64_t bfs_detours_ = 0;
};

/**
 * The chain-claiming variant of RouteClaimer, for lattice-surgery
 * merge/split corridors (Section 8.2).
 *
 * Chains differ from braids in two ways.  First, the corridor may
 * not pass *through* a live data patch: every patch terminal is
 * reserved up front, and a chain only touches the two patches it
 * merges (their reservations are suspended while the chain runs).
 * Second, the preferred geometry is not plain dimension-ordered —
 * callers supply corridor-aware primary/fallback routes (built by
 * the patch architecture) and the claimer escalates primary ->
 * fallback -> BFS-through-free-resources on the same timeouts as
 * RouteClaimer.  Like a braid, a granted chain owns its whole
 * corridor exclusively until release().
 */
class ChainClaimer
{
  public:
    ChainClaimer(network::Mesh &mesh, const RouteClaimOptions &opts)
        : mesh_(mesh), opts_(opts),
          reserved_(static_cast<size_t>(mesh.numNodes()), -1)
    {
    }

    /**
     * Reserve @p terminal as a live patch: no chain may route
     * through it (only chains terminating there may touch it).
     */
    void reserveTerminal(const Coord &terminal);

    /** @return true when @p c is a reserved patch terminal. */
    bool isReserved(const Coord &c) const;

    /**
     * Try to claim the corridor of @p primary (endpoints included)
     * for @p owner.
     *
     * @param primary  preferred corridor route; its endpoints name
     *                 the two patches being merged.
     * @param fallback alternate geometry, tried once the owner has
     *                 waited adapt_timeout cycles.
     * @param wait     cycles the owner has already failed to place.
     * @return the claimed corridor, or nullopt when every stage
     *         failed (endpoint reservations are then restored).
     */
    std::optional<network::Path>
    tryClaim(const network::Path &primary,
             const network::Path &fallback, int owner, int wait);

    /** Release @p chain and restore its endpoint reservations. */
    void release(const network::Path &chain, int owner);

    /** Successful placements that needed the fallback geometry. */
    uint64_t transposeFallbacks() const { return transpose_fallbacks_; }

    /** Successful placements that needed the BFS detour. */
    uint64_t bfsDetours() const { return bfs_detours_; }

  private:
    /** Suspend (true) or restore (false) an endpoint reservation. */
    void setEndpointReserved(const Coord &c, bool reserved);

    /** First sentinel owner id; far above any op id. */
    static constexpr int reserved_owner_base = 1 << 28;

    network::Mesh &mesh_;
    RouteClaimOptions opts_;
    network::BfsScratch scratch_;

    /** Sentinel owner per mesh node, -1 where unreserved: a flat
     *  table sized once, replacing the old std::map<Coord,int>. */
    std::vector<int32_t> reserved_;
    int num_reserved_ = 0;
    uint64_t transpose_fallbacks_ = 0;
    uint64_t bfs_detours_ = 0;
};

/**
 * Rate-limited magic-state distillation (Section 4.3), shared by
 * every scheduler that sources T gates from factory tiles/patches.
 *
 * Each factory distills one state every production_cycles cycles
 * into a bounded buffer; a T placement consumes one state and a
 * factory with an empty buffer refuses placements (a *starvation*).
 * production_cycles <= 0 models the paper's critical-path-sized
 * factories: supply is never the bottleneck and every query says
 * stocked.  Replenishment order is deterministic (factory index),
 * so schedulers using the pool stay bit-identical across sweep
 * threads and fast-forward modes.
 */
class MagicFactoryPool
{
  public:
    /**
     * Configure @p num_factories factories distilling one state per
     * @p production_cycles into buffers of @p buffer_capacity.
     * Buffers start full; the first refill lands at
     * production_cycles.
     */
    void
    configure(int num_factories, int production_cycles,
              int buffer_capacity)
    {
        production_ = production_cycles;
        capacity_ = buffer_capacity;
        if (production_ <= 0)
            return;
        stock_.assign(static_cast<size_t>(num_factories),
                      buffer_capacity);
        next_ready_.assign(static_cast<size_t>(num_factories),
                           static_cast<uint64_t>(production_cycles));
    }

    /** @return true when production is rate-limited. */
    bool limited() const { return production_ > 0; }

    /**
     * Attach a trace hook; replenish() then emits FactoryReplenish
     * events.  Events are timestamped with the factory's production
     * deadline, not the cycle replenish() happened to be called at,
     * so a fast-forwarding scheduler catching up several refills in
     * one call produces the exact event stream of the stepped loop.
     */
    void setTrace(obs::TraceRecorder *trace) { trace_ = trace; }

    /** @return true when factory @p f can supply a state now. */
    bool
    hasState(int f) const
    {
        if (!limited())
            return true;
        return stock_[static_cast<size_t>(f)] > 0;
    }

    /** Take one state from factory @p f (no-op when unlimited). */
    void consume(int f);

    /** Advance every distillation pipeline to @p now. */
    void
    replenish(uint64_t now)
    {
        if (!limited())
            return;
        for (size_t f = 0; f < stock_.size(); ++f) {
            while (next_ready_[f] <= now) {
                if (stock_[f] < capacity_) {
                    ++stock_[f];
                    if (trace_)
                        trace_->record(
                            {next_ready_[f],
                             obs::EventKind::FactoryReplenish,
                             static_cast<int32_t>(f), stock_[f]});
                }
                next_ready_[f] += static_cast<uint64_t>(production_);
            }
        }
    }

    /**
     * Register the next replenishment that raises a stock as a
     * fast-forward event candidate: a refill can change a stalled
     * T gate's candidate factories, so the jump must not overshoot
     * it.
     */
    void
    registerEvents(FastForward &planner) const
    {
        if (!limited())
            return;
        for (size_t f = 0; f < stock_.size(); ++f)
            if (stock_[f] < capacity_)
                planner.eventAt(next_ready_[f]);
    }

  private:
    int production_ = 0;
    int capacity_ = 0;
    std::vector<int> stock_;
    std::vector<uint64_t> next_ready_;
    obs::TraceRecorder *trace_ = nullptr;
};

/**
 * T-gate factory candidate selection shared by the schedulers:
 * nearest factories first, widening from 1 to 3 candidates once the
 * op has waited past @p adapt_timeout, and skipping factories with
 * no distilled state.  Appends (terminal(f), f) pairs to @p dsts.
 *
 * @return true when at least one stocked candidate was appended —
 * false is a starvation, counted by the caller.
 */
template <typename Terminal>
bool
appendStockedFactories(const MagicFactoryPool &pool,
                       const std::vector<int> &order, int wait,
                       int adapt_timeout,
                       std::vector<std::pair<Coord, int>> &dsts,
                       Terminal &&terminal)
{
    size_t limit = wait >= adapt_timeout
        ? std::min<size_t>(3, order.size())
        : 1;
    bool any_stock = false;
    for (size_t f = 0; f < limit; ++f) {
        int fac = order[f];
        if (!pool.hasState(fac))
            continue;
        any_stock = true;
        dsts.emplace_back(terminal(fac), fac);
    }
    return any_stock;
}

/**
 * A pool of identical transport channels.  acquire() reserves the
 * earliest free slot, modelling a bandwidth-limited link set whose
 * transfers queue when all channels are busy.
 */
class ChannelPool
{
  public:
    /** @param slots concurrent transfers the pool sustains. */
    explicit ChannelPool(int slots) : slots_(slots) {}

    /**
     * Reserve a slot for a transfer of @p duration cycles starting no
     * earlier than @p earliest.
     * @return the actual start cycle (>= @p earliest).
     */
    uint64_t
    acquire(uint64_t earliest, uint64_t duration)
    {
        uint64_t start = earliest;
        while (static_cast<int>(busy_until_.size()) >= slots_) {
            start = std::max(start, busy_until_.top());
            busy_until_.pop();
        }
        busy_until_.push(start + duration);
        return start;
    }

    /**
     * @return the cycle at which acquire(@p earliest, ...) would
     * start, without reserving anything — the queueing-delay peek a
     * cost-model arbiter uses to price a transfer before committing
     * to it.
     */
    uint64_t
    earliestStart(uint64_t earliest) const
    {
        if (static_cast<int>(busy_until_.size()) < slots_)
            return earliest;
        return std::max(earliest, busy_until_.top());
    }

  private:
    int slots_;
    std::priority_queue<uint64_t, std::vector<uint64_t>,
                        std::greater<>>
        busy_until_;
};

/**
 * Sweep-line accounting of live intervals (+1 at start, -1 at end):
 * peak concurrency and the time-averaged population over a horizon.
 */
class LiveIntervalProfile
{
  public:
    /** Record one interval live from @p start to @p end. */
    void
    add(uint64_t start, uint64_t end)
    {
        deltas_.emplace_back(start, +1);
        deltas_.emplace_back(end, -1);
    }

    struct Summary
    {
        uint64_t peak = 0;  ///< Maximum simultaneous intervals.
        double average = 0; ///< Time-averaged population.
    };

    /** Summarize over @p total_cycles (for the average). */
    Summary summarize(uint64_t total_cycles) const;

  private:
    std::vector<std::pair<uint64_t, int>> deltas_;
};

} // namespace qsurf::engine

#endif // QSURF_ENGINE_SIM_H
