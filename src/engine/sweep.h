/**
 * @file
 * The parallel sweep driver behind every figure of the evaluation.
 *
 * A SweepGrid declares the cross-product the paper's figures are
 * built from — applications x backends x braid policies x code
 * distances x computation sizes — and the driver expands it into
 * work items, executes them across a thread pool, and returns the
 * results in grid order.  Per-item seeds are derived
 * deterministically from the base seed and the item's application
 * point (so policy/distance/size comparisons run on the same seeded
 * machine layout, and a sweep is bit-identical at any thread count);
 * the figure benches are each one declarative grid plus table/JSON
 * rendering.
 */

#ifndef QSURF_ENGINE_SWEEP_H
#define QSURF_ENGINE_SWEEP_H

#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "engine/backend.h"
#include "engine/registry.h"
#include "obs/trace.h"

namespace qsurf::service {
class PrepareCache;
} // namespace qsurf::service

namespace qsurf::engine {

/** One application axis point: a generated or caller-built workload. */
struct AppPoint
{
    AppPoint() = default;

    /** A generated workload (the {kind, gen, label} shorthand the
     *  benches use). */
    AppPoint(apps::AppKind kind, apps::GenOptions gen = {},
             std::string label = {})
        : kind(kind), gen(gen), label(std::move(label))
    {
    }

    /** A caller-built logical circuit as the workload. */
    explicit AppPoint(std::shared_ptr<const circuit::Circuit> circuit,
                      std::string label = {})
        : label(std::move(label)), circuit(std::move(circuit))
    {
    }

    apps::AppKind kind = apps::AppKind::SQ;

    /** Generator knobs (problem size, iteration cap). */
    apps::GenOptions gen;

    /** Display-name override; empty uses the circuit name (when
     *  caller-built) or the app spec name. */
    std::string label;

    /**
     * Caller-built logical circuit; when set it replaces the
     * generated app as this point's workload (the driver decomposes
     * it like a generated one, cached by content fingerprint).
     * Declared last so the {kind, gen, label} aggregate init every
     * bench uses keeps working.
     */
    std::shared_ptr<const circuit::Circuit> circuit;
};

/** The declarative cross-product one sweep executes. */
struct SweepGrid
{
    /** Applications (outermost axis). */
    std::vector<AppPoint> apps;

    /** Registry names of the backends to run (innermost axis). */
    std::vector<std::string> backends;

    /** Braid policy indices; non-braid backends ignore them. */
    std::vector<int> policies = {6};

    /**
     * Hybrid scheme-arbiter indices (hybrid::ArbiterKind values);
     * backends other than "hybrid/mixed-sim" ignore them.
     */
    std::vector<int> arbiters = {0};

    /**
     * Patch-layout objectives (partition::LayoutObjective values)
     * for the surgery and hybrid backends; the braid and planar
     * backends ignore them (they keep the Manhattan objective).
     */
    std::vector<int> layout_objectives = {0};

    /** Code distances; 0 selects from KQ and pP. */
    std::vector<int> distances = {0};

    /**
     * EPR lookahead windows (steps) for the planar backend; -1 keeps
     * base.epr_window_steps, so grids without the axis are
     * unchanged.  0 is prefetch-all (the Section 8.1 baseline).
     * Backends without EPR pipelining ignore the axis.
     */
    std::vector<int> epr_windows = {-1};

    /**
     * Computation sizes KQ for the analytic model backends; 0
     * derives the size from the generated circuit.
     */
    std::vector<double> sizes = {0};

    /**
     * Fabric defect densities (the yield-sweep axis); 0 is the
     * perfect mesh, and the default {0} leaves grids without the
     * axis unchanged.  Map seed and explicit spec come from the base
     * config (base.defect_seed / base.defect_spec).
     */
    std::vector<double> defects = {0};

    /** Shared run parameters (technology, windows, base seed). */
    RunConfig base;

    /** @return the number of work items the grid expands into. */
    size_t points() const;
};

/** One executed grid point, in expansion order. */
struct SweepPoint
{
    size_t index = 0;     ///< Position in grid expansion order.
    size_t app_index = 0; ///< Index into SweepGrid::apps.
    std::string app_name; ///< Resolved display name.
    std::string backend;  ///< Backend registry name.
    int policy = 0;
    int arbiter = 0;      ///< Hybrid scheme-arbiter index.
    int layout_objective = 0; ///< Patch-layout objective index.
    int epr_window = -1;  ///< Grid value (-1 = base config's).
    int distance = 0;     ///< Grid value (0 = auto; see metrics).
    double kq = 0;        ///< Grid value (0 = from circuit).
    double defect = 0;    ///< Fabric defect density (0 = perfect).
    Metrics metrics;

    /**
     * Wall-clock time of this point's Backend::run(), in
     * milliseconds.  Kept out of Metrics on purpose: metrics are
     * bit-identical across runs and thread counts, wall time never
     * is.
     */
    double wall_ms = 0;

    /**
     * Wall-clock time of this point's prepare-artifact fetch, in
     * milliseconds.  Cache hits make it near-zero; with the cache
     * off it stays 0 (prepare runs inside wall_ms, as it always
     * did).
     */
    double prepare_ms = 0;

    /**
     * Scratch-arena activity of this point's execution (allocation
     * count and bytes bumped), when the driver ran it under a
     * per-point arena (SweepOptions::use_arena).  Like wall_ms these
     * are execution-mode observations, not results: they vary with
     * cache warmth and arena on/off, so they live outside Metrics
     * and outside the canonical row serialization.
     */
    uint64_t arena_allocs = 0;
    uint64_t arena_bytes = 0;

    /**
     * Global-heap allocations during this point's execution, when
     * the caller supplied SweepOptions::heap_alloc_counter (bench
     * binaries hook operator new).  Exact at num_threads = 1;
     * cross-polluted by concurrent workers otherwise.
     */
    uint64_t heap_allocs = 0;

    /** @return simulated cycles per wall-clock second (the perf
     *  trajectory number), or 0 when unmeasurable. */
    double
    simCyclesPerSec() const
    {
        return wall_ms > 0
            ? static_cast<double>(metrics.schedule_cycles)
                / (wall_ms / 1000.0)
            : 0.0;
    }
};

/** Execution knobs of one sweep. */
struct SweepOptions
{
    /** Worker threads; values < 1 use defaultThreads(). */
    int num_threads = 1;

    /** When non-empty, write the results as JSON to this path. */
    std::string json_path;

    /** Title recorded in the JSON output. */
    std::string title;

    /**
     * Route prepare work (decomposed circuits, seeded layouts)
     * through the PrepareCache.  Results are bit-identical either
     * way; disable for cold-path A/B measurement.
     */
    bool use_cache = true;

    /** Cache to use; null means PrepareCache::global(). */
    service::PrepareCache *cache = nullptr;

    /**
     * Trace session collecting structured events from every grid
     * point; null disables tracing.  Each point gets its own
     * RunRecorder keyed by grid index, so the session's files are
     * identical at any thread count, and results are bit-identical
     * with tracing on or off.
     */
    obs::TraceSession *trace = nullptr;

    /**
     * Registry receiving wall-clock per-point phase timings
     * ("sweep.phase.prepare_ms", "sweep.phase.run_ms"); null
     * disables.  Wall-clock numbers are kept out of the trace
     * session's deterministic metrics on purpose.
     */
    obs::MetricsRegistry *metrics = nullptr;

    /**
     * When set, only grid indices it returns true for are executed;
     * the rest keep their metadata and zero metrics.  This is the
     * sharding hook: a worker process runs the same grid with a
     * filter selecting its slice, and determinism guarantees the
     * slice's rows match what any other execution produces for
     * those indices.
     */
    std::function<bool(size_t index)> point_filter;

    /**
     * Stream each completed row to the row stream (see rows_path)
     * as soon as it finishes, one flushed JSON line per point, so a
     * killed or crashed sweep leaves a valid partial file a resumed
     * run (or a human) can use.  Only active when a rows path
     * resolves (rows_path, or json_path + ".rows").
     */
    bool stream_rows = true;

    /**
     * Row-stream file; empty derives json_path + ".rows" (and stays
     * off when json_path is empty too).  Line 1 is a header naming
     * the grid fingerprint; each further line is one completed
     * point, in completion order, self-identified by "index".
     */
    std::string rows_path;

    /**
     * Resume from an existing row stream: rows whose header matches
     * this grid (fingerprint, title, point count) are merged into
     * the results and their points are not re-executed; the stream
     * is then appended to.  A missing, mismatched or torn file
     * falls back to a fresh run (a torn final line — the crash
     * case — is dropped, not fatal).
     */
    bool resume = false;

    /**
     * Run every point under a per-worker scratch arena (reset per
     * point): BFS working sets, row assembly and other
     * scratch-aware callees bump-allocate instead of hitting the
     * global heap.  Results are bit-identical on or off; disable
     * for allocation A/B measurement (bench/scaleout does).
     */
    bool use_arena = true;

    /**
     * Called after each point completes (and after its row line is
     * streamed), under the row lock, in completion order.
     * @p row_line is the point's JSONL row (valid only during the
     * call); shard workers forward it as a wire frame.
     */
    std::function<void(const SweepPoint &point,
                       std::string_view row_line)>
        on_row;

    /**
     * Global-heap allocation counter sampled around each point's
     * execution (bench binaries pass a hook over their replaced
     * operator new); null leaves SweepPoint::heap_allocs at 0.
     */
    std::function<uint64_t()> heap_alloc_counter;
};

/**
 * Expands grids into work items and executes them across a thread
 * pool.  Results are deterministic: the output vector is in grid
 * expansion order and every item's seed depends only on the base
 * seed and its index, never on thread scheduling.
 */
class SweepDriver
{
  public:
    explicit SweepDriver(const Registry &registry = Registry::global())
        : registry(registry)
    {
    }

    /** Run every point of @p grid; @return results in grid order. */
    std::vector<SweepPoint> run(const SweepGrid &grid,
                                const SweepOptions &opts = {}) const;

  private:
    const Registry &registry;
};

/**
 * Expand @p grid into its point metadata (names, axis values, grid
 * order) without generating circuits or running anything.  Validates
 * the axes and backend names like SweepDriver::run does.  The shard
 * parent uses this to know the full grid it is merging worker rows
 * into; resume uses it to cross-check loaded rows.
 */
std::vector<SweepPoint>
expandSweepPoints(const SweepGrid &grid,
                  const Registry &registry = Registry::global());

/**
 * Render sweep results as JSON: a title plus one record per grid
 * point with the full uniform metrics and the backend extras.  When
 * @p cache is non-null its hit/miss/evict counters are recorded
 * under a top-level "cache" object.  @p timing includes the
 * wall-clock and allocation observations (wall_ms, prepare_ms,
 * sim_cycles_per_sec, arena/heap counters); with it false the
 * output is canonical — deterministic in the grid alone, identical
 * across runs, thread counts and process shardings.
 */
void writeSweepJson(std::ostream &os, const std::string &title,
                    const std::vector<SweepPoint> &points,
                    const service::PrepareCache *cache = nullptr,
                    bool timing = true);

/** Write one result-row object of writeSweepJson (shared by the
 *  full document, the row stream and the wire Row frames). */
void writeSweepRow(JsonWriter &j, const SweepPoint &p,
                   bool timing = true);

/** Write @p p as one compact JSONL row-stream line (no trailing
 *  newline): the writeSweepRow object plus a leading "index". */
void writeSweepRowLine(std::ostream &os, const SweepPoint &p);

/**
 * Parse a row-stream line (or wire Row frame payload) back into a
 * SweepPoint.  Round-trips exactly: numbers use shortest
 * round-trippable formatting, so write(parse(line)) == line and a
 * merged document is byte-identical to one written in-process.
 * fatal()s on malformed input.
 */
SweepPoint parseSweepRowLine(const std::string &line);

/**
 * @return the canonical serialization of @p points' result rows
 * (compact, timing excluded): equal strings <=> the sweeps produced
 * identical results.  The shard bench and tests compare these.
 */
std::string canonicalSweepRows(const std::vector<SweepPoint> &points);

/**
 * @return a fingerprint of everything that determines @p grid's
 * results: every axis, every base-config field, app generator knobs
 * and caller-circuit fingerprints.  The row-stream header records
 * it so resume never merges rows from a different experiment.
 */
uint64_t sweepGridFingerprint(const SweepGrid &grid);

/** Write the row-stream header line (no trailing newline). */
void writeSweepRowsHeader(std::ostream &os, const SweepGrid &grid,
                          const std::string &title);

/**
 * Load a row stream written against @p grid: rows parse into
 * @p points (which must be the expanded grid) and @p done marks
 * their indices.  @return rows merged; 0 when the file is missing
 * or its header does not match (callers then run fresh).  A torn
 * trailing line — unparsable, or missing its newline — is ignored;
 * a row disagreeing with the expanded metadata fatal()s.
 *
 * @p valid_bytes, when non-null, receives the byte length of the
 * validated newline-terminated prefix.  Resuming writers must
 * truncate the file to it before appending, or a torn tail would
 * fuse with the first appended row and corrupt the stream.
 */
size_t loadSweepRows(const std::string &path, const SweepGrid &grid,
                     const std::string &title,
                     std::vector<SweepPoint> &points,
                     std::vector<uint8_t> &done,
                     size_t *valid_bytes = nullptr);

/**
 * @return a sensible worker count for interactive sweeps: the
 * QSURF_THREADS environment variable when set to a positive integer
 * (unclamped, for batch machines), otherwise the hardware
 * concurrency clamped to [1, 8].  (Results are identical at any
 * thread count; this only affects wall-clock time.)
 */
int defaultThreads();

} // namespace qsurf::engine

#endif // QSURF_ENGINE_SWEEP_H
