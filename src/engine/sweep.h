/**
 * @file
 * The parallel sweep driver behind every figure of the evaluation.
 *
 * A SweepGrid declares the cross-product the paper's figures are
 * built from — applications x backends x braid policies x code
 * distances x computation sizes — and the driver expands it into
 * work items, executes them across a thread pool, and returns the
 * results in grid order.  Per-item seeds are derived
 * deterministically from the base seed and the item's application
 * point (so policy/distance/size comparisons run on the same seeded
 * machine layout, and a sweep is bit-identical at any thread count);
 * the figure benches are each one declarative grid plus table/JSON
 * rendering.
 */

#ifndef QSURF_ENGINE_SWEEP_H
#define QSURF_ENGINE_SWEEP_H

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "engine/backend.h"
#include "engine/registry.h"
#include "obs/trace.h"

namespace qsurf::service {
class PrepareCache;
} // namespace qsurf::service

namespace qsurf::engine {

/** One application axis point: a generated or caller-built workload. */
struct AppPoint
{
    AppPoint() = default;

    /** A generated workload (the {kind, gen, label} shorthand the
     *  benches use). */
    AppPoint(apps::AppKind kind, apps::GenOptions gen = {},
             std::string label = {})
        : kind(kind), gen(gen), label(std::move(label))
    {
    }

    /** A caller-built logical circuit as the workload. */
    explicit AppPoint(std::shared_ptr<const circuit::Circuit> circuit,
                      std::string label = {})
        : label(std::move(label)), circuit(std::move(circuit))
    {
    }

    apps::AppKind kind = apps::AppKind::SQ;

    /** Generator knobs (problem size, iteration cap). */
    apps::GenOptions gen;

    /** Display-name override; empty uses the circuit name (when
     *  caller-built) or the app spec name. */
    std::string label;

    /**
     * Caller-built logical circuit; when set it replaces the
     * generated app as this point's workload (the driver decomposes
     * it like a generated one, cached by content fingerprint).
     * Declared last so the {kind, gen, label} aggregate init every
     * bench uses keeps working.
     */
    std::shared_ptr<const circuit::Circuit> circuit;
};

/** The declarative cross-product one sweep executes. */
struct SweepGrid
{
    /** Applications (outermost axis). */
    std::vector<AppPoint> apps;

    /** Registry names of the backends to run (innermost axis). */
    std::vector<std::string> backends;

    /** Braid policy indices; non-braid backends ignore them. */
    std::vector<int> policies = {6};

    /**
     * Hybrid scheme-arbiter indices (hybrid::ArbiterKind values);
     * backends other than "hybrid/mixed-sim" ignore them.
     */
    std::vector<int> arbiters = {0};

    /**
     * Patch-layout objectives (partition::LayoutObjective values)
     * for the surgery and hybrid backends; the braid and planar
     * backends ignore them (they keep the Manhattan objective).
     */
    std::vector<int> layout_objectives = {0};

    /** Code distances; 0 selects from KQ and pP. */
    std::vector<int> distances = {0};

    /**
     * Computation sizes KQ for the analytic model backends; 0
     * derives the size from the generated circuit.
     */
    std::vector<double> sizes = {0};

    /** Shared run parameters (technology, windows, base seed). */
    RunConfig base;

    /** @return the number of work items the grid expands into. */
    size_t points() const;
};

/** One executed grid point, in expansion order. */
struct SweepPoint
{
    size_t index = 0;     ///< Position in grid expansion order.
    size_t app_index = 0; ///< Index into SweepGrid::apps.
    std::string app_name; ///< Resolved display name.
    std::string backend;  ///< Backend registry name.
    int policy = 0;
    int arbiter = 0;      ///< Hybrid scheme-arbiter index.
    int layout_objective = 0; ///< Patch-layout objective index.
    int distance = 0;     ///< Grid value (0 = auto; see metrics).
    double kq = 0;        ///< Grid value (0 = from circuit).
    Metrics metrics;

    /**
     * Wall-clock time of this point's Backend::run(), in
     * milliseconds.  Kept out of Metrics on purpose: metrics are
     * bit-identical across runs and thread counts, wall time never
     * is.
     */
    double wall_ms = 0;

    /**
     * Wall-clock time of this point's prepare-artifact fetch, in
     * milliseconds.  Cache hits make it near-zero; with the cache
     * off it stays 0 (prepare runs inside wall_ms, as it always
     * did).
     */
    double prepare_ms = 0;

    /** @return simulated cycles per wall-clock second (the perf
     *  trajectory number), or 0 when unmeasurable. */
    double
    simCyclesPerSec() const
    {
        return wall_ms > 0
            ? static_cast<double>(metrics.schedule_cycles)
                / (wall_ms / 1000.0)
            : 0.0;
    }
};

/** Execution knobs of one sweep. */
struct SweepOptions
{
    /** Worker threads; values < 1 use defaultThreads(). */
    int num_threads = 1;

    /** When non-empty, write the results as JSON to this path. */
    std::string json_path;

    /** Title recorded in the JSON output. */
    std::string title;

    /**
     * Route prepare work (decomposed circuits, seeded layouts)
     * through the PrepareCache.  Results are bit-identical either
     * way; disable for cold-path A/B measurement.
     */
    bool use_cache = true;

    /** Cache to use; null means PrepareCache::global(). */
    service::PrepareCache *cache = nullptr;

    /**
     * Trace session collecting structured events from every grid
     * point; null disables tracing.  Each point gets its own
     * RunRecorder keyed by grid index, so the session's files are
     * identical at any thread count, and results are bit-identical
     * with tracing on or off.
     */
    obs::TraceSession *trace = nullptr;

    /**
     * Registry receiving wall-clock per-point phase timings
     * ("sweep.phase.prepare_ms", "sweep.phase.run_ms"); null
     * disables.  Wall-clock numbers are kept out of the trace
     * session's deterministic metrics on purpose.
     */
    obs::MetricsRegistry *metrics = nullptr;
};

/**
 * Expands grids into work items and executes them across a thread
 * pool.  Results are deterministic: the output vector is in grid
 * expansion order and every item's seed depends only on the base
 * seed and its index, never on thread scheduling.
 */
class SweepDriver
{
  public:
    explicit SweepDriver(const Registry &registry = Registry::global())
        : registry(registry)
    {
    }

    /** Run every point of @p grid; @return results in grid order. */
    std::vector<SweepPoint> run(const SweepGrid &grid,
                                const SweepOptions &opts = {}) const;

  private:
    const Registry &registry;
};

/**
 * Render sweep results as JSON: a title plus one record per grid
 * point with the full uniform metrics and the backend extras.  When
 * @p cache is non-null its hit/miss/evict counters are recorded
 * under a top-level "cache" object.
 */
void writeSweepJson(std::ostream &os, const std::string &title,
                    const std::vector<SweepPoint> &points,
                    const service::PrepareCache *cache = nullptr);

/**
 * @return a sensible worker count for interactive sweeps: the
 * QSURF_THREADS environment variable when set to a positive integer
 * (unclamped, for batch machines), otherwise the hardware
 * concurrency clamped to [1, 8].  (Results are identical at any
 * thread count; this only affects wall-clock time.)
 */
int defaultThreads();

} // namespace qsurf::engine

#endif // QSURF_ENGINE_SWEEP_H
