#include "engine/backend.h"

#include <functional>
#include <sstream>

#include "common/logging.h"

namespace qsurf::engine {

void
Metrics::set(const std::string &name, double v)
{
    for (auto &[key, val] : extras) {
        if (key == name) {
            val = v;
            return;
        }
    }
    extras.emplace_back(name, v);
}

double
Metrics::extra(const std::string &name, double fallback) const
{
    for (const auto &[key, val] : extras)
        if (key == name)
            return val;
    return fallback;
}

bool
Metrics::has(const std::string &name) const
{
    for (const auto &[key, val] : extras)
        if (key == name)
            return true;
    return false;
}

double
WorkItem::logicalOps() const
{
    if (config.kq > 0)
        return config.kq;
    fatalIf(!circuit, "work item has neither a computation size (kq) "
                      "nor a circuit to derive one from");
    return static_cast<double>(circuit->counts().total);
}

uint64_t
WorkItem::resolveFingerprint() const
{
    if (circuit_fingerprint)
        return circuit_fingerprint;
    return circuit ? circuit::fingerprint(*circuit) : 0;
}

int
WorkItem::resolveDistance() const
{
    if (config.code_distance > 0)
        return config.code_distance;
    return qec::CodeModel::chooseDistance(config.tech.p_physical,
                                          logicalOps());
}

void
Backend::prepare(const WorkItem &item) const
{
    item.config.tech.check();
    fatalIf(needsCircuit() && !item.circuit,
            "backend '", name(), "' needs a circuit");
    fatalIf(needsCircuit() && item.circuit && item.circuit->empty(),
            "backend '", name(), "' got an empty circuit");
    fatalIf(item.config.code_distance < 0,
            "code distance must be >= 0 (0 = auto), got ",
            item.config.code_distance);
}

double
physicalQubits(qec::CodeKind code, double logical_qubits, int d)
{
    return logical_qubits * qec::spaceOverheadFactor(code)
        * static_cast<double>(qec::tileQubits(code, d));
}

std::string
defectKeySuffix(const fabric::DefectParams &p)
{
    if (!p.enabled())
        return {};
    std::ostringstream os;
    os << "/defd=" << p.density << "/defs=" << std::hex << p.seed
       << std::dec;
    if (!p.spec_json.empty())
        os << "/spec=" << std::hex
           << std::hash<std::string>{}(p.spec_json) << std::dec;
    return os.str();
}

double
logicalErrorProxy(double logical_qubits, uint64_t schedule_cycles,
                  int d, double p_physical, double error_multiplier)
{
    if (d < 1)
        return 0;
    double timesteps = static_cast<double>(schedule_cycles)
        / static_cast<double>(d);
    return logical_qubits * timesteps
        * qec::CodeModel::logicalErrorPerOp(
              p_physical * error_multiplier, d);
}

uint64_t
mixSeed(uint64_t base_seed, uint64_t index)
{
    // splitmix64 finalizer over the combined word: cheap, and
    // adjacent indices land in decorrelated streams.
    uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace qsurf::engine
