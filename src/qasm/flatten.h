/**
 * @file
 * Flattening: lower a hierarchical qasm::Program to a flat
 * circuit::Circuit by inlining module calls (the "Module Flattening"
 * stage of Figure 4).
 *
 * Quantum programs are fully determined at compile time (Section 4.2),
 * so complete inlining is both possible and what the paper's backend
 * requires.  Recursion is rejected with a depth limit.
 */

#ifndef QSURF_QASM_FLATTEN_H
#define QSURF_QASM_FLATTEN_H

#include "circuit/circuit.h"
#include "qasm/ast.h"

namespace qsurf::qasm {

/** Options controlling flattening. */
struct FlattenOptions
{
    /** Maximum module call depth before recursion is diagnosed. */
    int max_depth = 64;
};

/**
 * Inline all module calls and resolve register references to flat
 * logical qubit ids (registers are laid out in declaration order).
 *
 * @throws FatalError on: unknown gate/module names, arity mismatches,
 *         out-of-range register indices, parameter references outside
 *         modules, recursion beyond max_depth, or measurement arrows
 *         targeting qubit registers.
 */
circuit::Circuit flatten(const Program &prog,
                         const FlattenOptions &opts = {});

} // namespace qsurf::qasm

#endif // QSURF_QASM_FLATTEN_H
