#include "qasm/lexer.h"

#include <cctype>

#include "common/logging.h"

namespace qsurf::qasm {

const char *
tokenKindName(TokenKind kind)
{
    switch (kind) {
      case TokenKind::Identifier: return "identifier";
      case TokenKind::Integer:    return "integer";
      case TokenKind::Float:      return "float";
      case TokenKind::LParen:     return "'('";
      case TokenKind::RParen:     return "')'";
      case TokenKind::LBracket:   return "'['";
      case TokenKind::RBracket:   return "']'";
      case TokenKind::LBrace:     return "'{'";
      case TokenKind::RBrace:     return "'}'";
      case TokenKind::Comma:      return "','";
      case TokenKind::Semicolon:  return "';'";
      case TokenKind::Arrow:      return "'->'";
      case TokenKind::EndOfFile:  return "end of file";
    }
    return "?";
}

namespace {

/** Cursor over the source text with line/column tracking. */
class Cursor
{
  public:
    explicit Cursor(std::string_view src) : text(src) {}

    bool done() const { return pos >= text.size(); }
    char peek() const { return done() ? '\0' : text[pos]; }

    char
    peekNext() const
    {
        return pos + 1 < text.size() ? text[pos + 1] : '\0';
    }

    char
    advance()
    {
        char c = text[pos++];
        if (c == '\n') {
            ++line;
            col = 1;
        } else {
            ++col;
        }
        return c;
    }

    int line = 1;
    int col = 1;

  private:
    std::string_view text;
    size_t pos = 0;
};

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentBody(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
isDigit(char c)
{
    return std::isdigit(static_cast<unsigned char>(c));
}

} // namespace

std::vector<Token>
tokenize(std::string_view source)
{
    std::vector<Token> out;
    Cursor cur(source);

    auto push = [&](TokenKind kind, std::string text, int line, int col) {
        out.push_back(Token{kind, std::move(text), line, col});
    };

    while (!cur.done()) {
        char c = cur.peek();
        int line = cur.line, col = cur.col;

        if (std::isspace(static_cast<unsigned char>(c))) {
            cur.advance();
            continue;
        }
        // '#' and '//' comments run to end of line.
        if (c == '#' || (c == '/' && cur.peekNext() == '/')) {
            while (!cur.done() && cur.peek() != '\n')
                cur.advance();
            continue;
        }
        if (isIdentStart(c)) {
            std::string text;
            while (!cur.done() && isIdentBody(cur.peek()))
                text += cur.advance();
            push(TokenKind::Identifier, std::move(text), line, col);
            continue;
        }
        if (isDigit(c)
            || (c == '-' && (isDigit(cur.peekNext())
                             || cur.peekNext() == '.'))
            || (c == '.' && isDigit(cur.peekNext()))) {
            std::string text;
            bool is_float = false;
            if (cur.peek() == '-')
                text += cur.advance();
            while (!cur.done()) {
                char d = cur.peek();
                if (isDigit(d)) {
                    text += cur.advance();
                } else if (d == '.' || d == 'e' || d == 'E') {
                    is_float = true;
                    text += cur.advance();
                    if ((d == 'e' || d == 'E')
                        && (cur.peek() == '+' || cur.peek() == '-'))
                        text += cur.advance();
                } else {
                    break;
                }
            }
            push(is_float ? TokenKind::Float : TokenKind::Integer,
                 std::move(text), line, col);
            continue;
        }
        if (c == '-' && cur.peekNext() == '>') {
            cur.advance();
            cur.advance();
            push(TokenKind::Arrow, "->", line, col);
            continue;
        }

        TokenKind kind;
        switch (c) {
          case '(': kind = TokenKind::LParen; break;
          case ')': kind = TokenKind::RParen; break;
          case '[': kind = TokenKind::LBracket; break;
          case ']': kind = TokenKind::RBracket; break;
          case '{': kind = TokenKind::LBrace; break;
          case '}': kind = TokenKind::RBrace; break;
          case ',': kind = TokenKind::Comma; break;
          case ';': kind = TokenKind::Semicolon; break;
          default:
            fatal("QASM lex error at line ", line, " col ", col,
                  ": unexpected character '", std::string(1, c), "'");
        }
        cur.advance();
        push(kind, std::string(1, c), line, col);
    }

    push(TokenKind::EndOfFile, "", cur.line, cur.col);
    return out;
}

} // namespace qsurf::qasm
