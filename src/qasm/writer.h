/**
 * @file
 * Serializer from circuit::Circuit back to the QASM dialect.  With
 * qasm::parse + qasm::flatten this gives a lossless round trip for
 * flat circuits, which the test suite exercises as a property.
 */

#ifndef QSURF_QASM_WRITER_H
#define QSURF_QASM_WRITER_H

#include <ostream>
#include <string>

#include "circuit/circuit.h"

namespace qsurf::qasm {

/**
 * Write @p circ as QASM text: one "qbit q[N];" declaration plus one
 * statement per gate, in program order.
 */
void write(const circuit::Circuit &circ, std::ostream &os);

/** Convenience overload returning a string. */
std::string writeString(const circuit::Circuit &circ);

} // namespace qsurf::qasm

#endif // QSURF_QASM_WRITER_H
