#include "qasm/parser.h"

#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "qasm/lexer.h"

namespace qsurf::qasm {

namespace {

/** Token-stream parser with one-token lookahead. */
class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens)
        : toks(std::move(tokens)) {}

    Program
    run()
    {
        Program prog;
        while (!check(TokenKind::EndOfFile)) {
            if (checkIdent("qbit") || checkIdent("cbit"))
                parseRegister(prog);
            else if (checkIdent("module"))
                parseModule(prog);
            else
                prog.body.push_back(parseStatement());
        }
        return prog;
    }

  private:
    const Token &peek() const { return toks[pos]; }

    const Token &
    advance()
    {
        const Token &t = toks[pos];
        if (t.kind != TokenKind::EndOfFile)
            ++pos;
        return t;
    }

    bool check(TokenKind kind) const { return peek().kind == kind; }

    bool
    checkIdent(std::string_view word) const
    {
        return peek().kind == TokenKind::Identifier && peek().text == word;
    }

    const Token &
    expect(TokenKind kind, const char *what)
    {
        if (!check(kind))
            fail(std::string("expected ") + tokenKindName(kind) + " "
                 + what + ", found '" + peek().text + "'");
        return advance();
    }

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        fatal("QASM parse error at line ", peek().line, " col ",
              peek().column, ": ", msg);
    }

    int
    parseInt(const char *what)
    {
        const Token &t = expect(TokenKind::Integer, what);
        return std::stoi(t.text);
    }

    double
    parseNumber(const char *what)
    {
        if (check(TokenKind::Integer) || check(TokenKind::Float))
            return std::stod(advance().text);
        fail(std::string("expected number ") + what);
    }

    void
    parseRegister(Program &prog)
    {
        bool classical = peek().text == "cbit";
        advance(); // qbit / cbit
        RegisterDecl decl;
        decl.classical = classical;
        decl.name = expect(TokenKind::Identifier, "register name").text;
        expect(TokenKind::LBracket, "after register name");
        decl.size = parseInt("register size");
        if (decl.size <= 0)
            fail("register size must be positive");
        expect(TokenKind::RBracket, "after register size");
        expect(TokenKind::Semicolon, "after register declaration");

        for (const auto &r : prog.registers)
            if (r.name == decl.name)
                fail("duplicate register '" + decl.name + "'");
        prog.registers.push_back(std::move(decl));
    }

    void
    parseModule(Program &prog)
    {
        advance(); // module
        Module mod;
        mod.line = peek().line;
        mod.name = expect(TokenKind::Identifier, "module name").text;
        expect(TokenKind::LParen, "after module name");
        if (!check(TokenKind::RParen)) {
            while (true) {
                mod.params.push_back(
                    expect(TokenKind::Identifier, "parameter name").text);
                if (!check(TokenKind::Comma))
                    break;
                advance();
            }
        }
        expect(TokenKind::RParen, "after parameter list");
        expect(TokenKind::LBrace, "to open module body");
        while (!check(TokenKind::RBrace)) {
            if (check(TokenKind::EndOfFile))
                fail("unterminated module '" + mod.name + "'");
            mod.body.push_back(parseStatement());
        }
        advance(); // }

        if (prog.modules.count(mod.name))
            fail("duplicate module '" + mod.name + "'");
        prog.modules.emplace(mod.name, std::move(mod));
    }

    OperandRef
    parseOperand()
    {
        OperandRef ref;
        ref.name = expect(TokenKind::Identifier, "operand").text;
        if (check(TokenKind::LBracket)) {
            advance();
            ref.index = parseInt("operand index");
            if (ref.index < 0)
                fail("operand index must be non-negative");
            expect(TokenKind::RBracket, "after operand index");
        }
        return ref;
    }

    GateStmt
    parseStatement()
    {
        GateStmt stmt;
        stmt.line = peek().line;
        stmt.name = expect(TokenKind::Identifier, "gate or module").text;

        if (check(TokenKind::LParen)) {
            advance();
            stmt.angle = parseNumber("as gate parameter");
            expect(TokenKind::RParen, "after gate parameter");
        }

        // Operand list may be empty (zero-parameter module calls).
        while (!check(TokenKind::Semicolon)) {
            stmt.operands.push_back(parseOperand());
            if (!check(TokenKind::Comma))
                break;
            advance();
        }

        if (check(TokenKind::Arrow)) {
            advance();
            stmt.result = parseOperand();
        }

        expect(TokenKind::Semicolon, "to end statement");
        return stmt;
    }

    std::vector<Token> toks;
    size_t pos = 0;
};

} // namespace

Program
parse(std::string_view source)
{
    return Parser(tokenize(source)).run();
}

Program
parseFile(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "cannot open QASM file '", path, "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse(buf.str());
}

} // namespace qsurf::qasm
