/**
 * @file
 * Tokenizer for the qsurf QASM dialect.
 *
 * The dialect is a flat-QASM in the ScaffCC style (Section 5.3):
 *
 *   # comment                  // comment
 *   qbit q[8];
 *   cbit c[2];
 *   module majority(a, b, c) { CNOT c, b; ... }
 *   H q[0];
 *   Rz(0.19635) q[3];
 *   majority q[0], q[1], q[2];
 *   MeasZ q[0] -> c[0];
 */

#ifndef QSURF_QASM_LEXER_H
#define QSURF_QASM_LEXER_H

#include <string>
#include <string_view>
#include <vector>

namespace qsurf::qasm {

/** Token categories produced by the Lexer. */
enum class TokenKind : uint8_t
{
    Identifier, ///< [A-Za-z_][A-Za-z0-9_]*
    Integer,    ///< [0-9]+
    Float,      ///< digits with '.', exponent, or leading '-'
    LParen,     ///< (
    RParen,     ///< )
    LBracket,   ///< [
    RBracket,   ///< ]
    LBrace,     ///< {
    RBrace,     ///< }
    Comma,      ///< ,
    Semicolon,  ///< ;
    Arrow,      ///< ->
    EndOfFile,  ///< sentinel; always the final token
};

/** @return a printable name for a token kind (for diagnostics). */
const char *tokenKindName(TokenKind kind);

/** One lexed token with source position for error reporting. */
struct Token
{
    TokenKind kind = TokenKind::EndOfFile;
    std::string text;
    int line = 0;
    int column = 0;
};

/**
 * Tokenize QASM source text.
 *
 * @param source the program text.
 * @return token stream ending in EndOfFile.
 * @throws FatalError on an unrecognized character.
 */
std::vector<Token> tokenize(std::string_view source);

} // namespace qsurf::qasm

#endif // QSURF_QASM_LEXER_H
