/**
 * @file
 * Abstract syntax tree for the qsurf QASM dialect.
 *
 * The AST is deliberately small: register declarations, hierarchical
 * module definitions, gate statements and module calls.  The
 * flattener (qasm/flatten.h) lowers a Program to a flat
 * circuit::Circuit.
 */

#ifndef QSURF_QASM_AST_H
#define QSURF_QASM_AST_H

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace qsurf::qasm {

/** A qubit or classical-bit register declaration, e.g. "qbit q[8];". */
struct RegisterDecl
{
    std::string name;
    int size = 0;
    bool classical = false; ///< true for cbit registers.
};

/**
 * A reference to a single qubit operand.
 *
 * Either an indexed register element ("q[3]", index >= 0) or a bare
 * module parameter name ("a", index == -1) inside a module body.
 */
struct OperandRef
{
    std::string name;
    int index = -1;

    /** @return true when this refers to a module parameter. */
    bool isParam() const { return index < 0; }
};

/**
 * One statement: either a primitive gate application or a call to a
 * user-defined module (distinguished by name lookup at flatten time).
 */
struct GateStmt
{
    std::string name;                 ///< mnemonic or module name.
    std::optional<double> angle;      ///< "Rz(0.5)" parameter.
    std::vector<OperandRef> operands; ///< qubit operands, in order.
    std::optional<OperandRef> result; ///< "-> c[0]" measurement target.
    int line = 0;                     ///< source line for diagnostics.
};

/** A module (subroutine) definition with single-qubit parameters. */
struct Module
{
    std::string name;
    std::vector<std::string> params;
    std::vector<GateStmt> body;
    int line = 0;
};

/** A whole translation unit. */
struct Program
{
    std::vector<RegisterDecl> registers;
    std::map<std::string, Module> modules;
    std::vector<GateStmt> body;

    /** @return total declared qubits across quantum registers. */
    int
    totalQubits() const
    {
        int n = 0;
        for (const auto &r : registers)
            if (!r.classical)
                n += r.size;
        return n;
    }
};

} // namespace qsurf::qasm

#endif // QSURF_QASM_AST_H
