/**
 * @file
 * Recursive-descent parser for the qsurf QASM dialect (grammar in
 * qasm/lexer.h).
 */

#ifndef QSURF_QASM_PARSER_H
#define QSURF_QASM_PARSER_H

#include <string_view>

#include "qasm/ast.h"

namespace qsurf::qasm {

/**
 * Parse QASM source text into a Program.
 *
 * @throws FatalError with line/column context on any syntax error,
 *         duplicate declaration, or malformed statement.
 */
Program parse(std::string_view source);

/** Parse the contents of a file on disk. */
Program parseFile(const std::string &path);

} // namespace qsurf::qasm

#endif // QSURF_QASM_PARSER_H
