#include "qasm/writer.h"

#include <sstream>

namespace qsurf::qasm {

void
write(const circuit::Circuit &circ, std::ostream &os)
{
    if (!circ.name().empty())
        os << "# " << circ.name() << "\n";
    os << "qbit q[" << circ.numQubits() << "];\n";
    for (const circuit::Gate &g : circ) {
        os << circuit::gateName(g.kind);
        if (g.kind == circuit::GateKind::Rz)
            os << "(" << g.angle << ")";
        auto ops = g.operands();
        for (size_t i = 0; i < ops.size(); ++i)
            os << (i == 0 ? " " : ", ") << "q[" << ops[i] << "]";
        os << ";\n";
    }
}

std::string
writeString(const circuit::Circuit &circ)
{
    std::ostringstream os;
    write(circ, os);
    return os.str();
}

} // namespace qsurf::qasm
