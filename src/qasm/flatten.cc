#include "qasm/flatten.h"

#include <set>
#include <unordered_map>

#include "common/logging.h"

namespace qsurf::qasm {

namespace {

/** Resolves operand references against registers and call bindings. */
class Flattener
{
  public:
    Flattener(const Program &prog, const FlattenOptions &opts)
        : prog(prog), opts(opts)
    {
        int base = 0;
        for (const auto &reg : prog.registers) {
            if (reg.classical) {
                cbit_names.insert(reg.name);
                continue;
            }
            qubit_base[reg.name] = base;
            qubit_size[reg.name] = reg.size;
            base += reg.size;
        }
        circ.ensureQubits(base);
    }

    circuit::Circuit
    run()
    {
        Bindings empty;
        for (const GateStmt &stmt : prog.body)
            emitStatement(stmt, empty, 0);
        return std::move(circ);
    }

  private:
    using Bindings = std::unordered_map<std::string, int32_t>;

    int32_t
    resolve(const OperandRef &ref, const Bindings &bind, int line) const
    {
        if (ref.isParam()) {
            auto it = bind.find(ref.name);
            fatalIf(it == bind.end(), "line ", line,
                    ": unknown operand '", ref.name,
                    "' (not a register element or bound parameter)");
            return it->second;
        }
        auto base = qubit_base.find(ref.name);
        fatalIf(base == qubit_base.end(), "line ", line,
                ": unknown qubit register '", ref.name, "'");
        int size = qubit_size.at(ref.name);
        fatalIf(ref.index >= size, "line ", line, ": index ", ref.index,
                " out of range for register '", ref.name, "[", size,
                "]'");
        return static_cast<int32_t>(base->second + ref.index);
    }

    void
    checkResult(const GateStmt &stmt) const
    {
        if (!stmt.result)
            return;
        fatalIf(!stmt.result->isParam()
                    && !cbit_names.count(stmt.result->name),
                "line ", stmt.line, ": measurement target '",
                stmt.result->name, "' is not a cbit register");
    }

    void
    emitStatement(const GateStmt &stmt, const Bindings &bind, int depth)
    {
        fatalIf(depth > opts.max_depth, "module recursion deeper than ",
                opts.max_depth, " at line ", stmt.line,
                " (recursive module calls are not allowed)");

        if (auto kind = circuit::gateFromName(stmt.name)) {
            emitGate(*kind, stmt, bind);
            return;
        }

        auto mod_it = prog.modules.find(stmt.name);
        fatalIf(mod_it == prog.modules.end(), "line ", stmt.line,
                ": unknown gate or module '", stmt.name, "'");
        const Module &mod = mod_it->second;
        fatalIf(stmt.operands.size() != mod.params.size(), "line ",
                stmt.line, ": module '", mod.name, "' takes ",
                mod.params.size(), " arguments, got ",
                stmt.operands.size());
        fatalIf(stmt.angle.has_value(), "line ", stmt.line,
                ": module '", mod.name, "' does not take a parameter");

        Bindings inner;
        for (size_t i = 0; i < mod.params.size(); ++i)
            inner[mod.params[i]] =
                resolve(stmt.operands[i], bind, stmt.line);

        for (const GateStmt &body_stmt : mod.body)
            emitStatement(body_stmt, inner, depth + 1);
    }

    void
    emitGate(circuit::GateKind kind, const GateStmt &stmt,
             const Bindings &bind)
    {
        int arity = circuit::gateArity(kind);
        fatalIf(static_cast<int>(stmt.operands.size()) != arity, "line ",
                stmt.line, ": gate ", circuit::gateName(kind), " takes ",
                arity, " operands, got ", stmt.operands.size());
        fatalIf(stmt.angle.has_value() && kind != circuit::GateKind::Rz,
                "line ", stmt.line, ": gate ", circuit::gateName(kind),
                " does not take a parameter");
        fatalIf(kind == circuit::GateKind::Rz && !stmt.angle,
                "line ", stmt.line, ": Rz requires an angle parameter");
        fatalIf(stmt.result && !circuit::isMeasurement(kind),
                "line ", stmt.line, ": '->' is only valid after a ",
                "measurement");
        checkResult(stmt);

        circuit::Gate g;
        g.kind = kind;
        g.angle = stmt.angle.value_or(0.0);
        for (int i = 0; i < arity; ++i)
            g.qubit[static_cast<size_t>(i)] =
                resolve(stmt.operands[static_cast<size_t>(i)], bind,
                        stmt.line);
        circ.addGate(g);
    }

    const Program &prog;
    const FlattenOptions &opts;
    circuit::Circuit circ;
    std::unordered_map<std::string, int> qubit_base;
    std::unordered_map<std::string, int> qubit_size;
    std::set<std::string> cbit_names;
};

} // namespace

circuit::Circuit
flatten(const Program &prog, const FlattenOptions &opts)
{
    return Flattener(prog, opts).run();
}

} // namespace qsurf::qasm
