#include "partition/bisect.h"

#include <algorithm>
#include <deque>
#include <numeric>

#include "common/logging.h"
#include "partition/refine.h"

namespace qsurf::partition {

namespace {

/** One level of the multilevel hierarchy. */
struct CoarseLevel
{
    Graph graph;
    /** Map from fine vertex to coarse vertex of the next level. */
    std::vector<int> fine_to_coarse;
};

/**
 * Heavy-edge matching: visit vertices in random order, match each
 * unmatched vertex with its heaviest unmatched neighbour, and
 * contract matched pairs.
 */
CoarseLevel
coarsen(const Graph &g, Rng &rng)
{
    int n = g.size();
    std::vector<int> order(static_cast<size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    for (int i = n - 1; i > 0; --i)
        std::swap(order[static_cast<size_t>(i)],
                  order[rng.below(static_cast<uint64_t>(i + 1))]);

    std::vector<int> match(static_cast<size_t>(n), -1);
    for (int v : order) {
        if (match[static_cast<size_t>(v)] >= 0)
            continue;
        int best = -1;
        int64_t best_w = 0;
        for (const auto &[u, w] : g.neighbors(v))
            if (match[static_cast<size_t>(u)] < 0 && w > best_w) {
                best_w = w;
                best = u;
            }
        if (best >= 0) {
            match[static_cast<size_t>(v)] = best;
            match[static_cast<size_t>(best)] = v;
        } else {
            match[static_cast<size_t>(v)] = v;
        }
    }

    CoarseLevel level;
    level.fine_to_coarse.assign(static_cast<size_t>(n), -1);
    int next = 0;
    for (int v = 0; v < n; ++v) {
        if (level.fine_to_coarse[static_cast<size_t>(v)] >= 0)
            continue;
        int m = match[static_cast<size_t>(v)];
        level.fine_to_coarse[static_cast<size_t>(v)] = next;
        level.fine_to_coarse[static_cast<size_t>(m)] = next;
        ++next;
    }

    level.graph = Graph(next);
    std::vector<int64_t> cw(static_cast<size_t>(next), 0);
    for (int v = 0; v < n; ++v)
        cw[static_cast<size_t>(
            level.fine_to_coarse[static_cast<size_t>(v)])] +=
            g.vertexWeight(v);
    for (int c = 0; c < next; ++c)
        level.graph.setVertexWeight(c, cw[static_cast<size_t>(c)]);
    for (int u = 0; u < n; ++u)
        for (const auto &[v, w] : g.neighbors(u)) {
            if (u >= v)
                continue;
            int cu = level.fine_to_coarse[static_cast<size_t>(u)];
            int cv = level.fine_to_coarse[static_cast<size_t>(v)];
            if (cu != cv)
                level.graph.addEdge(cu, cv, w);
        }
    return level;
}

/**
 * Greedy BFS initial partition: grow side 0 from a random seed until
 * it holds the target weight; ties broken by connection strength.
 */
std::vector<int>
initialPartition(const Graph &g, Rng &rng, int64_t target_w0)
{
    int n = g.size();
    std::vector<int> side(static_cast<size_t>(n), 1);
    if (n == 0)
        return side;

    std::vector<char> visited(static_cast<size_t>(n), 0);
    int64_t w0 = 0;
    std::deque<int> frontier;

    auto seed_from = [&](int v) {
        visited[static_cast<size_t>(v)] = 1;
        frontier.push_back(v);
    };
    seed_from(static_cast<int>(rng.below(static_cast<uint64_t>(n))));

    while (w0 < target_w0) {
        if (frontier.empty()) {
            // Disconnected graph: seed a new unvisited component.
            int fresh = -1;
            for (int v = 0; v < n; ++v)
                if (!visited[static_cast<size_t>(v)]) {
                    fresh = v;
                    break;
                }
            if (fresh < 0)
                break;
            seed_from(fresh);
            continue;
        }
        int v = frontier.front();
        frontier.pop_front();
        side[static_cast<size_t>(v)] = 0;
        w0 += g.vertexWeight(v);
        for (const auto &[u, w] : g.neighbors(v)) {
            (void)w;
            if (!visited[static_cast<size_t>(u)]) {
                visited[static_cast<size_t>(u)] = 1;
                frontier.push_back(u);
            }
        }
    }
    return side;
}

BalanceConstraint
makeBalance(const Graph &g, const BisectOptions &opts)
{
    auto total = static_cast<double>(g.totalVertexWeight());
    double target = total * opts.target_fraction;
    double eps = total * opts.imbalance;
    // Always allow at least one max-weight vertex of slack so a
    // feasible assignment exists even for lumpy vertex weights.
    int64_t max_vw = 1;
    for (int v = 0; v < g.size(); ++v)
        max_vw = std::max(max_vw, g.vertexWeight(v));
    auto slack = std::max<int64_t>(static_cast<int64_t>(eps), max_vw);

    BalanceConstraint b;
    b.min_side0 = std::max<int64_t>(
        0, static_cast<int64_t>(target) - slack);
    b.max_side0 = std::min<int64_t>(
        static_cast<int64_t>(total),
        static_cast<int64_t>(target) + slack);
    return b;
}

Bisection
assemble(const Graph &g, std::vector<int> side)
{
    Bisection out;
    out.cut = cutWeight(g, side);
    for (int v = 0; v < g.size(); ++v)
        if (side[static_cast<size_t>(v)] == 0)
            out.side0_weight += g.vertexWeight(v);
    out.side = std::move(side);
    return out;
}

} // namespace

Bisection
bisect(const Graph &g, Rng &rng, const BisectOptions &opts)
{
    fatalIf(opts.target_fraction <= 0 || opts.target_fraction >= 1,
            "target_fraction must be in (0,1), got ",
            opts.target_fraction);

    int n = g.size();
    if (n <= 1)
        return assemble(g, std::vector<int>(static_cast<size_t>(n), 0));

    // Build the multilevel hierarchy.
    std::vector<CoarseLevel> levels;
    const Graph *cur = &g;
    while (cur->size() > opts.coarsen_threshold) {
        CoarseLevel level = coarsen(*cur, rng);
        // Matching failed to shrink the graph (e.g. no edges): stop.
        if (level.graph.size() >= cur->size())
            break;
        levels.push_back(std::move(level));
        cur = &levels.back().graph;
    }

    // Initial partition at the coarsest level, with restarts.
    const Graph &coarsest = levels.empty() ? g : levels.back().graph;
    auto target_w0 = static_cast<int64_t>(
        static_cast<double>(coarsest.totalVertexWeight())
        * opts.target_fraction);
    BalanceConstraint cb = makeBalance(coarsest, opts);

    std::vector<int> best_side;
    int64_t best_cut = -1;
    for (int r = 0; r < std::max(1, opts.restarts); ++r) {
        std::vector<int> side = initialPartition(coarsest, rng,
                                                 target_w0);
        int64_t cut = fmRefine(coarsest, side, cb, opts.refine_passes);
        if (best_cut < 0 || cut < best_cut) {
            best_cut = cut;
            best_side = std::move(side);
        }
    }

    // Uncoarsen, refining at every level.
    for (size_t li = levels.size(); li > 0; --li) {
        const CoarseLevel &level = levels[li - 1];
        const Graph &fine =
            li >= 2 ? levels[li - 2].graph : g;
        std::vector<int> fine_side(static_cast<size_t>(fine.size()));
        for (int v = 0; v < fine.size(); ++v)
            fine_side[static_cast<size_t>(v)] = best_side[
                static_cast<size_t>(
                    level.fine_to_coarse[static_cast<size_t>(v)])];
        BalanceConstraint fb = makeBalance(fine, opts);
        fmRefine(fine, fine_side, fb, opts.refine_passes);
        best_side = std::move(fine_side);
    }

    return assemble(g, std::move(best_side));
}

} // namespace qsurf::partition
