#include "partition/graph.h"

#include "common/logging.h"

namespace qsurf::partition {

Graph::Graph(int n)
{
    fatalIf(n < 0, "negative vertex count ", n);
    vweight.assign(static_cast<size_t>(n), 1);
    adj.resize(static_cast<size_t>(n));
}

void
Graph::addEdge(int u, int v, int64_t w)
{
    fatalIf(u < 0 || u >= size() || v < 0 || v >= size(),
            "edge (", u, ",", v, ") out of range for ", size(),
            " vertices");
    fatalIf(u == v, "self-loop on vertex ", u);
    fatalIf(w <= 0, "edge weight must be positive, got ", w);

    for (auto &[n2, w2] : adj[static_cast<size_t>(u)]) {
        if (n2 == v) {
            w2 += w;
            for (auto &[n3, w3] : adj[static_cast<size_t>(v)])
                if (n3 == u)
                    w3 += w;
            return;
        }
    }
    adj[static_cast<size_t>(u)].emplace_back(v, w);
    adj[static_cast<size_t>(v)].emplace_back(u, w);
}

void
Graph::setVertexWeight(int v, int64_t w)
{
    fatalIf(v < 0 || v >= size(), "vertex ", v, " out of range");
    fatalIf(w <= 0, "vertex weight must be positive, got ", w);
    vweight[static_cast<size_t>(v)] = w;
}

int64_t
Graph::totalVertexWeight() const
{
    int64_t sum = 0;
    for (int64_t w : vweight)
        sum += w;
    return sum;
}

std::vector<Edge>
Graph::edges() const
{
    std::vector<Edge> out;
    for (int u = 0; u < size(); ++u)
        for (const auto &[v, w] : neighbors(u))
            if (u < v)
                out.push_back(Edge{u, v, w});
    return out;
}

int64_t
Graph::totalEdgeWeight() const
{
    int64_t sum = 0;
    for (const Edge &e : edges())
        sum += e.w;
    return sum;
}

int64_t
cutWeight(const Graph &g, const std::vector<int> &side)
{
    panicIf(static_cast<int>(side.size()) != g.size(),
            "side assignment size mismatch");
    int64_t cut = 0;
    for (int u = 0; u < g.size(); ++u)
        for (const auto &[v, w] : g.neighbors(u))
            if (u < v && side[static_cast<size_t>(u)]
                             != side[static_cast<size_t>(v)])
                cut += w;
    return cut;
}

} // namespace qsurf::partition
