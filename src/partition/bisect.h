/**
 * @file
 * Balanced 2-way graph bisection: multilevel heavy-edge-matching
 * coarsening, greedy BFS-based initial partition, and
 * Fiduccia-Mattheyses refinement at every uncoarsening level — the
 * same algorithmic recipe as METIS [42], reimplemented from scratch.
 */

#ifndef QSURF_PARTITION_BISECT_H
#define QSURF_PARTITION_BISECT_H

#include <vector>

#include "common/rng.h"
#include "partition/graph.h"

namespace qsurf::partition {

/** Tunables for the bisection. */
struct BisectOptions
{
    /**
     * Target share of total vertex weight in side 0, in [0,1].
     * 0.5 is a balanced bisection; the grid embedder asks for
     * uneven splits when a region's two halves differ in capacity.
     */
    double target_fraction = 0.5;

    /** Allowed relative imbalance around the target (epsilon). */
    double imbalance = 0.05;

    /** Stop coarsening below this many vertices. */
    int coarsen_threshold = 32;

    /** Random restarts of the initial partition at the coarsest level. */
    int restarts = 4;

    /** FM passes per level. */
    int refine_passes = 6;
};

/** Result of a bisection. */
struct Bisection
{
    /** 0/1 side of every vertex. */
    std::vector<int> side;
    /** Total edge weight crossing the cut. */
    int64_t cut = 0;
    /** Vertex weight placed on side 0. */
    int64_t side0_weight = 0;
};

/**
 * Bisect @p g into two balanced parts minimizing cut weight.
 *
 * Deterministic for a given @p rng state.  Handles disconnected
 * graphs, isolated vertices, and n < 2 (everything on side 0).
 */
Bisection bisect(const Graph &g, Rng &rng, const BisectOptions &opts = {});

} // namespace qsurf::partition

#endif // QSURF_PARTITION_BISECT_H
