#include "partition/layout.h"

#include <cmath>

#include "common/logging.h"

namespace qsurf::partition {

namespace {

/** Inclusive cell rectangle. */
struct Rect
{
    int x0, y0, x1, y1;

    int width() const { return x1 - x0 + 1; }
    int height() const { return y1 - y0 + 1; }
    int cells() const { return width() * height(); }
};

/** Recursive bisection placement state. */
class Placer
{
  public:
    Placer(const Graph &g, GridLayout &layout, Rng &rng)
        : g(g), layout(layout), rng(rng) {}

    void
    place(std::vector<int> vertices, const Rect &rect)
    {
        panicIf(static_cast<int>(vertices.size()) > rect.cells(),
                "placer overflow: ", vertices.size(), " vertices in ",
                rect.cells(), " cells");
        if (vertices.empty())
            return;
        if (rect.cells() == 1) {
            int v = vertices.front();
            Coord c{rect.x0, rect.y0};
            layout.position[static_cast<size_t>(v)] = c;
            layout.vertex_at[static_cast<size_t>(
                linearIndex(c, layout.width))] = v;
            return;
        }

        // Split along the longer axis.
        Rect a = rect, b = rect;
        if (rect.width() >= rect.height()) {
            int mid = rect.x0 + (rect.width() - 1) / 2;
            a.x1 = mid;
            b.x0 = mid + 1;
        } else {
            int mid = rect.y0 + (rect.height() - 1) / 2;
            a.y1 = mid;
            b.y0 = mid + 1;
        }

        auto [va, vb] = split(vertices, a.cells(), b.cells());
        place(std::move(va), a);
        place(std::move(vb), b);
    }

  private:
    /**
     * Split @p vertices into groups fitting capacities @p cap_a and
     * @p cap_b by bisecting the induced subgraph.
     */
    std::pair<std::vector<int>, std::vector<int>>
    split(const std::vector<int> &vertices, int cap_a, int cap_b)
    {
        int n = static_cast<int>(vertices.size());

        // Build the induced subgraph.
        std::vector<int> local(static_cast<size_t>(g.size()), -1);
        for (int i = 0; i < n; ++i)
            local[static_cast<size_t>(
                vertices[static_cast<size_t>(i)])] = i;
        Graph sub(n);
        for (int i = 0; i < n; ++i) {
            int u = vertices[static_cast<size_t>(i)];
            for (const auto &[v, w] : g.neighbors(u)) {
                int j = local[static_cast<size_t>(v)];
                if (j > i)
                    sub.addEdge(i, j, w);
            }
        }

        BisectOptions opts;
        opts.target_fraction = std::clamp(
            static_cast<double>(cap_a) / (cap_a + cap_b), 0.05, 0.95);
        Bisection cut = bisect(sub, rng, opts);

        std::vector<int> va, vb;
        for (int i = 0; i < n; ++i) {
            int v = vertices[static_cast<size_t>(i)];
            (cut.side[static_cast<size_t>(i)] == 0 ? va : vb)
                .push_back(v);
        }

        // Enforce hard capacities: spill overflow to the other side
        // (the bisection balance envelope is soft).
        while (static_cast<int>(va.size()) > cap_a) {
            vb.push_back(va.back());
            va.pop_back();
        }
        while (static_cast<int>(vb.size()) > cap_b) {
            va.push_back(vb.back());
            vb.pop_back();
        }
        return {std::move(va), std::move(vb)};
    }

    const Graph &g;
    GridLayout &layout;
    Rng &rng;
};

GridLayout
emptyLayout(int num_vertices, int width, int height)
{
    fatalIf(width < 1 || height < 1, "grid must be at least 1x1, got ",
            width, "x", height);
    fatalIf(num_vertices > width * height, "cannot place ",
            num_vertices, " vertices on a ", width, "x", height,
            " grid");
    GridLayout out;
    out.width = width;
    out.height = height;
    out.position.assign(static_cast<size_t>(num_vertices), Coord{});
    out.vertex_at.assign(static_cast<size_t>(width * height), -1);
    return out;
}

} // namespace

GridLayout
naiveLayout(int num_vertices, int width, int height)
{
    GridLayout out = emptyLayout(num_vertices, width, height);
    for (int v = 0; v < num_vertices; ++v) {
        Coord c = fromLinearIndex(v, width);
        out.position[static_cast<size_t>(v)] = c;
        out.vertex_at[static_cast<size_t>(v)] = v;
    }
    return out;
}

GridLayout
layoutOnGrid(const Graph &g, int width, int height, uint64_t seed)
{
    GridLayout out = emptyLayout(g.size(), width, height);
    Rng rng(seed);
    std::vector<int> all(static_cast<size_t>(g.size()));
    for (int v = 0; v < g.size(); ++v)
        all[static_cast<size_t>(v)] = v;
    Placer(g, out, rng).place(std::move(all),
                              Rect{0, 0, width - 1, height - 1});
    return out;
}

double
weightedManhattan(const Graph &g, const GridLayout &layout)
{
    double sum = 0;
    for (const Edge &e : g.edges())
        sum += static_cast<double>(e.w)
             * manhattan(layout.position[static_cast<size_t>(e.u)],
                         layout.position[static_cast<size_t>(e.v)]);
    return sum;
}

std::pair<int, int>
gridShape(int n)
{
    fatalIf(n < 1, "grid must hold at least one cell, got ", n);
    int w = static_cast<int>(std::ceil(std::sqrt(
        static_cast<double>(n))));
    int h = (n + w - 1) / w;
    return {w, h};
}

} // namespace qsurf::partition
