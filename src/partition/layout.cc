#include "partition/layout.h"

#include <cmath>

#include "common/logging.h"

namespace qsurf::partition {

namespace {

/** Inclusive cell rectangle. */
struct Rect
{
    int x0, y0, x1, y1;

    int width() const { return x1 - x0 + 1; }
    int height() const { return y1 - y0 + 1; }
    int cells() const { return width() * height(); }
};

/** Recursive bisection placement state. */
class Placer
{
  public:
    Placer(const Graph &g, GridLayout &layout, Rng &rng)
        : g(g), layout(layout), rng(rng) {}

    void
    place(std::vector<int> vertices, const Rect &rect)
    {
        panicIf(static_cast<int>(vertices.size()) > rect.cells(),
                "placer overflow: ", vertices.size(), " vertices in ",
                rect.cells(), " cells");
        if (vertices.empty())
            return;
        if (rect.cells() == 1) {
            int v = vertices.front();
            Coord c{rect.x0, rect.y0};
            layout.position[static_cast<size_t>(v)] = c;
            layout.vertex_at[static_cast<size_t>(
                linearIndex(c, layout.width))] = v;
            return;
        }

        // Split along the longer axis.
        Rect a = rect, b = rect;
        if (rect.width() >= rect.height()) {
            int mid = rect.x0 + (rect.width() - 1) / 2;
            a.x1 = mid;
            b.x0 = mid + 1;
        } else {
            int mid = rect.y0 + (rect.height() - 1) / 2;
            a.y1 = mid;
            b.y0 = mid + 1;
        }

        auto [va, vb] = split(vertices, a.cells(), b.cells());
        place(std::move(va), a);
        place(std::move(vb), b);
    }

  private:
    /**
     * Split @p vertices into groups fitting capacities @p cap_a and
     * @p cap_b by bisecting the induced subgraph.
     */
    std::pair<std::vector<int>, std::vector<int>>
    split(const std::vector<int> &vertices, int cap_a, int cap_b)
    {
        int n = static_cast<int>(vertices.size());

        // Build the induced subgraph.
        std::vector<int> local(static_cast<size_t>(g.size()), -1);
        for (int i = 0; i < n; ++i)
            local[static_cast<size_t>(
                vertices[static_cast<size_t>(i)])] = i;
        Graph sub(n);
        for (int i = 0; i < n; ++i) {
            int u = vertices[static_cast<size_t>(i)];
            for (const auto &[v, w] : g.neighbors(u)) {
                int j = local[static_cast<size_t>(v)];
                if (j > i)
                    sub.addEdge(i, j, w);
            }
        }

        BisectOptions opts;
        opts.target_fraction = std::clamp(
            static_cast<double>(cap_a) / (cap_a + cap_b), 0.05, 0.95);
        Bisection cut = bisect(sub, rng, opts);

        // Enforce hard capacities: spill overflow to the other side
        // (the bisection balance envelope is soft).  Spill the vertex
        // with the smallest attachment to its own side — not an
        // arbitrary tail vertex — so the edges forced across the cut
        // are the cheapest ones available.
        std::vector<int> side = cut.side;
        auto spillWeakest = [&](int overfull) {
            int best = -1;
            int64_t best_att = 0;
            for (int i = 0; i < n; ++i) {
                if (side[static_cast<size_t>(i)] != overfull)
                    continue;
                int64_t att = 0;
                for (const auto &[j, w] : sub.neighbors(i))
                    if (side[static_cast<size_t>(j)] == overfull)
                        att += w;
                if (best < 0 || att < best_att) {
                    best = i;
                    best_att = att;
                }
            }
            side[static_cast<size_t>(best)] = 1 - overfull;
        };
        int na = 0;
        for (int i = 0; i < n; ++i)
            na += side[static_cast<size_t>(i)] == 0;
        for (; na > cap_a; --na)
            spillWeakest(0);
        for (; n - na > cap_b; ++na)
            spillWeakest(1);

        std::vector<int> va, vb;
        for (int i = 0; i < n; ++i) {
            int v = vertices[static_cast<size_t>(i)];
            (side[static_cast<size_t>(i)] == 0 ? va : vb).push_back(v);
        }
        return {std::move(va), std::move(vb)};
    }

    const Graph &g;
    GridLayout &layout;
    Rng &rng;
};

GridLayout
emptyLayout(int num_vertices, int width, int height)
{
    fatalIf(width < 1 || height < 1, "grid must be at least 1x1, got ",
            width, "x", height);
    fatalIf(num_vertices > width * height, "cannot place ",
            num_vertices, " vertices on a ", width, "x", height,
            " grid");
    GridLayout out;
    out.width = width;
    out.height = height;
    out.position.assign(static_cast<size_t>(num_vertices), Coord{});
    out.vertex_at.assign(static_cast<size_t>(width * height), -1);
    return out;
}

} // namespace

GridLayout
naiveLayout(int num_vertices, int width, int height)
{
    GridLayout out = emptyLayout(num_vertices, width, height);
    for (int v = 0; v < num_vertices; ++v) {
        Coord c = fromLinearIndex(v, width);
        out.position[static_cast<size_t>(v)] = c;
        out.vertex_at[static_cast<size_t>(v)] = v;
    }
    return out;
}

GridLayout
naiveLayout(int num_vertices, int width, int height,
            const CellMask &dead)
{
    if (dead.empty())
        return naiveLayout(num_vertices, width, height);
    fatalIf(dead.size() != static_cast<size_t>(width * height),
            "cell mask covers ", dead.size(), " cells of a ", width,
            "x", height, " grid");
    GridLayout out = emptyLayout(num_vertices, width, height);
    int v = 0;
    for (int i = 0; i < width * height && v < num_vertices; ++i) {
        if (dead[static_cast<size_t>(i)])
            continue;
        out.position[static_cast<size_t>(v)] =
            fromLinearIndex(i, width);
        out.vertex_at[static_cast<size_t>(i)] = v;
        ++v;
    }
    fatalIf(v < num_vertices, "cannot place ", num_vertices,
            " vertices on a ", width, "x", height, " grid with only ",
            v, " usable cells");
    return out;
}

GridLayout
layoutOnGrid(const Graph &g, int width, int height, uint64_t seed)
{
    GridLayout out = emptyLayout(g.size(), width, height);
    Rng rng(seed);
    std::vector<int> all(static_cast<size_t>(g.size()));
    for (int v = 0; v < g.size(); ++v)
        all[static_cast<size_t>(v)] = v;
    Placer(g, out, rng).place(std::move(all),
                              Rect{0, 0, width - 1, height - 1});
    return out;
}

GridLayout
layoutOnGrid(const Graph &g, int width, int height, uint64_t seed,
             const CellMask &dead)
{
    // Seed with the perfect-grid bisection (bit-identical partitions
    // regardless of damage), then repair: interaction structure
    // drives the placement, damage only perturbs it locally.
    GridLayout out = layoutOnGrid(g, width, height, seed);
    evictDeadCells(out, dead);
    return out;
}

void
evictDeadCells(GridLayout &layout, const CellMask &dead)
{
    if (dead.empty())
        return;
    fatalIf(dead.size() != layout.vertex_at.size(),
            "cell mask covers ", dead.size(), " cells of a ",
            layout.width, "x", layout.height, " grid");
    int cells = layout.width * layout.height;
    for (int i = 0; i < cells; ++i) {
        if (!dead[static_cast<size_t>(i)])
            continue;
        int v = layout.vertex_at[static_cast<size_t>(i)];
        if (v < 0)
            continue;
        Coord from = fromLinearIndex(i, layout.width);
        int best = -1;
        int best_dist = 0;
        for (int j = 0; j < cells; ++j) {
            if (dead[static_cast<size_t>(j)]
                || layout.vertex_at[static_cast<size_t>(j)] >= 0)
                continue;
            int dist = manhattan(from, fromLinearIndex(j,
                                                       layout.width));
            if (best < 0 || dist < best_dist) {
                best = j;
                best_dist = dist;
            }
        }
        fatalIf(best < 0, "no usable cell left to relocate vertex ",
                v, " off dead cell ", from);
        layout.vertex_at[static_cast<size_t>(i)] = -1;
        layout.vertex_at[static_cast<size_t>(best)] = v;
        layout.position[static_cast<size_t>(v)] =
            fromLinearIndex(best, layout.width);
    }
}

double
weightedManhattan(const Graph &g, const GridLayout &layout)
{
    double sum = 0;
    for (const Edge &e : g.edges())
        sum += static_cast<double>(e.w)
             * manhattan(layout.position[static_cast<size_t>(e.u)],
                         layout.position[static_cast<size_t>(e.v)]);
    return sum;
}

const char *
layoutObjectiveName(LayoutObjective objective)
{
    switch (objective) {
      case LayoutObjective::BraidManhattan:
        return "braid-manhattan";
      case LayoutObjective::Corridor:
        return "corridor";
      case LayoutObjective::CorridorLanes:
        return "corridor+lanes";
    }
    panic("bad LayoutObjective");
}

LayoutObjective
layoutObjective(int v)
{
    fatalIf(v < 0 || v >= num_layout_objectives,
            "layout objective must be in [0, ",
            num_layout_objectives, "), got ", v);
    return static_cast<LayoutObjective>(v);
}

namespace {

/** Dedicated-lane bands crossed between patch indices @p a and
 *  @p b: one per multiple of @p spacing strictly inside the span
 *  (boundary t sits between patches t-1 and t). */
int
lanesCrossed(int a, int b, int spacing)
{
    if (spacing <= 0)
        return 0;
    return std::max(a, b) / spacing - std::min(a, b) / spacing;
}

} // namespace

int
corridorTiles(const Coord &a, const Coord &b, int lane_spacing)
{
    int m = manhattan(a, b);
    if (m == 0)
        return 0;
    // A corridor between collinear non-adjacent patches cannot run
    // straight through the patches between them: it detours one
    // corridor row/column to the side, one extra tile end to end.
    // Every lane band the span crosses inserts two mesh lines, one
    // extra tile each — routes ride lanes at zero additional hops,
    // so this prices the actual route geometry exactly.
    bool collinear = (a.x == b.x || a.y == b.y) && m >= 2;
    return m + (collinear ? 1 : 0)
        + lanesCrossed(a.x, b.x, lane_spacing)
        + lanesCrossed(a.y, b.y, lane_spacing);
}

double
weightedCorridorLength(const Graph &g, const GridLayout &layout,
                       int lane_spacing)
{
    double sum = 0;
    for (const Edge &e : g.edges())
        sum += static_cast<double>(e.w)
             * corridorTiles(layout.position[static_cast<size_t>(e.u)],
                             layout.position[static_cast<size_t>(e.v)],
                             lane_spacing);
    return sum;
}

double
refineForCorridors(const Graph &g, GridLayout &layout,
                   int lane_spacing, int max_passes)
{
    return refineForCorridors(g, layout, lane_spacing, max_passes,
                              CellMask{});
}

double
refineForCorridors(const Graph &g, GridLayout &layout,
                   int lane_spacing, int max_passes,
                   const CellMask &dead)
{
    fatalIf(layout.position.size()
                != static_cast<size_t>(g.size()),
            "layout/graph size mismatch: ", layout.position.size(),
            " positions for ", g.size(), " vertices");

    // Cost change of moving @p v from @p from to @p to, ignoring the
    // edge to @p exclude (whose length a swap leaves unchanged).
    auto moveDelta = [&](int v, const Coord &from, const Coord &to,
                         int exclude) {
        int64_t d = 0;
        for (const auto &[n, w] : g.neighbors(v)) {
            if (n == exclude)
                continue;
            const Coord &p = layout.position[static_cast<size_t>(n)];
            d += w * (corridorTiles(to, p, lane_spacing)
                      - corridorTiles(from, p, lane_spacing));
        }
        return d;
    };

    int cells = layout.width * layout.height;
    bool masked = !dead.empty();
    fatalIf(masked && dead.size() != layout.vertex_at.size(),
            "cell mask covers ", dead.size(), " cells of a ",
            layout.width, "x", layout.height, " grid");
    for (int pass = 0; pass < max_passes; ++pass) {
        bool improved = false;
        for (int i = 0; i < cells; ++i) {
            if (masked && dead[static_cast<size_t>(i)])
                continue;
            Coord ci = fromLinearIndex(i, layout.width);
            int u = layout.at(ci);
            for (int j = i + 1; j < cells; ++j) {
                if (masked && dead[static_cast<size_t>(j)])
                    continue;
                Coord cj = fromLinearIndex(j, layout.width);
                int v = layout.at(cj);
                if (u < 0 && v < 0)
                    continue;
                int64_t delta = 0;
                if (u >= 0)
                    delta += moveDelta(u, ci, cj, v);
                if (v >= 0)
                    delta += moveDelta(v, cj, ci, u);
                if (delta >= 0)
                    continue;
                if (u >= 0)
                    layout.position[static_cast<size_t>(u)] = cj;
                if (v >= 0)
                    layout.position[static_cast<size_t>(v)] = ci;
                layout.vertex_at[static_cast<size_t>(i)] = v;
                layout.vertex_at[static_cast<size_t>(j)] = u;
                u = v;
                improved = true;
            }
        }
        if (!improved)
            break;
    }
    return weightedCorridorLength(g, layout, lane_spacing);
}

std::pair<int, int>
gridShape(int n)
{
    fatalIf(n < 1, "grid must hold at least one cell, got ", n);
    int w = static_cast<int>(std::ceil(std::sqrt(
        static_cast<double>(n))));
    int h = (n + w - 1) / w;
    return {w, h};
}

} // namespace qsurf::partition
