/**
 * @file
 * Weighted undirected graph for the layout optimizer.
 *
 * Section 6.2 represents each logical qubit as a vertex on a graph of
 * qubit interactions and calls a partitioning library (METIS in the
 * paper; src/partition is our from-scratch equivalent) to separate
 * qubits into balanced halves with small crossing weight.
 */

#ifndef QSURF_PARTITION_GRAPH_H
#define QSURF_PARTITION_GRAPH_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace qsurf::partition {

/** One undirected weighted edge. */
struct Edge
{
    int u = 0;
    int v = 0;
    int64_t w = 1;
};

/** Compressed adjacency representation of a weighted graph. */
class Graph
{
  public:
    Graph() = default;

    /** @param n vertex count; vertices are 0..n-1. */
    explicit Graph(int n);

    /**
     * Add weight to the undirected edge (u, v); parallel additions
     * accumulate.  Self-loops are rejected.
     */
    void addEdge(int u, int v, int64_t w = 1);

    /** Vertex weight (defaults to 1); used for balance constraints. */
    void setVertexWeight(int v, int64_t w);

    /** @return vertex count. */
    int size() const { return static_cast<int>(vweight.size()); }

    /** @return weight of vertex @p v. */
    int64_t vertexWeight(int v) const
    {
        return vweight[static_cast<size_t>(v)];
    }

    /** @return total vertex weight. */
    int64_t totalVertexWeight() const;

    /** @return neighbours of @p v as (vertex, edge weight) pairs. */
    const std::vector<std::pair<int, int64_t>> &
    neighbors(int v) const
    {
        return adj[static_cast<size_t>(v)];
    }

    /** @return all unique edges (u < v). */
    std::vector<Edge> edges() const;

    /** @return sum of all edge weights. */
    int64_t totalEdgeWeight() const;

  private:
    std::vector<int64_t> vweight;
    std::vector<std::vector<std::pair<int, int64_t>>> adj;
};

/**
 * @return total weight of edges crossing the 0/1 assignment @p side
 * (the objective the bisection minimizes).
 */
int64_t cutWeight(const Graph &g, const std::vector<int> &side);

} // namespace qsurf::partition

#endif // QSURF_PARTITION_GRAPH_H
