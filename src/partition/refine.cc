#include "partition/refine.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace qsurf::partition {

namespace {

/**
 * Gain of moving @p v to the other side: external minus internal
 * incident weight.
 */
int64_t
moveGain(const Graph &g, const std::vector<int> &side, int v)
{
    int64_t gain = 0;
    for (const auto &[u, w] : g.neighbors(v))
        gain += side[static_cast<size_t>(u)]
                        != side[static_cast<size_t>(v)]
                    ? w
                    : -w;
    return gain;
}

/** One FM pass; returns true if the cut improved. */
bool
fmPass(const Graph &g, std::vector<int> &side,
       const BalanceConstraint &balance, int64_t &side0_weight)
{
    int n = g.size();
    std::vector<int64_t> gain(static_cast<size_t>(n));
    std::vector<char> locked(static_cast<size_t>(n), 0);
    for (int v = 0; v < n; ++v)
        gain[static_cast<size_t>(v)] = moveGain(g, side, v);

    struct Move
    {
        int vertex;
        int64_t gain;
    };
    std::vector<Move> sequence;
    sequence.reserve(static_cast<size_t>(n));

    int64_t w0 = side0_weight;
    for (int step = 0; step < n; ++step) {
        // Pick the unlocked, balance-feasible vertex with max gain.
        int best = -1;
        int64_t best_gain = std::numeric_limits<int64_t>::min();
        for (int v = 0; v < n; ++v) {
            if (locked[static_cast<size_t>(v)])
                continue;
            int64_t vw = g.vertexWeight(v);
            int64_t new_w0 = side[static_cast<size_t>(v)] == 0
                ? w0 - vw
                : w0 + vw;
            if (new_w0 < balance.min_side0 || new_w0 > balance.max_side0)
                continue;
            if (gain[static_cast<size_t>(v)] > best_gain) {
                best_gain = gain[static_cast<size_t>(v)];
                best = v;
            }
        }
        if (best < 0)
            break;

        // Tentatively move it and update neighbour gains.
        int old_side = side[static_cast<size_t>(best)];
        side[static_cast<size_t>(best)] = 1 - old_side;
        w0 += old_side == 0 ? -g.vertexWeight(best)
                            : g.vertexWeight(best);
        locked[static_cast<size_t>(best)] = 1;
        sequence.push_back(Move{best, best_gain});
        for (const auto &[u, w] : g.neighbors(best)) {
            if (locked[static_cast<size_t>(u)])
                continue;
            // Edge (best,u) flips between cut and uncut.
            if (side[static_cast<size_t>(u)]
                == side[static_cast<size_t>(best)])
                gain[static_cast<size_t>(u)] -= 2 * w;
            else
                gain[static_cast<size_t>(u)] += 2 * w;
        }
    }

    // Find the best prefix of the move sequence.
    int64_t running = 0, best_total = 0;
    size_t best_prefix = 0;
    for (size_t i = 0; i < sequence.size(); ++i) {
        running += sequence[i].gain;
        if (running > best_total) {
            best_total = running;
            best_prefix = i + 1;
        }
    }

    // Roll back moves after the best prefix.
    for (size_t i = sequence.size(); i > best_prefix; --i) {
        int v = sequence[i - 1].vertex;
        int cur = side[static_cast<size_t>(v)];
        side[static_cast<size_t>(v)] = 1 - cur;
        w0 += cur == 0 ? -g.vertexWeight(v) : g.vertexWeight(v);
    }
    side0_weight = w0;
    return best_total > 0;
}

} // namespace

int64_t
fmRefine(const Graph &g, std::vector<int> &side,
         const BalanceConstraint &balance, int passes)
{
    panicIf(static_cast<int>(side.size()) != g.size(),
            "side size mismatch in fmRefine");

    int64_t w0 = 0;
    for (int v = 0; v < g.size(); ++v)
        if (side[static_cast<size_t>(v)] == 0)
            w0 += g.vertexWeight(v);

    for (int p = 0; p < passes; ++p)
        if (!fmPass(g, side, balance, w0))
            break;
    return cutWeight(g, side);
}

} // namespace qsurf::partition
