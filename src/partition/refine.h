/**
 * @file
 * Fiduccia-Mattheyses boundary refinement for 2-way partitions:
 * single-vertex moves with gain tracking, a tentative move sequence,
 * and rollback to the best prefix.  Linear time per pass.
 */

#ifndef QSURF_PARTITION_REFINE_H
#define QSURF_PARTITION_REFINE_H

#include <vector>

#include "partition/graph.h"

namespace qsurf::partition {

/** Balance envelope for refinement moves. */
struct BalanceConstraint
{
    int64_t min_side0 = 0; ///< Minimum vertex weight on side 0.
    int64_t max_side0 = 0; ///< Maximum vertex weight on side 0.
};

/**
 * Run up to @p passes FM passes on @p side in place.
 *
 * @param g        the graph.
 * @param side     0/1 assignment, modified in place.
 * @param balance  weight envelope side 0 must stay within.
 * @param passes   maximum number of passes (each pass tries to move
 *                 every vertex once).
 * @return the cut weight after refinement.
 */
int64_t fmRefine(const Graph &g, std::vector<int> &side,
                 const BalanceConstraint &balance, int passes);

} // namespace qsurf::partition

#endif // QSURF_PARTITION_REFINE_H
