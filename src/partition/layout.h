/**
 * @file
 * Interaction-aware 2-D grid layout (Section 6.2).
 *
 * Maps graph vertices (logical qubit tiles) onto grid cells by
 * recursive bisection: each step splits the current rectangle along
 * its longer axis and bisects the induced interaction subgraph with
 * a target fraction matching the two halves' capacities.  The
 * objective is the sum of edge-weighted Manhattan distances, i.e.
 * exactly the braid-length objective of the paper.
 *
 * Braid routes move *through* the mesh, so Manhattan distance is
 * their true cost — but lattice-surgery merge/split corridors route
 * *around* live patches, which makes collinear non-adjacent pairs one
 * tile more expensive than their Manhattan distance.  The corridor
 * objective (weightedCorridorLength) prices edges by that
 * around-patch route length, and refineForCorridors() improves a
 * bisection-seeded layout against it by greedy pairwise swaps.
 */

#ifndef QSURF_PARTITION_LAYOUT_H
#define QSURF_PARTITION_LAYOUT_H

#include <vector>

#include "common/geometry.h"
#include "partition/bisect.h"
#include "partition/graph.h"

namespace qsurf::partition {

/** A placement of graph vertices onto a width x height grid. */
struct GridLayout
{
    int width = 0;
    int height = 0;
    /** Grid position of each vertex. */
    std::vector<Coord> position;
    /** Vertex occupying each cell (row-major), or -1. */
    std::vector<int> vertex_at;

    /** @return the vertex at cell @p c, or -1 when empty. */
    int
    at(const Coord &c) const
    {
        return vertex_at[static_cast<size_t>(linearIndex(c, width))];
    }
};

/**
 * Row-major mask of cells unusable for placement (non-zero = dead);
 * empty means every cell is usable.  Defective fabrics price their
 * dead tiles out of seeds and refinement through this.
 */
using CellMask = std::vector<uint8_t>;

/**
 * Naive layout: vertex i at row-major cell i (the paper's baseline
 * arrangement, used by braid Policies 0 and 1).
 */
GridLayout naiveLayout(int num_vertices, int width, int height);

/** Naive layout skipping dead cells: vertices fill the usable cells
 *  in row-major order.  fatal()s when they do not fit. */
GridLayout naiveLayout(int num_vertices, int width, int height,
                       const CellMask &dead);

/**
 * Interaction-optimized layout via recursive bisection.
 *
 * @param g      interaction graph; g.size() <= width * height.
 * @param width  grid width in cells.
 * @param height grid height in cells.
 * @param seed   RNG seed (layout is deterministic per seed).
 */
GridLayout layoutOnGrid(const Graph &g, int width, int height,
                        uint64_t seed = 1);

/** Bisection layout on a damaged grid: the perfect-grid seed is
 *  computed first (bit-identical partitions), then every vertex on a
 *  dead cell is relocated to the nearest usable empty cell
 *  (deterministic tie-breaks).  fatal()s when the usable cells
 *  cannot hold the graph. */
GridLayout layoutOnGrid(const Graph &g, int width, int height,
                        uint64_t seed, const CellMask &dead);

/**
 * Relocate every vertex of @p layout sitting on a dead cell to the
 * nearest usable empty cell (Manhattan distance, row-major
 * tie-break).  No-op for an empty mask; fatal()s when a vertex has
 * nowhere to go.
 */
void evictDeadCells(GridLayout &layout, const CellMask &dead);

/** @return sum over edges of weight * Manhattan distance. */
double weightedManhattan(const Graph &g, const GridLayout &layout);

/**
 * Patch-layout objective of the lattice-surgery machine.  The braid
 * backends always optimize Manhattan length; the surgery and hybrid
 * backends select one of these (ROADMAP: "Surgery-aware layout").
 */
enum class LayoutObjective : int
{
    /** Edge-weighted Manhattan distance (the Section 6.2 braid
     *  objective, historically reused for surgery). */
    BraidManhattan = 0,

    /** Edge-weighted around-patch corridor length, with a greedy
     *  pairwise-swap refinement pass on top of the bisection seed. */
    Corridor = 1,

    /** Corridor objective plus dedicated ancilla lanes reserved in
     *  the patch mesh (surgery::PatchArchOptions::lane_spacing). */
    CorridorLanes = 2,
};

/** Number of LayoutObjective values (for knob validation). */
inline constexpr int num_layout_objectives = 3;

/** @return the display name of @p objective. */
const char *layoutObjectiveName(LayoutObjective objective);

/** @return the checked LayoutObjective for knob value @p v. */
LayoutObjective layoutObjective(int v);

/**
 * Merge/split corridor length between patch cells @p a and @p b, in
 * patch tiles — the edge cost of the corridor layout objective.
 * Mirrors surgery::PatchArch::corridorRoute exactly: adjacent
 * patches merge through their shared boundary (1 tile), diagonal
 * pairs route at Manhattan length, collinear non-adjacent pairs pay
 * one extra tile to route *around* the patches between them, and —
 * when @p lane_spacing > 0 — every dedicated-lane band the span
 * crosses (one per multiple of lane_spacing between the cells, per
 * axis) adds one tile, matching the two mesh lines each lane
 * inserts.
 */
int corridorTiles(const Coord &a, const Coord &b,
                  int lane_spacing = 0);

/** @return sum over edges of weight * corridorTiles. */
double weightedCorridorLength(const Graph &g,
                              const GridLayout &layout,
                              int lane_spacing = 0);

/**
 * Greedy pairwise-swap refinement of @p layout against the corridor
 * objective (lane-aware when @p lane_spacing > 0): repeatedly
 * applies the first cell swap (or move into an empty cell) that
 * strictly reduces weightedCorridorLength, until a full pass finds
 * none or @p max_passes passes ran.  Deterministic: scan order is
 * fixed, so a given (graph, layout) always refines to the same
 * placement.
 *
 * @return the refined layout's weightedCorridorLength.
 */
double refineForCorridors(const Graph &g, GridLayout &layout,
                          int lane_spacing = 0, int max_passes = 8);

/** Dead-cell-aware refinement: identical to the overload above, but
 *  swaps never read from or move a vertex onto a dead cell.  An
 *  empty mask takes the exact unmasked path. */
double refineForCorridors(const Graph &g, GridLayout &layout,
                          int lane_spacing, int max_passes,
                          const CellMask &dead);

/** @return the smallest near-square (width, height) covering n cells. */
std::pair<int, int> gridShape(int n);

} // namespace qsurf::partition

#endif // QSURF_PARTITION_LAYOUT_H
