/**
 * @file
 * Interaction-aware 2-D grid layout (Section 6.2).
 *
 * Maps graph vertices (logical qubit tiles) onto grid cells by
 * recursive bisection: each step splits the current rectangle along
 * its longer axis and bisects the induced interaction subgraph with
 * a target fraction matching the two halves' capacities.  The
 * objective is the sum of edge-weighted Manhattan distances, i.e.
 * exactly the braid-length objective of the paper.
 */

#ifndef QSURF_PARTITION_LAYOUT_H
#define QSURF_PARTITION_LAYOUT_H

#include <vector>

#include "common/geometry.h"
#include "partition/bisect.h"
#include "partition/graph.h"

namespace qsurf::partition {

/** A placement of graph vertices onto a width x height grid. */
struct GridLayout
{
    int width = 0;
    int height = 0;
    /** Grid position of each vertex. */
    std::vector<Coord> position;
    /** Vertex occupying each cell (row-major), or -1. */
    std::vector<int> vertex_at;

    /** @return the vertex at cell @p c, or -1 when empty. */
    int
    at(const Coord &c) const
    {
        return vertex_at[static_cast<size_t>(linearIndex(c, width))];
    }
};

/**
 * Naive layout: vertex i at row-major cell i (the paper's baseline
 * arrangement, used by braid Policies 0 and 1).
 */
GridLayout naiveLayout(int num_vertices, int width, int height);

/**
 * Interaction-optimized layout via recursive bisection.
 *
 * @param g      interaction graph; g.size() <= width * height.
 * @param width  grid width in cells.
 * @param height grid height in cells.
 * @param seed   RNG seed (layout is deterministic per seed).
 */
GridLayout layoutOnGrid(const Graph &g, int width, int height,
                        uint64_t seed = 1);

/** @return sum over edges of weight * Manhattan distance. */
double weightedManhattan(const Graph &g, const GridLayout &layout);

/** @return the smallest near-square (width, height) covering n cells. */
std::pair<int, int> gridShape(int n);

} // namespace qsurf::partition

#endif // QSURF_PARTITION_LAYOUT_H
