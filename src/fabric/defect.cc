#include "fabric/defect.h"

#include <algorithm>
#include <cmath>

#include "common/json.h"
#include "common/logging.h"
#include "common/rng.h"

namespace qsurf::fabric {

DefectMap::DefectMap(int width, int height)
    : w(width), h(height)
{
    fatalIf(w < 1 || h < 1, "defect map needs a grid of at least 1x1, "
            "got ", w, "x", h);
    dead_.assign(static_cast<size_t>(w * h), 0);
    hlink_.assign(static_cast<size_t>((w - 1) * h), 0);
    vlink_.assign(static_cast<size_t>(w * (h - 1)), 0);
}

void
DefectMap::killTile(int x, int y)
{
    if (x < 0 || x >= w || y < 0 || y >= h)
        return;
    uint8_t &cell = dead_[static_cast<size_t>(y * w + x)];
    if (!cell) {
        cell = 1;
        ++num_dead;
        dead_prefix_.clear();
    }
}

void
DefectMap::disableLink(const Coord &a, const Coord &b)
{
    fatalIf(manhattan(a, b) != 1,
            "defect-spec link endpoints must be adjacent tiles, got ",
            a, " and ", b);
    const Coord &lo = a < b ? a : b;
    uint8_t *slot = nullptr;
    if (a.y == b.y) {
        if (lo.x < 0 || lo.x >= w - 1 || lo.y < 0 || lo.y >= h)
            return;
        slot = &hlink_[static_cast<size_t>(lo.y * (w - 1) + lo.x)];
    } else {
        if (lo.x < 0 || lo.x >= w || lo.y < 0 || lo.y >= h - 1)
            return;
        slot = &vlink_[static_cast<size_t>(lo.y * w + lo.x)];
    }
    if (!*slot) {
        *slot = 1;
        ++num_disabled;
    }
}

void
DefectMap::addRegion(const DefectRegion &region)
{
    DefectRegion r = region;
    r.x0 = std::max(0, r.x0);
    r.y0 = std::max(0, r.y0);
    r.x1 = std::min(w - 1, r.x1);
    r.y1 = std::min(h - 1, r.y1);
    if (r.x0 > r.x1 || r.y0 > r.y1 || r.multiplier == 1.0)
        return;
    fatalIf(r.multiplier <= 0, "defect-region multiplier must be > 0, "
            "got ", r.multiplier);
    regions_.push_back(r);
}

bool
DefectMap::linkDisabled(const Coord &a, const Coord &b) const
{
    if (empty())
        return false;
    if (manhattan(a, b) != 1)
        return false;
    const Coord &lo = a < b ? a : b;
    if (a.y == b.y) {
        if (lo.x < 0 || lo.x >= w - 1 || lo.y < 0 || lo.y >= h)
            return false;
        return hlink_[static_cast<size_t>(lo.y * (w - 1) + lo.x)] != 0;
    }
    if (lo.x < 0 || lo.x >= w || lo.y < 0 || lo.y >= h - 1)
        return false;
    return vlink_[static_cast<size_t>(lo.y * w + lo.x)] != 0;
}

double
DefectMap::errorMultiplierAt(int x, int y) const
{
    double m = 1.0;
    for (const DefectRegion &r : regions_)
        if (x >= r.x0 && x <= r.x1 && y >= r.y0 && y <= r.y1)
            m *= r.multiplier;
    return m;
}

double
DefectMap::avgErrorMultiplier() const
{
    if (regions_.empty() || w * h == 0)
        return 1.0;
    double sum = 0;
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            sum += errorMultiplierAt(x, y);
    return sum / (w * h);
}

void
DefectMap::buildPrefix() const
{
    auto stride = static_cast<size_t>(w + 1);
    dead_prefix_.assign(stride * static_cast<size_t>(h + 1), 0);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x) {
            size_t at = static_cast<size_t>(y + 1) * stride
                + static_cast<size_t>(x + 1);
            dead_prefix_[at] =
                dead_[static_cast<size_t>(y * w + x)]
                + dead_prefix_[at - 1]
                + dead_prefix_[at - stride]
                - dead_prefix_[at - stride - 1];
        }
}

double
DefectMap::routeExposure(const Coord &a, const Coord &b) const
{
    if (num_dead == 0)
        return 0.0;
    int x0 = std::clamp(std::min(a.x, b.x), 0, w - 1);
    int x1 = std::clamp(std::max(a.x, b.x), 0, w - 1);
    int y0 = std::clamp(std::min(a.y, b.y), 0, h - 1);
    int y1 = std::clamp(std::max(a.y, b.y), 0, h - 1);
    if (dead_prefix_.empty())
        buildPrefix();
    auto stride = static_cast<size_t>(w + 1);
    auto at = [&](int x, int y) {
        return dead_prefix_[static_cast<size_t>(y) * stride
                            + static_cast<size_t>(x)];
    };
    int dead = at(x1 + 1, y1 + 1) - at(x0, y1 + 1) - at(x1 + 1, y0)
        + at(x0, y0);
    int area = (x1 - x0 + 1) * (y1 - y0 + 1);
    return static_cast<double>(dead) / area;
}

std::vector<Coord>
DefectMap::deadTiles() const
{
    std::vector<Coord> out;
    out.reserve(static_cast<size_t>(num_dead));
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            if (deadTile(x, y))
                out.push_back({x, y});
    return out;
}

std::vector<std::pair<Coord, Coord>>
DefectMap::disabledLinks() const
{
    std::vector<std::pair<Coord, Coord>> out;
    out.reserve(static_cast<size_t>(num_disabled));
    for (int y = 0; y < h; ++y)
        for (int x = 0; x + 1 < w; ++x)
            if (hlink_[static_cast<size_t>(y * (w - 1) + x)])
                out.push_back({{x, y}, {x + 1, y}});
    for (int y = 0; y + 1 < h; ++y)
        for (int x = 0; x < w; ++x)
            if (vlink_[static_cast<size_t>(y * w + x)])
                out.push_back({{x, y}, {x, y + 1}});
    return out;
}

DefectMap
DefectMap::generate(int w, int h, double density, uint64_t seed)
{
    fatalIf(density < 0 || density >= 1,
            "defect density must be in [0, 1), got ", density);
    DefectMap map(w, h);
    if (density == 0)
        return map;

    // One draw per tile and per link in a fixed row-major order, so
    // the map is a pure function of (w, h, density, seed) at any
    // call site or thread count.
    Rng rng(seed ^ 0xfab41cdefec70000ull);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            if (rng.chance(density))
                map.killTile(x, y);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x + 1 < w; ++x)
            if (rng.chance(density / 2))
                map.disableLink({x, y}, {x + 1, y});
    for (int y = 0; y + 1 < h; ++y)
        for (int x = 0; x < w; ++x)
            if (rng.chance(density / 2))
                map.disableLink({x, y}, {x, y + 1});

    // One hot region: a random quadrant-sized window whose error
    // rate grows with damage density, so the quality axis moves
    // together with the connectivity axis in yield sweeps.
    int rw = std::max(1, w / 2);
    int rh = std::max(1, h / 2);
    int rx = static_cast<int>(rng.below(
        static_cast<uint64_t>(w - rw + 1)));
    int ry = static_cast<int>(rng.below(
        static_cast<uint64_t>(h - rh + 1)));
    map.addRegion({rx, ry, rx + rw - 1, ry + rh - 1,
                   1.0 + 4.0 * density});
    return map;
}

DefectMap
DefectMap::fromSpec(const std::string &json, int w, int h)
{
    DefectMap map(w, h);
    JsonValue doc = parseJson(json);
    fatalIf(!doc.isObject(), "defect spec is not a JSON object");

    if (const JsonValue *tiles = doc.find("dead_tiles")) {
        fatalIf(!tiles->isArray(),
                "defect spec 'dead_tiles' is not an array");
        for (const JsonValue &t : tiles->items) {
            fatalIf(!t.isArray() || t.items.size() != 2
                        || !t.items[0].isNumber()
                        || !t.items[1].isNumber(),
                    "defect spec dead tile is not an [x, y] pair");
            map.killTile(static_cast<int>(t.items[0].num),
                         static_cast<int>(t.items[1].num));
        }
    }
    if (const JsonValue *links = doc.find("disabled_links")) {
        fatalIf(!links->isArray(),
                "defect spec 'disabled_links' is not an array");
        for (const JsonValue &l : links->items) {
            fatalIf(!l.isArray() || l.items.size() != 4,
                    "defect spec link is not an [x1,y1,x2,y2] tuple");
            for (const JsonValue &v : l.items)
                fatalIf(!v.isNumber(),
                        "defect spec link coordinate is not a number");
            map.disableLink({static_cast<int>(l.items[0].num),
                             static_cast<int>(l.items[1].num)},
                            {static_cast<int>(l.items[2].num),
                             static_cast<int>(l.items[3].num)});
        }
    }
    if (const JsonValue *regions = doc.find("regions")) {
        fatalIf(!regions->isArray(),
                "defect spec 'regions' is not an array");
        for (const JsonValue &r : regions->items) {
            fatalIf(!r.isObject(),
                    "defect spec region is not an object");
            auto coord = [&](const char *key) {
                const JsonValue *v = r.find(key);
                fatalIf(!v || !v->isNumber(), "defect spec region "
                        "field '", key, "' is not a number");
                return static_cast<int>(v->num);
            };
            const JsonValue *mult = r.find("multiplier");
            fatalIf(!mult || !mult->isNumber(),
                    "defect spec region has no numeric 'multiplier'");
            map.addRegion({coord("x0"), coord("y0"), coord("x1"),
                           coord("y1"), mult->num});
        }
    }
    return map;
}

DefectMap
DefectMap::materialize(const DefectParams &p, int w, int h)
{
    if (!p.spec_json.empty())
        return fromSpec(p.spec_json, w, h);
    if (p.density > 0)
        return generate(w, h, p.density, p.seed);
    return DefectMap{};
}

} // namespace qsurf::fabric
