/**
 * @file
 * Fabric defect maps: dead tiles, disabled links and hot regions.
 *
 * All three simulated machines historically assumed a perfect mesh;
 * real superconducting devices do not cooperate (Wu et al.,
 * arXiv:2111.13729; Zhao et al., arXiv:2112.13505 — dead qubits,
 * broken couplers, and error rates varying several-fold across one
 * chip).  A DefectMap makes "which resources exist, and at what
 * quality" explicit data instead of a global invariant:
 *
 *  - dead tiles: the architecture must not place a patch, tile or
 *    factory there, and the router at the tile center (plus its
 *    incident links) is permanently unavailable in the mesh;
 *  - disabled links: the mesh links along the corridor between two
 *    adjacent tiles can never be claimed — corridor routes, lane
 *    bands and BFS detours all route around them;
 *  - regions: rectangular error-rate multipliers feeding the qec
 *    logical-error proxy (hot spots degrade quality, not
 *    connectivity).
 *
 * Maps come from a deterministic seeded generator (keyed by density
 * and seed — the yield sweep's axis) or from an explicit JSON spec
 * describing a measured device.  An empty map is the perfect fabric
 * and costs nothing: every consumer fast-paths on empty(), which is
 * what keeps density-0 results bit-identical to the pre-defect code.
 */

#ifndef QSURF_FABRIC_DEFECT_H
#define QSURF_FABRIC_DEFECT_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/geometry.h"

namespace qsurf::fabric {

/**
 * The defect inputs one run is configured with (RunConfig-level: a
 * recipe, not a materialized map — grids depend on the circuit, so
 * the map is materialized per architecture at prepare time).
 */
struct DefectParams
{
    /** Fraction of tiles knocked out (and half that of links);
     *  0 is the perfect fabric. */
    double density = 0;

    /** Generator seed; maps are a pure function of
     *  (width, height, density, seed). */
    uint64_t seed = 0;

    /**
     * Explicit device spec as JSON text; non-empty overrides the
     * generator.  Format:
     *   {"dead_tiles": [[x, y], ...],
     *    "disabled_links": [[x1, y1, x2, y2], ...],
     *    "regions": [{"x0":.., "y0":.., "x1":.., "y1":..,
     *                 "multiplier":..}, ...]}
     * Link endpoints must be adjacent tile cells.  Entries outside a
     * machine's grid are ignored: a spec describes the device, and a
     * smaller machine occupies the window that fits.
     */
    std::string spec_json;

    /** @return true when any defect input is set. */
    bool
    enabled() const
    {
        return density > 0 || !spec_json.empty();
    }
};

/** A rectangular error-rate multiplier (inclusive tile bounds). */
struct DefectRegion
{
    int x0 = 0;
    int y0 = 0;
    int x1 = 0;
    int y1 = 0;
    double multiplier = 1.0;
};

/**
 * A materialized defect map over a width x height tile grid.  The
 * default-constructed map is empty (the perfect fabric); queries on
 * it all answer "healthy".
 */
class DefectMap
{
  public:
    DefectMap() = default;

    /**
     * Deterministically knock out ~density of the tiles and
     * ~density/2 of the tile-to-tile links of a @p w x @p h grid,
     * and lay one seeded hot region whose error multiplier grows
     * with density.  Pure function of the arguments.
     */
    static DefectMap generate(int w, int h, double density,
                              uint64_t seed);

    /** Parse an explicit JSON spec (see DefectParams::spec_json);
     *  fatal()s on malformed JSON or non-adjacent link endpoints. */
    static DefectMap fromSpec(const std::string &json, int w, int h);

    /** Materialize @p p for a @p w x @p h grid: the spec when set,
     *  else the generator; an empty map when neither. */
    static DefectMap materialize(const DefectParams &p, int w, int h);

    /** @return true when the map has no defects of any kind. */
    bool
    empty() const
    {
        return num_dead == 0 && num_disabled == 0 && regions_.empty();
    }

    int width() const { return w; }
    int height() const { return h; }

    /** @return true when the tile at (x, y) is dead.  Out-of-grid
     *  coordinates are healthy (the map covers only its grid). */
    bool
    deadTile(int x, int y) const
    {
        if (x < 0 || x >= w || y < 0 || y >= h)
            return false;
        return !dead_.empty()
            && dead_[static_cast<size_t>(y * w + x)] != 0;
    }

    /** @return true when the link between adjacent tiles @p a and
     *  @p b is disabled (false off-grid). */
    bool linkDisabled(const Coord &a, const Coord &b) const;

    int numDeadTiles() const { return num_dead; }
    int numDisabledLinks() const { return num_disabled; }

    /** @return dead tiles / total tiles (0 for the empty map). */
    double
    deadFraction() const
    {
        return w * h > 0 ? static_cast<double>(num_dead) / (w * h)
                         : 0.0;
    }

    /** @return the error-rate multiplier at tile (x, y): the product
     *  of every region covering it (1.0 outside all regions). */
    double errorMultiplierAt(int x, int y) const;

    /** @return the grid-average error-rate multiplier (1.0 for the
     *  empty map) — what scales p_physical in the logical-error
     *  proxy. */
    double avgErrorMultiplier() const;

    /**
     * @return the dead-tile fraction of the bounding box spanned by
     * tiles @p a and @p b (inclusive) — the static per-route defect
     * exposure the hybrid arbiter prices corridor schemes with.
     * O(1) via prefix sums; 0 for the empty map.
     */
    double routeExposure(const Coord &a, const Coord &b) const;

    const std::vector<DefectRegion> &regions() const { return regions_; }

    /** Dead tiles in row-major order (heatmap emission). */
    std::vector<Coord> deadTiles() const;

    /** Disabled links as (a, b) adjacent tile pairs, horizontal
     *  first then vertical, in index order. */
    std::vector<std::pair<Coord, Coord>> disabledLinks() const;

    /** Mark the tile at (x, y) dead (idempotent; in-grid only). */
    void killTile(int x, int y);

    /** Disable the link between adjacent tiles @p a and @p b
     *  (idempotent); fatal()s on non-adjacent endpoints, ignores
     *  off-grid ones. */
    void disableLink(const Coord &a, const Coord &b);

    /** Add an error-multiplier region (clamped to the grid). */
    void addRegion(const DefectRegion &region);

  private:
    explicit DefectMap(int w, int h);

    void buildPrefix() const;

    int w = 0;
    int h = 0;
    int num_dead = 0;
    int num_disabled = 0;
    std::vector<uint8_t> dead_;   ///< w*h, row-major.
    std::vector<uint8_t> hlink_;  ///< (w-1)*h disabled +x links.
    std::vector<uint8_t> vlink_;  ///< w*(h-1) disabled +y links.
    std::vector<DefectRegion> regions_;

    /** Lazily built inclusive prefix sums of dead_ for
     *  routeExposure(); (w+1)*(h+1). */
    mutable std::vector<int32_t> dead_prefix_;
};

} // namespace qsurf::fabric

#endif // QSURF_FABRIC_DEFECT_H
