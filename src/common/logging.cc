#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace qsurf {

namespace {

std::atomic<bool> quiet_flag{false};

/**
 * Serializes sink writes so messages from parallel sweep workers
 * never interleave mid-line.
 */
std::mutex &
sinkMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

void
setQuiet(bool q)
{
    quiet_flag.store(q, std::memory_order_relaxed);
}

bool
quiet()
{
    return quiet_flag.load(std::memory_order_relaxed);
}

namespace detail {

void
emit(const char *tag, const std::string &msg)
{
    // fatal/panic always print; status messages honour the quiet flag.
    bool is_error = tag[0] == 'f' || tag[0] == 'p';
    if (quiet() && !is_error)
        return;
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // namespace detail

} // namespace qsurf
