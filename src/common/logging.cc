#include "common/logging.h"

#include <cstdio>

namespace qsurf {

namespace {

bool quiet_flag = false;

} // namespace

void
setQuiet(bool q)
{
    quiet_flag = q;
}

bool
quiet()
{
    return quiet_flag;
}

namespace detail {

void
emit(const char *tag, const std::string &msg)
{
    // fatal/panic always print; status messages honour the quiet flag.
    bool is_error = tag[0] == 'f' || tag[0] == 'p';
    if (quiet_flag && !is_error)
        return;
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // namespace detail

} // namespace qsurf
