#include "common/table.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace qsurf {

void
Table::header(std::vector<std::string> cols)
{
    head = std::move(cols);
}

void
Table::row(std::vector<std::string> cells)
{
    panicIf(!head.empty() && cells.size() != head.size(),
            "table '", caption, "': row width ", cells.size(),
            " != header width ", head.size());
    body.push_back(std::move(cells));
}

std::string
Table::num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4g", v);
    return buf;
}

std::string
Table::fixed(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> width(head.size());
    for (size_t i = 0; i < head.size(); ++i)
        width[i] = head[i].size();
    for (const auto &r : body)
        for (size_t i = 0; i < r.size(); ++i) {
            if (i >= width.size())
                width.resize(i + 1, 0);
            width[i] = std::max(width[i], r[i].size());
        }

    auto emit_row = [&](const std::vector<std::string> &r) {
        os << "  ";
        for (size_t i = 0; i < r.size(); ++i) {
            os << r[i];
            if (i + 1 < r.size())
                os << std::string(width[i] - r[i].size() + 2, ' ');
        }
        os << "\n";
    };

    os << "== " << caption << " ==\n";
    if (!head.empty()) {
        emit_row(head);
        size_t total = 2;
        for (size_t w : width)
            total += w + 2;
        os << "  " << std::string(total, '-') << "\n";
    }
    for (const auto &r : body)
        emit_row(r);
    os << "\n";
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &r) {
        for (size_t i = 0; i < r.size(); ++i) {
            os << r[i];
            if (i + 1 < r.size())
                os << ",";
        }
        os << "\n";
    };
    if (!head.empty())
        emit(head);
    for (const auto &r : body)
        emit(r);
}

} // namespace qsurf
