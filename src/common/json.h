/**
 * @file
 * Minimal streaming JSON writer.  The sweep driver and benches use
 * it to emit machine-readable results (BENCH_*.json) alongside the
 * human-readable tables; it handles commas, nesting, string escaping
 * and round-trippable number formatting so callers never concatenate
 * JSON by hand.
 */

#ifndef QSURF_COMMON_JSON_H
#define QSURF_COMMON_JSON_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace qsurf {

/**
 * Streaming writer producing pretty-printed JSON.  Usage:
 *
 *   JsonWriter j(os);
 *   j.beginObject();
 *   j.field("name", "fig6");
 *   j.key("points"); j.beginArray();
 *   ... j.endArray();
 *   j.endObject();
 *
 * Nesting is tracked; mismatched begin/end panic().
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os(os) {}
    ~JsonWriter();

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit the key of the next value inside an object. */
    void key(const std::string &name);

    void value(const std::string &v);
    void value(const char *v);
    void value(double v);
    void value(int64_t v);
    void value(uint64_t v);
    void value(int v);
    void value(bool v);
    void null();

    /** Shorthand for key() followed by value(). */
    template <typename T>
    void
    field(const std::string &name, const T &v)
    {
        key(name);
        value(v);
    }

    /** Escape and quote @p s as a JSON string literal. */
    static std::string quote(const std::string &s);

    /** Format @p v as a round-trippable JSON number literal. */
    static std::string number(double v);

  private:
    void separate();
    void indent();

    std::ostream &os;
    /** One frame per open container: true = object, false = array. */
    std::vector<bool> stack;
    bool need_comma = false;
    bool after_key = false;
};

} // namespace qsurf

#endif // QSURF_COMMON_JSON_H
