/**
 * @file
 * Minimal streaming JSON writer.  The sweep driver and benches use
 * it to emit machine-readable results (BENCH_*.json) alongside the
 * human-readable tables; it handles commas, nesting, string escaping
 * and round-trippable number formatting so callers never concatenate
 * JSON by hand.
 */

#ifndef QSURF_COMMON_JSON_H
#define QSURF_COMMON_JSON_H

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace qsurf {

/**
 * Streaming writer producing pretty-printed JSON.  Usage:
 *
 *   JsonWriter j(os);
 *   j.beginObject();
 *   j.field("name", "fig6");
 *   j.key("points"); j.beginArray();
 *   ... j.endArray();
 *   j.endObject();
 *
 * Nesting is tracked; mismatched begin/end panic().
 */
class JsonWriter
{
  public:
    /** @p compact drops all newlines and indentation (", " key
     *  separators stay), producing one-line documents — the sweep
     *  row stream and wire frames use it so one record is one
     *  flushable line. */
    explicit JsonWriter(std::ostream &os, bool compact = false)
        : os(os), compact(compact)
    {
    }
    ~JsonWriter();

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit the key of the next value inside an object. */
    void key(const std::string &name);

    void value(const std::string &v);
    void value(const char *v);
    void value(double v);
    void value(int64_t v);
    void value(uint64_t v);
    void value(int v);
    void value(bool v);
    void null();

    /** Shorthand for key() followed by value(). */
    template <typename T>
    void
    field(const std::string &name, const T &v)
    {
        key(name);
        value(v);
    }

    /** Escape and quote @p s as a JSON string literal. */
    static std::string quote(const std::string &s);

    /** Format @p v as a round-trippable JSON number literal. */
    static std::string number(double v);

  private:
    void separate();
    void indent();

    std::ostream &os;
    bool compact;
    /** One frame per open container: true = object, false = array. */
    std::vector<bool> stack;
    bool need_comma = false;
    bool after_key = false;
};

/**
 * A parsed JSON document node.  The parser exists so tools can read
 * back what the writers emit — the obs_check schema validator and
 * round-trip tests — not as a general-purpose JSON library: object
 * members keep insertion order, duplicate keys keep the last value.
 */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double num = 0;
    std::string str;
    std::vector<JsonValue> items; ///< Array elements.
    std::vector<std::pair<std::string, JsonValue>> members;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** @return the member named @p key, or null when absent (or when
     *  this is not an object). */
    const JsonValue *find(const std::string &key) const;
};

/**
 * Parse @p text as one JSON document (trailing whitespace allowed,
 * trailing content not).  Syntax errors fatal() with a line/column
 * description.
 */
JsonValue parseJson(const std::string &text);

} // namespace qsurf

#endif // QSURF_COMMON_JSON_H
