#include "common/json.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace qsurf {

JsonWriter::~JsonWriter()
{
    // Unclosed containers are a caller bug, but destructors must not
    // throw; emit a warning instead of panicking.
    if (!stack.empty())
        warn("JsonWriter destroyed with ", stack.size(),
             " unclosed container(s)");
}

std::string
JsonWriter::quote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::string
JsonWriter::number(double v)
{
    // JSON has no Inf/NaN literals; map them to null.
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    // Shortest representation that round-trips a double.
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    double parsed = 0;
    for (int prec = 1; prec < 17; ++prec) {
        char shorter[40];
        std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
        std::sscanf(shorter, "%lf", &parsed);
        if (parsed == v)
            return shorter;
    }
    return buf;
}

void
JsonWriter::separate()
{
    if (after_key) {
        after_key = false;
        return;
    }
    if (need_comma)
        os << ",";
    if (!stack.empty()) {
        os << "\n";
        indent();
    }
}

void
JsonWriter::indent()
{
    for (size_t i = 0; i < stack.size(); ++i)
        os << "  ";
}

void
JsonWriter::beginObject()
{
    separate();
    os << "{";
    stack.push_back(true);
    need_comma = false;
}

void
JsonWriter::endObject()
{
    panicIf(stack.empty() || !stack.back(),
            "endObject() without a matching beginObject()");
    stack.pop_back();
    os << "\n";
    indent();
    os << "}";
    need_comma = true;
}

void
JsonWriter::beginArray()
{
    separate();
    os << "[";
    stack.push_back(false);
    need_comma = false;
}

void
JsonWriter::endArray()
{
    panicIf(stack.empty() || stack.back(),
            "endArray() without a matching beginArray()");
    stack.pop_back();
    os << "\n";
    indent();
    os << "]";
    need_comma = true;
}

void
JsonWriter::key(const std::string &name)
{
    panicIf(stack.empty() || !stack.back(),
            "key() outside of an object");
    separate();
    os << quote(name) << ": ";
    need_comma = false;
    after_key = true;
}

void
JsonWriter::value(const std::string &v)
{
    separate();
    os << quote(v);
    need_comma = true;
}

void
JsonWriter::value(const char *v)
{
    value(std::string(v));
}

void
JsonWriter::value(double v)
{
    separate();
    os << number(v);
    need_comma = true;
}

void
JsonWriter::value(int64_t v)
{
    separate();
    os << v;
    need_comma = true;
}

void
JsonWriter::value(uint64_t v)
{
    separate();
    os << v;
    need_comma = true;
}

void
JsonWriter::value(int v)
{
    value(static_cast<int64_t>(v));
}

void
JsonWriter::value(bool v)
{
    separate();
    os << (v ? "true" : "false");
    need_comma = true;
}

void
JsonWriter::null()
{
    separate();
    os << "null";
    need_comma = true;
}

} // namespace qsurf
