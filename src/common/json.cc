#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace qsurf {

JsonWriter::~JsonWriter()
{
    // Unclosed containers are a caller bug, but destructors must not
    // throw; emit a warning instead of panicking.
    if (!stack.empty())
        warn("JsonWriter destroyed with ", stack.size(),
             " unclosed container(s)");
}

std::string
JsonWriter::quote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::string
JsonWriter::number(double v)
{
    // JSON has no Inf/NaN literals; map them to null.
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    // Shortest representation that round-trips a double.
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    double parsed = 0;
    for (int prec = 1; prec < 17; ++prec) {
        char shorter[40];
        std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
        std::sscanf(shorter, "%lf", &parsed);
        if (parsed == v)
            return shorter;
    }
    return buf;
}

void
JsonWriter::separate()
{
    if (after_key) {
        after_key = false;
        return;
    }
    if (need_comma)
        os << ",";
    if (!stack.empty() && !compact) {
        os << "\n";
        indent();
    }
}

void
JsonWriter::indent()
{
    for (size_t i = 0; i < stack.size(); ++i)
        os << "  ";
}

void
JsonWriter::beginObject()
{
    separate();
    os << "{";
    stack.push_back(true);
    need_comma = false;
}

void
JsonWriter::endObject()
{
    panicIf(stack.empty() || !stack.back(),
            "endObject() without a matching beginObject()");
    stack.pop_back();
    if (!compact) {
        os << "\n";
        indent();
    }
    os << "}";
    need_comma = true;
}

void
JsonWriter::beginArray()
{
    separate();
    os << "[";
    stack.push_back(false);
    need_comma = false;
}

void
JsonWriter::endArray()
{
    panicIf(stack.empty() || stack.back(),
            "endArray() without a matching beginArray()");
    stack.pop_back();
    if (!compact) {
        os << "\n";
        indent();
    }
    os << "]";
    need_comma = true;
}

void
JsonWriter::key(const std::string &name)
{
    panicIf(stack.empty() || !stack.back(),
            "key() outside of an object");
    separate();
    os << quote(name) << ": ";
    need_comma = false;
    after_key = true;
}

void
JsonWriter::value(const std::string &v)
{
    separate();
    os << quote(v);
    need_comma = true;
}

void
JsonWriter::value(const char *v)
{
    value(std::string(v));
}

void
JsonWriter::value(double v)
{
    separate();
    os << number(v);
    need_comma = true;
}

void
JsonWriter::value(int64_t v)
{
    separate();
    os << v;
    need_comma = true;
}

void
JsonWriter::value(uint64_t v)
{
    separate();
    os << v;
    need_comma = true;
}

void
JsonWriter::value(int v)
{
    value(static_cast<int64_t>(v));
}

void
JsonWriter::value(bool v)
{
    separate();
    os << (v ? "true" : "false");
    need_comma = true;
}

void
JsonWriter::null()
{
    separate();
    os << "null";
    need_comma = true;
}

// --------------------------------------------------------------- parser

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    // Last value wins on duplicate keys, matching what a rewriting
    // producer would have meant.
    const JsonValue *found = nullptr;
    for (const auto &[name, value] : members)
        if (name == key)
            found = &value;
    return found;
}

namespace {

/** Recursive-descent parser over the whole input string. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text(text) {}

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos != text.size())
            fatal("json: trailing content at ", where());
        return v;
    }

  private:
    // where() rescans the input to locate pos, so every call below
    // guards it behind its failure condition (never pass it to the
    // eager fatalIf) — otherwise each token pays a scan and parsing
    // goes quadratic.
    std::string
    where() const
    {
        size_t line = 1;
        size_t col = 1;
        for (size_t i = 0; i < pos && i < text.size(); ++i) {
            if (text[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        return "line " + std::to_string(line) + ", column "
            + std::to_string(col);
    }

    void
    skipWs()
    {
        while (pos < text.size()
               && (text[pos] == ' ' || text[pos] == '\t'
                   || text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        fatalIf(pos >= text.size(),
                "json: unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (pos >= text.size() || text[pos] != c)
            fatal("json: expected '", std::string(1, c), "' at ",
                  where());
        ++pos;
    }

    bool
    consumeLiteral(const char *lit)
    {
        size_t n = std::strlen(lit);
        if (text.compare(pos, n, lit) != 0)
            return false;
        pos += n;
        return true;
    }

    JsonValue
    parseValue()
    {
        skipWs();
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"': {
            JsonValue v;
            v.kind = JsonValue::Kind::String;
            v.str = parseString();
            return v;
          }
          case 't': {
            if (!consumeLiteral("true"))
                fatal("json: bad literal at ", where());
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            v.boolean = true;
            return v;
          }
          case 'f': {
            if (!consumeLiteral("false"))
                fatal("json: bad literal at ", where());
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            return v;
          }
          case 'n':
            if (!consumeLiteral("null"))
                fatal("json: bad literal at ", where());
            return JsonValue{};
          default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        skipWs();
        if (peek() == '}') {
            ++pos;
            return v;
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            v.members.emplace_back(std::move(key), parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        skipWs();
        if (peek() == ']') {
            ++pos;
            return v;
        }
        for (;;) {
            v.items.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            fatalIf(pos >= text.size(),
                    "json: unterminated string");
            char c = text[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                if (static_cast<unsigned char>(c) < 0x20)
                    fatal("json: raw control character in string "
                          "at ",
                          where());
                out += c;
                continue;
            }
            fatalIf(pos >= text.size(),
                    "json: unterminated escape");
            char esc = text[pos++];
            switch (esc) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                if (pos + 4 > text.size())
                    fatal("json: truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fatal("json: bad \\u escape at ", where());
                }
                // UTF-8 encode; the writers only emit \u00xx but
                // hand-written inputs may carry the full BMP.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80
                                             | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                fatal("json: bad escape '\\",
                      std::string(1, esc), "' at ", where());
            }
        }
    }

    JsonValue
    parseNumber()
    {
        size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        while (pos < text.size()
               && (std::isdigit(
                       static_cast<unsigned char>(text[pos]))
                   || text[pos] == '.' || text[pos] == 'e'
                   || text[pos] == 'E' || text[pos] == '+'
                   || text[pos] == '-'))
            ++pos;
        if (pos == start)
            fatal("json: unexpected character '",
                  std::string(1, text[start]), "' at ", where());
        std::string lit = text.substr(start, pos - start);
        char *end = nullptr;
        double v = std::strtod(lit.c_str(), &end);
        if (end != lit.c_str() + lit.size())
            fatal("json: bad number '", lit, "' at ", where());
        JsonValue out;
        out.kind = JsonValue::Kind::Number;
        out.num = v;
        return out;
    }

    const std::string &text;
    size_t pos = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

} // namespace qsurf
