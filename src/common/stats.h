/**
 * @file
 * Streaming statistics accumulators used by the simulators to report
 * utilization, latency and queue-depth distributions.
 */

#ifndef QSURF_COMMON_STATS_H
#define QSURF_COMMON_STATS_H

#include <cstdint>
#include <string>
#include <vector>

namespace qsurf {

/**
 * Single-pass accumulator for mean/min/max/variance (Welford's
 * algorithm, numerically stable).
 */
class Accumulator
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const Accumulator &other);

    /** @return number of samples added so far. */
    uint64_t count() const { return n; }

    /** @return sum of all samples. */
    double sum() const { return total; }

    /** @return sample mean, or 0 when empty. */
    double mean() const { return n ? total / static_cast<double>(n) : 0; }

    /** @return unbiased sample variance, or 0 with < 2 samples. */
    double variance() const;

    /** @return sample standard deviation. */
    double stddev() const;

    /** @return smallest sample, or +inf when empty. */
    double min() const { return lo; }

    /** @return largest sample, or -inf when empty. */
    double max() const { return hi; }

  private:
    uint64_t n = 0;
    double total = 0;
    double mu = 0;
    double m2 = 0;
    double lo = 1e300;
    double hi = -1e300;
};

/**
 * Fixed-bin histogram over [lo, hi); samples outside the range land in
 * saturating edge bins.
 */
class Histogram
{
  public:
    /**
     * @param lo    inclusive lower bound of the first bin.
     * @param hi    exclusive upper bound of the last bin.
     * @param bins  number of equal-width bins; must be >= 1.
     */
    Histogram(double lo, double hi, int bins);

    /** Add one sample. */
    void add(double x);

    /** @return count in bin @p i. */
    uint64_t binCount(int i) const { return counts.at(i); }

    /** @return inclusive lower edge of bin @p i. */
    double binLow(int i) const;

    /** @return number of bins. */
    int bins() const { return static_cast<int>(counts.size()); }

    /** @return total samples. */
    uint64_t count() const { return n; }

    /** @return x such that roughly fraction @p q of samples are below. */
    double quantile(double q) const;

    /** Render as a compact single-line summary for logs. */
    std::string summary() const;

  private:
    double lo;
    double hi;
    std::vector<uint64_t> counts;
    uint64_t n = 0;
};

} // namespace qsurf

#endif // QSURF_COMMON_STATS_H
