/**
 * @file
 * Monotonic bump arena for per-request / per-point scratch memory.
 *
 * The compile service and the sweep driver execute a stream of
 * independent work units, each of which needs transient scratch
 * (BFS working sets, JSON row assembly, frame buffers) that dies
 * with the unit.  An Arena turns those many small heap allocations
 * into pointer bumps inside a few large blocks: the owner resets the
 * arena between units, so steady state allocates nothing from the
 * global heap at all.  checkpoint()/rewind() give nested scopes
 * (e.g. per-request rewinds inside a per-batch reset), and the
 * allocation counters feed the bench A/B rows that keep the
 * allocation story honest (BENCH_scaleout.json, BENCH_perf.json).
 *
 * Arenas are single-threaded by design: each worker thread owns one.
 * The thread-local scratch binding (Arena::scratch() / Arena::Scope)
 * is how deep callees — BfsScratch, the row writer — find the
 * current unit's arena without plumbing a pointer through every
 * signature; code using it must fall back to the heap when no arena
 * is bound, and never changes *results* either way.
 */

#ifndef QSURF_COMMON_ARENA_H
#define QSURF_COMMON_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <streambuf>
#include <string>
#include <vector>

namespace qsurf {

/** A monotonic bump allocator with checkpoint/rewind and counters. */
class Arena
{
  public:
    /** Counter snapshot; all values are cumulative since
     *  construction (rewind/reset never roll them back). */
    struct Stats
    {
        uint64_t allocations = 0; ///< alloc() calls served.
        uint64_t bytes = 0;       ///< Bytes handed out (pre-align).
        uint64_t reserved = 0;    ///< Capacity of all blocks.
        uint64_t blocks = 0;      ///< Blocks currently owned.
        uint64_t resets = 0;      ///< reset() calls.
    };

    /** A position to rewind() to; valid until the next reset(). */
    struct Checkpoint
    {
        size_t block = 0;
        size_t used = 0;
    };

    explicit Arena(size_t first_block_bytes = 64 * 1024);
    ~Arena();

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * @return @p size bytes aligned to @p align (a power of two no
     * larger than alignof(std::max_align_t)).  Never returns null;
     * grows by doubling blocks when the current block is full.
     * size 0 returns a valid one-past pointer.
     */
    void *alloc(size_t size,
                size_t align = alignof(std::max_align_t));

    /** Typed array convenience; elements are NOT constructed. */
    template <typename T>
    T *
    allocArray(size_t n)
    {
        return static_cast<T *>(alloc(n * sizeof(T), alignof(T)));
    }

    /** @return the current position, for a later rewind(). */
    Checkpoint checkpoint() const;

    /**
     * Roll the bump pointer back to @p cp; memory handed out after
     * the checkpoint is reusable (and must no longer be referenced).
     * Counters are cumulative and keep their values.
     */
    void rewind(const Checkpoint &cp);

    /**
     * Rewind to empty and coalesce: when more than one block exists,
     * all are released and replaced by a single block sized to the
     * total, so a steady-state owner reaches one block and then
     * never touches the global heap again.  Invalidates outstanding
     * checkpoints and bumps generation().
     */
    void reset();

    /** @return cumulative counters. */
    Stats stats() const;

    /**
     * Monotone counter bumped by every reset().  Scratch owners that
     * cache arena-backed buffers (BfsScratch) compare it to detect
     * that their memory was recycled and must be re-acquired.
     */
    uint64_t generation() const { return generation_; }

    /** @return bytes still free in the current block (test hook). */
    size_t headroom() const;

    /** @return the calling thread's bound scratch arena, or null. */
    static Arena *scratch();

    /**
     * RAII binding of @p arena as the calling thread's scratch for
     * the scope's lifetime; restores the previous binding on exit.
     * Passing null is allowed and masks any outer binding.
     */
    class Scope
    {
      public:
        explicit Scope(Arena *arena);
        ~Scope();

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        Arena *prev;
    };

  private:
    struct Block
    {
        std::unique_ptr<char[]> data;
        size_t capacity = 0;
        size_t used = 0;
    };

    /** Make block @p need_bytes available; appends a new block. */
    void grow(size_t need_bytes);

    std::vector<Block> blocks_;
    size_t current_ = 0; ///< Index of the block being bumped.
    size_t first_block_bytes_;
    uint64_t allocations_ = 0;
    uint64_t bytes_ = 0;
    uint64_t resets_ = 0;
    uint64_t generation_ = 0;
};

/**
 * A growable output buffer (std::streambuf) whose storage comes from
 * the bound scratch arena — or the heap when none is bound.  The
 * sweep driver assembles each streamed JSON result row into one of
 * these, so row assembly costs zero heap allocations in steady
 * state.  The buffer is only valid while its arena memory is (i.e.
 * until the owner's reset()).
 */
class ArenaStreamBuf : public std::streambuf
{
  public:
    explicit ArenaStreamBuf(size_t initial_capacity = 1024);
    ~ArenaStreamBuf() override;

    ArenaStreamBuf(const ArenaStreamBuf &) = delete;
    ArenaStreamBuf &operator=(const ArenaStreamBuf &) = delete;

    /** @return the bytes written so far. */
    const char *data() const { return pbase(); }
    size_t size() const
    {
        return static_cast<size_t>(pptr() - pbase());
    }

    /** @return a copy of the contents as a std::string. */
    std::string str() const { return {data(), size()}; }

    /** Discard the contents, keeping the storage. */
    void clear() { setp(pbase(), epptr()); }

  protected:
    int_type overflow(int_type ch) override;

  private:
    void growTo(size_t capacity);

    Arena *arena_; ///< Bound at construction; null = heap-backed.
    std::unique_ptr<char[]> heap_;
};

/**
 * Minimal STL allocator over an Arena.  When bound to an arena,
 * deallocate is a no-op (the arena reclaims in bulk at
 * rewind/reset) and the container must not outlive the arena
 * position it was built at.  The default constructor captures the
 * calling thread's scratch binding (Arena::scratch()) at that
 * moment — or the global heap when none is bound — which is how
 * run-scoped simulator containers (ready queues, per-run scratch)
 * become arena-backed inside a sweep worker and stay plain heap
 * containers everywhere else, with identical results either way.
 */
template <typename T>
class ArenaAllocator
{
  public:
    using value_type = T;

    /** Capture the thread's scratch arena (null => heap-backed). */
    ArenaAllocator() : arena_(Arena::scratch()) {}

    explicit ArenaAllocator(Arena &arena) : arena_(&arena) {}

    template <typename U>
    ArenaAllocator(const ArenaAllocator<U> &other)
        : arena_(other.arena())
    {
    }

    T *
    allocate(size_t n)
    {
        if (arena_)
            return arena_->allocArray<T>(n);
        return static_cast<T *>(::operator new(n * sizeof(T)));
    }

    void
    deallocate(T *p, size_t) noexcept
    {
        if (!arena_)
            ::operator delete(p);
    }

    Arena *arena() const { return arena_; }

    template <typename U>
    bool
    operator==(const ArenaAllocator<U> &other) const
    {
        return arena_ == other.arena();
    }

  private:
    Arena *arena_;
};

} // namespace qsurf

#endif // QSURF_COMMON_ARENA_H
