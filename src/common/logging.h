/**
 * @file
 * Status-message and error-reporting helpers in the gem5 idiom.
 *
 * Severity contract (mirrors gem5's base/logging.hh):
 *  - inform(): status the user should know about, nothing is wrong.
 *  - warn():   something is off but the run can continue.
 *  - fatal():  the run cannot continue because of a *user* error
 *              (bad configuration, malformed input).  Throws
 *              FatalError so tests can assert on it.
 *  - panic():  an internal invariant was violated — a qsurf bug.
 *              Throws PanicError.
 *
 * The sink is thread-safe: writes are mutex-serialized so messages
 * from parallel sweep workers never interleave mid-line, and the
 * quiet flag is atomic.
 */

#ifndef QSURF_COMMON_LOGGING_H
#define QSURF_COMMON_LOGGING_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace qsurf {

/** Error thrown by fatal(): a user-correctable condition. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg) {}
};

/** Error thrown by panic(): an internal invariant violation. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg) {}
};

namespace detail {

/** Fold a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

void emit(const char *tag, const std::string &msg);

} // namespace detail

/** Print an informational status message to stderr. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emit("info", detail::concat(std::forward<Args>(args)...));
}

/** Print a warning to stderr; execution continues. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emit("warn", detail::concat(std::forward<Args>(args)...));
}

/**
 * Abort the current operation due to a user error.
 *
 * @throws FatalError always.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::string msg = detail::concat(std::forward<Args>(args)...);
    detail::emit("fatal", msg);
    throw FatalError(msg);
}

/**
 * Abort because an internal invariant does not hold (a qsurf bug).
 *
 * @throws PanicError always.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::string msg = detail::concat(std::forward<Args>(args)...);
    detail::emit("panic", msg);
    throw PanicError(msg);
}

/** fatal() unless @p cond holds. */
template <typename Cond, typename... Args>
void
fatalIf(const Cond &cond, Args &&...args)
{
    if (cond)
        fatal(std::forward<Args>(args)...);
}

/** panic() unless @p cond holds. */
template <typename Cond, typename... Args>
void
panicIf(const Cond &cond, Args &&...args)
{
    if (cond)
        panic(std::forward<Args>(args)...);
}

/** Globally silence inform()/warn() output (benches set this). */
void setQuiet(bool quiet);

/** @return true when inform()/warn() output is suppressed. */
bool quiet();

} // namespace qsurf

#endif // QSURF_COMMON_LOGGING_H
