/**
 * @file
 * A small-size-optimized vector for trivially copyable elements.
 *
 * Routing paths on the mesh are short (a handful of routers) but are
 * built, copied and destroyed on every placement attempt of every
 * simulated cycle; backing them with std::vector makes the route
 * hot path allocation-bound.  SmallVector keeps up to N elements in
 * inline storage and only touches the heap for the rare long route,
 * so the common claim/release cycle never allocates.
 */

#ifndef QSURF_COMMON_SMALL_VECTOR_H
#define QSURF_COMMON_SMALL_VECTOR_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <new>
#include <type_traits>
#include <utility>

namespace qsurf {

template <typename T, size_t N>
class SmallVector
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "SmallVector is specialized for trivially copyable "
                  "elements (memcpy growth, no destructor calls)");
    static_assert(N > 0, "inline capacity must be non-zero");

  public:
    using value_type = T;
    using iterator = T *;
    using const_iterator = const T *;

    SmallVector() = default;

    SmallVector(std::initializer_list<T> init)
    {
        for (const T &v : init)
            push_back(v);
    }

    SmallVector(const SmallVector &other) { copyFrom(other); }

    SmallVector(SmallVector &&other) noexcept { moveFrom(other); }

    SmallVector &
    operator=(const SmallVector &other)
    {
        if (this != &other) {
            size_ = 0;
            copyFrom(other);
        }
        return *this;
    }

    SmallVector &
    operator=(SmallVector &&other) noexcept
    {
        if (this != &other) {
            freeHeap();
            moveFrom(other);
        }
        return *this;
    }

    ~SmallVector() { freeHeap(); }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    size_t capacity() const { return capacity_; }

    T *data() { return data_; }
    const T *data() const { return data_; }

    iterator begin() { return data_; }
    iterator end() { return data_ + size_; }
    const_iterator begin() const { return data_; }
    const_iterator end() const { return data_ + size_; }

    T &operator[](size_t i) { return data_[i]; }
    const T &operator[](size_t i) const { return data_[i]; }

    T &front() { return data_[0]; }
    const T &front() const { return data_[0]; }
    T &back() { return data_[size_ - 1]; }
    const T &back() const { return data_[size_ - 1]; }

    void clear() { size_ = 0; }

    void
    reserve(size_t n)
    {
        if (n > capacity_)
            grow(n);
    }

    void
    push_back(const T &v)
    {
        if (size_ == capacity_) {
            // Copy first: v may alias an element of this vector,
            // and grow() frees the old buffer.
            T detached = v;
            grow(capacity_ * 2);
            data_[size_++] = detached;
            return;
        }
        data_[size_++] = v;
    }

    void pop_back() { --size_; }

    friend bool
    operator==(const SmallVector &a, const SmallVector &b)
    {
        return a.size_ == b.size_
            && std::equal(a.begin(), a.end(), b.begin());
    }

  private:
    bool onHeap() const { return data_ != inline_; }

    void
    freeHeap()
    {
        if (onHeap())
            ::operator delete(data_);
    }

    void
    copyFrom(const SmallVector &other)
    {
        reserve(other.size_);
        std::memcpy(static_cast<void *>(data_), other.data_,
                    other.size_ * sizeof(T));
        size_ = other.size_;
    }

    /** Steal @p other's heap buffer (or copy its inline one), then
     *  reset it to the empty inline state. */
    void
    moveFrom(SmallVector &other) noexcept
    {
        if (other.onHeap()) {
            data_ = other.data_;
            capacity_ = other.capacity_;
            size_ = other.size_;
        } else {
            data_ = inline_;
            capacity_ = N;
            size_ = other.size_;
            std::memcpy(static_cast<void *>(inline_), other.inline_,
                        other.size_ * sizeof(T));
        }
        other.data_ = other.inline_;
        other.capacity_ = N;
        other.size_ = 0;
    }

    void
    grow(size_t n)
    {
        size_t cap = std::max(n, capacity_ * 2);
        T *fresh = static_cast<T *>(::operator new(cap * sizeof(T)));
        std::memcpy(static_cast<void *>(fresh), data_,
                    size_ * sizeof(T));
        freeHeap();
        data_ = fresh;
        capacity_ = cap;
    }

    T inline_[N];
    T *data_ = inline_;
    size_t size_ = 0;
    size_t capacity_ = N;
};

} // namespace qsurf

#endif // QSURF_COMMON_SMALL_VECTOR_H
