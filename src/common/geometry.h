/**
 * @file
 * Small 2-D integer geometry helpers shared by the layout, network and
 * braid modules.  Tiles and routers both live on integer grids.
 */

#ifndef QSURF_COMMON_GEOMETRY_H
#define QSURF_COMMON_GEOMETRY_H

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <ostream>

namespace qsurf {

/** An (x, y) position on an integer grid. */
struct Coord
{
    int x = 0;
    int y = 0;

    friend bool operator==(const Coord &a, const Coord &b) = default;
    friend auto operator<=>(const Coord &a, const Coord &b) = default;
};

/** @return the Manhattan (L1) distance between two grid points. */
inline int
manhattan(const Coord &a, const Coord &b)
{
    return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/** @return the Chebyshev (L-infinity) distance between two points. */
inline int
chebyshev(const Coord &a, const Coord &b)
{
    return std::max(std::abs(a.x - b.x), std::abs(a.y - b.y));
}

inline std::ostream &
operator<<(std::ostream &os, const Coord &c)
{
    return os << "(" << c.x << "," << c.y << ")";
}

/**
 * Row-major linearization of a grid coordinate.
 *
 * @param c     the coordinate; must satisfy 0 <= c.x < width.
 * @param width grid width in columns.
 */
inline int
linearIndex(const Coord &c, int width)
{
    return c.y * width + c.x;
}

/** Inverse of linearIndex(). */
inline Coord
fromLinearIndex(int index, int width)
{
    return Coord{index % width, index / width};
}

} // namespace qsurf

template <>
struct std::hash<qsurf::Coord>
{
    size_t
    operator()(const qsurf::Coord &c) const noexcept
    {
        // Knuth multiplicative mix of the two 32-bit halves.
        uint64_t k = (static_cast<uint64_t>(static_cast<uint32_t>(c.x))
                      << 32)
                     | static_cast<uint32_t>(c.y);
        return static_cast<size_t>(k * 0x9e3779b97f4a7c15ULL);
    }
};

#endif // QSURF_COMMON_GEOMETRY_H
