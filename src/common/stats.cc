#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace qsurf {

void
Accumulator::add(double x)
{
    ++n;
    total += x;
    double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
}

void
Accumulator::merge(const Accumulator &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    // Chan et al. parallel variance combination.
    uint64_t na = n, nb = other.n;
    double delta = other.mu - mu;
    uint64_t nt = na + nb;
    mu += delta * static_cast<double>(nb) / static_cast<double>(nt);
    m2 += other.m2 + delta * delta
        * static_cast<double>(na) * static_cast<double>(nb)
        / static_cast<double>(nt);
    n = nt;
    total += other.total;
    lo = std::min(lo, other.lo);
    hi = std::max(hi, other.hi);
}

double
Accumulator::variance() const
{
    if (n < 2)
        return 0;
    return m2 / static_cast<double>(n - 1);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo_, double hi_, int bins_)
    : lo(lo_), hi(hi_)
{
    fatalIf(bins_ < 1, "histogram needs at least 1 bin, got ", bins_);
    fatalIf(hi_ <= lo_, "histogram range is empty: [", lo_, ",", hi_, ")");
    counts.assign(static_cast<size_t>(bins_), 0);
}

void
Histogram::add(double x)
{
    ++n;
    double w = (hi - lo) / static_cast<double>(counts.size());
    auto bin = static_cast<long>(std::floor((x - lo) / w));
    bin = std::clamp<long>(bin, 0, static_cast<long>(counts.size()) - 1);
    ++counts[static_cast<size_t>(bin)];
}

double
Histogram::binLow(int i) const
{
    double w = (hi - lo) / static_cast<double>(counts.size());
    return lo + w * i;
}

double
Histogram::quantile(double q) const
{
    if (n == 0)
        return lo;
    q = std::clamp(q, 0.0, 1.0);
    auto target = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(n)));
    target = std::max<uint64_t>(target, 1);
    uint64_t seen = 0;
    for (int i = 0; i < bins(); ++i) {
        seen += counts[static_cast<size_t>(i)];
        if (seen >= target)
            return binLow(i);
    }
    return hi;
}

std::string
Histogram::summary() const
{
    std::ostringstream os;
    os << "n=" << n << " p50=" << quantile(0.5) << " p90=" << quantile(0.9)
       << " p99=" << quantile(0.99);
    return os.str();
}

} // namespace qsurf
