/**
 * @file
 * Minimal tabular report writer.  Benches use this to print the same
 * rows/series the paper's tables and figures report, in both aligned
 * ASCII (for humans) and CSV (for replotting).
 */

#ifndef QSURF_COMMON_TABLE_H
#define QSURF_COMMON_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace qsurf {

/** A column-aligned table with a title and header row. */
class Table
{
  public:
    /** @param title caption printed above the table. */
    explicit Table(std::string title) : caption(std::move(title)) {}

    /** Set the header row; resets column count. */
    void header(std::vector<std::string> cols);

    /** Append one data row; must match the header width. */
    void row(std::vector<std::string> cells);

    /** Convenience: format arbitrary streamable cells into a row. */
    template <typename... Cells>
    void
    addRow(const Cells &...cells)
    {
        row({formatCell(cells)...});
    }

    /** Render as aligned ASCII. */
    void print(std::ostream &os) const;

    /** Render as CSV (header + rows, no caption). */
    void printCsv(std::ostream &os) const;

    /** @return number of data rows. */
    size_t rows() const { return body.size(); }

    /** Format a double with trailing-zero trimming, like "%.4g". */
    static std::string num(double v);

    /** Format a double with fixed precision. */
    static std::string fixed(double v, int digits);

  private:
    template <typename T>
    static std::string formatCell(const T &v);

    std::string caption;
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> body;
};

template <typename T>
std::string
Table::formatCell(const T &v)
{
    if constexpr (std::is_same_v<T, std::string>) {
        return v;
    } else if constexpr (std::is_convertible_v<T, const char *>) {
        return std::string(v);
    } else if constexpr (std::is_floating_point_v<T>) {
        return num(static_cast<double>(v));
    } else {
        return std::to_string(v);
    }
}

} // namespace qsurf

#endif // QSURF_COMMON_TABLE_H
