/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic choices in qsurf (tie-breaking, synthetic workload
 * generation, partitioner restarts) draw from this xoshiro256**
 * generator so that every run is reproducible from a seed.
 */

#ifndef QSURF_COMMON_RNG_H
#define QSURF_COMMON_RNG_H

#include <cstdint>

namespace qsurf {

/**
 * xoshiro256** 1.0 by Blackman & Vigna (public domain), seeded via
 * splitmix64.  Deterministic across platforms, unlike std::mt19937
 * paired with std::uniform_int_distribution.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded with splitmix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        uint64_t x = seed;
        for (auto &word : state)
            word = splitmix64(x);
    }

    /** @return the next raw 64-bit draw. */
    uint64_t
    next()
    {
        uint64_t result = rotl(state[1] * 5, 7) * 9;
        uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** @return near-uniform integer in [0, bound) via multiply-shift
     *  reduction (NOT exactly uniform; see below). */
    uint64_t
    below(uint64_t bound)
    {
        if (bound == 0)
            return 0;
        // Plain multiply-shift reduction — Lemire's method *without*
        // the rejection loop, so draws carry a bias of at most
        // bound / 2^64.  That is negligible for the small bounds used
        // here, but it is not the unbiased guarantee a rejection loop
        // would give; adding one now would change every seeded draw
        // and invalidate the pinned goldens.
        return static_cast<uint64_t>(
            (static_cast<__uint128_t>(next()) * bound) >> 64);
    }

    /** @return uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
            below(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** @return uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return true with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static uint64_t
    splitmix64(uint64_t &x)
    {
        uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    uint64_t state[4];
};

} // namespace qsurf

#endif // QSURF_COMMON_RNG_H
