#include "common/arena.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace qsurf {

namespace {

thread_local Arena *t_scratch = nullptr;

} // namespace

Arena::Arena(size_t first_block_bytes)
    : first_block_bytes_(std::max<size_t>(first_block_bytes, 64))
{
}

Arena::~Arena() = default;

void *
Arena::alloc(size_t size, size_t align)
{
    panicIf(align == 0 || (align & (align - 1)) != 0,
            "arena alignment must be a power of two, got ", align);
    panicIf(align > alignof(std::max_align_t),
            "arena over-aligned allocation (align ", align,
            ") is not supported");
    ++allocations_;
    bytes_ += size;
    for (;;) {
        if (current_ < blocks_.size()) {
            Block &b = blocks_[current_];
            size_t aligned = (b.used + align - 1) & ~(align - 1);
            if (aligned + size <= b.capacity) {
                b.used = aligned + size;
                return b.data.get() + aligned;
            }
            // Try the next existing block (rewound ones are empty);
            // append a new one only past the last.
            if (current_ + 1 < blocks_.size()) {
                ++current_;
                continue;
            }
        }
        grow(size + align);
    }
}

void
Arena::grow(size_t need_bytes)
{
    size_t capacity = blocks_.empty()
        ? first_block_bytes_
        : blocks_.back().capacity * 2;
    capacity = std::max(capacity, need_bytes);
    Block b;
    b.data = std::make_unique<char[]>(capacity);
    b.capacity = capacity;
    blocks_.push_back(std::move(b));
    current_ = blocks_.size() - 1;
}

Arena::Checkpoint
Arena::checkpoint() const
{
    Checkpoint cp;
    cp.block = current_;
    cp.used =
        current_ < blocks_.size() ? blocks_[current_].used : 0;
    return cp;
}

void
Arena::rewind(const Checkpoint &cp)
{
    panicIf(cp.block > blocks_.size(),
            "arena rewind past the current block list");
    for (size_t i = cp.block; i < blocks_.size(); ++i)
        blocks_[i].used = i == cp.block ? cp.used : 0;
    current_ = cp.block;
}

void
Arena::reset()
{
    ++resets_;
    ++generation_;
    if (blocks_.size() > 1) {
        // Coalesce: one block holding everything the last cycle
        // needed, so the next cycle bump-allocates without growing.
        size_t total = 0;
        for (const Block &b : blocks_)
            total += b.capacity;
        blocks_.clear();
        Block b;
        b.data = std::make_unique<char[]>(total);
        b.capacity = total;
        blocks_.push_back(std::move(b));
    } else if (!blocks_.empty()) {
        blocks_.front().used = 0;
    }
    current_ = 0;
}

Arena::Stats
Arena::stats() const
{
    Stats s;
    s.allocations = allocations_;
    s.bytes = bytes_;
    s.blocks = blocks_.size();
    s.resets = resets_;
    for (const Block &b : blocks_)
        s.reserved += b.capacity;
    return s;
}

size_t
Arena::headroom() const
{
    if (current_ >= blocks_.size())
        return 0;
    const Block &b = blocks_[current_];
    return b.capacity - b.used;
}

Arena *
Arena::scratch()
{
    return t_scratch;
}

Arena::Scope::Scope(Arena *arena) : prev(t_scratch)
{
    t_scratch = arena;
}

Arena::Scope::~Scope()
{
    t_scratch = prev;
}

ArenaStreamBuf::ArenaStreamBuf(size_t initial_capacity)
    : arena_(Arena::scratch())
{
    growTo(std::max<size_t>(initial_capacity, 64));
}

ArenaStreamBuf::~ArenaStreamBuf() = default;

ArenaStreamBuf::int_type
ArenaStreamBuf::overflow(int_type ch)
{
    if (traits_type::eq_int_type(ch, traits_type::eof()))
        return traits_type::not_eof(ch);
    growTo(static_cast<size_t>(epptr() - pbase()) * 2);
    *pptr() = traits_type::to_char_type(ch);
    pbump(1);
    return ch;
}

void
ArenaStreamBuf::growTo(size_t capacity)
{
    size_t used = pbase() ? size() : 0;
    char *fresh;
    std::unique_ptr<char[]> heap;
    if (arena_) {
        fresh = arena_->allocArray<char>(capacity);
    } else {
        heap = std::make_unique<char[]>(capacity);
        fresh = heap.get();
    }
    if (used)
        std::memcpy(fresh, pbase(), used);
    heap_ = std::move(heap); // Frees the previous heap buffer.
    setp(fresh, fresh + capacity);
    pbump(static_cast<int>(used));
}

} // namespace qsurf
