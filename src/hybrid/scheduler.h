/**
 * @file
 * Mixed-scheme scheduling: braid tracks, EPR-teleport channels and
 * merge/split chains on *one* shared patch machine, with the
 * communication scheme chosen per operation by a pluggable Arbiter.
 *
 * The machine is the lattice-surgery patch grid (surgery::PatchArch):
 * logical qubits live in planar patches, and the corridor fabric
 * between patches carries both defect tracks and merge/split chains.
 * The two mesh-borne schemes claim corridors through one
 * engine::ChainClaimer, so a braid track and a surgery corridor
 * contend for the same nodes and links — they congest against each
 * other exactly as they would on real hardware — while teleports
 * ride an off-mesh swap-channel overlay (engine::ChannelPool) that
 * is bandwidth-limited but never blocks on corridor ownership.
 *
 * Per-scheme occupancy asymmetry (the paper's Table 2 tradeoff):
 *
 *  - a braid track holds its corridor 2d+2 cycles regardless of
 *    length (fast movement, exclusive);
 *  - a merge/split chain holds its corridor rounds_per_hop * d
 *    cycles *per tile* (cheapest adjacent, worst over length);
 *  - a teleport pays tiles * swap_hop_cycles of transport plus the
 *    fixed teleport cost, queued on the channel overlay
 *    (prefetch-friendly, distance-sensitive, off-mesh).
 *
 * The simulator reuses the engine's deterministic primitives —
 * ReadyQueue, ExpiryQueue, ChainClaimer, ChannelPool,
 * MagicFactoryPool, LiveIntervalProfile and the FastForward planner
 * (whose jump targets cover all three schemes' wake events) — so
 * runs are bit-identical for a fixed (circuit, options) at any sweep
 * thread count and with fast-forward on or off.
 */

#ifndef QSURF_HYBRID_SCHEDULER_H
#define QSURF_HYBRID_SCHEDULER_H

#include <cstdint>

#include "circuit/circuit.h"
#include "hybrid/arbiter.h"
#include "obs/trace.h"
#include "partition/layout.h"
#include "surgery/patch_arch.h"

namespace qsurf::hybrid {

/** Simulation knobs. */
struct HybridOptions
{
    /** Code distance d. */
    int code_distance = 5;

    /** Scheme arbitration policy. */
    ArbiterKind arbiter = ArbiterKind::CostGreedy;

    /** Merge + split rounds per chain tile (surgery cost). */
    double rounds_per_hop = 2.0;

    /** Swap-chain latency per patch-tile hop, in cycles. */
    double swap_hop_cycles = 5.0;

    /** Braid open/close overhead per CNOT (braid cost). */
    double braid_overhead_cycles = 2.0;

    /** Fixed teleport cost once the EPR halves are resident
     *  (estimate::ModelConstants::teleport_cycles; rounded to whole
     *  cycles when the simulator schedules completions). */
    double teleport_overhead_cycles = 3.0;

    /**
     * Mesh load fraction where exclusive corridors saturate (the
     * arbiter's congestion-inflation knee; estimate::
     * ModelConstants::dd_max_utilization).
     */
    double mesh_saturation = 0.08;

    /**
     * Concurrent EPR transports the channel overlay sustains; 0
     * sizes it from the machine (patch-grid width + height).
     */
    int epr_bandwidth = 0;

    /** Data patches per magic-state factory patch. */
    int patches_per_factory = 8;

    /** Use the interaction-aware layout. */
    bool optimized_layout = true;

    /** Patch-layout objective (shared with the surgery backend:
     *  corridor-aware refinement and optional dedicated lanes). */
    partition::LayoutObjective layout_objective =
        partition::LayoutObjective::BraidManhattan;

    /** Patch rows/columns between dedicated ancilla lanes. */
    int lane_spacing = 4;

    /** Cycles an op waits before trying the transposed corridor. */
    int adapt_timeout = 4;

    /** Cycles before falling back to the adaptive BFS corridor. */
    int bfs_timeout = 8;

    /** Cycles before the op is dropped and re-injected (the
     *  congestion-reactive arbiter's teleport-fallback trigger). */
    int drop_timeout = 16;

    /** Cap on failed placement attempts per cycle. */
    int max_attempts_per_cycle = 64;

    /**
     * Cycles a factory patch needs to distill one magic state; 0
     * means supply is never the bottleneck.  All three schemes
     * consume from the same engine::MagicFactoryPool.
     */
    int magic_production_cycles = 0;

    /** Distilled states a factory patch can buffer. */
    int magic_buffer_capacity = 2;

    /** Safety bound on simulated cycles. */
    uint64_t max_cycles = 100'000'000;

    /** Event-driven time skipping (bit-identical either way). */
    bool fast_forward = true;

    /** Pre-optimization claim paths, for honest A/B baselines. */
    bool legacy_paths = false;

    /** Layout RNG seed. */
    uint64_t seed = 1;

    /** Fabric damage recipe (see fabric/defect.h).  The default is
     *  the perfect mesh every run assumed before defect awareness. */
    fabric::DefectParams defects;

    /** Cost penalty per unit of per-route defect exposure on the
     *  mesh-borne schemes (ArbiterCosts::defect_penalty). */
    double defect_penalty = 2.0;

    /** Structured-event trace hook; null disables tracing (see
     *  obs/trace.h).  Never changes results. */
    obs::TraceRecorder *trace = nullptr;
};

/** Results of one hybrid-scheduling run. */
struct HybridResult
{
    /** Total cycles to complete the program. */
    uint64_t schedule_cycles = 0;

    /** Dependence-limited lower bound: every op at its cheapest
     *  allowed scheme, uncontended. */
    uint64_t critical_path_cycles = 0;

    /** Average fraction of mesh links busy. */
    double mesh_utilization = 0;

    /** Peak simultaneously claimed mesh links. */
    uint64_t peak_busy_links = 0;

    /** Ops routed per scheme (the scheme-choice histogram). */
    uint64_t braid_ops = 0;
    uint64_t teleport_ops = 0;
    uint64_t surgery_ops = 0;

    /** Patch-local 1-qubit ops (no communication). */
    uint64_t local_ops = 0;

    /** Dropped ops the reactive arbiter re-routed to teleport. */
    uint64_t arbiter_fallbacks = 0;

    /** Failed placement attempts (corridor conflicts). */
    uint64_t placement_failures = 0;

    /** Placements that needed the transposed corridor. */
    uint64_t transpose_fallbacks = 0;

    /** Placements that needed the BFS corridor detour. */
    uint64_t bfs_detours = 0;

    /** Drop/re-inject events. */
    uint64_t drops = 0;

    /** T placements refused because no factory had a state ready. */
    uint64_t magic_starvations = 0;

    /** Peak live (launched, unconsumed) EPR pairs. */
    uint64_t peak_live_eprs = 0;

    /** Time-averaged live EPR pairs. */
    double avg_live_eprs = 0;

    /** Interaction-weighted layout cost (Manhattan tiles). */
    double layout_cost = 0;

    /** Interaction-weighted corridor cost (around-patch tiles). */
    double corridor_cost = 0;

    /** Mesh area relative to the lane-free machine (>= 1). */
    double lane_area_factor = 1;

    /** Cycles elided by the event-driven fast-forward. */
    uint64_t ff_skipped_cycles = 0;

    /** Fraction of fabric tiles dead (0 on a perfect fabric). */
    double defect_dead_fraction = 0;

    /** Mean per-tile error-rate multiplier over live tiles (1 on a
     *  perfect fabric). */
    double defect_avg_multiplier = 1;

    /** Permanently defective mesh routers. */
    uint64_t defective_nodes = 0;

    /** Permanently defective mesh links. */
    uint64_t defective_links = 0;

    /** @return schedule length / critical path. */
    double
    ratio() const
    {
        return critical_path_cycles
            ? static_cast<double>(schedule_cycles)
                / static_cast<double>(critical_path_cycles)
            : 0.0;
    }

    /** @return communicating ops (braid + teleport + surgery). */
    uint64_t
    commOps() const
    {
        return braid_ops + teleport_ops + surgery_ops;
    }
};

/**
 * Dependence-limited critical path of @p circ on the hybrid
 * machine: each op costs its cheapest allowed scheme's ideal
 * (uncontended, unqueued) latency under @p opts.
 */
uint64_t hybridCriticalPath(const circuit::Circuit &circ,
                            const HybridOptions &opts);

/**
 * @return the PatchArchOptions @p opts resolves to — field-for-field
 * the same mapping as surgery::patchArchOptions, which is what lets
 * the hybrid and surgery backends share one cached
 * surgery::PatchPrepared artifact.
 */
surgery::PatchArchOptions patchArchOptions(const HybridOptions &opts);

/**
 * Simulate mixed-scheme scheduling of @p circ (which must already
 * be decomposed to Clifford+T).
 */
HybridResult scheduleHybrid(const circuit::Circuit &circ,
                            const HybridOptions &opts = {});

/**
 * Same simulation, reusing @p prepared (built for this circuit with
 * patchArchOptions(opts)); bit-identical to the inline path.
 */
HybridResult scheduleHybrid(const circuit::Circuit &circ,
                            const HybridOptions &opts,
                            const surgery::PatchPrepared &prepared);

} // namespace qsurf::hybrid

#endif // QSURF_HYBRID_SCHEDULER_H
