#include "hybrid/arbiter.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace qsurf::hybrid {

const char *
schemeName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Braid:
        return "braid";
      case Scheme::Teleport:
        return "teleport";
      case Scheme::Surgery:
        return "surgery";
    }
    panic("bad Scheme");
}

const char *
arbiterName(ArbiterKind kind)
{
    switch (kind) {
      case ArbiterKind::CostGreedy:
        return "greedy";
      case ArbiterKind::CongestionReactive:
        return "reactive";
      case ArbiterKind::ForceBraid:
        return "force-braid";
      case ArbiterKind::ForceTeleport:
        return "force-teleport";
      case ArbiterKind::ForceSurgery:
        return "force-surgery";
    }
    panic("bad ArbiterKind ", static_cast<int>(kind));
}

namespace {

/**
 * Congestion inflation of an exclusive (circuit-switched) corridor
 * at the current mesh load: the same linear stretch-past-saturation
 * shape as estimate::ResourceModel's congestion_inflation, applied
 * to the live load instead of the modeled offered load.
 */
double
inflation(const ArbiterCosts &k, double mesh_load)
{
    if (k.mesh_saturation <= 0)
        return 1.0;
    return std::max(1.0, mesh_load / k.mesh_saturation);
}

/**
 * Defect surcharge of a mesh-borne corridor: exactly 1 at zero
 * exposure, so a perfect fabric prices identically to the
 * pre-defect-awareness arbiter.
 */
double
defectSurcharge(const ArbiterCosts &k, const OpContext &ctx)
{
    return 1.0 + k.defect_penalty * ctx.defect_exposure;
}

} // namespace

double
braidCost(const ArbiterCosts &k, const OpContext &ctx)
{
    auto d = static_cast<double>(k.code_distance);
    // One segment (open + d rounds) to a factory, two segments plus
    // the open/close overhead for a CNOT — distance-insensitive.
    double base = ctx.t_gate ? d + 1.0
                             : 2.0 * d + k.braid_overhead_cycles;
    return base * inflation(k, ctx.mesh_load)
        * defectSurcharge(k, ctx);
}

double
teleportCost(const ArbiterCosts &k, const OpContext &ctx)
{
    auto d = static_cast<double>(k.code_distance);
    double transport = std::ceil(
        static_cast<double>(std::max(1, ctx.tiles))
        * k.swap_hop_cycles);
    // Queue on the channel overlay, stream the halves across, then
    // the fixed teleport cost and the op's own d rounds.  Nothing
    // touches the mesh, so no congestion inflation.
    return static_cast<double>(ctx.channel_backlog) + transport
        + k.teleport_cycles + d;
}

double
surgeryCost(const ArbiterCosts &k, const OpContext &ctx)
{
    auto d = static_cast<double>(k.code_distance);
    double base = k.rounds_per_hop * d
            * static_cast<double>(std::max(1, ctx.tiles))
        + 1.0;
    return base * inflation(k, ctx.mesh_load)
        * defectSurcharge(k, ctx);
}

namespace {

/** Min modeled latency; ties prefer braid, then surgery. */
class CostGreedyArbiter : public Arbiter
{
  public:
    explicit CostGreedyArbiter(const ArbiterCosts &costs)
        : k(costs)
    {
    }

    Scheme
    choose(const OpContext &ctx) const override
    {
        Scheme best = Scheme::Braid;
        double best_cost = braidCost(k, ctx);
        if (double c = surgeryCost(k, ctx); c < best_cost) {
            best = Scheme::Surgery;
            best_cost = c;
        }
        if (teleportCost(k, ctx) < best_cost)
            best = Scheme::Teleport;
        return best;
    }

    ArbiterKind kind() const override { return ArbiterKind::CostGreedy; }

  protected:
    ArbiterCosts k;
};

/**
 * Greedy choice plus the reactive escape valve: an op whose corridor
 * stays contended all the way to drop_timeout re-enters the queue as
 * a teleport, which the mesh cannot block.
 */
class CongestionReactiveArbiter : public CostGreedyArbiter
{
  public:
    using CostGreedyArbiter::CostGreedyArbiter;

    bool fallbackToTeleport() const override { return true; }

    ArbiterKind
    kind() const override
    {
        return ArbiterKind::CongestionReactive;
    }
};

/** One fixed scheme: the pure machines on the hybrid fabric. */
class ForceArbiter : public Arbiter
{
  public:
    ForceArbiter(Scheme scheme, ArbiterKind kind)
        : scheme_(scheme), kind_(kind)
    {
    }

    Scheme choose(const OpContext &) const override { return scheme_; }

    ArbiterKind kind() const override { return kind_; }

  private:
    Scheme scheme_;
    ArbiterKind kind_;
};

} // namespace

std::unique_ptr<Arbiter>
makeArbiter(ArbiterKind kind, const ArbiterCosts &costs)
{
    switch (kind) {
      case ArbiterKind::CostGreedy:
        return std::make_unique<CostGreedyArbiter>(costs);
      case ArbiterKind::CongestionReactive:
        return std::make_unique<CongestionReactiveArbiter>(costs);
      case ArbiterKind::ForceBraid:
        return std::make_unique<ForceArbiter>(Scheme::Braid,
                                              kind);
      case ArbiterKind::ForceTeleport:
        return std::make_unique<ForceArbiter>(Scheme::Teleport,
                                              kind);
      case ArbiterKind::ForceSurgery:
        return std::make_unique<ForceArbiter>(Scheme::Surgery,
                                              kind);
    }
    panic("bad ArbiterKind ", static_cast<int>(kind));
}

} // namespace qsurf::hybrid
