#include "hybrid/backend.h"

#include <memory>

#include "common/logging.h"
#include "estimate/lattice_surgery.h"
#include "estimate/model.h"
#include "hybrid/scheduler.h"
#include "surgery/backend.h"

namespace qsurf::hybrid {

namespace {

/** Mixed-scheme simulation on the shared patch machine. */
class HybridBackend : public engine::Backend
{
  public:
    std::string
    name() const override
    {
        return engine::backends::hybrid_mixed;
    }

    qec::CodeKind code() const override { return qec::CodeKind::Planar; }

    void
    prepare(const engine::WorkItem &item) const override
    {
        Backend::prepare(item);
        fatalIf(item.config.hybrid_arbiter < 0
                    || item.config.hybrid_arbiter >= num_arbiters,
                "hybrid arbiter must be in [0, ", num_arbiters,
                "), got ", item.config.hybrid_arbiter);
        partition::LayoutObjective objective =
            partition::layoutObjective(item.config.layout_objective);
        fatalIf(objective == partition::LayoutObjective::CorridorLanes
                    && item.config.lane_spacing < 1,
                "lane_spacing must be >= 1 with the corridor+lanes "
                "objective, got ", item.config.lane_spacing);
    }

    engine::Metrics
    run(const engine::WorkItem &item) const override
    {
        return run(item, nullptr);
    }

    /** Shared with the surgery-sim backend on purpose: the two
     *  simulators build identical patch machines from a WorkItem,
     *  so one cached artifact serves both. */
    std::string
    artifactKey(const engine::WorkItem &item) const override
    {
        return surgery::patchArtifactKey(item);
    }

    std::shared_ptr<const engine::PreparedArtifact>
    buildArtifact(const engine::WorkItem &item) const override
    {
        return surgery::buildPatchArtifact(item);
    }

    engine::Metrics
    run(const engine::WorkItem &item,
        const engine::PreparedArtifact *artifact) const override
    {
        int d = item.resolveDistance();

        // Price the arbitration from the same constants the
        // analytic design-space models sweep with.
        estimate::ModelConstants mk;
        estimate::SurgeryConstants sk;

        HybridOptions opts;
        opts.code_distance = d;
        opts.arbiter =
            static_cast<ArbiterKind>(item.config.hybrid_arbiter);
        opts.rounds_per_hop = sk.rounds_per_hop;
        opts.swap_hop_cycles =
            item.config.tech.swapHopCycles(d);
        opts.braid_overhead_cycles = mk.braid_overhead_cycles;
        opts.teleport_overhead_cycles = mk.teleport_cycles;
        opts.mesh_saturation = mk.dd_max_utilization;
        opts.epr_bandwidth = item.config.epr_bandwidth;
        // Same convention as the other simulators: Policies 2+ use
        // the interaction-aware layout.
        opts.optimized_layout = item.config.policy >= 2;
        opts.layout_objective =
            partition::layoutObjective(item.config.layout_objective);
        opts.lane_spacing = item.config.lane_spacing;
        opts.adapt_timeout = item.config.adapt_timeout;
        opts.bfs_timeout = item.config.bfs_timeout;
        opts.drop_timeout = item.config.drop_timeout;
        opts.max_cycles = item.config.max_cycles;
        opts.magic_production_cycles =
            item.config.magic_production_cycles;
        opts.magic_buffer_capacity =
            item.config.magic_buffer_capacity;
        opts.fast_forward = item.config.fast_forward;
        opts.legacy_paths = item.config.legacy_baseline;
        opts.seed = item.config.seed;
        opts.defects = item.config.defectParams();
        opts.trace = item.config.trace;
        HybridResult r;
        if (artifact) {
            auto *a = dynamic_cast<const surgery::PatchArtifact *>(
                artifact);
            panicIf(!a, "backend '", name(),
                    "' was handed an artifact of the wrong type");
            r = scheduleHybrid(*item.circuit, opts, a->prep);
        } else {
            r = scheduleHybrid(*item.circuit, opts);
        }

        engine::Metrics m;
        m.backend = name();
        m.code = code();
        m.code_distance = d;
        m.schedule_cycles = r.schedule_cycles;
        m.critical_path_cycles = r.critical_path_cycles;
        // Patch machine with boundary strips plus the EPR channel
        // rails of the teleport overlay, widened by any dedicated
        // ancilla lanes.
        m.physical_qubits = surgery::surgeryPhysicalQubits(
            static_cast<double>(item.circuit->numQubits()), d,
            1.3 * r.lane_area_factor);
        m.seconds = static_cast<double>(r.schedule_cycles)
            * item.config.tech.surfaceCycleNs() * 1e-9;
        m.set("arbiter",
              static_cast<double>(item.config.hybrid_arbiter));
        m.set("braid_ops", static_cast<double>(r.braid_ops));
        m.set("teleport_ops", static_cast<double>(r.teleport_ops));
        m.set("surgery_ops", static_cast<double>(r.surgery_ops));
        m.set("local_ops", static_cast<double>(r.local_ops));
        m.set("arbiter_fallbacks",
              static_cast<double>(r.arbiter_fallbacks));
        m.set("mesh_utilization", r.mesh_utilization);
        m.set("peak_busy_links",
              static_cast<double>(r.peak_busy_links));
        m.set("placement_failures",
              static_cast<double>(r.placement_failures));
        m.set("transpose_fallbacks",
              static_cast<double>(r.transpose_fallbacks));
        m.set("bfs_detours", static_cast<double>(r.bfs_detours));
        m.set("drops", static_cast<double>(r.drops));
        m.set("magic_starvations",
              static_cast<double>(r.magic_starvations));
        m.set("peak_live_eprs",
              static_cast<double>(r.peak_live_eprs));
        m.set("avg_live_eprs", r.avg_live_eprs);
        m.set("layout_cost", r.layout_cost);
        m.set("corridor_cost", r.corridor_cost);
        m.set("lane_area_factor", r.lane_area_factor);
        m.set("ff_skipped_cycles",
              static_cast<double>(r.ff_skipped_cycles));
        m.set("ff_skip_ratio",
              r.schedule_cycles
                  ? static_cast<double>(r.ff_skipped_cycles)
                      / static_cast<double>(r.schedule_cycles)
                  : 0.0);
        // Only on damaged fabrics, so defect-free rows stay
        // byte-identical to pre-defect-awareness output.
        if (item.config.defectParams().enabled()) {
            m.set("defect_dead_fraction", r.defect_dead_fraction);
            m.set("defect_avg_multiplier", r.defect_avg_multiplier);
            m.set("defective_nodes",
                  static_cast<double>(r.defective_nodes));
            m.set("defective_links",
                  static_cast<double>(r.defective_links));
            m.set("logical_error_proxy",
                  engine::logicalErrorProxy(
                      static_cast<double>(
                          item.circuit->numQubits()),
                      r.schedule_cycles, d,
                      item.config.tech.p_physical,
                      r.defect_avg_multiplier));
        }
        return m;
    }
};

} // namespace

void
registerHybridBackend(engine::Registry &registry)
{
    registry.add(std::make_unique<HybridBackend>());
}

} // namespace qsurf::hybrid
