/**
 * @file
 * The mixed-scheme engine backend ("hybrid/mixed-sim"): braid
 * tracks, EPR-teleport channels and merge/split chains arbitrated
 * per operation on one shared patch machine, plugging into the
 * engine registry so the toolflow, the sweep driver and the figure
 * benches drive it exactly like the pure-scheme backends.
 */

#ifndef QSURF_HYBRID_BACKEND_H
#define QSURF_HYBRID_BACKEND_H

#include "engine/registry.h"

namespace qsurf::hybrid {

/**
 * Register the hybrid backend into @p registry (called by
 * engine::registerBuiltinBackends; exposed for private-registry
 * tests).
 */
void registerHybridBackend(engine::Registry &registry);

} // namespace qsurf::hybrid

#endif // QSURF_HYBRID_BACKEND_H
