/**
 * @file
 * Per-operation communication-scheme arbitration for the hybrid
 * backend.
 *
 * The paper's central result (Figures 8/9, Table 2) is that no
 * single communication scheme wins everywhere: braids are
 * distance-insensitive but hold their whole track exclusively,
 * teleportation is cheap at the point of use but pays swap-chain
 * transport that grows with distance and code distance, and a
 * merge/split chain is the cheapest thing possible between adjacent
 * patches yet the worst over length.  A machine that runs all three
 * on one fabric can therefore pick per CNOT: the Arbiter is that
 * decision, priced from the same estimate:: constants the analytic
 * design-space models use, so the simulated arbitration and the
 * closed-form crossover analysis share one cost vocabulary.
 */

#ifndef QSURF_HYBRID_ARBITER_H
#define QSURF_HYBRID_ARBITER_H

#include <cstdint>
#include <memory>

namespace qsurf::hybrid {

/** The three communication schemes a hybrid op can ride. */
enum class Scheme : uint8_t
{
    Braid,    ///< Defect track: constant-time, exclusive corridor.
    Teleport, ///< EPR channel overlay: off-mesh, bandwidth-limited.
    Surgery,  ///< Merge/split chain: per-tile d-cycle rounds.
};

/** Number of schemes (histogram sizing). */
inline constexpr int num_schemes = 3;

/** @return "braid" / "teleport" / "surgery". */
const char *schemeName(Scheme scheme);

/** The built-in arbitration policies (RunConfig::hybrid_arbiter). */
enum class ArbiterKind : int
{
    CostGreedy = 0,          ///< Min modeled latency, load-aware.
    CongestionReactive = 1,  ///< Greedy + teleport fallback on drop.
    ForceBraid = 2,          ///< Pure braid on the hybrid machine.
    ForceTeleport = 3,       ///< Pure teleport on the hybrid machine.
    ForceSurgery = 4,        ///< Pure surgery on the hybrid machine.
};

/** All arbiter kinds in order, for sweeps. */
inline constexpr int num_arbiters = 5;

/** @return a short stable name, e.g. "greedy" or "force-braid". */
const char *arbiterName(ArbiterKind kind);

/**
 * The cost constants one arbitration decision is priced from, all
 * sourced from estimate:: (ModelConstants / SurgeryConstants) plus
 * the technology's swap-chain latency.
 */
struct ArbiterCosts
{
    /** Code distance d. */
    int code_distance = 5;

    /** Merge + split rounds per chain tile (estimate::
     *  SurgeryConstants::rounds_per_hop). */
    double rounds_per_hop = 2.0;

    /** Braid open/close overhead per CNOT (estimate::
     *  ModelConstants::braid_overhead_cycles). */
    double braid_overhead_cycles = 2.0;

    /** Teleport cost once the EPR halves are resident (estimate::
     *  ModelConstants::teleport_cycles). */
    double teleport_cycles = 3.0;

    /** Swap-chain latency per patch-tile hop, in cycles
     *  (qec::Technology::swapHopCycles). */
    double swap_hop_cycles = 5.0;

    /**
     * Mesh load fraction at which exclusive (braid / surgery)
     * corridors start paying congestion inflation (estimate::
     * ModelConstants::dd_max_utilization: circuit-switched tracks
     * saturate early because nothing buffers).
     */
    double mesh_saturation = 0.08;

    /**
     * Cost penalty per unit of defect exposure on the mesh-borne
     * schemes: a corridor whose bounding box is fraction f dead
     * costs (1 + defect_penalty * f) times its clean price — dead
     * tiles force detours and narrow the set of claimable routes.
     * The teleport overlay is off-mesh and never pays it.
     */
    double defect_penalty = 2.0;
};

/** One decision's inputs, gathered by the scheduler per attempt. */
struct OpContext
{
    /** Ideal corridor length between the endpoints, in patch tiles. */
    int tiles = 1;

    /** Fraction of mesh links claimed right now, in [0, 1]. */
    double mesh_load = 0;

    /**
     * Cycles the EPR channel pool would delay a transport launched
     * now (queueing only, not the transport itself).
     */
    uint64_t channel_backlog = 0;

    /** True for a T gate (factory merge/track/teleport). */
    bool t_gate = false;

    /**
     * Dead-tile fraction of the corridor's bounding box (see
     * PatchArch::defectExposure), in [0, 1]; 0 on a perfect fabric,
     * so defect-free arbitration is bit-identical to before the
     * fabric could be damaged.
     */
    double defect_exposure = 0;
};

/**
 * A communication-scheme arbiter.  Implementations must be pure
 * functions of (costs, context) — the scheduler re-evaluates
 * decisions during stalls and relies on identical answers while the
 * machine state is frozen, which is what keeps the event-driven
 * fast-forward bit-identical to the stepped loop.
 */
class Arbiter
{
  public:
    virtual ~Arbiter() = default;

    /** @return the scheme to try for the op described by @p ctx. */
    virtual Scheme choose(const OpContext &ctx) const = 0;

    /**
     * @return true when a dropped op (corridor contended past
     * drop_timeout) should fall back to the teleport overlay
     * instead of re-queueing on its chosen scheme.
     */
    virtual bool fallbackToTeleport() const { return false; }

    /** @return the kind this arbiter implements. */
    virtual ArbiterKind kind() const = 0;
};

/**
 * Modeled completion latency of one op under each scheme, exposed
 * for tests and the crossover bench.  All in cycles:
 *
 *  - braid: two segments at d+1 each plus the open/close overhead,
 *    distance-insensitive, times the congestion inflation of the
 *    current mesh load;
 *  - teleport: swap transport of tiles * swap_hop_cycles (plus the
 *    channel queue backlog), then the fixed teleport cost and the
 *    op's own d rounds — none of it touches the mesh;
 *  - surgery: rounds_per_hop * d per corridor tile, inflated like
 *    the braid (chains congest identically).
 *
 * Both mesh-borne schemes additionally pay the defect surcharge
 * (1 + defect_penalty * ctx.defect_exposure); the off-mesh teleport
 * never does — which is exactly the mechanism that shifts hybrid
 * arbitration toward the overlay as the fabric degrades.
 */
double braidCost(const ArbiterCosts &k, const OpContext &ctx);
double teleportCost(const ArbiterCosts &k, const OpContext &ctx);
double surgeryCost(const ArbiterCosts &k, const OpContext &ctx);

/** @return the arbiter implementing @p kind over @p costs. */
std::unique_ptr<Arbiter> makeArbiter(ArbiterKind kind,
                                     const ArbiterCosts &costs);

} // namespace qsurf::hybrid

#endif // QSURF_HYBRID_ARBITER_H
