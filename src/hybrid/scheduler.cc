#include "hybrid/scheduler.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "circuit/dag.h"
#include "circuit/schedule.h"
#include "common/logging.h"
#include "engine/sim.h"
#include "surgery/chain_scheduler.h"
#include "surgery/patch_arch.h"

namespace qsurf::hybrid {

namespace {

using circuit::GateKind;

/** How an op uses the machine. */
enum class OpClass : uint8_t
{
    Local, ///< 1-qubit non-T gate: patch-local, d cycles.
    TGate, ///< T/Tdag: sources a state from a factory patch.
    TwoQ,  ///< 2-qubit gate: one arbitrated communication op.
};

struct OpRec
{
    OpClass cls = OpClass::Local;
    int32_t qa = -1;
    int32_t qb = -1;
    int pending_preds = 0;
    int wait = 0;      ///< Cycles spent failing to place.
    int est_tiles = 0; ///< Ideal corridor length, in patch tiles.
    Scheme scheme = Scheme::Braid; ///< Valid when scheme_set.
    bool scheme_set = false;
    network::Path route; ///< Currently claimed corridor (mesh
                         ///< schemes only; teleports claim nothing).
};

OpClass
classify(const circuit::Gate &g)
{
    if (consumesMagicState(g.kind))
        return OpClass::TGate;
    int arity = g.arity();
    fatalIf(arity > 2, "gate ", circuit::gateName(g.kind),
            " must be decomposed before hybrid scheduling");
    return arity == 2 ? OpClass::TwoQ : OpClass::Local;
}

/** Merge/split cost of a @p tiles-tile chain, in cycles (the
 *  surgery backend's formula, shared). */
uint64_t
chainCycles(const HybridOptions &opts, int tiles)
{
    return surgery::chainCycles(opts.rounds_per_hop,
                                opts.code_distance, tiles);
}

/** Corridor hold time of a braid track, length-insensitive. */
uint64_t
braidHold(const HybridOptions &opts, OpClass cls)
{
    auto d = static_cast<uint64_t>(opts.code_distance);
    if (cls == OpClass::TGate)
        return d + 1; // One segment: open + d rounds.
    return 2 * d
        + static_cast<uint64_t>(
               std::llround(opts.braid_overhead_cycles));
}

/** Swap-chain transport time of @p tiles patch hops, in cycles. */
uint64_t
transportCycles(const HybridOptions &opts, int tiles)
{
    return static_cast<uint64_t>(
        std::ceil(static_cast<double>(std::max(1, tiles))
                  * opts.swap_hop_cycles));
}

/** Teleport completion once transport lands: fixed cost + d. */
uint64_t
teleportTail(const HybridOptions &opts)
{
    return static_cast<uint64_t>(
               std::llround(opts.teleport_overhead_cycles))
        + static_cast<uint64_t>(opts.code_distance);
}

ArbiterCosts
makeCosts(const HybridOptions &opts)
{
    ArbiterCosts k;
    k.code_distance = opts.code_distance;
    k.rounds_per_hop = opts.rounds_per_hop;
    k.braid_overhead_cycles = opts.braid_overhead_cycles;
    k.teleport_cycles = opts.teleport_overhead_cycles;
    k.swap_hop_cycles = opts.swap_hop_cycles;
    k.mesh_saturation = opts.mesh_saturation;
    k.defect_penalty = opts.defect_penalty;
    return k;
}

/** Ideal (uncontended, unqueued) latency of one op per scheme. */
uint64_t
idealLatency(const HybridOptions &opts, Scheme scheme, OpClass cls,
             int tiles)
{
    switch (scheme) {
      case Scheme::Braid:
        return braidHold(opts, cls);
      case Scheme::Teleport:
        return transportCycles(opts, tiles) + teleportTail(opts);
      case Scheme::Surgery:
        return chainCycles(opts, tiles) + 1;
    }
    panic("bad Scheme");
}

/** The schemes @p kind may choose from. */
const std::vector<Scheme> &
allowedSchemes(ArbiterKind kind)
{
    static const std::vector<Scheme> braid_only{Scheme::Braid};
    static const std::vector<Scheme> teleport_only{Scheme::Teleport};
    static const std::vector<Scheme> surgery_only{Scheme::Surgery};
    static const std::vector<Scheme> all{
        Scheme::Braid, Scheme::Teleport, Scheme::Surgery};
    switch (kind) {
      case ArbiterKind::ForceBraid:
        return braid_only;
      case ArbiterKind::ForceTeleport:
        return teleport_only;
      case ArbiterKind::ForceSurgery:
        return surgery_only;
      default:
        return all;
    }
}

/** Cheapest allowed ideal latency of one op. */
uint64_t
bestIdealLatency(const HybridOptions &opts, OpClass cls, int tiles)
{
    uint64_t best = UINT64_MAX;
    for (Scheme s : allowedSchemes(opts.arbiter))
        best = std::min(best, idealLatency(opts, s, cls, tiles));
    return best;
}

uint64_t
criticalPathOn(const circuit::Circuit &circ,
               const surgery::PatchArch &arch,
               const HybridOptions &opts)
{
    circuit::Dag dag(circ);
    std::vector<uint64_t> finish(static_cast<size_t>(circ.size()),
                                 0);
    // Nearest-factory distance per qubit, computed on first use —
    // T-heavy circuits would otherwise re-sort the factory list for
    // every gate.
    std::vector<int> factory_tiles(
        static_cast<size_t>(circ.numQubits()), -1);
    auto tgate_tiles = [&](int32_t q) {
        int &tiles = factory_tiles[static_cast<size_t>(q)];
        if (tiles < 0) {
            int f = arch.factoriesByDistance(q).front();
            tiles = manhattan(arch.patchOf(q), arch.factoryPatch(f));
        }
        return tiles;
    };

    uint64_t best = 0;
    for (int i = 0; i < circ.size(); ++i) {
        uint64_t start = 0;
        for (int p : dag.preds(i))
            start = std::max(start, finish[static_cast<size_t>(p)]);

        const circuit::Gate &g = circ.gate(i);
        uint64_t lat;
        switch (classify(g)) {
          case OpClass::Local:
            lat = static_cast<uint64_t>(opts.code_distance);
            break;
          case OpClass::TGate:
            lat = bestIdealLatency(opts, OpClass::TGate,
                                   tgate_tiles(g.qubit[0]));
            break;
          case OpClass::TwoQ:
            lat = bestIdealLatency(
                opts, OpClass::TwoQ,
                manhattan(arch.patchOf(g.qubit[0]),
                          arch.patchOf(g.qubit[1])));
            break;
        }
        finish[static_cast<size_t>(i)] = start + lat;
        best = std::max(best, finish[static_cast<size_t>(i)]);
    }
    return best;
}

/** The simulator. */
class Simulator
{
  public:
    Simulator(const circuit::Circuit &circ, const HybridOptions &opts,
              const surgery::PatchPrepared &prep)
        : circ(circ), opts(opts), dag(prep.dag), graph(prep.graph),
          arch(prep.arch), mesh(arch.makeMesh()),
          claim_opts(makeClaimOptions(opts)),
          claimer(mesh, claim_opts), corridors(arch),
          arbiter(makeArbiter(opts.arbiter, makeCosts(opts))),
          channels(channelSlots(opts, arch)), crit(prep.crit),
          trace(opts.trace)
    {
        if (trace) {
            trace->meshDims(mesh.width(), mesh.height());
            obs::traceMeshDefects(trace, mesh);
        }
        for (const Coord &terminal : arch.reservedTerminals())
            claimer.reserveTerminal(terminal);
        factory_order.resize(
            static_cast<size_t>(graph.num_qubits));
        for (int q = 0; q < graph.num_qubits; ++q)
            factory_order[static_cast<size_t>(q)] =
                arch.factoriesByDistance(q);
        buildOps();
        factories.configure(arch.numFactories(),
                            opts.magic_production_cycles,
                            opts.magic_buffer_capacity);
        factories.setTrace(trace);
    }

    HybridResult
    run()
    {
        seedReady();
        uint64_t completed = 0;
        auto total = static_cast<uint64_t>(circ.size());

        while (completed < total) {
            fatalIf(cycle > opts.max_cycles,
                    "hybrid simulation exceeded ", opts.max_cycles,
                    " cycles; likely a configuration problem");
            factories.replenish(cycle);
            placementPhase();
            if (opts.fast_forward)
                fastForwardPhase();
            mesh.tick();
            ++cycle;
            completed += completionPhase();
        }

        HybridResult out;
        out.schedule_cycles = cycle;
        out.critical_path_cycles = criticalPathOn(circ, arch, opts);
        out.mesh_utilization = mesh.utilization();
        out.peak_busy_links =
            static_cast<uint64_t>(mesh.peakBusyLinks());
        out.braid_ops = braid_ops;
        out.teleport_ops = teleport_ops;
        out.surgery_ops = surgery_ops;
        out.local_ops = local_ops;
        out.arbiter_fallbacks = arbiter_fallbacks;
        out.placement_failures = placement_failures;
        out.transpose_fallbacks = claimer.transposeFallbacks();
        out.bfs_detours = claimer.bfsDetours();
        out.drops = drops;
        out.magic_starvations = magic_starvations;
        auto live = live_eprs.summarize(cycle);
        out.peak_live_eprs = live.peak;
        out.avg_live_eprs = live.average;
        out.layout_cost = arch.layoutCost(graph);
        out.corridor_cost = arch.corridorCost(graph);
        out.lane_area_factor = arch.laneAreaFactor();
        out.ff_skipped_cycles = ff.skipped();
        out.defect_dead_fraction = arch.defects().deadFraction();
        out.defect_avg_multiplier =
            arch.defects().avgErrorMultiplier();
        out.defective_nodes =
            static_cast<uint64_t>(mesh.numDefectiveNodes());
        out.defective_links =
            static_cast<uint64_t>(mesh.numDefectiveLinks());
        return out;
    }

  private:
    static engine::RouteClaimOptions
    makeClaimOptions(const HybridOptions &opts)
    {
        engine::RouteClaimOptions c;
        c.adapt_timeout = opts.adapt_timeout;
        c.bfs_timeout = opts.bfs_timeout;
        c.legacy_paths = opts.legacy_paths;
        return c;
    }

    static int
    channelSlots(const HybridOptions &opts,
                 const surgery::PatchArch &arch)
    {
        if (opts.epr_bandwidth > 0)
            return opts.epr_bandwidth;
        return arch.patchWidth() + arch.patchHeight();
    }

    void
    buildOps()
    {
        ops.resize(static_cast<size_t>(circ.size()));
        for (int i = 0; i < circ.size(); ++i) {
            const circuit::Gate &g = circ.gate(i);
            OpRec &op = ops[static_cast<size_t>(i)];
            op.cls = classify(g);
            op.qa = g.qubit[0];
            op.qb = g.arity() == 2 ? g.qubit[1] : -1;
            op.pending_preds =
                static_cast<int>(dag.preds(i).size());
            op.est_tiles = estimateTiles(op);
        }
    }

    /** Ideal (Manhattan) corridor length of @p op, in patch tiles. */
    int
    estimateTiles(const OpRec &op) const
    {
        switch (op.cls) {
          case OpClass::Local:
            return 0;
          case OpClass::TGate: {
            int f = factory_order[static_cast<size_t>(op.qa)]
                        .front();
            return manhattan(arch.patchOf(op.qa),
                             arch.factoryPatch(f));
          }
          case OpClass::TwoQ:
            return manhattan(arch.patchOf(op.qa),
                             arch.patchOf(op.qb));
        }
        panic("bad OpClass");
    }

    void
    seedReady()
    {
        for (int i = 0; i < circ.size(); ++i)
            if (ops[static_cast<size_t>(i)].pending_preds == 0)
                makeReady(i);
    }

    void
    makeReady(int i)
    {
        ops[static_cast<size_t>(i)].wait = 0;
        ready.insert(makeEntry(i));
        if (trace)
            trace->record({cycle, obs::EventKind::OpReady, i});
    }

    /** Criticality-first, short-corridor tie-break (like surgery:
     *  nothing releases early, so keep corridors turning over). */
    engine::ReadyEntry
    makeEntry(int i)
    {
        const OpRec &op = ops[static_cast<size_t>(i)];
        engine::ReadyEntry e;
        e.id = i;
        e.k1 = -crit[static_cast<size_t>(i)];
        e.k2 = op.est_tiles;
        return e;
    }

    /** The decision inputs of op @p i right now. */
    OpContext
    contextFor(const OpRec &op) const
    {
        OpContext ctx;
        ctx.tiles = op.est_tiles;
        ctx.mesh_load = mesh.loadNow();
        ctx.channel_backlog = channels.earliestStart(cycle) - cycle;
        ctx.t_gate = op.cls == OpClass::TGate;
        // Under rate-limited production the state may have to come
        // from a farther, stocked factory — price the transport the
        // op would actually pay, not the ideal one.
        if (ctx.t_gate && factories.limited()) {
            int fac = firstStockedFactory(op.qa);
            if (fac >= 0)
                ctx.tiles = manhattan(arch.patchOf(op.qa),
                                      arch.factoryPatch(fac));
        }
        // Dead-tile fraction around the corridor: 0 on a perfect
        // fabric, so clean-machine arbitration is unchanged.
        ctx.defect_exposure = arch.defectExposure(
            op.qa, op.qb >= 0 ? op.qb : op.qa);
        return ctx;
    }

    bool
    tryPlace(int i)
    {
        OpRec &op = ops[static_cast<size_t>(i)];
        if (op.cls == OpClass::Local) {
            ++local_ops;
            if (trace)
                trace->record({cycle, obs::EventKind::OpIssue, i, 0,
                               opts.code_distance});
            activate(i, static_cast<uint64_t>(opts.code_distance));
            return true;
        }

        // The scheme is decided once per queue epoch (re-arbitrated
        // after a drop), from the machine state at the first
        // attempt.  During a stall the mesh and channels are frozen,
        // so a per-attempt re-decision would answer identically —
        // which is what keeps fast-forward elision exact.
        if (!op.scheme_set) {
            OpContext ctx = contextFor(op);
            op.scheme = arbiter->choose(ctx);
            op.scheme_set = true;
            if (trace)
                trace->record({cycle,
                               obs::EventKind::ArbiterDecision, i,
                               static_cast<int64_t>(op.scheme),
                               ctx.tiles});
        }
        return op.scheme == Scheme::Teleport ? placeTeleport(i)
                                             : placeCorridor(i);
    }

    /**
     * Teleport placement: consume a factory state for T gates,
     * queue the EPR halves on the channel overlay, and complete
     * after transport + teleport cost + d.  Never touches the mesh,
     * so the only way to fail is magic-state starvation.
     */
    bool
    placeTeleport(int i)
    {
        OpRec &op = ops[static_cast<size_t>(i)];
        int tiles = op.est_tiles;
        if (op.cls == OpClass::TGate) {
            int fac = firstStockedFactory(op.qa);
            if (fac < 0) {
                ++magic_starvations;
                ++pass_starved;
                if (trace
                    && obs::stallEventGate(op.wait,
                                           opts.adapt_timeout,
                                           opts.bfs_timeout))
                    trace->record(
                        {cycle, obs::EventKind::FactoryStarve, i});
                return false;
            }
            factories.consume(fac);
            tiles = manhattan(arch.patchOf(op.qa),
                              arch.factoryPatch(fac));
        }
        uint64_t transport = transportCycles(opts, tiles);
        uint64_t start = channels.acquire(cycle, transport);
        uint64_t arrival = start + transport;
        live_eprs.add(cycle, arrival);
        ++teleport_ops;
        uint64_t duration = arrival - cycle + teleportTail(opts);
        if (trace) {
            trace->record({cycle, obs::EventKind::TeleportChannel, i,
                           static_cast<int64_t>(start),
                           static_cast<int64_t>(arrival)});
            if (start > cycle)
                trace->record({cycle, obs::EventKind::TeleportStall,
                               i,
                               static_cast<int64_t>(start - cycle)});
            trace->record({cycle, obs::EventKind::OpIssue, i, 2,
                           static_cast<int64_t>(duration)});
        }
        activate(i, duration);
        return true;
    }

    /** @return the nearest factory with a state, or -1. */
    int
    firstStockedFactory(int32_t q) const
    {
        for (int fac : factory_order[static_cast<size_t>(q)])
            if (factories.hasState(fac))
                return fac;
        return -1;
    }

    /**
     * Mesh placement (braid track or merge/split chain): claim a
     * corridor through the shared claimer — braid tracks and
     * surgery corridors contend for the same fabric — and hold it
     * for the scheme's occupancy time.
     */
    bool
    placeCorridor(int i)
    {
        OpRec &op = ops[static_cast<size_t>(i)];
        Coord src = arch.terminal(op.qa);
        std::vector<std::pair<Coord, int>> &dsts = dsts_scratch;
        dsts.clear();
        if (op.cls == OpClass::TwoQ) {
            dsts.emplace_back(arch.terminal(op.qb), -1);
        } else if (!engine::appendStockedFactories(
                       factories,
                       factory_order[static_cast<size_t>(op.qa)],
                       op.wait, opts.adapt_timeout, dsts,
                       [this](int f) {
                           return arch.factoryTerminal(f);
                       })) {
            ++magic_starvations;
            ++pass_starved;
            if (trace
                && obs::stallEventGate(op.wait, opts.adapt_timeout,
                                       opts.bfs_timeout))
                trace->record(
                    {cycle, obs::EventKind::FactoryStarve, i});
            return false;
        }

        uint64_t transpose_before = 0;
        uint64_t bfs_before = 0;
        if (trace) {
            transpose_before = claimer.transposeFallbacks();
            bfs_before = claimer.bfsDetours();
        }
        for (const auto &[dst, factory] : dsts) {
            const surgery::CorridorRouter::Routes &routes =
                corridors.routes(src, dst);
            auto chain = claimer.tryClaim(routes.primary,
                                          routes.fallback, i,
                                          op.wait);
            if (chain) {
                if (trace) {
                    int64_t stage = 0;
                    if (claimer.bfsDetours() != bfs_before)
                        stage = 2;
                    else if (claimer.transposeFallbacks()
                             != transpose_before)
                        stage = 1;
                    trace->record({cycle, obs::EventKind::RouteClaim,
                                   i, stage, chain->hops(), factory});
                    if (stage > 0)
                        trace->record({cycle,
                                       obs::EventKind::RouteFallback,
                                       i, stage});
                }
                factories.consume(factory);
                placed(i, std::move(*chain));
                return true;
            }
        }
        if (trace
            && obs::stallEventGate(op.wait, opts.adapt_timeout,
                                   opts.bfs_timeout))
            trace->record(
                {cycle, obs::EventKind::RouteDeny, i, op.wait});
        return false;
    }

    /** Record a successful corridor placement. */
    void
    placed(int i, network::Path chain)
    {
        OpRec &op = ops[static_cast<size_t>(i)];
        uint64_t duration;
        int64_t lane;
        int64_t tiles_held = 0;
        if (op.scheme == Scheme::Braid) {
            ++braid_ops;
            duration = braidHold(opts, op.cls);
            lane = 1;
        } else {
            ++surgery_ops;
            int tiles = surgery::PatchArch::chainTiles(chain.hops());
            duration = chainCycles(opts, tiles) + 1;
            lane = 3;
            tiles_held = tiles;
        }
        op.route = std::move(chain);
        if (trace) {
            if (op.scheme == Scheme::Surgery)
                trace->record({cycle, obs::EventKind::ChainHold, i,
                               tiles_held,
                               static_cast<int64_t>(duration)});
            trace->routeHeld(op.route, cycle, duration);
            trace->record({cycle, obs::EventKind::OpIssue, i, lane,
                           static_cast<int64_t>(duration)});
        }
        activate(i, duration);
    }

    void
    activate(int i, uint64_t duration)
    {
        expiry.schedule(cycle + duration, i);
    }

    /** Greedy placement, criticality-ordered. */
    void
    placementPhase()
    {
        pass_placed = 0;
        pass_dropped = 0;
        pass_starved = 0;
        attempted.clear();

        int failures = 0;
        dropped_scratch.clear();
        auto it = ready.begin();
        while (it != ready.end()
               && failures < opts.max_attempts_per_cycle) {
            int i = it->id;
            int wait_used = ops[static_cast<size_t>(i)].wait;
            if (tryPlace(i)) {
                ++pass_placed;
                it = ready.erase(it);
                continue;
            }
            ++failures;
            ++placement_failures;
            OpRec &op = ops[static_cast<size_t>(i)];
            ++op.wait;
            if (op.wait >= opts.drop_timeout) {
                // Drop and re-inject.  The congestion-reactive
                // arbiter re-routes the contended op onto the
                // teleport overlay; others re-arbitrate fresh.
                ++drops;
                ++pass_dropped;
                if (trace)
                    trace->record(
                        {cycle, obs::EventKind::RouteDrop, i});
                op.wait = 0;
                if (op.scheme_set && op.scheme != Scheme::Teleport
                    && arbiter->fallbackToTeleport()) {
                    op.scheme = Scheme::Teleport;
                    ++arbiter_fallbacks;
                    if (trace)
                        trace->record(
                            {cycle, obs::EventKind::ArbiterDecision,
                             i,
                             static_cast<int64_t>(Scheme::Teleport),
                             op.est_tiles, 1});
                } else {
                    op.scheme_set = false;
                }
                it = ready.erase(it);
                dropped_scratch.push_back(i);
                continue;
            }
            attempted.push_back({i, wait_used});
            ++it;
        }
        for (int i : dropped_scratch)
            ready.insert(makeEntry(i));
    }

    /**
     * After a pass that placed and dropped nothing, jump to the
     * next interesting event of *any* scheme: the earliest expiry
     * (braid release, chain split, teleport completion — all
     * retire through the one queue), a stalled op's escalation
     * threshold, or a factory replenishment.
     */
    void
    fastForwardPhase()
    {
        if (pass_placed > 0 || pass_dropped > 0)
            return;
        uint64_t skip = engine::fastForwardAfterStall(
            ff, expiry, mesh, cycle, opts.max_cycles + 1, attempted,
            [this](int i) -> int & {
                return ops[static_cast<size_t>(i)].wait;
            },
            claim_opts, opts.drop_timeout, placement_failures,
            [this](engine::FastForward &planner) {
                factories.registerEvents(planner);
            });
        if (trace && skip > 0)
            trace->record({cycle, obs::EventKind::FastForwardSkip, -1,
                           static_cast<int64_t>(skip)});
        cycle += skip;
        magic_starvations += pass_starved * skip;
    }

    /** Retire expired ops; returns number completed. */
    uint64_t
    completionPhase()
    {
        uint64_t completed = 0;
        while (auto ripe = expiry.popRipe(cycle)) {
            int i = *ripe;
            OpRec &op = ops[static_cast<size_t>(i)];
            if (!op.route.empty()) {
                claimer.release(op.route, i);
                op.route = network::Path{};
            }
            if (trace)
                trace->record({cycle, obs::EventKind::OpRetire, i});
            ++completed;
            for (int s : dag.succs(i))
                if (--ops[static_cast<size_t>(s)].pending_preds == 0)
                    makeReady(s);
        }
        return completed;
    }

    const circuit::Circuit &circ;
    const HybridOptions &opts;
    const circuit::Dag &dag;
    const circuit::InteractionGraph &graph;
    const surgery::PatchArch &arch;
    network::Mesh mesh;
    engine::RouteClaimOptions claim_opts;
    engine::ChainClaimer claimer;
    surgery::CorridorRouter corridors;
    std::unique_ptr<Arbiter> arbiter;
    engine::ChannelPool channels;
    engine::MagicFactoryPool factories;

    std::vector<OpRec> ops;
    const std::vector<int> &crit;
    obs::TraceRecorder *trace;
    std::vector<std::vector<int>> factory_order; ///< Per qubit.
    engine::ReadyQueue ready;
    engine::ExpiryQueue expiry;
    engine::LiveIntervalProfile live_eprs;
    engine::FastForward ff;
    uint64_t cycle = 0;

    /** Per-pass bookkeeping feeding fastForwardPhase(). */
    uint64_t pass_placed = 0;
    uint64_t pass_dropped = 0;
    uint64_t pass_starved = 0;
    std::vector<std::pair<int, int>> attempted; ///< (id, wait used).
    std::vector<int> dropped_scratch;
    std::vector<std::pair<Coord, int>> dsts_scratch;

    uint64_t braid_ops = 0;
    uint64_t teleport_ops = 0;
    uint64_t surgery_ops = 0;
    uint64_t local_ops = 0;
    uint64_t arbiter_fallbacks = 0;
    uint64_t placement_failures = 0;
    uint64_t drops = 0;
    uint64_t magic_starvations = 0;
};

} // namespace

uint64_t
hybridCriticalPath(const circuit::Circuit &circ,
                   const HybridOptions &opts)
{
    fatalIf(opts.code_distance < 1,
            "code distance must be >= 1, got ", opts.code_distance);
    surgery::PatchArchOptions a;
    a.patches_per_factory = opts.patches_per_factory;
    a.optimized_layout = opts.optimized_layout;
    a.seed = opts.seed;
    surgery::PatchArch arch(circuit::interactionGraph(circ), a);
    return criticalPathOn(circ, arch, opts);
}

surgery::PatchArchOptions
patchArchOptions(const HybridOptions &opts)
{
    surgery::PatchArchOptions a;
    a.patches_per_factory = opts.patches_per_factory;
    a.optimized_layout = opts.optimized_layout;
    a.layout_objective = opts.layout_objective;
    a.lane_spacing = opts.lane_spacing;
    a.seed = opts.seed;
    a.defects = opts.defects;
    return a;
}

HybridResult
scheduleHybrid(const circuit::Circuit &circ, const HybridOptions &opts)
{
    fatalIf(circ.empty(), "cannot schedule an empty circuit");
    surgery::PatchPrepared prepared(circ, patchArchOptions(opts));
    return scheduleHybrid(circ, opts, prepared);
}

HybridResult
scheduleHybrid(const circuit::Circuit &circ, const HybridOptions &opts,
               const surgery::PatchPrepared &prepared)
{
    fatalIf(circ.empty(), "cannot schedule an empty circuit");
    fatalIf(opts.code_distance < 1, "code distance must be >= 1");
    fatalIf(opts.rounds_per_hop <= 0,
            "rounds_per_hop must be > 0, got ", opts.rounds_per_hop);
    fatalIf(opts.swap_hop_cycles <= 0,
            "swap_hop_cycles must be > 0, got ",
            opts.swap_hop_cycles);
    return Simulator(circ, opts, prepared).run();
}

} // namespace qsurf::hybrid
