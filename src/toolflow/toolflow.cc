#include "toolflow/toolflow.h"

#include <fstream>
#include <memory>

#include "common/arena.h"
#include "common/logging.h"
#include "engine/registry.h"
#include "obs/trace.h"
#include "qasm/flatten.h"
#include "qasm/parser.h"
#include "qec/factory.h"
#include "service/artifact.h"

namespace qsurf::toolflow {

namespace {

/** Map a uniform engine record onto the per-backend report. */
BackendReport
toBackendReport(const engine::Metrics &m)
{
    BackendReport b;
    b.code = m.code;
    b.schedule_cycles = m.schedule_cycles;
    b.critical_path_cycles = m.critical_path_cycles;
    b.cp_ratio = m.ratio();
    b.mesh_utilization = m.extra("mesh_utilization");
    b.teleports = static_cast<uint64_t>(m.extra("teleports"));
    b.peak_live_eprs =
        static_cast<uint64_t>(m.extra("peak_live_eprs"));
    b.physical_qubits = m.physical_qubits;
    b.seconds = m.seconds;
    return b;
}

} // namespace

Report
run(const circuit::Circuit &logical, const Config &config)
{
    fatalIf(logical.empty(), "toolflow needs a non-empty circuit");
    config.tech.check();

    Report report;
    report.app_name =
        logical.name().empty() ? "circuit" : logical.name();

    // Frontend: optimize, decompose to Clifford+T and analyze
    // (Figure 4 left) — through the shared cache when enabled, so
    // repeated runs of one program pay the frontend once.
    service::PrepareCache *cache =
        config.use_cache ? &service::PrepareCache::global() : nullptr;
    std::shared_ptr<const service::CachedProgram> program;
    circuit::Circuit local_circ;
    const circuit::Circuit *circ = nullptr;
    uint64_t fingerprint = 0;
    if (cache) {
        program = service::cachedProgram(
            *cache, logical, config.decompose, config.run_peephole);
        report.peephole = program->peephole;
        report.counts = program->counts;
        report.parallelism = program->parallelism;
        circ = &program->circ;
        fingerprint = program->fingerprint;
    } else {
        circuit::Circuit optimized = config.run_peephole
            ? circuit::peephole(logical, &report.peephole)
            : logical;
        local_circ = circuit::decompose(optimized, config.decompose);
        report.counts = local_circ.counts();
        report.parallelism = circuit::parallelismProfile(local_circ);
        circ = &local_circ;
    }

    // Code-distance selection from the logical-op count and pP.
    auto kq = static_cast<double>(report.counts.total);
    report.target_logical_error =
        qec::CodeModel::targetLogicalError(kq);
    report.code_distance = config.force_distance > 0
        ? config.force_distance
        : qec::CodeModel::chooseDistance(config.tech.p_physical, kq);

    // One work item, dispatched over the engine registry: every
    // backend sees the same circuit, distance and seed.
    engine::WorkItem item;
    item.app = config.app;
    item.app_name = report.app_name;
    item.circuit = circ;
    item.circuit_fingerprint = fingerprint;
    item.config.tech = config.tech;
    item.config.code_distance = report.code_distance;
    item.config.policy = static_cast<int>(config.policy);
    item.config.epr_window_steps = config.epr_window_steps;
    item.config.num_simd_regions = config.num_simd_regions;
    item.config.hybrid_arbiter = config.hybrid_arbiter;
    item.config.layout_objective = config.layout_objective;
    item.config.lane_spacing = config.lane_spacing;
    item.config.defect_density = config.defect_density;
    item.config.defect_seed = config.defect_seed;
    item.config.defect_spec = config.defect_spec;
    item.config.seed = config.seed;

    const std::vector<std::string> default_backends{
        engine::backends::planar, engine::backends::double_defect};
    const std::vector<std::string> &names =
        config.backends.empty() ? default_backends : config.backends;

    // Observability sinks: one trace session spanning every backend
    // dispatched below, written out after the loop.
    const bool tracing =
        !config.trace_path.empty() || !config.metrics_path.empty();
    obs::TraceSession session;

    engine::Registry &registry = engine::Registry::global();
    size_t run_index = 0;
    // Scratch arena spanning the backend dispatches, reset between
    // them; scratch-aware callees (BFS working sets) bump-allocate
    // here instead of the heap.  Results are identical either way.
    Arena arena;
    for (const std::string &name : names) {
        arena.reset();
        Arena::Scope scope(&arena);
        const engine::Backend &backend = registry.get(name);
        backend.prepare(item);
        std::shared_ptr<const engine::PreparedArtifact> artifact;
        if (cache)
            artifact = service::fetchArtifact(*cache, backend, item);
        std::unique_ptr<obs::RunRecorder> rec;
        if (tracing) {
            rec = session.beginRun(run_index++, report.app_name,
                                   name);
            item.config.trace = rec.get();
        }
        engine::Metrics m = backend.run(item, artifact.get());
        if (rec) {
            item.config.trace = nullptr;
            session.endRun(std::move(rec));
        }
        if (m.backend == engine::backends::planar)
            report.planar = toBackendReport(m);
        else if (m.backend == engine::backends::double_defect)
            report.double_defect = toBackendReport(m);
        report.backend_metrics.push_back(std::move(m));
    }

    if (!config.trace_path.empty()) {
        std::ofstream os(config.trace_path);
        fatalIf(!os, "cannot open '", config.trace_path,
                "' for writing");
        session.writeTrace(os);
        std::string heat_path =
            obs::derivedPath(config.trace_path, "heatmap");
        std::ofstream hos(heat_path);
        fatalIf(!hos, "cannot open '", heat_path, "' for writing");
        session.writeHeatmap(hos);
    }
    if (!config.metrics_path.empty()) {
        std::ofstream os(config.metrics_path);
        fatalIf(!os, "cannot open '", config.metrics_path,
                "' for writing");
        session.writeMetrics(os, &obs::MetricsRegistry::global());
    }
    return report;
}

Report
runQasm(const std::string &qasm_source, const Config &config)
{
    if (config.use_cache) {
        // Keyed by a hash of the source text: repeated runs of one
        // QASM program skip the parse/flatten stage entirely.
        std::shared_ptr<const circuit::Circuit> circ =
            service::cachedQasmCircuit(
                service::PrepareCache::global(), qasm_source);
        return run(*circ, config);
    }
    qasm::Program prog = qasm::parse(qasm_source);
    circuit::Circuit circ = qasm::flatten(prog);
    return run(circ, config);
}

} // namespace qsurf::toolflow
