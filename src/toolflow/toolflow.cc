#include "toolflow/toolflow.h"

#include "common/logging.h"
#include "planar/planar.h"
#include "qasm/flatten.h"
#include "qasm/parser.h"
#include "qec/factory.h"

namespace qsurf::toolflow {

namespace {

/** Physical qubits of a machine with @p tiles logical tiles. */
double
physicalQubits(qec::CodeKind code, double logical_qubits, int d)
{
    return logical_qubits * qec::spaceOverheadFactor(code)
        * static_cast<double>(qec::tileQubits(code, d));
}

} // namespace

Report
run(const circuit::Circuit &logical, const Config &config)
{
    fatalIf(logical.empty(), "toolflow needs a non-empty circuit");
    config.tech.check();

    Report report;
    report.app_name =
        logical.name().empty() ? "circuit" : logical.name();

    // Frontend: optimize, decompose to Clifford+T and analyze
    // (Figure 4 left).
    circuit::Circuit optimized = config.run_peephole
        ? circuit::peephole(logical, &report.peephole)
        : logical;
    circuit::Circuit circ =
        circuit::decompose(optimized, config.decompose);
    report.counts = circ.counts();
    report.parallelism = circuit::parallelismProfile(circ);

    // Code-distance selection from the logical-op count and pP.
    auto kq = static_cast<double>(report.counts.total);
    report.target_logical_error =
        qec::CodeModel::targetLogicalError(kq);
    report.code_distance = config.force_distance > 0
        ? config.force_distance
        : qec::CodeModel::chooseDistance(config.tech.p_physical, kq);
    int d = report.code_distance;
    double cycle_s = config.tech.surfaceCycleNs() * 1e-9;
    auto q = static_cast<double>(circ.numQubits());

    // Double-defect backend: braid scheduling on the tiled machine.
    {
        braid::BraidOptions opts;
        opts.code_distance = d;
        opts.seed = config.seed;
        braid::BraidResult r =
            braid::scheduleBraids(circ, config.policy, opts);

        BackendReport &b = report.double_defect;
        b.code = qec::CodeKind::DoubleDefect;
        b.schedule_cycles = r.schedule_cycles;
        b.critical_path_cycles = r.critical_path_cycles;
        b.cp_ratio = r.ratio();
        b.mesh_utilization = r.mesh_utilization;
        b.physical_qubits =
            physicalQubits(qec::CodeKind::DoubleDefect, q, d);
        b.seconds =
            static_cast<double>(r.schedule_cycles) * cycle_s;
    }

    // Planar backend: Multi-SIMD scheduling + EPR pipelining.
    {
        planar::PlanarOptions opts;
        opts.code_distance = d;
        opts.num_regions = config.num_simd_regions;
        opts.epr_window_steps = config.epr_window_steps;
        opts.tech = config.tech;
        planar::PlanarResult r = planar::runPlanar(circ, opts);

        BackendReport &b = report.planar;
        b.code = qec::CodeKind::Planar;
        b.schedule_cycles = r.schedule_cycles;
        b.critical_path_cycles = r.critical_path_cycles;
        b.cp_ratio = r.ratio();
        b.teleports = r.teleports;
        b.peak_live_eprs = r.peak_live_eprs;
        b.physical_qubits =
            physicalQubits(qec::CodeKind::Planar, q, d);
        b.seconds =
            static_cast<double>(r.schedule_cycles) * cycle_s;
    }

    return report;
}

Report
runQasm(const std::string &qasm_source, const Config &config)
{
    qasm::Program prog = qasm::parse(qasm_source);
    circuit::Circuit circ = qasm::flatten(prog);
    return run(circ, config);
}

} // namespace qsurf::toolflow
