/**
 * @file
 * The end-to-end toolflow of Figure 4: logical compilation frontend,
 * code-distance selection, and both optimization/simulation backends
 * (braided double-defect and Multi-SIMD planar), producing the
 * space-time comparison the paper's evaluation is built on.
 *
 * This is the library's primary public entry point:
 *
 *   auto circ = qsurf::apps::generate(qsurf::apps::AppKind::SQ);
 *   auto report = qsurf::toolflow::run(circ);
 *   std::cout << qsurf::toolflow::format(report);
 */

#ifndef QSURF_TOOLFLOW_TOOLFLOW_H
#define QSURF_TOOLFLOW_TOOLFLOW_H

#include <string>
#include <vector>

#include "braid/scheduler.h"
#include "circuit/circuit.h"
#include "circuit/decompose.h"
#include "circuit/peephole.h"
#include "circuit/schedule.h"
#include "engine/backend.h"
#include "qec/code.h"
#include "qec/technology.h"

namespace qsurf::toolflow {

/** Configuration of one toolflow run. */
struct Config
{
    /** Technology characteristics (Figure 4's bottom input). */
    qec::Technology tech;

    /** Gate decomposition settings. */
    circuit::DecomposeConfig decompose;

    /** Run logical-level peephole optimization before decomposing. */
    bool run_peephole = true;

    /**
     * Route the frontend (parse/peephole/decompose/analyze) and the
     * per-backend machine layouts through the process-wide
     * PrepareCache, so repeated runs of one program warm-start.
     * Reports are bit-identical either way.
     */
    bool use_cache = true;

    /** Braid priority policy for the double-defect backend. */
    braid::Policy policy = braid::Policy::Combined;

    /**
     * Scheme arbiter for the "hybrid/mixed-sim" backend when it is
     * listed in `backends` (a hybrid::ArbiterKind index; 0 =
     * cost-model greedy).
     */
    int hybrid_arbiter = 0;

    /**
     * Patch-layout objective for the surgery and hybrid backends (a
     * partition::LayoutObjective index): 0 braid-manhattan,
     * 1 corridor, 2 corridor+lanes.  Braid backends ignore it.
     */
    int layout_objective = 0;

    /** Patch rows/columns between dedicated ancilla lanes (used by
     *  layout_objective 2). */
    int lane_spacing = 4;

    /** EPR lookahead window for the planar backend (steps). */
    int epr_window_steps = 32;

    /** SIMD regions in the planar machine. */
    int num_simd_regions = 4;

    /** Code distance override; 0 selects from KQ and pP. */
    int force_distance = 0;

    /** Layout / tie-break RNG seed. */
    uint64_t seed = 1;

    /** Fabric defect density for the simulated mesh backends
     *  (fraction of tiles knocked out; 0 = perfect fabric). */
    double defect_density = 0;

    /** Defect-map generator seed (independent of `seed`). */
    uint64_t defect_seed = 0;

    /** Explicit device defect spec as JSON (see
     *  fabric::DefectParams::spec_json); overrides the generator. */
    std::string defect_spec;

    /**
     * Engine backends to dispatch to, by registry name; empty runs
     * the two simulation backends the paper compares ("planar" and
     * "double-defect").
     */
    std::vector<std::string> backends;

    /**
     * Application scaling profile for analytic model backends in
     * `backends`; the simulation backends ignore it (they work from
     * the circuit alone).
     */
    apps::AppKind app = apps::AppKind::SQ;

    /**
     * When non-empty, record structured events from every backend
     * run and write them here as Chrome trace-event JSON (load it
     * with Perfetto), plus a "<stem>.heatmap.json" per-link mesh
     * congestion heatmap next to it.  Tracing never changes
     * results.
     */
    std::string trace_path;

    /**
     * When non-empty, write the aggregate counter/histogram registry
     * here as JSON: event-derived aggregates of this run's backends
     * (when tracing) merged with the process-wide wall-clock
     * registry (service / sweep telemetry).
     */
    std::string metrics_path;
};

/** Per-backend outcome. */
struct BackendReport
{
    qec::CodeKind code = qec::CodeKind::Planar;
    uint64_t schedule_cycles = 0;
    uint64_t critical_path_cycles = 0;
    double cp_ratio = 0;          ///< schedule / critical path.
    double mesh_utilization = 0;  ///< double-defect only.
    uint64_t teleports = 0;       ///< planar only.
    uint64_t peak_live_eprs = 0;  ///< planar only.
    double physical_qubits = 0;
    double seconds = 0;

    /** @return the space-time product (qubits x seconds). */
    double spaceTime() const { return physical_qubits * seconds; }
};

/** Full report of one toolflow run. */
struct Report
{
    std::string app_name;
    circuit::OpCounts counts;               ///< Post-decomposition.
    circuit::ParallelismProfile parallelism;
    circuit::PeepholeStats peephole;        ///< Frontend rewrites.
    int code_distance = 0;
    double target_logical_error = 0;
    BackendReport planar;
    BackendReport double_defect;

    /**
     * Uniform engine metrics of every backend that ran, in dispatch
     * order (includes any extra Config::backends entries).
     */
    std::vector<engine::Metrics> backend_metrics;

    /** @return the code with the smaller space-time product. */
    qec::CodeKind
    recommended() const
    {
        return planar.spaceTime() <= double_defect.spaceTime()
            ? qec::CodeKind::Planar
            : qec::CodeKind::DoubleDefect;
    }
};

/** Run the full toolflow on a logical circuit. */
Report run(const circuit::Circuit &logical, const Config &config = {});

/** Parse QASM source, flatten, and run the full toolflow. */
Report runQasm(const std::string &qasm_source,
               const Config &config = {});

/** Render a report as a human-readable multi-table summary. */
std::string format(const Report &report);

} // namespace qsurf::toolflow

#endif // QSURF_TOOLFLOW_TOOLFLOW_H
