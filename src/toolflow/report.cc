#include <sstream>

#include "common/table.h"
#include "engine/registry.h"
#include "toolflow/toolflow.h"

namespace qsurf::toolflow {

std::string
format(const Report &report)
{
    std::ostringstream os;

    Table frontend("Frontend analysis: " + report.app_name);
    frontend.header({"metric", "value"});
    frontend.addRow("logical ops (KQ)", report.counts.total);
    frontend.addRow("2-qubit ops", report.counts.two_qubit);
    frontend.addRow("T gates", report.counts.t_gates);
    frontend.addRow("critical-path depth", report.parallelism.depth);
    frontend.addRow("parallelism factor",
                    Table::fixed(report.parallelism.factor, 2));
    frontend.addRow("target pL",
                    Table::num(report.target_logical_error));
    frontend.addRow("code distance d", report.code_distance);
    frontend.print(os);

    Table backends("Backend comparison (planar vs double-defect)");
    backends.header({"metric", "planar", "double-defect"});
    backends.addRow("schedule cycles",
                    report.planar.schedule_cycles,
                    report.double_defect.schedule_cycles);
    backends.addRow("critical path",
                    report.planar.critical_path_cycles,
                    report.double_defect.critical_path_cycles);
    backends.addRow("sched/CP ratio",
                    Table::fixed(report.planar.cp_ratio, 2),
                    Table::fixed(report.double_defect.cp_ratio, 2));
    backends.addRow("mesh utilization", std::string("-"),
                    Table::fixed(
                        report.double_defect.mesh_utilization, 3));
    backends.addRow("teleports", report.planar.teleports,
                    static_cast<uint64_t>(0));
    backends.addRow("peak live EPRs", report.planar.peak_live_eprs,
                    static_cast<uint64_t>(0));
    backends.addRow("physical qubits",
                    Table::num(report.planar.physical_qubits),
                    Table::num(report.double_defect.physical_qubits));
    backends.addRow("seconds", Table::num(report.planar.seconds),
                    Table::num(report.double_defect.seconds));
    backends.addRow("space-time (qubit-s)",
                    Table::num(report.planar.spaceTime()),
                    Table::num(report.double_defect.spaceTime()));
    backends.print(os);

    // Any further registry backends the config requested (e.g. the
    // lattice-surgery simulator) render uniformly from their engine
    // metrics.
    bool any_extra = false;
    Table extras("Additional backends");
    extras.header({"backend", "schedule cycles", "sched/CP",
                   "physical qubits", "space-time (qubit-s)"});
    for (const engine::Metrics &m : report.backend_metrics) {
        if (m.backend == engine::backends::planar
            || m.backend == engine::backends::double_defect)
            continue;
        any_extra = true;
        extras.addRow(m.backend, m.schedule_cycles,
                      Table::fixed(m.ratio(), 2),
                      Table::num(m.physical_qubits),
                      Table::num(m.spaceTime()));
    }
    if (any_extra)
        extras.print(os);

    os << "recommended code: "
       << qec::codeKindName(report.recommended()) << "\n";
    return os.str();
}

} // namespace qsurf::toolflow
