/**
 * @file
 * Structured event tracing across every simulated backend.
 *
 * A TraceRecorder is a hook the schedulers call at their decision
 * points — op lifecycle, route claims and denials, corridor holds,
 * teleport channel use, factory replenish/starve, arbiter scheme
 * picks, fast-forward skips.  The hook is a raw pointer defaulting
 * to null in every options struct, and every emission site is
 * guarded by `if (trace)`, so runs without tracing pay one untaken
 * branch per event site and nothing else.  Tracing never changes
 * simulation behaviour: results are bit-identical with tracing on or
 * off, at any thread count.
 *
 * Event streams are pinned identical between fast-forward and
 * stepped execution (modulo the FastForwardSkip events themselves).
 * Success-path events only happen on passes that make progress, and
 * fast-forward executes every progress pass.  Stall-path events
 * (RouteDeny, FactoryStarve) are gated by stallEventGate(): they are
 * recorded only on passes a fast-forwarding scheduler provably also
 * executes — the first attempt after an op becomes ready or is
 * re-queued (wait == 0) and the adapt/bfs escalation-threshold
 * crossings, which are exactly fast-forward's wake-up targets.  The
 * gate is a pure function of the op's wait counter, so both modes
 * agree on it.  Replenish events are timestamped with the factory's
 * production deadline (not the observation cycle), which the bulk
 * catch-up loop reproduces exactly.
 *
 * Three sinks (see TraceSession::write*): a Chrome trace-event JSON
 * that Perfetto loads directly, a per-link busy-cycle heatmap (the
 * spatial congestion input the ROADMAP's congestion-aware layout
 * items need), and the aggregate counter/histogram registry in
 * obs/metrics.h.
 */

#ifndef QSURF_OBS_TRACE_H
#define QSURF_OBS_TRACE_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace qsurf::network {
class Mesh;
struct Path;
} // namespace qsurf::network

namespace qsurf::obs {

/** Typed trace events.  The enum order is the canonical same-cycle
 *  sort order (ready before issue before retire...). */
enum class EventKind : uint8_t
{
    OpReady = 0,       ///< Op entered a ready queue (a = stage).
    OpIssue,           ///< Op placed; a = lane, b = hold cycles.
    OpRetire,          ///< Op finished and released its resources.
    RouteClaim,        ///< Route claimed; a = fallback stage
                       ///  (0 primary / 1 transpose / 2 bfs),
                       ///  b = hops, c = factory index or -1.
    RouteFallback,     ///< Claim needed a fallback; a = stage.
    RouteDeny,         ///< Claim failed (gated; see stallEventGate).
    RouteDrop,         ///< Op hit drop_timeout and was re-queued.
    ChainHold,         ///< Surgery chain; a = tiles, b = hold cycles.
    TeleportChannel,   ///< EPR transport; a = start, b = arrival.
    TeleportStall,     ///< Planar step waited; a = stall cycles.
    FactoryReplenish,  ///< Magic state produced; op = factory,
                       ///  a = stock after.
    FactoryStarve,     ///< No magic state available (gated).
    ArbiterDecision,   ///< Hybrid scheme pick; a = scheme, b = tiles,
                       ///  c = 1 on a reactive re-decision.
    FastForwardSkip,   ///< Cycles elided; a = skipped count
                       ///  (ff mode only; filtered in comparisons).
};

/** @return the stable lowercase name of @p kind ("route_deny"). */
const char *eventKindName(EventKind kind);

/** Number of EventKind values (for per-kind counter arrays). */
inline constexpr int num_event_kinds =
    static_cast<int>(EventKind::FastForwardSkip) + 1;

/** One trace event.  Interpretation of a/b/c depends on kind. */
struct TraceEvent
{
    uint64_t cycle = 0;
    EventKind kind = EventKind::OpReady;
    int32_t op = -1; ///< Scheduler op id, factory or step index.
    int64_t a = 0;
    int64_t b = 0;
    int64_t c = 0;

    friend bool operator==(const TraceEvent &,
                           const TraceEvent &) = default;
};

/**
 * Should a stall on this pass emit a RouteDeny/FactoryStarve event?
 *
 * True exactly on the passes both execution modes run: the first
 * attempt (wait == 0, which follows a ready/retire/drop pass that
 * always executes) and the adapt/bfs threshold crossings
 * (fast-forward's stalled-op wake-up targets).  Intermediate waits
 * are elided by fast-forward, so emitting there would make the
 * streams diverge.
 */
inline bool
stallEventGate(int wait_used, int adapt_timeout, int bfs_timeout)
{
    return wait_used == 0 || wait_used == adapt_timeout
        || wait_used == bfs_timeout;
}

/**
 * The scheduler-facing hook.  The base class is the null recorder:
 * every virtual is a no-op, so a bench can measure pure dispatch
 * cost by pointing schedulers at a plain TraceRecorder (the real
 * "null vs off" overhead row in BENCH_perf.json).
 */
class TraceRecorder
{
  public:
    virtual ~TraceRecorder() = default;

    /** Record one event. */
    virtual void record(const TraceEvent &) {}

    /** Announce the mesh dimensions (sizes the heatmap). */
    virtual void meshDims(int /*width*/, int /*height*/) {}

    /**
     * Announce one permanently defective mesh resource, after
     * meshDims(): @p dir is -1 for the router at (x, y), 0 for its
     * +x link, 1 for its +y link — the heatmap's link addressing.
     */
    virtual void meshDefect(int /*x*/, int /*y*/, int /*dir*/) {}

    /**
     * A route's links are held for [start, start + duration) —
     * the heatmap's input.  Called alongside the RouteClaim /
     * ChainHold event for the same claim.
     */
    virtual void routeHeld(const network::Path & /*route*/,
                           uint64_t /*start*/,
                           uint64_t /*duration*/)
    {
    }
};

/** Alias making "null recorder" call sites self-describing. */
using NullTraceRecorder = TraceRecorder;

/**
 * Emit @p mesh's permanent damage through @p trace->meshDefect() —
 * the schedulers call this right after meshDims() so the heatmap
 * sinks can overlay defective resources on the congestion grid.
 * Null @p trace or a pristine mesh is a no-op.
 */
void traceMeshDefects(TraceRecorder *trace,
                      const network::Mesh &mesh);

/**
 * Per-link busy-cycle accumulator with time bucketing.  Link ids are
 * derived from route geometry alone: link (x, y, dir) is the link
 * leaving node (x, y) toward +x (dir 0) or +y (dir 1).  Buckets
 * start at 64 cycles wide and double (folding pairwise) whenever a
 * hold lands past the last of the 64 buckets, so any run length maps
 * onto a fixed-size dense grid.
 */
class HeatmapAccumulator
{
  public:
    static constexpr int max_buckets = 64;

    /** Size (or resize) to a @p width x @p height mesh. */
    void configure(int width, int height);

    /** Accumulate @p duration busy cycles starting at @p start over
     *  every link of @p route. */
    void add(const network::Path &route, uint64_t start,
             uint64_t duration);

    bool configured() const { return width_ > 0; }
    int width() const { return width_; }
    int height() const { return height_; }
    uint64_t bucketCycles() const { return bucket_cycles_; }

    /** @return the busy-cycle total of link (x, y, dir) summed over
     *  all buckets. */
    double linkTotal(int x, int y, int dir) const;

    /** @return busy cycles of link (x, y, dir) in bucket @p b. */
    double at(int x, int y, int dir, int b) const;

  private:
    void widen();
    size_t linkIndex(int x, int y, int dir) const;

    int width_ = 0;
    int height_ = 0;
    uint64_t bucket_cycles_ = 64;
    /** Dense [link][bucket] grid, link-major. */
    std::vector<double> cells_;
};

/**
 * The recorder of one backend run: buffers events, accumulates the
 * heatmap, and canonicalizes on finish().  Not thread-safe — each
 * run owns exactly one recorder (sweep workers never share one).
 */
class RunRecorder final : public TraceRecorder
{
  public:
    RunRecorder(size_t run_index, std::string label,
                std::string backend)
        : run_index_(run_index), label_(std::move(label)),
          backend_(std::move(backend))
    {
    }

    /** One defective mesh resource: dir -1 names the router at
     *  (x, y), 0/1 its +x / +y link (heatmap link addressing). */
    struct Defect
    {
        int x = 0;
        int y = 0;
        int dir = -1;

        friend bool operator==(const Defect &,
                               const Defect &) = default;
    };

    void record(const TraceEvent &e) override;
    void meshDims(int width, int height) override;
    void meshDefect(int x, int y, int dir) override;
    void routeHeld(const network::Path &route, uint64_t start,
                   uint64_t duration) override;

    /**
     * Canonicalize: stable-sort the event buffer by (cycle, kind,
     * op, a, b, c).  Within one cycle the two execution modes (and
     * the scheduler's internal phases) may interleave event kinds
     * differently; the canonical order makes equal histories compare
     * equal.  Idempotent.
     */
    void finish();

    size_t runIndex() const { return run_index_; }
    const std::string &label() const { return label_; }
    const std::string &backend() const { return backend_; }
    const std::vector<TraceEvent> &events() const { return events_; }
    const HeatmapAccumulator &heatmap() const { return heatmap_; }
    const std::vector<Defect> &defects() const { return defects_; }

  private:
    size_t run_index_;
    std::string label_;
    std::string backend_;
    std::vector<TraceEvent> events_;
    HeatmapAccumulator heatmap_;
    std::vector<Defect> defects_;
};

/**
 * A tracing session aggregating any number of runs (e.g. every point
 * of a sweep).  beginRun()/endRun() are thread-safe; runs are keyed
 * by their caller-assigned index, so the written files depend only
 * on the run set, never on completion order or thread count.
 */
class TraceSession
{
  public:
    /** @return a fresh recorder for run @p index.  The caller wires
     *  it into the scheduler options and hands it back to endRun. */
    std::unique_ptr<RunRecorder> beginRun(size_t index,
                                          std::string label,
                                          std::string backend);

    /** Finish @p rec, fold its event-derived metrics into the
     *  session registry, and store it for the sinks. */
    void endRun(std::unique_ptr<RunRecorder> rec);

    /** @return the number of runs ended so far. */
    size_t runs() const;

    /** Event-derived aggregate metrics over all ended runs
     *  (deterministic at any thread count). */
    const MetricsRegistry &metrics() const { return metrics_; }

    /** Write all runs as Chrome trace-event JSON (Perfetto "Open
     *  trace file"): one process per run, one track per lane. */
    void writeTrace(std::ostream &os) const;

    /** Write every run's heatmap as JSON (schema in the README). */
    void writeHeatmap(std::ostream &os) const;

    /** Write the session metrics registry (merged with @p extra when
     *  non-null, e.g. the process-wide wall-clock registry). */
    void writeMetrics(std::ostream &os,
                      const MetricsRegistry *extra = nullptr) const;

  private:
    std::vector<const RunRecorder *> sortedRuns() const;
    void aggregate(const RunRecorder &rec);

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<RunRecorder>> ended_;
    MetricsRegistry metrics_;
};

/** @return "<stem>.<suffix>.json" for "<stem>[.json]" — the derived
 *  heatmap path of a --trace output. */
std::string derivedPath(const std::string &path,
                        const std::string &suffix);

} // namespace qsurf::obs

#endif // QSURF_OBS_TRACE_H
