/**
 * @file
 * Aggregate telemetry registry: named counters, gauges and
 * log-bucketed histograms with deterministic percentile estimates.
 *
 * The registry is the third observability sink (next to the Chrome
 * trace and the congestion heatmap, see obs/trace.h): schedulers feed
 * it event-derived distributions (op wait, corridor hold), the
 * compile service feeds it wall-clock telemetry (request latency,
 * queue depth, per-shard cache traffic), and the sweep driver feeds
 * it per-point phase timings.  Event-derived metrics are
 * bit-identical at any thread count because histogram aggregation is
 * commutative; wall-clock metrics naturally are not and live in the
 * process-wide global() registry, kept apart from the per-session
 * one.
 */

#ifndef QSURF_OBS_METRICS_H
#define QSURF_OBS_METRICS_H

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace qsurf::obs {

/**
 * One histogram's summary: count/sum/min/max plus percentile
 * estimates.  Percentiles are lower bounds of the log-spaced bucket
 * the rank falls in (deterministic, ~19% worst-case relative error
 * from the 4-per-octave bucketing).
 */
struct HistogramSummary
{
    uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;

    double
    mean() const
    {
        return count ? sum / static_cast<double>(count) : 0.0;
    }
};

/** Point-in-time copy of a registry's contents, sorted by name. */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramSummary>> histograms;

    bool
    empty() const
    {
        return counters.empty() && gauges.empty()
            && histograms.empty();
    }
};

/**
 * Thread-safe registry of named counters, gauges and histograms.
 *
 * Naming convention (see README "Observability"): dot-separated
 * lowercase paths, subsystem first — "obs.events.route_deny",
 * "service.request.latency_ms", "sweep.phase.run_ms",
 * "cache.shard0.hits".  Histograms carry their unit as the final
 * path segment ("_ms", "_cycles").
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Add @p delta to counter @p name (creating it at zero). */
    void inc(const std::string &name, uint64_t delta = 1);

    /** Set gauge @p name to @p v (last write wins). */
    void set(const std::string &name, double v);

    /** Record one observation @p v into histogram @p name. */
    void observe(const std::string &name, double v);

    /** Merge every metric of @p other into this registry:
     *  counters add, gauges overwrite, histograms merge bucketwise. */
    void merge(const MetricsRegistry &other);

    /** Drop every metric (used by tests and benches between runs). */
    void reset();

    /** @return a sorted copy of the current contents. */
    MetricsSnapshot snapshot() const;

    /**
     * The process-wide registry service and sweep wall-clock
     * telemetry lands in by default.
     */
    static MetricsRegistry &global();

  private:
    /**
     * Log-spaced histogram: 4 buckets per power of two over
     * [2^-16, 2^48), plus an underflow bucket for values < 2^-16
     * (including zero and negatives).  Bucket index is a pure
     * function of the value, so parallel aggregation in any order
     * produces identical summaries.
     */
    struct Histogram
    {
        static constexpr int sub_buckets = 4;
        static constexpr int min_exp = -16;
        static constexpr int max_exp = 48;
        static constexpr int num_buckets =
            (max_exp - min_exp) * sub_buckets + 1;

        uint64_t count = 0;
        double sum = 0;
        double min = 0;
        double max = 0;
        std::vector<uint64_t> buckets;

        void observe(double v);
        void merge(const Histogram &other);
        HistogramSummary summarize() const;

        static int bucketOf(double v);
        static double bucketLowerBound(int b);
    };

    mutable std::mutex mutex;
    std::map<std::string, uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, Histogram> histograms;
};

/**
 * Write @p snap as a JSON object:
 *
 *   {"counters": {name: n, ...},
 *    "gauges": {name: v, ...},
 *    "histograms": {name: {"count": n, "sum": s, "mean": m,
 *                          "min": lo, "max": hi,
 *                          "p50": a, "p95": b, "p99": c}, ...}}
 */
void writeMetricsJson(std::ostream &os, const MetricsSnapshot &snap);

} // namespace qsurf::obs

#endif // QSURF_OBS_METRICS_H
