#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/json.h"

namespace qsurf::obs {

void
MetricsRegistry::inc(const std::string &name, uint64_t delta)
{
    std::lock_guard<std::mutex> lock(mutex);
    counters[name] += delta;
}

void
MetricsRegistry::set(const std::string &name, double v)
{
    std::lock_guard<std::mutex> lock(mutex);
    gauges[name] = v;
}

void
MetricsRegistry::observe(const std::string &name, double v)
{
    std::lock_guard<std::mutex> lock(mutex);
    histograms[name].observe(v);
}

void
MetricsRegistry::merge(const MetricsRegistry &other)
{
    // Copy under the source lock first, then fold in under ours, so
    // the two locks are never held together (no ordering deadlock).
    MetricsSnapshot src;
    std::map<std::string, Histogram> src_hists;
    {
        std::lock_guard<std::mutex> lock(other.mutex);
        src.counters.assign(other.counters.begin(),
                            other.counters.end());
        src.gauges.assign(other.gauges.begin(), other.gauges.end());
        src_hists = other.histograms;
    }
    std::lock_guard<std::mutex> lock(mutex);
    for (const auto &[name, v] : src.counters)
        counters[name] += v;
    for (const auto &[name, v] : src.gauges)
        gauges[name] = v;
    for (const auto &[name, h] : src_hists)
        histograms[name].merge(h);
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex);
    counters.clear();
    gauges.clear();
    histograms.clear();
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(mutex);
    snap.counters.assign(counters.begin(), counters.end());
    snap.gauges.assign(gauges.begin(), gauges.end());
    snap.histograms.reserve(histograms.size());
    for (const auto &[name, h] : histograms)
        snap.histograms.emplace_back(name, h.summarize());
    return snap;
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

int
MetricsRegistry::Histogram::bucketOf(double v)
{
    if (!(v >= std::ldexp(1.0, min_exp)))
        return 0; // Underflow: tiny, zero, negative, NaN.
    int exp = 0;
    double frac = std::frexp(v, &exp); // v = frac * 2^exp, frac in [0.5, 1).
    // Sub-bucket within the octave, from the leading fraction bits.
    int sub = static_cast<int>((frac - 0.5) * 2 * sub_buckets);
    sub = std::min(sub, sub_buckets - 1);
    int b = (exp - 1 - min_exp) * sub_buckets + sub + 1;
    return std::clamp(b, 0, num_buckets - 1);
}

double
MetricsRegistry::Histogram::bucketLowerBound(int b)
{
    if (b <= 0)
        return 0;
    int idx = b - 1;
    int exp = min_exp + idx / sub_buckets;
    int sub = idx % sub_buckets;
    return std::ldexp(1.0 + static_cast<double>(sub) / sub_buckets,
                      exp);
}

void
MetricsRegistry::Histogram::observe(double v)
{
    if (buckets.empty())
        buckets.assign(num_buckets, 0);
    if (count == 0) {
        min = v;
        max = v;
    } else {
        min = std::min(min, v);
        max = std::max(max, v);
    }
    ++count;
    sum += v;
    ++buckets[static_cast<size_t>(bucketOf(v))];
}

void
MetricsRegistry::Histogram::merge(const Histogram &other)
{
    if (other.count == 0)
        return;
    if (buckets.empty())
        buckets.assign(num_buckets, 0);
    if (count == 0) {
        min = other.min;
        max = other.max;
    } else {
        min = std::min(min, other.min);
        max = std::max(max, other.max);
    }
    count += other.count;
    sum += other.sum;
    for (size_t b = 0; b < other.buckets.size(); ++b)
        buckets[b] += other.buckets[b];
}

HistogramSummary
MetricsRegistry::Histogram::summarize() const
{
    HistogramSummary s;
    s.count = count;
    s.sum = sum;
    s.min = min;
    s.max = max;
    if (count == 0)
        return s;
    auto percentile = [&](double p) {
        // Rank of the p-th percentile (1-based, ceil).
        auto rank = static_cast<uint64_t>(
            std::ceil(p * static_cast<double>(count)));
        rank = std::max<uint64_t>(rank, 1);
        uint64_t seen = 0;
        for (size_t b = 0; b < buckets.size(); ++b) {
            seen += buckets[b];
            if (seen >= rank)
                return bucketLowerBound(static_cast<int>(b));
        }
        return max;
    };
    s.p50 = percentile(0.50);
    s.p95 = percentile(0.95);
    s.p99 = percentile(0.99);
    return s;
}

void
writeMetricsJson(std::ostream &os, const MetricsSnapshot &snap)
{
    JsonWriter j(os);
    j.beginObject();
    j.key("counters");
    j.beginObject();
    for (const auto &[name, v] : snap.counters)
        j.field(name, v);
    j.endObject();
    j.key("gauges");
    j.beginObject();
    for (const auto &[name, v] : snap.gauges)
        j.field(name, v);
    j.endObject();
    j.key("histograms");
    j.beginObject();
    for (const auto &[name, h] : snap.histograms) {
        j.key(name);
        j.beginObject();
        j.field("count", h.count);
        j.field("sum", h.sum);
        j.field("mean", h.mean());
        j.field("min", h.min);
        j.field("max", h.max);
        j.field("p50", h.p50);
        j.field("p95", h.p95);
        j.field("p99", h.p99);
        j.endObject();
    }
    j.endObject();
    j.endObject();
    os << "\n";
}

} // namespace qsurf::obs
