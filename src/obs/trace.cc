#include "obs/trace.h"

#include <algorithm>
#include <tuple>
#include <unordered_map>

#include "common/json.h"
#include "common/logging.h"
#include "network/mesh.h"

namespace qsurf::obs {

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::OpReady:          return "op_ready";
      case EventKind::OpIssue:          return "op_issue";
      case EventKind::OpRetire:         return "op_retire";
      case EventKind::RouteClaim:       return "route_claim";
      case EventKind::RouteFallback:    return "route_fallback";
      case EventKind::RouteDeny:        return "route_deny";
      case EventKind::RouteDrop:        return "route_drop";
      case EventKind::ChainHold:        return "chain_hold";
      case EventKind::TeleportChannel:  return "teleport_channel";
      case EventKind::TeleportStall:    return "teleport_stall";
      case EventKind::FactoryReplenish: return "factory_replenish";
      case EventKind::FactoryStarve:    return "factory_starve";
      case EventKind::ArbiterDecision:  return "arbiter_decision";
      case EventKind::FastForwardSkip:  return "fast_forward_skip";
    }
    return "unknown";
}

namespace {

/**
 * Display name of an op-issue lane.  Lanes are scheme-relative: the
 * schedulers stamp OpIssue.a with their own lane index, and the
 * backend name picks the vocabulary.
 */
const char *
laneName(const std::string &backend, int64_t lane)
{
    if (backend.find("hybrid") != std::string::npos) {
        switch (lane) {
          case 0: return "ops/local";
          case 1: return "ops/braid";
          case 2: return "ops/teleport";
          case 3: return "ops/surgery";
        }
    } else if (backend.find("surgery") != std::string::npos) {
        switch (lane) {
          case 0: return "ops/local";
          case 1: return "ops/t-chain";
          case 2: return "ops/merge-chain";
        }
    } else if (backend.find("double-defect") != std::string::npos) {
        switch (lane) {
          case 0: return "ops/local";
          case 1: return "ops/t-braid";
          case 2: return "ops/cnot-braid";
        }
    }
    return "ops";
}

/** Fixed Chrome-trace track (tid) layout within each run's process. */
enum Track : int
{
    track_lane0 = 0, // ops/<lane> tracks occupy [0, 3].
    track_lifecycle = 9,
    track_routes = 10,
    track_corridors = 11,
    track_factories = 12,
    track_channels = 13,
    track_ff = 14,
};

int
trackOf(const TraceEvent &e)
{
    switch (e.kind) {
      case EventKind::OpIssue:
        return track_lane0 + static_cast<int>(std::clamp<int64_t>(
                                 e.a, 0, 3));
      case EventKind::OpReady:
      case EventKind::OpRetire:
        return track_lifecycle;
      case EventKind::RouteClaim:
      case EventKind::RouteFallback:
      case EventKind::RouteDeny:
      case EventKind::RouteDrop:
        return track_routes;
      case EventKind::ChainHold:
        return track_corridors;
      case EventKind::FactoryReplenish:
      case EventKind::FactoryStarve:
        return track_factories;
      case EventKind::TeleportChannel:
      case EventKind::TeleportStall:
        return track_channels;
      case EventKind::FastForwardSkip:
        return track_ff;
    }
    return track_lifecycle;
}

} // namespace

// --------------------------------------------------- HeatmapAccumulator

void
HeatmapAccumulator::configure(int width, int height)
{
    width_ = width;
    height_ = height;
    bucket_cycles_ = 64;
    cells_.assign(static_cast<size_t>(width) * height * 2
                      * max_buckets,
                  0.0);
}

size_t
HeatmapAccumulator::linkIndex(int x, int y, int dir) const
{
    return (static_cast<size_t>(y) * width_ + x) * 2
        + static_cast<size_t>(dir);
}

void
HeatmapAccumulator::widen()
{
    // Fold buckets pairwise: bucket b absorbs buckets 2b and 2b+1.
    for (size_t link = 0;
         link < cells_.size() / max_buckets; ++link) {
        double *row = cells_.data() + link * max_buckets;
        for (int b = 0; b < max_buckets / 2; ++b)
            row[b] = row[2 * b] + row[2 * b + 1];
        for (int b = max_buckets / 2; b < max_buckets; ++b)
            row[b] = 0;
    }
    bucket_cycles_ *= 2;
}

void
HeatmapAccumulator::add(const network::Path &route, uint64_t start,
                        uint64_t duration)
{
    if (!configured() || route.nodes.size() < 2 || duration == 0)
        return;
    uint64_t end = start + duration;
    while (end > bucket_cycles_ * max_buckets)
        widen();
    for (size_t i = 0; i + 1 < route.nodes.size(); ++i) {
        const Coord &a = route.nodes[i];
        const Coord &b = route.nodes[i + 1];
        // The link id lives at the lesser endpoint; dir 0 = +x,
        // dir 1 = +y.
        int lx = std::min(a.x, b.x);
        int ly = std::min(a.y, b.y);
        int dir = a.x == b.x ? 1 : 0;
        double *row =
            cells_.data() + linkIndex(lx, ly, dir) * max_buckets;
        // Distribute the hold across every bucket it overlaps.
        for (uint64_t c = start; c < end;) {
            uint64_t b_idx = c / bucket_cycles_;
            uint64_t b_end = (b_idx + 1) * bucket_cycles_;
            uint64_t chunk = std::min(end, b_end) - c;
            row[b_idx] += static_cast<double>(chunk);
            c += chunk;
        }
    }
}

double
HeatmapAccumulator::linkTotal(int x, int y, int dir) const
{
    if (!configured())
        return 0;
    const double *row =
        cells_.data() + linkIndex(x, y, dir) * max_buckets;
    double total = 0;
    for (int b = 0; b < max_buckets; ++b)
        total += row[b];
    return total;
}

double
HeatmapAccumulator::at(int x, int y, int dir, int b) const
{
    if (!configured() || b < 0 || b >= max_buckets)
        return 0;
    return cells_[linkIndex(x, y, dir) * max_buckets + b];
}

// --------------------------------------------------------- RunRecorder

void
RunRecorder::record(const TraceEvent &e)
{
    events_.push_back(e);
}

void
RunRecorder::meshDims(int width, int height)
{
    heatmap_.configure(width, height);
}

void
RunRecorder::meshDefect(int x, int y, int dir)
{
    defects_.push_back({x, y, dir});
}

void
traceMeshDefects(TraceRecorder *trace, const network::Mesh &mesh)
{
    if (!trace
        || mesh.numDefectiveNodes() + mesh.numDefectiveLinks() == 0)
        return;
    // Scan order (row-major, node before its +x then +y link) is the
    // canonical emission order, independent of how the damage was
    // applied.
    for (int y = 0; y < mesh.height(); ++y)
        for (int x = 0; x < mesh.width(); ++x) {
            Coord c{x, y};
            if (mesh.nodeDefective(c))
                trace->meshDefect(x, y, -1);
            if (x + 1 < mesh.width()
                && mesh.linkDefective(c, {x + 1, y}))
                trace->meshDefect(x, y, 0);
            if (y + 1 < mesh.height()
                && mesh.linkDefective(c, {x, y + 1}))
                trace->meshDefect(x, y, 1);
        }
}

void
RunRecorder::routeHeld(const network::Path &route, uint64_t start,
                       uint64_t duration)
{
    heatmap_.add(route, start, duration);
}

void
RunRecorder::finish()
{
    std::stable_sort(
        events_.begin(), events_.end(),
        [](const TraceEvent &l, const TraceEvent &r) {
            return std::tie(l.cycle, l.kind, l.op, l.a, l.b, l.c)
                < std::tie(r.cycle, r.kind, r.op, r.a, r.b, r.c);
        });
}

// -------------------------------------------------------- TraceSession

std::unique_ptr<RunRecorder>
TraceSession::beginRun(size_t index, std::string label,
                       std::string backend)
{
    return std::make_unique<RunRecorder>(index, std::move(label),
                                         std::move(backend));
}

void
TraceSession::endRun(std::unique_ptr<RunRecorder> rec)
{
    if (!rec)
        return;
    rec->finish();
    aggregate(*rec);
    std::lock_guard<std::mutex> lock(mutex_);
    ended_.push_back(std::move(rec));
}

size_t
TraceSession::runs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ended_.size();
}

void
TraceSession::aggregate(const RunRecorder &rec)
{
    // All metrics here derive from the (canonically sorted) event
    // stream alone, and fold in through commutative operations, so
    // the session registry is identical at any thread count.
    std::unordered_map<int32_t, uint64_t> last_ready;
    for (const TraceEvent &e : rec.events()) {
        metrics_.inc(std::string("obs.events.")
                     + eventKindName(e.kind));
        switch (e.kind) {
          case EventKind::OpReady:
            last_ready[e.op] = e.cycle;
            break;
          case EventKind::OpIssue: {
            auto it = last_ready.find(e.op);
            if (it != last_ready.end()) {
                metrics_.observe(
                    "obs.op_wait_cycles",
                    static_cast<double>(e.cycle - it->second));
                last_ready.erase(it);
            }
            break;
          }
          case EventKind::ChainHold:
            metrics_.observe("obs.chain_hold_cycles",
                             static_cast<double>(e.b));
            break;
          case EventKind::RouteClaim:
            metrics_.observe("obs.route_hops",
                             static_cast<double>(e.b));
            break;
          case EventKind::TeleportStall:
            metrics_.observe("obs.teleport_stall_cycles",
                             static_cast<double>(e.a));
            break;
          default:
            break;
        }
    }
}

std::vector<const RunRecorder *>
TraceSession::sortedRuns() const
{
    std::vector<const RunRecorder *> runs;
    runs.reserve(ended_.size());
    for (const auto &rec : ended_)
        runs.push_back(rec.get());
    std::sort(runs.begin(), runs.end(),
              [](const RunRecorder *l, const RunRecorder *r) {
                  return l->runIndex() < r->runIndex();
              });
    return runs;
}

void
TraceSession::writeTrace(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    JsonWriter j(os);
    j.beginObject();
    j.field("displayTimeUnit", "ms");
    j.key("traceEvents");
    j.beginArray();
    for (const RunRecorder *run : sortedRuns()) {
        auto pid = static_cast<int64_t>(run->runIndex());
        // Process metadata: one Perfetto process group per run.
        j.beginObject();
        j.field("name", "process_name");
        j.field("ph", "M");
        j.field("pid", pid);
        j.key("args");
        j.beginObject();
        j.field("name",
                run->label() + " [" + run->backend() + "]");
        j.endObject();
        j.endObject();
        // Thread (track) names for every track this run uses.
        std::vector<std::pair<int, std::string>> tracks;
        bool lane_used[4] = {false, false, false, false};
        bool track_used[16] = {};
        for (const TraceEvent &e : run->events()) {
            int t = trackOf(e);
            track_used[t] = true;
            if (e.kind == EventKind::OpIssue)
                lane_used[std::clamp<int64_t>(e.a, 0, 3)] = true;
        }
        for (int lane = 0; lane < 4; ++lane)
            if (lane_used[lane])
                tracks.emplace_back(track_lane0 + lane,
                                    laneName(run->backend(), lane));
        if (track_used[track_lifecycle])
            tracks.emplace_back(track_lifecycle, "lifecycle");
        if (track_used[track_routes])
            tracks.emplace_back(track_routes, "routes");
        if (track_used[track_corridors])
            tracks.emplace_back(track_corridors, "corridors");
        if (track_used[track_factories])
            tracks.emplace_back(track_factories, "factories");
        if (track_used[track_channels])
            tracks.emplace_back(track_channels, "channels");
        if (track_used[track_ff])
            tracks.emplace_back(track_ff, "fast-forward");
        for (const auto &[tid, name] : tracks) {
            j.beginObject();
            j.field("name", "thread_name");
            j.field("ph", "M");
            j.field("pid", pid);
            j.field("tid", tid);
            j.key("args");
            j.beginObject();
            j.field("name", name);
            j.endObject();
            j.endObject();
        }
        for (const TraceEvent &e : run->events()) {
            j.beginObject();
            j.field("name", eventKindName(e.kind));
            j.field("cat", run->backend());
            j.field("pid", pid);
            j.field("tid", trackOf(e));
            // One simulated cycle maps to one trace microsecond.
            switch (e.kind) {
              case EventKind::OpIssue:
              case EventKind::ChainHold:
                j.field("ph", "X");
                j.field("ts", static_cast<int64_t>(e.cycle));
                j.field("dur", e.b);
                break;
              case EventKind::TeleportChannel:
                j.field("ph", "X");
                j.field("ts", e.a);
                j.field("dur", e.b - e.a);
                break;
              case EventKind::FastForwardSkip:
                j.field("ph", "X");
                j.field("ts", static_cast<int64_t>(e.cycle));
                j.field("dur", e.a);
                break;
              default:
                j.field("ph", "i");
                j.field("ts", static_cast<int64_t>(e.cycle));
                j.field("s", "t");
                break;
            }
            j.key("args");
            j.beginObject();
            j.field("op", e.op);
            j.field("a", e.a);
            j.field("b", e.b);
            j.field("c", e.c);
            j.endObject();
            j.endObject();
        }
    }
    j.endArray();
    j.endObject();
    os << "\n";
}

void
TraceSession::writeHeatmap(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    JsonWriter j(os);
    j.beginObject();
    j.key("runs");
    j.beginArray();
    for (const RunRecorder *run : sortedRuns()) {
        const HeatmapAccumulator &hm = run->heatmap();
        if (!hm.configured())
            continue; // Meshless backend (planar, analytic models).
        j.beginObject();
        j.field("run", static_cast<uint64_t>(run->runIndex()));
        j.field("label", run->label());
        j.field("backend", run->backend());
        j.field("width", hm.width());
        j.field("height", hm.height());
        j.field("bucket_cycles", hm.bucketCycles());
        j.key("defective_nodes");
        j.beginArray();
        for (const RunRecorder::Defect &d : run->defects())
            if (d.dir < 0) {
                j.beginObject();
                j.field("x", d.x);
                j.field("y", d.y);
                j.endObject();
            }
        j.endArray();
        j.key("defective_links");
        j.beginArray();
        for (const RunRecorder::Defect &d : run->defects())
            if (d.dir >= 0) {
                j.beginObject();
                j.field("x", d.x);
                j.field("y", d.y);
                j.field("dir", d.dir);
                j.endObject();
            }
        j.endArray();
        j.key("links");
        j.beginArray();
        for (int y = 0; y < hm.height(); ++y)
            for (int x = 0; x < hm.width(); ++x)
                for (int dir = 0; dir < 2; ++dir) {
                    // Trim all-zero links and trailing zero buckets
                    // to keep large meshes readable.
                    int last = -1;
                    for (int b = 0;
                         b < HeatmapAccumulator::max_buckets; ++b)
                        if (hm.at(x, y, dir, b) > 0)
                            last = b;
                    if (last < 0)
                        continue;
                    j.beginObject();
                    j.field("x", x);
                    j.field("y", y);
                    j.field("dir", dir);
                    j.key("busy");
                    j.beginArray();
                    for (int b = 0; b <= last; ++b)
                        j.value(hm.at(x, y, dir, b));
                    j.endArray();
                    j.endObject();
                }
        j.endArray();
        j.endObject();
    }
    j.endArray();
    j.endObject();
    os << "\n";
}

void
TraceSession::writeMetrics(std::ostream &os,
                           const MetricsRegistry *extra) const
{
    MetricsRegistry merged;
    merged.merge(metrics_);
    if (extra)
        merged.merge(*extra);
    writeMetricsJson(os, merged.snapshot());
}

std::string
derivedPath(const std::string &path, const std::string &suffix)
{
    std::string stem = path;
    const std::string ext = ".json";
    if (stem.size() > ext.size()
        && stem.compare(stem.size() - ext.size(), ext.size(), ext)
            == 0)
        stem.resize(stem.size() - ext.size());
    return stem + "." + suffix + ".json";
}

} // namespace qsurf::obs
