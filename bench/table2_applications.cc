/**
 * @file
 * Table 2: the studied applications and their ideal-parallelism
 * factors.  Regenerates the table by measuring each generated
 * workload at its default size, printing paper-vs-measured and
 * emitting BENCH_table2_applications.json.
 */

#include <fstream>
#include <iostream>

#include "apps/apps.h"
#include "circuit/decompose.h"
#include "circuit/schedule.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/table.h"

int
main()
{
    using namespace qsurf;
    setQuiet(true);

    Table t("Table 2: studied applications (parallelism factor = avg "
            "concurrent logical ops, ideal parallelizability)");
    t.header({"application", "purpose", "qubits", "logical ops",
              "paper factor", "measured factor"});

    const char *json_path = "BENCH_table2_applications.json";
    std::ofstream os(json_path);
    fatalIf(!os, "cannot open '", json_path, "' for writing");
    JsonWriter j(os);
    j.beginObject();
    j.field("title", "Table 2: studied applications");
    j.key("results");
    j.beginArray();

    for (apps::AppKind kind : apps::allApps()) {
        const apps::AppSpec &spec = apps::appSpec(kind);
        auto circ = apps::generate(kind, apps::defaultOptions(kind));
        auto profile = circuit::parallelismProfile(circ);
        t.addRow(spec.name, spec.purpose, circ.numQubits(),
                 circ.size(), Table::fixed(spec.paper_parallelism, 1),
                 Table::fixed(profile.factor, 1));

        j.beginObject();
        j.field("app", spec.name);
        j.field("purpose", spec.purpose);
        j.field("qubits", circ.numQubits());
        j.field("logical_ops", static_cast<int64_t>(circ.size()));
        j.field("paper_parallelism", spec.paper_parallelism);
        j.field("measured_parallelism", profile.factor);
        j.endObject();
    }
    j.endArray();
    j.endObject();
    os << "\n";
    t.print(std::cout);

    std::cout
        << "Shape check: GSE and SQ are serial (factor < 2); SHA-1 "
           "and IM are highly\nparallel (factor >> 10), with fully-"
           "inlined IM the most parallel (Section 7.3).\n"
        << "wrote " << json_path << "\n";
    return 0;
}
