/**
 * @file
 * Table 2: the studied applications and their ideal-parallelism
 * factors.  Regenerates the table by measuring each generated
 * workload at its default size and printing paper-vs-measured.
 */

#include <iostream>

#include "apps/apps.h"
#include "circuit/decompose.h"
#include "circuit/schedule.h"
#include "common/logging.h"
#include "common/table.h"

int
main()
{
    using namespace qsurf;
    setQuiet(true);

    Table t("Table 2: studied applications (parallelism factor = avg "
            "concurrent logical ops, ideal parallelizability)");
    t.header({"application", "purpose", "qubits", "logical ops",
              "paper factor", "measured factor"});

    for (apps::AppKind kind : apps::allApps()) {
        const apps::AppSpec &spec = apps::appSpec(kind);
        auto circ = apps::generate(kind, apps::defaultOptions(kind));
        auto profile = circuit::parallelismProfile(circ);
        t.addRow(spec.name, spec.purpose, circ.numQubits(),
                 circ.size(), Table::fixed(spec.paper_parallelism, 1),
                 Table::fixed(profile.factor, 1));
    }
    t.print(std::cout);

    std::cout
        << "Shape check: GSE and SQ are serial (factor < 2); SHA-1 "
           "and IM are highly\nparallel (factor >> 10), with fully-"
           "inlined IM the most parallel (Section 7.3).\n";
    return 0;
}
