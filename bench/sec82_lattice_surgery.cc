/**
 * @file
 * Section 8.2: why the paper set lattice surgery aside — now checked
 * with a cycle-accurate simulated backend, not just the closed-form
 * model.
 *
 * Two sweep grids on the engine's parallel driver:
 *
 *  1. simulated: the three run-to-completion backends ("planar",
 *     "double-defect", "planar/surgery-sim") across app x code
 *     distance at feasible scale — merge/split chains pay
 *     rounds-per-tile d-cycle stabilization and congest on shared
 *     corridors;
 *  2. analytic: the three design-space models across app x
 *     computation size up to 1e20.
 *
 * Both land in one BENCH_sec82.json.  The paper's qualitative
 * argument — surgery chains have "neither the benefits of braids
 * (fast movement) nor teleportation (prefetchability)" — predicts
 * surgery is best at ~0 design points, simulated or analytic.
 */

#include <algorithm>
#include <iostream>

#include <fstream>

#include "common/logging.h"
#include "common/table.h"
#include "engine/sweep.h"

namespace {

using namespace qsurf;

/**
 * Count, per consecutive group of @p group backends, how often each
 * backend has the smallest space-time product; returns per-backend
 * win counts in group order.
 */
std::vector<int>
countWins(const std::vector<engine::SweepPoint> &points, size_t group)
{
    std::vector<int> wins(group, 0);
    for (size_t base = 0; base + group <= points.size();
         base += group) {
        size_t best = base;
        for (size_t i = base + 1; i < base + group; ++i)
            if (points[i].metrics.spaceTime()
                < points[best].metrics.spaceTime())
                best = i;
        ++wins[best - base];
    }
    return wins;
}

} // namespace

int
main()
{
    using namespace qsurf;
    setQuiet(true);

    // --- grid 1: the simulated backends at feasible scale --------
    engine::SweepGrid sim;
    sim.apps = {
        {apps::AppKind::SQ, {8, 2}, ""},
        {apps::AppKind::IsingSemi, {24, 2}, ""},
    };
    sim.backends = {engine::backends::planar,
                    engine::backends::double_defect,
                    engine::backends::surgery_sim};
    sim.distances = {3, 5, 7};

    engine::SweepOptions sim_opts;
    sim_opts.num_threads = engine::defaultThreads();
    auto sim_results = engine::SweepDriver().run(sim, sim_opts);

    Table st("Section 8.2 simulated: teleport vs braid vs "
             "merge/split chains");
    st.header({"app", "d", "backend", "schedule cycles", "sched/CP",
               "phys qubits", "spacetime (qubit-s)"});
    for (const engine::SweepPoint &p : sim_results)
        st.addRow(p.app_name, p.metrics.code_distance, p.backend,
                  p.metrics.schedule_cycles,
                  Table::fixed(p.metrics.ratio(), 2),
                  Table::num(p.metrics.physical_qubits),
                  Table::num(p.metrics.spaceTime()));
    st.print(std::cout);

    // --- grid 2: the analytic models across the design space -----
    engine::SweepGrid model;
    model.apps = {
        {apps::AppKind::SQ, {}, ""},
        {apps::AppKind::IsingFull, {}, ""},
    };
    model.backends = {engine::backends::planar_model,
                      engine::backends::double_defect_model,
                      engine::backends::surgery_model};
    model.sizes.clear();
    for (double kq = 1e2; kq <= 1e20; kq *= 1000)
        model.sizes.push_back(kq);
    model.base.tech = qec::tech_points::futureOptimistic();

    engine::SweepOptions model_opts;
    model_opts.num_threads = engine::defaultThreads();
    auto model_results = engine::SweepDriver().run(model, model_opts);

    Table mt("Section 8.2 analytic: three-way space-time comparison "
             "(pP = 1e-8)");
    mt.header({"app", "size (1/pL)", "teleport qubit-s",
               "braid qubit-s", "surgery qubit-s", "winner"});
    for (size_t base = 0; base + 3 <= model_results.size();
         base += 3) {
        const auto &pl = model_results[base];
        const auto &dd = model_results[base + 1];
        const auto &su = model_results[base + 2];
        double best =
            std::min({pl.metrics.spaceTime(), dd.metrics.spaceTime(),
                      su.metrics.spaceTime()});
        const char *winner = best == pl.metrics.spaceTime()
            ? "planar/teleport"
            : best == dd.metrics.spaceTime() ? "double-defect/braid"
                                             : "planar/surgery";
        mt.addRow(pl.app_name, Table::num(pl.kq),
                  Table::num(pl.metrics.spaceTime()),
                  Table::num(dd.metrics.spaceTime()),
                  Table::num(su.metrics.spaceTime()), winner);
    }
    mt.print(std::cout);

    // --- combined JSON + the paper's claim ------------------------
    std::vector<engine::SweepPoint> all = sim_results;
    all.insert(all.end(), model_results.begin(), model_results.end());
    const char *json_path = "BENCH_sec82.json";
    {
        std::ofstream os(json_path);
        fatalIf(!os, "cannot open '", json_path, "' for writing");
        engine::writeSweepJson(
            os, "Section 8.2: lattice surgery, simulated + analytic",
            all);
    }

    auto sim_wins = countWins(sim_results, sim.backends.size());
    auto model_wins = countWins(model_results, model.backends.size());
    int surgery_wins = sim_wins[2] + model_wins[2];
    int points = static_cast<int>(sim_results.size()
                                  + model_results.size())
        / 3;
    std::cout << "Surgery wins " << surgery_wins << " of " << points
              << " design points (" << sim_wins[2] << " simulated, "
              << model_wins[2]
              << " analytic).  Paper's Section 8.2 argument: the "
                 "merge/split chain is\ndominated — slower than "
                 "braids at distance, unprefetchable unlike "
                 "teleports.\n";
    std::cout << "wrote " << json_path << "\n";
    return 0;
}
