/**
 * @file
 * Section 8.2: why the paper set lattice surgery aside.
 *
 * Extends the Figure-8 comparison with a third communication scheme
 * — planar patches interacting through merge/split chains — and
 * checks the paper's qualitative argument: surgery chains have
 * "neither the benefits of braids (fast movement) nor teleportation
 * (prefetchability)", so across the swept design points surgery
 * should essentially never be the best of the three.
 */

#include <algorithm>
#include <iostream>

#include "common/logging.h"
#include "common/table.h"
#include "estimate/lattice_surgery.h"

int
main()
{
    using namespace qsurf;
    setQuiet(true);

    const char *names[] = {"planar/teleport", "double-defect/braid",
                           "planar/surgery"};
    int surgery_wins = 0, points = 0;

    for (apps::AppKind app :
         {apps::AppKind::SQ, apps::AppKind::IsingFull}) {
        qec::Technology tech = qec::tech_points::futureOptimistic();
        estimate::ResourceModel model(app, tech);

        Table t(std::string("Section 8.2 three-way comparison, ")
                + apps::appSpec(app).name + " (pP = 1e-8)");
        t.header({"size (1/pL)", "teleport qubit-s", "braid qubit-s",
                  "surgery qubit-s", "surgery/best", "winner"});
        for (double kq = 1e2; kq <= 1e20; kq *= 1000) {
            auto cmp = estimate::compareThreeWay(model, kq);
            double best_st = std::min(
                {cmp.planar.spaceTime(), cmp.double_defect.spaceTime(),
                 cmp.surgery.spaceTime()});
            t.addRow(Table::num(kq),
                     Table::num(cmp.planar.spaceTime()),
                     Table::num(cmp.double_defect.spaceTime()),
                     Table::num(cmp.surgery.spaceTime()),
                     Table::fixed(cmp.surgery.spaceTime() / best_st,
                                  1),
                     names[cmp.best()]);
            ++points;
            if (cmp.best() == 2)
                ++surgery_wins;
        }
        t.print(std::cout);
    }

    std::cout << "Surgery wins " << surgery_wins << " of " << points
              << " design points (paper's Section 8.2 argument: the "
                 "merge/split chain\nis dominated — slower than "
                 "braids at distance, unprefetchable unlike "
                 "teleports).\n";
    return 0;
}
