/**
 * @file
 * Figure 7: absolute resource usage — (a) physical computation time
 * and (b) physical qubits — to run error-corrected SQ applications
 * of varying size, for both codes, at pP = 1e-8 with single-qubit
 * ops 10x faster than 2-qubit ops (the figure's caption
 * assumptions).
 *
 * Expected shape: small instances run in well under a second; time
 * rises sharply with computation size while qubits rise more
 * gently, with step increases where the code distance d must grow;
 * the two codes' curves stay close on log axes.
 */

#include <iostream>

#include "common/logging.h"
#include "common/table.h"
#include "estimate/model.h"

int
main()
{
    using namespace qsurf;
    setQuiet(true);

    qec::Technology tech = qec::tech_points::futureOptimistic();
    estimate::ResourceModel model(apps::AppKind::SQ, tech);

    Table t("Figure 7: absolute time and space for SQ (pP = 1e-8)");
    t.header({"size (1/pL)", "d", "planar seconds", "dd seconds",
              "planar qubits", "dd qubits"});

    for (double kq = 1e2; kq <= 1e24; kq *= 100) {
        auto pl = model.estimate(qec::CodeKind::Planar, kq);
        auto dd = model.estimate(qec::CodeKind::DoubleDefect, kq);
        t.addRow(Table::num(kq), pl.code_distance,
                 Table::num(pl.seconds), Table::num(dd.seconds),
                 Table::num(pl.physical_qubits),
                 Table::num(dd.physical_qubits));
    }
    t.print(std::cout);

    auto modest = model.estimate(qec::CodeKind::Planar, 1e4);
    std::cout << "Shape checks: SQ at 1/pL = 1e4 runs in "
              << Table::num(modest.seconds)
              << " s (paper: small instances run in under one "
                 "second)\nand needs ~"
              << Table::num(modest.physical_qubits)
              << " physical qubits (paper: around 1000 qubits for "
                 "modest sizes).\n";
    return 0;
}
