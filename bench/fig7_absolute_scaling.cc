/**
 * @file
 * Figure 7: absolute resource usage — (a) physical computation time
 * and (b) physical qubits — to run error-corrected SQ applications
 * of varying size, for both codes, at pP = 1e-8 with single-qubit
 * ops 10x faster than 2-qubit ops (the figure's caption
 * assumptions).
 *
 * One declarative sweep grid (size x model backend) on the engine's
 * parallel sweep driver.  Emits BENCH_fig7_absolute_scaling.json
 * alongside the table.
 *
 * Expected shape: small instances run in well under a second; time
 * rises sharply with computation size while qubits rise more
 * gently, with step increases where the code distance d must grow;
 * the two codes' curves stay close on log axes.
 */

#include <iostream>

#include "common/logging.h"
#include "common/table.h"
#include "engine/sweep.h"

int
main()
{
    using namespace qsurf;
    setQuiet(true);

    engine::SweepGrid grid;
    grid.apps = {{apps::AppKind::SQ, {}, ""}};
    grid.backends = {engine::backends::planar_model,
                     engine::backends::double_defect_model};
    grid.sizes.clear();
    for (double kq = 1e2; kq <= 1e24; kq *= 100)
        grid.sizes.push_back(kq);
    grid.base.tech = qec::tech_points::futureOptimistic();

    engine::SweepOptions opts;
    opts.num_threads = engine::defaultThreads();
    opts.title = "Figure 7: absolute time and space for SQ";
    opts.json_path = "BENCH_fig7_absolute_scaling.json";
    auto results = engine::SweepDriver().run(grid, opts);

    Table t("Figure 7: absolute time and space for SQ (pP = 1e-8)");
    t.header({"size (1/pL)", "d", "planar seconds", "dd seconds",
              "planar qubits", "dd qubits"});

    // Results are size-major with the planar model first, the
    // double-defect model second at each size.
    const engine::Metrics *modest = nullptr;
    for (size_t i = 0; i + 1 < results.size(); i += 2) {
        const engine::Metrics &pl = results[i].metrics;
        const engine::Metrics &dd = results[i + 1].metrics;
        t.addRow(Table::num(results[i].kq), pl.code_distance,
                 Table::num(pl.seconds), Table::num(dd.seconds),
                 Table::num(pl.physical_qubits),
                 Table::num(dd.physical_qubits));
        if (results[i].kq == 1e4)
            modest = &pl;
    }
    t.print(std::cout);

    if (modest)
        std::cout << "Shape checks: SQ at 1/pL = 1e4 runs in "
                  << Table::num(modest->seconds)
                  << " s (paper: small instances run in under one "
                     "second)\nand needs ~"
                  << Table::num(modest->physical_qubits)
                  << " physical qubits (paper: around 1000 qubits "
                     "for modest sizes).\n";
    std::cout << "wrote " << opts.json_path << "\n";
    return 0;
}
