/**
 * @file
 * Simulator-performance microbenchmark: the event-driven
 * fast-forward against its own pre-change baseline.
 *
 * Every simulated backend accepts fast_forward=false, which
 * reproduces the original one-cycle-at-a-time loop exactly, so this
 * bench measures the speedup honestly on the machine it runs on: the
 * same large-d sweep grid (all three simulated communication
 * schemes) executes twice — baseline loop, then event-driven — and
 * BENCH_perf.json records per-point and total wall clock, simulated
 * cycles per second, the fast-forward skip ratio, and whether the
 * two modes stayed bit-identical (they must; a mismatch makes the
 * bench exit nonzero so CI catches it).
 *
 * The grid then runs twice more in event-driven mode to price the
 * observability hooks: once against the null TraceRecorder (every
 * emission site takes its branch, events vanish at the no-op
 * virtual) and once under a full TraceSession with all three sinks
 * rendered.  BENCH_perf.json records both overheads; results must
 * stay bit-identical across all four passes.
 *
 * Run with --smoke for a reduced grid (CI-friendly).
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "alloc_hook.h"

#include "common/json.h"
#include "common/logging.h"
#include "common/table.h"
#include "engine/sweep.h"
#include "obs/trace.h"

namespace {

using namespace qsurf;

/** The large-d perf grid over the three simulated schemes. */
engine::SweepGrid
perfGrid(bool smoke)
{
    engine::SweepGrid grid;
    if (smoke) {
        grid.apps = {{apps::AppKind::SQ, {8, 2}, ""}};
        grid.distances = {15, 25};
    } else {
        // GSE is the deep serial workload (stabilization waits and
        // the level-scan cost dominate); SQ is the contended one
        // (escalations, detours, drops).  Together they exercise
        // every hot path at the large distances the analytic
        // design-space sweeps reach.
        grid.apps = {{apps::AppKind::GSE, {16, 16}, ""},
                     {apps::AppKind::SQ, {8, 6}, ""}};
        grid.distances = {63, 99};
    }
    grid.backends = {engine::backends::double_defect,
                     engine::backends::planar,
                     engine::backends::surgery_sim};
    grid.policies = {6};
    grid.base.seed = 1234;
    return grid;
}

/** Bit-identity between modes, ignoring the ff_* reporting extras. */
bool
sameResults(const engine::Metrics &a, const engine::Metrics &b)
{
    if (a.schedule_cycles != b.schedule_cycles
        || a.critical_path_cycles != b.critical_path_cycles
        || a.physical_qubits != b.physical_qubits
        || a.seconds != b.seconds)
        return false;
    for (const auto &[name, v] : a.extras)
        if (name.rfind("ff_", 0) != 0 && v != b.extra(name))
            return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;

    engine::SweepGrid grid = perfGrid(smoke);
    engine::SweepOptions opts;
    // Single-threaded on purpose: per-point wall_ms is the measured
    // quantity, and pool contention would pollute it.  The global
    // new/delete hook above attributes a heap-allocation count to
    // every point alongside its wall clock (exact at one thread).
    opts.num_threads = 1;
    opts.heap_alloc_counter = [] { return benchhook::heapAllocs(); };

    // Baseline first: the pre-change simulator, reproduced exactly —
    // cycle-stepped loop plus the legacy (allocating, double-walk)
    // hot paths, with the scratch arena disabled so its allocation
    // column is the pre-arena heap behaviour.
    grid.base.fast_forward = false;
    grid.base.legacy_baseline = true;
    engine::SweepOptions baseline_opts = opts;
    baseline_opts.use_arena = false;
    auto baseline = engine::SweepDriver().run(grid, baseline_opts);
    grid.base.fast_forward = true;
    grid.base.legacy_baseline = false;
    auto fast = engine::SweepDriver().run(grid, opts);
    fatalIf(baseline.size() != fast.size(),
            "mode runs expanded to different grids");

    // Tracing overhead, both tiers: the null recorder (pure hook
    // dispatch cost) and a full recording session with the sinks
    // rendered to memory.
    obs::NullTraceRecorder null_recorder;
    grid.base.trace = &null_recorder;
    auto null_traced = engine::SweepDriver().run(grid, opts);
    grid.base.trace = nullptr;

    obs::TraceSession session;
    engine::SweepOptions traced_opts = opts;
    traced_opts.trace = &session;
    auto traced = engine::SweepDriver().run(grid, traced_opts);
    {
        std::ostringstream sinks;
        session.writeTrace(sinks);
        session.writeHeatmap(sinks);
        session.writeMetrics(sinks);
    }

    Table t(std::string("Engine perf: event-driven fast-forward vs "
                        "cycle-stepped baseline")
            + (smoke ? " (smoke grid)" : ""));
    t.header({"app", "backend", "d", "sim cycles", "base ms",
              "ff ms", "speedup", "skip ratio", "Mcyc/s"});

    double base_total_ms = 0;
    double fast_total_ms = 0;
    double null_total_ms = 0;
    double traced_total_ms = 0;
    uint64_t base_allocs = 0;
    uint64_t fast_allocs = 0;
    uint64_t arena_allocs = 0;
    bool identical = true;
    for (size_t i = 0; i < fast.size(); ++i) {
        const engine::SweepPoint &b = baseline[i];
        const engine::SweepPoint &f = fast[i];
        identical = identical && sameResults(b.metrics, f.metrics)
            && sameResults(f.metrics, null_traced[i].metrics)
            && sameResults(f.metrics, traced[i].metrics);
        base_total_ms += b.wall_ms;
        fast_total_ms += f.wall_ms;
        null_total_ms += null_traced[i].wall_ms;
        traced_total_ms += traced[i].wall_ms;
        base_allocs += b.heap_allocs;
        fast_allocs += f.heap_allocs;
        arena_allocs += f.arena_allocs;
        double speedup =
            f.wall_ms > 0 ? b.wall_ms / f.wall_ms : 0.0;
        t.addRow(f.app_name, f.backend, f.metrics.code_distance,
                 f.metrics.schedule_cycles,
                 Table::fixed(b.wall_ms, 2),
                 Table::fixed(f.wall_ms, 2),
                 Table::fixed(speedup, 1),
                 Table::fixed(f.metrics.extra("ff_skip_ratio"), 3),
                 Table::fixed(f.simCyclesPerSec() / 1e6, 1));
    }
    t.print(std::cout);

    double total_speedup =
        fast_total_ms > 0 ? base_total_ms / fast_total_ms : 0.0;
    double null_overhead = fast_total_ms > 0
        ? null_total_ms / fast_total_ms - 1.0
        : 0.0;
    double traced_overhead = fast_total_ms > 0
        ? traced_total_ms / fast_total_ms - 1.0
        : 0.0;

    Table to("Tracing overhead (event-driven grid)");
    to.header({"mode", "total ms", "overhead"});
    to.addRow("untraced", Table::fixed(fast_total_ms, 1), "-");
    to.addRow("null recorder", Table::fixed(null_total_ms, 1),
              Table::fixed(null_overhead * 100, 1) + "%");
    to.addRow("full session", Table::fixed(traced_total_ms, 1),
              Table::fixed(traced_overhead * 100, 1) + "%");
    to.print(std::cout);

    const char *json_path = "BENCH_perf.json";
    {
        std::ofstream os(json_path);
        fatalIf(!os, "cannot open '", json_path, "' for writing");
        JsonWriter j(os);
        j.beginObject();
        j.field("title",
                "engine perf: fast-forward vs cycle-stepped baseline");
        j.field("smoke", smoke);
        j.field("identical_across_modes", identical);
        j.field("baseline_wall_ms_total", base_total_ms);
        j.field("fast_forward_wall_ms_total", fast_total_ms);
        j.field("speedup_total", total_speedup);
        j.field("null_trace_wall_ms_total", null_total_ms);
        j.field("null_trace_overhead", null_overhead);
        j.field("traced_wall_ms_total", traced_total_ms);
        j.field("traced_overhead", traced_overhead);
        j.field("baseline_heap_allocs_total", base_allocs);
        j.field("heap_allocs_total", fast_allocs);
        j.field("arena_allocs_total", arena_allocs);
        j.key("results");
        j.beginArray();
        for (size_t i = 0; i < fast.size(); ++i) {
            const engine::SweepPoint &b = baseline[i];
            const engine::SweepPoint &f = fast[i];
            j.beginObject();
            j.field("app", f.app_name);
            j.field("backend", f.backend);
            j.field("code_distance", f.metrics.code_distance);
            j.field("schedule_cycles", f.metrics.schedule_cycles);
            j.field("baseline_wall_ms", b.wall_ms);
            j.field("fast_forward_wall_ms", f.wall_ms);
            j.field("speedup",
                    f.wall_ms > 0 ? b.wall_ms / f.wall_ms : 0.0);
            j.field("ff_skipped_cycles",
                    f.metrics.extra("ff_skipped_cycles"));
            j.field("ff_skip_ratio",
                    f.metrics.extra("ff_skip_ratio"));
            j.field("sim_cycles_per_sec", f.simCyclesPerSec());
            j.field("baseline_sim_cycles_per_sec",
                    b.simCyclesPerSec());
            j.field("baseline_heap_allocs", b.heap_allocs);
            j.field("heap_allocs", f.heap_allocs);
            j.field("arena_allocs", f.arena_allocs);
            j.field("arena_bytes", f.arena_bytes);
            j.endObject();
        }
        j.endArray();
        j.endObject();
        os << "\n";
    }

    std::cout << "total: baseline " << Table::fixed(base_total_ms, 1)
              << " ms, fast-forward "
              << Table::fixed(fast_total_ms, 1) << " ms, speedup "
              << Table::fixed(total_speedup, 1) << "x, modes "
              << (identical ? "bit-identical" : "DIVERGED") << "\n";
    std::cout << "allocations: baseline " << base_allocs
              << " heap, optimized " << fast_allocs << " heap + "
              << arena_allocs << " arena\n";
    std::cout << "wrote " << json_path << "\n";

    if (!identical) {
        std::cerr << "ERROR: fast-forward diverged from the "
                     "cycle-stepped baseline\n";
        return 1;
    }
    return 0;
}
