/**
 * @file
 * Global operator new/delete replacement counting heap allocations.
 *
 * Bench binaries that report allocation behaviour (bench/perf_engine,
 * bench/scaleout) include this header in their single translation
 * unit; the replaced operators are program-wide, so every allocation
 * the process makes — library code included — increments the
 * counter.  Sampling qsurf::benchhook::heapAllocs() around a region
 * gives its allocation count; the sweep driver takes the sampler as
 * SweepOptions::heap_alloc_counter and attributes per-point deltas.
 *
 * Counting uses a relaxed atomic: the counter is a measurement, not
 * a synchronization point, and adds a few nanoseconds per call —
 * negligible against the cost of the allocation itself.  Never
 * include this from library code or multi-TU targets (duplicate
 * operator definitions).
 */

#ifndef QSURF_BENCH_ALLOC_HOOK_H
#define QSURF_BENCH_ALLOC_HOOK_H

#include <atomic>
#include <cstdlib>
#include <new>

namespace qsurf::benchhook {

inline std::atomic<uint64_t> g_heap_allocs{0};

/** @return cumulative operator-new calls of this process. */
inline uint64_t
heapAllocs()
{
    return g_heap_allocs.load(std::memory_order_relaxed);
}

inline void *
countedAlloc(std::size_t size)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    // malloc(0) may return null legally; normalize to 1 byte.
    return std::malloc(size ? size : 1);
}

inline void *
countedAlignedAlloc(std::size_t size, std::size_t align)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    void *p = nullptr;
    if (posix_memalign(&p, align < sizeof(void *) ? sizeof(void *)
                                                  : align,
                       size ? size : 1)
        != 0)
        return nullptr;
    return p;
}

} // namespace qsurf::benchhook

// The replaced operator new allocates with malloc, so the replaced
// operator delete frees with free — a pairing GCC's heuristic
// cannot see through once the operators are inlined at call sites.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void *
operator new(std::size_t size)
{
    void *p = qsurf::benchhook::countedAlloc(size);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    void *p = qsurf::benchhook::countedAlloc(size);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    return qsurf::benchhook::countedAlloc(size);
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return qsurf::benchhook::countedAlloc(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    void *p = qsurf::benchhook::countedAlignedAlloc(
        size, static_cast<std::size_t>(align));
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    void *p = qsurf::benchhook::countedAlignedAlloc(
        size, static_cast<std::size_t>(align));
    if (!p)
        throw std::bad_alloc();
    return p;
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif // QSURF_BENCH_ALLOC_HOOK_H
