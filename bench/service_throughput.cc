/**
 * @file
 * Compile-service throughput bench: cold vs warm.
 *
 * Part A replays a mixed request stream (apps x backends x layout
 * objectives x seeds) through a CompileService twice.  The first
 * pass hits a fresh PrepareCache cold — every decompose and seeded
 * layout is built from scratch; the repeat passes are warm — the
 * cache serves every prepare, and queued duplicates batch onto one
 * artifact fetch.  BENCH_service.json records requests/sec for both,
 * the warm/cold speedup and the cache hit ratio, and the bench exits
 * nonzero if any warm response diverges from its cold twin (they
 * must be bit-identical).
 *
 * Part B runs a Figure-8-style policy x objective sweep through the
 * SweepDriver three ways — cache off, cache cold, cache warm — and
 * cross-checks bit-identity of all three.  Even the cold cached
 * sweep reuses work the uncached one repeats: the policy axis shares
 * seeded layouts, and the surgery and hybrid backends share one
 * patch machine.
 *
 * Run with --smoke for a reduced workload (CI-friendly), and
 * --metrics=PATH to dump the service telemetry registry (request
 * latency histograms, queue depth, per-shard cache traffic) as JSON
 * on exit.
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/logging.h"
#include "common/table.h"
#include "engine/sweep.h"
#include "obs/metrics.h"
#include "service/cache.h"
#include "service/service.h"

namespace {

using namespace qsurf;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

/** Full equality of two uniform metric records. */
bool
sameMetrics(const engine::Metrics &a, const engine::Metrics &b)
{
    if (a.backend != b.backend
        || a.code_distance != b.code_distance
        || a.schedule_cycles != b.schedule_cycles
        || a.critical_path_cycles != b.critical_path_cycles
        || a.physical_qubits != b.physical_qubits
        || a.seconds != b.seconds
        || a.extras.size() != b.extras.size())
        return false;
    for (const auto &[name, v] : a.extras)
        if (v != b.extra(name))
            return false;
    return true;
}

/**
 * A wide, sparse probe circuit: a CNOT ring plus long-range chords.
 * Layout optimization over the big interaction graph is the whole
 * cost; the simulation itself is a few hundred gates.  This is the
 * prepare-bound workload a persistent service exists for.
 */
std::shared_ptr<const circuit::Circuit>
makeProbe(int num_qubits)
{
    auto circ = std::make_shared<circuit::Circuit>(
        "probe" + std::to_string(num_qubits), num_qubits);
    for (int q = 0; q < num_qubits; ++q)
        circ->addGate(circuit::GateKind::CNOT, q,
                      (q + 1) % num_qubits);
    for (int q = 0; q < num_qubits; q += 4)
        circ->addGate(circuit::GateKind::CNOT, q,
                      (q + num_qubits / 2) % num_qubits);
    return circ;
}

/**
 * The unique request set of Part A, a mixed stream:
 *  - wide probe circuits on the two patch-machine simulators across
 *    layout objectives and seeds (prepare-bound);
 *  - generated apps on the surgery simulator (run-bound realism);
 *  - analytic-model requests whose cached frontend (generate +
 *    decompose + analyze) dominates their near-instant run.
 */
std::vector<service::CompileRequest>
uniqueRequests(bool smoke)
{
    std::vector<service::CompileRequest> reqs;

    std::vector<int> probe_sizes =
        smoke ? std::vector<int>{96} : std::vector<int>{96, 192};
    std::vector<uint64_t> seeds = smoke
        ? std::vector<uint64_t>{1}
        : std::vector<uint64_t>{1, 2};
    for (int nq : probe_sizes) {
        std::shared_ptr<const circuit::Circuit> probe =
            makeProbe(nq);
        for (uint64_t seed : seeds)
            for (int objective : {0, 2})
                for (const char *backend :
                     {engine::backends::surgery_sim,
                      engine::backends::hybrid_mixed}) {
                    service::CompileRequest req;
                    req.circuit = probe;
                    req.backend = backend;
                    req.config.code_distance = 3;
                    req.config.layout_objective = objective;
                    req.config.seed = seed;
                    reqs.push_back(req);
                }
    }

    for (const char *backend : {engine::backends::surgery_sim,
                                engine::backends::hybrid_mixed}) {
        service::CompileRequest req;
        req.app = apps::AppKind::SQ;
        req.gen = {8, 1};
        req.backend = backend;
        req.config.code_distance = 3;
        reqs.push_back(req);
    }

    std::vector<std::pair<apps::AppKind, apps::GenOptions>> model_apps
        = {{apps::AppKind::SHA1, {16, 1}},
           {apps::AppKind::IsingSemi, {16, 2}}};
    if (!smoke)
        model_apps.push_back({apps::AppKind::GSE, {16, 4}});
    for (const auto &[kind, gen] : model_apps)
        for (const char *backend :
             {engine::backends::surgery_model,
              engine::backends::double_defect_model,
              engine::backends::planar_model}) {
            service::CompileRequest req;
            req.app = kind;
            req.gen = gen;
            req.backend = backend;
            reqs.push_back(req);
        }
    return reqs;
}

/** Submit @p reqs to @p svc and wait; @return the responses. */
std::vector<service::CompileResponse>
replay(service::CompileService &svc,
       const std::vector<service::CompileRequest> &reqs)
{
    std::vector<std::future<service::CompileResponse>> futures;
    futures.reserve(reqs.size());
    for (const service::CompileRequest &req : reqs)
        futures.push_back(svc.submit(req));
    std::vector<service::CompileResponse> responses;
    responses.reserve(reqs.size());
    for (auto &f : futures)
        responses.push_back(f.get());
    return responses;
}

/**
 * The Part B sweep grid (Figure-8 shape: policy x objective over the
 * patch-machine backends).  The wide probe rides along as a
 * caller-built AppPoint: its seeded layout is the dominant cost, and
 * the cache shares it across the policy axis and across the surgery/
 * hybrid pair even on the cold pass.
 */
engine::SweepGrid
sweepGrid(bool smoke)
{
    engine::SweepGrid grid;
    grid.apps = {engine::AppPoint(makeProbe(smoke ? 96 : 192)),
                 engine::AppPoint(apps::AppKind::SQ, {8, 2})};
    grid.backends = {engine::backends::surgery_sim,
                     engine::backends::hybrid_mixed};
    grid.policies = {2, 6};
    grid.layout_objectives = {0, 1, 2};
    grid.distances = {3};
    grid.base.seed = 1234;
    return grid;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    bool smoke = false;
    std::string metrics_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strncmp(argv[i], "--metrics=", 10) == 0)
            metrics_path = argv[i] + 10;
    }

    // ---- Part A: cold vs warm request throughput. ----------------
    std::vector<service::CompileRequest> unique =
        uniqueRequests(smoke);
    const int warm_repeats = smoke ? 2 : 4;

    service::PrepareCache cache;
    service::CompileService::Options svc_opts;
    svc_opts.num_threads = 4;
    svc_opts.cache = &cache;
    service::CompileService svc(svc_opts);

    auto cold_start = Clock::now();
    std::vector<service::CompileResponse> cold =
        replay(svc, unique);
    double cold_sec = secondsSince(cold_start);

    std::vector<service::CompileRequest> warm_reqs;
    for (int r = 0; r < warm_repeats; ++r)
        warm_reqs.insert(warm_reqs.end(), unique.begin(),
                         unique.end());
    auto warm_start = Clock::now();
    std::vector<service::CompileResponse> warm =
        replay(svc, warm_reqs);
    double warm_sec = secondsSince(warm_start);

    bool identical = true;
    for (const service::CompileResponse &r : cold)
        identical = identical && r.ok();
    for (size_t i = 0; i < warm.size(); ++i) {
        const service::CompileResponse &w = warm[i];
        const service::CompileResponse &c =
            cold[i % unique.size()];
        identical = identical && w.ok()
            && sameMetrics(w.metrics, c.metrics);
    }

    double cold_rps =
        cold_sec > 0 ? static_cast<double>(unique.size()) / cold_sec
                     : 0.0;
    double warm_rps = warm_sec > 0
        ? static_cast<double>(warm_reqs.size()) / warm_sec
        : 0.0;
    double warm_speedup = cold_rps > 0 ? warm_rps / cold_rps : 0.0;
    service::ServiceStats stats = svc.stats();

    auto avg = [](const std::vector<service::CompileResponse> &rs,
                  double service::CompileResponse::*field) {
        double total = 0;
        for (const service::CompileResponse &r : rs)
            total += r.*field;
        return rs.empty() ? 0.0
                          : total / static_cast<double>(rs.size());
    };

    Table ta(std::string("Compile service: cold vs warm replay")
             + (smoke ? " (smoke)" : ""));
    ta.header({"pass", "requests", "sec", "req/s", "avg prep ms",
               "avg run ms"});
    ta.addRow("cold", unique.size(), Table::fixed(cold_sec, 3),
              Table::fixed(cold_rps, 1),
              Table::fixed(
                  avg(cold, &service::CompileResponse::prepare_ms),
                  2),
              Table::fixed(
                  avg(cold, &service::CompileResponse::run_ms), 2));
    ta.addRow("warm", warm_reqs.size(), Table::fixed(warm_sec, 3),
              Table::fixed(warm_rps, 1),
              Table::fixed(
                  avg(warm, &service::CompileResponse::prepare_ms),
                  2),
              Table::fixed(
                  avg(warm, &service::CompileResponse::run_ms), 2));
    ta.print(std::cout);
    std::cout << "warm speedup " << Table::fixed(warm_speedup, 1)
              << "x, cache hit ratio "
              << Table::fixed(stats.cache.hitRatio(), 3)
              << ", batches " << stats.batches << " ("
              << stats.batched_requests << " requests batched), "
              << (identical ? "bit-identical" : "DIVERGED") << "\n";

    // ---- Part B: cached vs uncached figure sweep. ----------------
    engine::SweepGrid grid = sweepGrid(smoke);
    engine::SweepOptions sweep_opts;
    sweep_opts.num_threads = 4;

    sweep_opts.use_cache = false;
    auto t0 = Clock::now();
    auto uncached = engine::SweepDriver().run(grid, sweep_opts);
    double uncached_ms = secondsSince(t0) * 1e3;

    service::PrepareCache sweep_cache;
    sweep_opts.use_cache = true;
    sweep_opts.cache = &sweep_cache;
    t0 = Clock::now();
    auto cached_cold = engine::SweepDriver().run(grid, sweep_opts);
    double cached_cold_ms = secondsSince(t0) * 1e3;

    t0 = Clock::now();
    auto cached_warm = engine::SweepDriver().run(grid, sweep_opts);
    double cached_warm_ms = secondsSince(t0) * 1e3;

    bool sweep_identical = uncached.size() == cached_cold.size()
        && uncached.size() == cached_warm.size();
    for (size_t i = 0; sweep_identical && i < uncached.size(); ++i)
        sweep_identical =
            sameMetrics(uncached[i].metrics, cached_cold[i].metrics)
            && sameMetrics(uncached[i].metrics,
                           cached_warm[i].metrics);

    double sweep_speedup =
        cached_warm_ms > 0 ? uncached_ms / cached_warm_ms : 0.0;

    Table tb(std::string("Policy x objective sweep: prepare cache ")
             + "off / cold / warm" + (smoke ? " (smoke)" : ""));
    tb.header({"mode", "points", "ms"});
    tb.addRow("uncached", uncached.size(),
              Table::fixed(uncached_ms, 1));
    tb.addRow("cached cold", cached_cold.size(),
              Table::fixed(cached_cold_ms, 1));
    tb.addRow("cached warm", cached_warm.size(),
              Table::fixed(cached_warm_ms, 1));
    tb.print(std::cout);
    std::cout << "sweep speedup (warm vs uncached) "
              << Table::fixed(sweep_speedup, 1) << "x, "
              << (sweep_identical ? "bit-identical" : "DIVERGED")
              << "\n";

    const char *json_path = "BENCH_service.json";
    {
        std::ofstream os(json_path);
        fatalIf(!os, "cannot open '", json_path, "' for writing");
        JsonWriter j(os);
        j.beginObject();
        j.field("title", "compile service: cold vs warm throughput");
        j.field("smoke", smoke);
        j.field("service_threads",
                static_cast<uint64_t>(svc.threads()));
        j.field("unique_requests",
                static_cast<uint64_t>(unique.size()));
        j.field("warm_requests",
                static_cast<uint64_t>(warm_reqs.size()));
        j.field("cold_sec", cold_sec);
        j.field("warm_sec", warm_sec);
        j.field("cold_requests_per_sec", cold_rps);
        j.field("warm_requests_per_sec", warm_rps);
        j.field("warm_speedup", warm_speedup);
        j.field("identical_cold_vs_warm", identical);
        j.key("service");
        j.beginObject();
        j.field("requests", stats.requests);
        j.field("batches", stats.batches);
        j.field("batched_requests", stats.batched_requests);
        j.endObject();
        j.key("cache");
        j.beginObject();
        j.field("hits", stats.cache.hits);
        j.field("misses", stats.cache.misses);
        j.field("evictions", stats.cache.evictions);
        j.field("entries", stats.cache.entries);
        j.field("hit_ratio", stats.cache.hitRatio());
        j.endObject();
        j.key("sweep");
        j.beginObject();
        j.field("points",
                static_cast<uint64_t>(uncached.size()));
        j.field("uncached_ms", uncached_ms);
        j.field("cached_cold_ms", cached_cold_ms);
        j.field("cached_warm_ms", cached_warm_ms);
        j.field("speedup_warm_vs_uncached", sweep_speedup);
        j.field("identical_across_modes", sweep_identical);
        j.endObject();
        j.endObject();
        os << "\n";
    }
    std::cout << "wrote " << json_path << "\n";

    if (!metrics_path.empty()) {
        svc.exportTelemetry();
        std::ofstream os(metrics_path);
        fatalIf(!os, "cannot open '", metrics_path,
                "' for writing");
        obs::writeMetricsJson(
            os, obs::MetricsRegistry::global().snapshot());
        std::cout << "wrote " << metrics_path << "\n";
    }

    if (!identical || !sweep_identical) {
        std::cerr << "ERROR: cached results diverged from "
                     "uncached/cold results\n";
        return 1;
    }
    return 0;
}
