/**
 * @file
 * Yield sweep over defective fabrics: the Figure-8 application pair
 * on braided double-defect, lattice-surgery and hybrid backends,
 * across fabric defect densities (fraction of mesh tiles knocked
 * out, plus the links the generator disables around them) — the
 * question a foundry asks of an architecture: how fast do schedule
 * length and the logical-error proxy degrade as the fabric yield
 * drops, and which communication scheme degrades most gracefully?
 *
 * Expected shape: the braided backend pays the most (every braid
 * crosses the damaged interior), surgery recovers some slack through
 * defect-free corridor re-routing, and the hybrid arbiter degrades
 * most gracefully because its defect surcharge shifts traffic onto
 * the off-mesh teleport overlay as exposure grows.
 *
 * Acceptance, enforced in full and smoke runs alike:
 *  - density-0 rows are byte-identical to a grid without the defect
 *    axis (today's perfect-mesh results) for every backend, and
 *  - the whole defect grid is bit-identical at 1, 2 and 8 threads
 * (canonicalSweepRows() compares both).  Emits BENCH_yield.json
 * with per-point cycles, degradation ratios and logical-error
 * proxies per density, plus the graceful-degradation ranking.
 *
 * Pass --smoke for the CI-sized subset of the grid.
 */

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "circuit/decompose.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/table.h"
#include "engine/sweep.h"

int
main(int argc, char **argv)
{
    using namespace qsurf;
    setQuiet(true);
    bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

    // The application pair at simulatable sizes on the three
    // simulated-communication backends, over the defect-density
    // axis; density 0 is the perfect mesh every previous bench ran.
    engine::SweepGrid grid;
    grid.apps = smoke
        ? std::vector<engine::AppPoint>{{apps::AppKind::SQ, {8, 2}, ""}}
        : std::vector<engine::AppPoint>{
              {apps::AppKind::SQ, {8, 2}, ""},
              {apps::AppKind::IsingFull, {12, 2}, ""}};
    grid.backends = {engine::backends::double_defect,
                     engine::backends::surgery_sim,
                     engine::backends::hybrid_mixed};
    grid.policies = {6};
    grid.distances = smoke ? std::vector<int>{3}
                           : std::vector<int>{5};
    grid.defects = smoke ? std::vector<double>{0, 0.06}
                         : std::vector<double>{0, 0.03, 0.06, 0.1};
    grid.base.seed = 1234;
    grid.base.defect_seed = 7;
    grid.base.tech = qec::tech_points::futureOptimistic();
    const double top_density = grid.defects.back();

    // The perfect-mesh control: the same grid without the defect
    // axis, exactly what this bench's callers ran before the axis
    // existed.  Its rows are the byte-identity baseline.
    engine::SweepGrid control = grid;
    control.defects = {0};

    engine::SweepOptions copts;
    copts.num_threads = 1;
    auto control_results = engine::SweepDriver().run(control, copts);
    const std::string control_canon =
        engine::canonicalSweepRows(control_results);

    // The defect grid at 1, 2 and 8 threads: the full grid must be
    // bit-identical across thread counts, and its density-0 subset
    // byte-identical to the control at every thread count.
    std::vector<engine::SweepPoint> results;
    std::string canon_t1;
    bool thread_identical = true;
    bool density0_identical = true;
    for (int threads : {1, 2, 8}) {
        engine::SweepOptions opts;
        opts.num_threads = threads;
        auto r = engine::SweepDriver().run(grid, opts);
        std::string canon = engine::canonicalSweepRows(r);
        if (threads == 1) {
            canon_t1 = canon;
            results = std::move(r);
        } else if (canon != canon_t1) {
            thread_identical = false;
        }
        std::vector<engine::SweepPoint> zero;
        for (const engine::SweepPoint &p :
             threads == 1 ? results : r)
            if (p.defect == 0)
                zero.push_back(p);
        if (engine::canonicalSweepRows(zero) != control_canon)
            density0_identical = false;
    }

    // Logical qubit counts per app point, the way the sweep items
    // see them (density-0 rows carry no proxy extra — the perfect
    // mesh emits nothing new — so the bench recomputes it).
    std::vector<double> app_qubits;
    for (const engine::AppPoint &a : grid.apps)
        app_qubits.push_back(static_cast<double>(
            circuit::decompose(apps::generate(a.kind, a.gen))
                .numQubits()));

    // Index results: per (app, d, backend), one run per density.
    struct Point
    {
        std::string app;
        std::string backend;
        int d = 0;
        std::vector<uint64_t> cycles;
        std::vector<double> proxy;
        std::vector<const engine::Metrics *> metrics;

        double
        degradation(size_t di) const
        {
            return cycles[0] ? static_cast<double>(cycles[di])
                    / static_cast<double>(cycles[0])
                             : 0.0;
        }
    };
    std::vector<Point> points;
    const size_t nd = grid.defects.size();
    for (const engine::SweepPoint &r : results) {
        auto it = std::find_if(
            points.begin(), points.end(), [&](const Point &p) {
                return p.app == r.app_name && p.backend == r.backend
                    && p.d == r.metrics.code_distance;
            });
        if (it == points.end()) {
            points.push_back(Point{r.app_name, r.backend,
                                   r.metrics.code_distance,
                                   std::vector<uint64_t>(nd, 0),
                                   std::vector<double>(nd, 0),
                                   std::vector<const engine::Metrics *>(
                                       nd, nullptr)});
            it = points.end() - 1;
        }
        size_t di = static_cast<size_t>(
            std::find(grid.defects.begin(), grid.defects.end(),
                      r.defect)
            - grid.defects.begin());
        it->cycles[di] = r.metrics.schedule_cycles;
        it->metrics[di] = &r.metrics;
        it->proxy[di] = r.defect > 0
            ? r.metrics.extra("logical_error_proxy")
            : engine::logicalErrorProxy(
                  app_qubits[r.app_index],
                  r.metrics.schedule_cycles,
                  r.metrics.code_distance,
                  grid.base.tech.p_physical, 1.0);
    }

    // Graceful-degradation ranking: per backend, the worst
    // cycles(top density)/cycles(0) across design points.  Smallest
    // worst-case wins.
    struct Rank
    {
        std::string backend;
        double worst = 0;
    };
    std::vector<Rank> ranking;
    for (const std::string &b : grid.backends) {
        Rank rk{b, 0};
        for (const Point &p : points)
            if (p.backend == b)
                rk.worst = std::max(rk.worst, p.degradation(nd - 1));
        ranking.push_back(rk);
    }
    std::sort(ranking.begin(), ranking.end(),
              [](const Rank &a, const Rank &b) {
                  return a.worst < b.worst;
              });
    const std::string &most_graceful = ranking.front().backend;

    Table t("Yield sweep (schedule cycles by defect density)");
    {
        std::vector<std::string> head{"app", "backend", "d"};
        for (double den : grid.defects)
            head.push_back("p=" + Table::fixed(den, 2));
        head.push_back("degradation");
        head.push_back("proxy x");
        t.header(head);
    }
    for (const Point &p : points) {
        std::vector<std::string> row{p.app, p.backend,
                                     Table::num(p.d)};
        for (size_t di = 0; di < nd; ++di)
            row.push_back(Table::num(p.cycles[di]));
        row.push_back(Table::fixed(p.degradation(nd - 1), 3));
        row.push_back(Table::fixed(
            p.proxy[0] > 0 ? p.proxy[nd - 1] / p.proxy[0] : 0, 1));
        t.row(row);
    }
    t.print(std::cout);
    std::cout << "density-0 rows "
              << (density0_identical ? "byte-identical"
                                     : "DIVERGED FROM")
              << " vs the perfect-mesh grid; thread counts 1/2/8 "
              << (thread_identical ? "bit-identical" : "DIVERGED")
              << "\n";
    std::cout << "most graceful under damage: " << most_graceful
              << " (worst degradation "
              << Table::fixed(ranking.front().worst, 3) << "x at p="
              << Table::fixed(top_density, 2) << ")\n";

    const char *json_path = "BENCH_yield.json";
    std::ofstream os(json_path);
    fatalIf(!os, "cannot open '", json_path, "' for writing");
    {
        JsonWriter j(os);
        j.beginObject();
        j.field("title",
                "Yield sweep: schedule and logical-error degradation "
                "on defective fabrics");
        j.field("smoke", smoke);
        j.field("defect_seed", grid.base.defect_seed);
        j.key("densities");
        j.beginArray();
        for (double den : grid.defects)
            j.value(den);
        j.endArray();
        j.field("density0_byte_identical", density0_identical);
        j.field("thread_identical", thread_identical);
        j.field("most_graceful", most_graceful);
        j.key("ranking");
        j.beginArray();
        for (const Rank &rk : ranking) {
            j.beginObject();
            j.field("backend", rk.backend);
            j.field("worst_degradation", rk.worst);
            j.endObject();
        }
        j.endArray();
        j.key("results");
        j.beginArray();
        for (const Point &p : points) {
            j.beginObject();
            j.field("app", p.app);
            j.field("backend", p.backend);
            j.field("code_distance", p.d);
            j.key("by_density");
            j.beginArray();
            for (size_t di = 0; di < nd; ++di) {
                const engine::Metrics *m = p.metrics[di];
                j.beginObject();
                j.field("density", grid.defects[di]);
                j.field("schedule_cycles", p.cycles[di]);
                j.field("degradation", p.degradation(di));
                j.field("logical_error_proxy", p.proxy[di]);
                j.field("defect_dead_fraction",
                        m->extra("defect_dead_fraction"));
                j.field("defect_avg_multiplier",
                        m->extra("defect_avg_multiplier", 1.0));
                j.field("defective_nodes",
                        m->extra("defective_nodes"));
                j.field("defective_links",
                        m->extra("defective_links"));
                j.endObject();
            }
            j.endArray();
            j.field("worst_degradation", p.degradation(nd - 1));
            j.endObject();
        }
        j.endArray();
        j.endObject();
        os << "\n";
    }
    std::cout << "wrote " << json_path << "\n";

    // The identity checks are determinism properties, not workload
    // measurements: they hold on the smoke grid too, so both modes
    // enforce them.
    return density0_identical && thread_identical ? 0 : 1;
}
