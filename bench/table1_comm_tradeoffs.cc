/**
 * @file
 * Table 1: tradeoffs in communication efficiency between the
 * surface-code communication schemes.
 *
 * The paper's table is qualitative (Space / Time / Prefetchable?).
 * This bench *measures* those properties on a distance-parameterized
 * microbenchmark — one 2-qubit interaction between logical qubits
 * placed increasingly far apart — driven through the engine
 * registry ("double-defect" and "planar/surgery-sim" backends), and
 * emits BENCH_table1_comm_tradeoffs.json.
 *
 *  - Time: braid latency is distance-independent (route claimed all
 *    at once); teleportation needs its EPR halves swapped across the
 *    machine first, with latency growing in distance (hidden only by
 *    prefetch); surgery merge/split chains pay d-cycle rounds per
 *    patch tile, growing fastest of all.
 *  - Space: planar tiles are half the double-defect footprint;
 *    surgery patches add only boundary-ancilla strips.
 *  - Prefetchable: EPR distribution is data-independent; braids and
 *    merge/split chains must happen at the point of use.
 */

#include <cmath>
#include <fstream>
#include <iostream>

#include "circuit/circuit.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/table.h"
#include "engine/registry.h"
#include "qec/code.h"
#include "qec/technology.h"
#include "surgery/backend.h"

namespace {

using namespace qsurf;

/** A chain machine with one CNOT between the end qubits. */
circuit::Circuit
endToEndCnot(int num_qubits)
{
    circuit::Circuit c("dist-probe", num_qubits);
    c.addGate(circuit::GateKind::CNOT, 0,
              static_cast<int32_t>(num_qubits - 1));
    return c;
}

} // namespace

int
main()
{
    setQuiet(true);
    constexpr int d = 5;
    qec::Technology tech;

    engine::Registry &registry = engine::Registry::global();
    const engine::Backend &braid =
        registry.get(engine::backends::double_defect);
    const engine::Backend &surgery =
        registry.get(engine::backends::surgery_sim);

    struct ProbeRow
    {
        int machine_qubits;
        int separation;
        uint64_t braid_cycles;
        uint64_t surgery_cycles;
        double swap_cycles;
        uint64_t teleport_cycles;
    };
    std::vector<ProbeRow> rows;

    Table probe("Distance sweep: one 2-qubit op across the machine "
                "(d = 5)");
    probe.header({"machine qubits", "separation (tiles)",
                  "braid cycles", "surgery chain cycles",
                  "swap-chain cycles (EPR leg)",
                  "teleport-after-EPR cycles"});
    for (int n : {4, 16, 64, 256}) {
        circuit::Circuit c = endToEndCnot(n);
        engine::WorkItem item;
        item.circuit = &c;
        item.config.tech = tech;
        item.config.code_distance = d;
        // Naive layout (policy 0): the probe measures *distance*, so
        // the interaction-aware layout must not collapse it.
        item.config.policy = 0;

        engine::Metrics bm = braid.run(item);
        engine::Metrics sm = surgery.run(item);

        // Separation on a near-square grid: corner to corner.
        auto side = static_cast<int>(std::ceil(std::sqrt(n)));
        int separation = 2 * (side - 1);
        double swap_cycles = separation * tech.swapHopCycles(d);
        rows.push_back({n, separation, bm.schedule_cycles,
                        sm.schedule_cycles, swap_cycles,
                        static_cast<uint64_t>(2 + d)});
        probe.addRow(n, separation, bm.schedule_cycles,
                     sm.schedule_cycles, Table::fixed(swap_cycles, 1),
                     2 + d);
    }
    probe.print(std::cout);

    Table summary("Table 1: communication tradeoffs (measured)");
    summary.header({"code", "method", "space (phys qubits/tile)",
                    "time", "prefetchable?"});
    summary.addRow("planar", "teleportation",
                   qec::planarTileQubits(d),
                   "high (swap chain grows with distance)", "yes");
    summary.addRow("double-defect", "braiding",
                   qec::doubleDefectTileQubits(d),
                   "low (route claimed in 1 cycle)", "no");
    summary.addRow("planar", "lattice surgery",
                   static_cast<uint64_t>(std::llround(
                       surgery::surgeryPhysicalQubits(1.0, d)
                       / qec::spaceOverheadFactor(
                           qec::CodeKind::DoubleDefect))),
                   "highest (d-cycle rounds per chain tile)", "no");
    summary.print(std::cout);

    const char *json_path = "BENCH_table1_comm_tradeoffs.json";
    {
        std::ofstream os(json_path);
        fatalIf(!os, "cannot open '", json_path, "' for writing");
        JsonWriter j(os);
        j.beginObject();
        j.field("title", "Table 1: communication tradeoffs");
        j.field("code_distance", d);
        j.key("results");
        j.beginArray();
        for (const ProbeRow &r : rows) {
            j.beginObject();
            j.field("machine_qubits", r.machine_qubits);
            j.field("separation_tiles", r.separation);
            j.field("braid_cycles", r.braid_cycles);
            j.field("surgery_chain_cycles", r.surgery_cycles);
            j.field("swap_chain_cycles", r.swap_cycles);
            j.field("teleport_after_epr_cycles", r.teleport_cycles);
            j.endObject();
        }
        j.endArray();
        j.endObject();
        os << "\n";
    }

    std::cout << "Paper's Table 1: planar/teleportation = low space, "
                 "high time, prefetchable;\n"
                 "double-defect/braiding = high space, low time, not "
                 "prefetchable; surgery\nchains grow with distance "
                 "AND cannot prefetch.  Measured rows agree.\n";
    std::cout << "wrote " << json_path << "\n";
    return 0;
}
