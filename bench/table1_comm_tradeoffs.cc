/**
 * @file
 * Table 1: tradeoffs in communication efficiency between the two
 * surface-code flavors.
 *
 * The paper's table is qualitative (Space / Time / Prefetchable?).
 * This bench *measures* those three properties on a
 * distance-parameterized microbenchmark: one 2-qubit interaction
 * between logical qubits placed increasingly far apart.
 *
 *  - Time: braid latency is distance-independent (route claimed all
 *    at once); teleportation needs its EPR halves swapped across the
 *    machine first, with latency growing in distance (hidden only by
 *    prefetch).
 *  - Space: planar tiles are half the double-defect footprint.
 *  - Prefetchable: EPR distribution is data-independent; braids must
 *    happen at the point of use.
 */

#include <cmath>
#include <iostream>

#include "braid/scheduler.h"
#include "circuit/circuit.h"
#include "common/logging.h"
#include "common/table.h"
#include "qec/code.h"
#include "qec/technology.h"

namespace {

using namespace qsurf;

/** A chain machine with one CNOT between the end qubits. */
circuit::Circuit
endToEndCnot(int num_qubits)
{
    circuit::Circuit c("dist-probe", num_qubits);
    c.addGate(circuit::GateKind::CNOT, 0,
              static_cast<int32_t>(num_qubits - 1));
    return c;
}

} // namespace

int
main()
{
    setQuiet(true);
    constexpr int d = 5;
    qec::Technology tech;

    Table probe("Distance sweep: one 2-qubit op across the machine "
                "(d = 5)");
    probe.header({"machine qubits", "separation (tiles)",
                  "braid cycles", "swap-chain cycles (EPR leg)",
                  "teleport-after-EPR cycles"});
    for (int n : {4, 16, 64, 256}) {
        circuit::Circuit c = endToEndCnot(n);
        braid::BraidOptions opts;
        opts.code_distance = d;
        braid::BraidResult r =
            braid::scheduleBraids(c, braid::Policy::Combined, opts);
        // Separation on a near-square grid: corner to corner.
        auto side = static_cast<int>(std::ceil(std::sqrt(n)));
        int separation = 2 * (side - 1);
        double swap_cycles = separation * tech.swapHopCycles(d);
        probe.addRow(n, separation, r.schedule_cycles,
                     Table::fixed(swap_cycles, 1), 2 + d);
    }
    probe.print(std::cout);

    Table summary("Table 1: communication tradeoffs (measured)");
    summary.header({"code", "method", "space (phys qubits/tile)",
                    "time", "prefetchable?"});
    summary.addRow("planar", "teleportation",
                   qec::planarTileQubits(d),
                   "high (swap chain grows with distance)", "yes");
    summary.addRow("double-defect", "braiding",
                   qec::doubleDefectTileQubits(d),
                   "low (route claimed in 1 cycle)", "no");
    summary.print(std::cout);

    std::cout << "Paper's Table 1: planar/teleportation = low space, "
                 "high time, prefetchable;\n"
                 "double-defect/braiding = high space, low time, not "
                 "prefetchable.  Measured rows agree.\n";
    return 0;
}
