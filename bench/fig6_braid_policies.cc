/**
 * @file
 * Figure 6: braid simulation results for the double-defect surface
 * code — schedule length / critical path (blue bars) and average
 * mesh utilization (red curve) for Policies 0-6 on each of the four
 * applications.
 *
 * One declarative sweep grid (app x policy) on the engine's parallel
 * sweep driver; results are bit-identical at any thread count.
 * Emits BENCH_fig6_braid_policies.json alongside the table.
 *
 * Expected shape (Section 6.3): serial applications (GSE, SQ) start
 * near the critical path, so policies barely matter; parallel
 * applications (SHA-1, IM) start many times above the critical path
 * under Policy 0 and recover most of the gap under Policy 6, with
 * mesh utilization rising several-fold.
 */

#include <iostream>

#include "braid/scheduler.h"
#include "common/logging.h"
#include "common/table.h"
#include "engine/sweep.h"

int
main()
{
    using namespace qsurf;
    setQuiet(true);

    // Sizes chosen so the full 7-policy sweep simulates in seconds
    // while exercising real contention on the parallel apps.
    engine::SweepGrid grid;
    grid.apps = {
        {apps::AppKind::GSE, {12, 3}, ""},
        {apps::AppKind::SQ, {8, 4}, ""},
        {apps::AppKind::SHA1, {16, 3}, ""},
        {apps::AppKind::IsingSemi, {42, 3}, ""},
    };
    grid.backends = {engine::backends::double_defect};
    grid.policies = {0, 1, 2, 3, 4, 5, 6};
    grid.distances = {5};

    engine::SweepOptions opts;
    opts.num_threads = engine::defaultThreads();
    opts.title = "Figure 6: braid policies";
    opts.json_path = "BENCH_fig6_braid_policies.json";
    auto results = engine::SweepDriver().run(grid, opts);

    Table t("Figure 6: braid schedule length / critical path (bars) "
            "and mesh utilization (curve)");
    t.header({"app", "policy", "schedule cycles", "critical path",
              "sched/CP", "mesh util", "drops", "detours"});

    // Results are app-major, policy-minor: 7 consecutive rows per
    // app, Policy 0 first and Policy 6 last.
    for (const engine::SweepPoint &p : results)
        t.addRow(p.app_name,
                 braid::policyName(
                     static_cast<braid::Policy>(p.policy)),
                 p.metrics.schedule_cycles,
                 p.metrics.critical_path_cycles,
                 Table::fixed(p.metrics.ratio(), 2),
                 Table::fixed(p.metrics.extra("mesh_utilization"), 3),
                 static_cast<uint64_t>(p.metrics.extra("drops")),
                 static_cast<uint64_t>(
                     p.metrics.extra("bfs_detours")));

    size_t per_app = grid.policies.size();
    for (size_t a = 0; a < grid.apps.size(); ++a) {
        double p0_ratio = results[a * per_app].metrics.ratio();
        double p6_ratio =
            results[a * per_app + per_app - 1].metrics.ratio();
        std::cout << results[a * per_app].app_name
                  << ": Policy 0 -> Policy 6 improvement "
                  << Table::fixed(p0_ratio / p6_ratio, 1)
                  << "x (paper reports up to ~7x on parallel apps)\n";
    }
    std::cout << "\n";
    t.print(std::cout);
    std::cout << "\nwrote " << opts.json_path << "\n";
    return 0;
}
