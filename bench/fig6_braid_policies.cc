/**
 * @file
 * Figure 6: braid simulation results for the double-defect surface
 * code — schedule length / critical path (blue bars) and average
 * mesh utilization (red curve) for Policies 0-6 on each of the four
 * applications.
 *
 * Expected shape (Section 6.3): serial applications (GSE, SQ) start
 * near the critical path, so policies barely matter; parallel
 * applications (SHA-1, IM) start many times above the critical path
 * under Policy 0 and recover most of the gap under Policy 6, with
 * mesh utilization rising several-fold.
 */

#include <iostream>

#include "apps/apps.h"
#include "braid/scheduler.h"
#include "circuit/decompose.h"
#include "common/logging.h"
#include "common/table.h"

namespace {

using namespace qsurf;

struct Workload
{
    apps::AppKind kind;
    int problem_size;
    int iterations;
};

} // namespace

int
main()
{
    setQuiet(true);

    // Sizes chosen so the full 7-policy sweep simulates in seconds
    // while exercising real contention on the parallel apps.
    const Workload workloads[] = {
        {apps::AppKind::GSE, 12, 3},
        {apps::AppKind::SQ, 8, 4},
        {apps::AppKind::SHA1, 16, 3},
        {apps::AppKind::IsingSemi, 42, 3},
    };

    Table t("Figure 6: braid schedule length / critical path (bars) "
            "and mesh utilization (curve)");
    t.header({"app", "policy", "schedule cycles", "critical path",
              "sched/CP", "mesh util", "drops", "detours"});

    for (const Workload &w : workloads) {
        apps::GenOptions gopts;
        gopts.problem_size = w.problem_size;
        gopts.max_iterations = w.iterations;
        circuit::Circuit circ =
            circuit::decompose(apps::generate(w.kind, gopts));

        double p0_ratio = 0, best_ratio = 0;
        for (int p = 0; p < braid::num_policies; ++p) {
            auto policy = static_cast<braid::Policy>(p);
            braid::BraidOptions opts;
            opts.code_distance = 5;
            braid::BraidResult r =
                braid::scheduleBraids(circ, policy, opts);
            if (p == 0)
                p0_ratio = r.ratio();
            best_ratio = r.ratio();
            t.addRow(apps::appSpec(w.kind).name,
                     braid::policyName(policy), r.schedule_cycles,
                     r.critical_path_cycles,
                     Table::fixed(r.ratio(), 2),
                     Table::fixed(r.mesh_utilization, 3), r.drops,
                     r.bfs_detours);
        }
        std::cout << apps::appSpec(w.kind).name
                  << ": Policy 0 -> Policy 6 improvement "
                  << Table::fixed(p0_ratio / best_ratio, 1)
                  << "x (paper reports up to ~7x on parallel apps)\n";
    }
    std::cout << "\n";
    t.print(std::cout);
    return 0;
}
