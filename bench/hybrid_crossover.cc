/**
 * @file
 * Mixed-scheme arbitration over the Figure-8 application pair: the
 * serial SQ workload and the parallel IM workload, across code
 * distances, comparing the hybrid backend's per-operation
 * braid/teleport/surgery choice against every pure single-scheme
 * commitment on the same patch machine (force-braid/-teleport/
 * -surgery arbiters) and against the paper's pure-scheme backends
 * (double-defect braiding, planar/surgery-sim chains).
 *
 * Expected shape (the paper's Table 2 asymmetry, exploited per op):
 * on the serial app the greedy arbiter shaves the braid baseline by
 * taking adjacent interactions as merge/split chains; on the
 * parallel app the congestion-reactive arbiter re-routes contended
 * corridors onto the teleport overlay and beats every pure scheme
 * by a wide margin.  Emits BENCH_hybrid.json recording, per design
 * point, all schedule lengths, the hybrid scheme histogram, and the
 * never-worse-than-worst / beats-best flags the acceptance checks
 * read.
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <vector>

#include "common/json.h"
#include "common/logging.h"
#include "common/table.h"
#include "engine/sweep.h"
#include "hybrid/arbiter.h"

int
main()
{
    using namespace qsurf;
    setQuiet(true);

    // The Figure-8 application pair at simulatable sizes, over the
    // same d axis the favorability sweeps use.  The hybrid backend
    // sweeps the full arbiter axis; the pure-scheme backends ignore
    // it, so they run on a separate single-arbiter grid.
    engine::SweepGrid hybrid_grid;
    hybrid_grid.apps = {{apps::AppKind::SQ, {8, 2}, ""},
                        {apps::AppKind::IsingFull, {12, 2}, ""}};
    hybrid_grid.policies = {6};
    hybrid_grid.distances = {3, 5, 7, 9};
    hybrid_grid.base.seed = 1234;
    hybrid_grid.base.tech = qec::tech_points::futureOptimistic();

    engine::SweepGrid pure_grid = hybrid_grid;
    hybrid_grid.backends = {engine::backends::hybrid_mixed};
    hybrid_grid.arbiters = {0, 1, 2, 3, 4};
    pure_grid.backends = {engine::backends::double_defect,
                          engine::backends::surgery_sim};

    engine::SweepOptions opts;
    opts.num_threads = engine::defaultThreads();
    auto hybrid_results =
        engine::SweepDriver().run(hybrid_grid, opts);
    auto pure_results = engine::SweepDriver().run(pure_grid, opts);

    // Index results: per (app, distance), one hybrid run per
    // arbiter plus the two pure-scheme backends.
    struct Point
    {
        std::string app;
        int d = 0;
        uint64_t pure_dd = 0;      ///< double-defect backend.
        uint64_t pure_surgery = 0; ///< planar/surgery-sim backend.
        uint64_t hybrid[hybrid::num_arbiters] = {};
        const engine::Metrics *mixed[2] = {}; ///< greedy, reactive.
    };
    std::vector<Point> points;
    size_t stride = hybrid_grid.arbiters.size(); // Per (app, d).
    for (size_t base = 0; base < hybrid_results.size();
         base += stride) {
        Point p;
        p.app = hybrid_results[base].app_name;
        p.d = hybrid_results[base].distance;
        for (size_t a = 0; a < stride; ++a) {
            const engine::SweepPoint &h = hybrid_results[base + a];
            p.hybrid[h.arbiter] = h.metrics.schedule_cycles;
            if (h.arbiter < 2)
                p.mixed[h.arbiter] = &h.metrics;
        }
        size_t pure_base = (base / stride) * 2;
        p.pure_dd =
            pure_results[pure_base].metrics.schedule_cycles;
        p.pure_surgery =
            pure_results[pure_base + 1].metrics.schedule_cycles;
        points.push_back(p);
    }

    // The acceptance flags: the best *mixed* arbiter against the
    // pure single-scheme commitments on the same machine.
    bool never_worse_than_worst = true;
    int beats_best_points = 0;
    Table t("Mixed-scheme arbitration vs pure schemes "
            "(schedule cycles)");
    t.header({"app", "d", "greedy", "reactive", "braid", "teleport",
              "surgery", "pure-dd", "pure-ls", "best mixed/pure"});
    for (const Point &p : points) {
        uint64_t best_mixed = std::min(p.hybrid[0], p.hybrid[1]);
        uint64_t best_pure = std::min(
            {p.hybrid[2], p.hybrid[3], p.hybrid[4]});
        uint64_t worst_pure = std::max(
            {p.hybrid[2], p.hybrid[3], p.hybrid[4]});
        never_worse_than_worst &= best_mixed <= worst_pure;
        if (best_mixed < best_pure)
            ++beats_best_points;
        t.addRow(p.app, Table::num(p.d), Table::num(p.hybrid[0]),
                 Table::num(p.hybrid[1]), Table::num(p.hybrid[2]),
                 Table::num(p.hybrid[3]), Table::num(p.hybrid[4]),
                 Table::num(p.pure_dd), Table::num(p.pure_surgery),
                 Table::fixed(static_cast<double>(best_mixed)
                                  / static_cast<double>(best_pure),
                              3));
    }
    t.print(std::cout);
    std::cout << "arbitration beats the best pure scheme on "
              << beats_best_points << " of " << points.size()
              << " design points"
              << (never_worse_than_worst
                      ? ", and is never worse than the worst"
                      : ", but LOSES to the worst somewhere")
              << "\n";

    const char *json_path = "BENCH_hybrid.json";
    std::ofstream os(json_path);
    fatalIf(!os, "cannot open '", json_path, "' for writing");
    {
        JsonWriter j(os);
        j.beginObject();
        j.field("title",
                "Hybrid mixed-scheme arbitration over the fig8 "
                "application pair");
        j.field("never_worse_than_worst_pure",
                never_worse_than_worst);
        j.field("beats_best_pure_points",
                static_cast<uint64_t>(beats_best_points));
        j.field("points", static_cast<uint64_t>(points.size()));
        j.key("results");
        j.beginArray();
        for (const Point &p : points) {
            j.beginObject();
            j.field("app", p.app);
            j.field("code_distance", p.d);
            j.field("pure_double_defect", p.pure_dd);
            j.field("pure_surgery_sim", p.pure_surgery);
            for (int a = 0; a < hybrid::num_arbiters; ++a)
                j.field(hybrid::arbiterName(
                            static_cast<hybrid::ArbiterKind>(a)),
                        p.hybrid[a]);
            for (int a = 0; a < 2; ++a) {
                const engine::Metrics *m = p.mixed[a];
                j.key(std::string("histogram_")
                      + hybrid::arbiterName(
                          static_cast<hybrid::ArbiterKind>(a)));
                j.beginObject();
                j.field("braid_ops", m->extra("braid_ops"));
                j.field("teleport_ops", m->extra("teleport_ops"));
                j.field("surgery_ops", m->extra("surgery_ops"));
                j.field("arbiter_fallbacks",
                        m->extra("arbiter_fallbacks"));
                j.endObject();
            }
            j.endObject();
        }
        j.endArray();
        j.endObject();
        os << "\n";
    }
    std::cout << "wrote " << json_path << "\n";
    return never_worse_than_worst && beats_best_points > 0 ? 0 : 1;
}
