/**
 * @file
 * Circuit-switched mesh saturation sweep.
 *
 * Backs the `dd_max_utilization` constant of the design-space model
 * (estimate::ModelConstants): braids claim whole routes exclusively
 * and hold them for d cycles, so the mesh's accepted throughput and
 * link utilization plateau at a low offered load, far below a
 * buffered packet network — and the saturation point falls as d
 * grows or routes lengthen (the Figure 9 mechanism).  Emits
 * BENCH_noc_saturation.json alongside the tables.
 */

#include <fstream>
#include <iostream>

#include "common/json.h"
#include "common/logging.h"
#include "common/table.h"
#include "network/traffic.h"

namespace {

using namespace qsurf;

/** Emit one traffic result as a JSON record. */
void
writeRecord(JsonWriter &j, const network::TrafficOptions &opts,
            const network::TrafficResult &r)
{
    j.beginObject();
    j.field("pattern", network::trafficPatternName(opts.pattern));
    j.field("injection_rate", opts.injection_rate);
    j.field("hold_cycles", opts.hold_cycles);
    j.field("acceptance", r.acceptance);
    j.field("mean_wait", r.mean_wait);
    j.field("utilization", r.utilization);
    j.endObject();
}

} // namespace

int
main()
{
    using namespace qsurf;
    setQuiet(true);

    constexpr int mesh = 16;

    const char *json_path = "BENCH_noc_saturation.json";
    std::ofstream os(json_path);
    fatalIf(!os, "cannot open '", json_path, "' for writing");
    JsonWriter j(os);
    j.beginObject();
    j.field("title", "Circuit-switched mesh saturation");
    j.field("mesh", mesh);
    j.key("results");
    j.beginArray();

    Table t("Circuit-switched saturation: 16x16 mesh, uniform "
            "traffic");
    t.header({"hold d", "injection/node", "acceptance", "mean wait",
              "link utilization"});
    for (int d : {3, 9}) {
        for (double rate : {0.002, 0.01, 0.05, 0.2}) {
            network::TrafficOptions opts;
            opts.injection_rate = rate;
            opts.hold_cycles = d;
            opts.cycles = 3000;
            auto r = network::runTraffic(mesh, mesh, opts);
            t.addRow(d, Table::num(rate),
                     Table::fixed(r.acceptance, 3),
                     Table::fixed(r.mean_wait, 1),
                     Table::fixed(r.utilization, 3));
            writeRecord(j, opts, r);
        }
    }
    t.print(std::cout);

    Table p("Pattern sensitivity (d = 5, injection 0.02)");
    p.header({"pattern", "acceptance", "mean wait",
              "link utilization"});
    for (auto pattern :
         {network::TrafficPattern::Neighbor,
          network::TrafficPattern::Uniform,
          network::TrafficPattern::Transpose,
          network::TrafficPattern::Hotspot}) {
        network::TrafficOptions opts;
        opts.pattern = pattern;
        opts.injection_rate = 0.02;
        opts.hold_cycles = 5;
        opts.cycles = 3000;
        auto r = network::runTraffic(mesh, mesh, opts);
        p.addRow(network::trafficPatternName(pattern),
                 Table::fixed(r.acceptance, 3),
                 Table::fixed(r.mean_wait, 1),
                 Table::fixed(r.utilization, 3));
        writeRecord(j, opts, r);
    }
    p.print(std::cout);

    j.endArray();
    j.endObject();
    os << "\n";

    std::cout
        << "Reading: utilization plateaus in the 0.1-0.25 range as "
           "offered load grows —\nthe circuit-switched ceiling the "
           "paper measures (~22%, Figure 6) and that the\nanalytic "
           "model's dd_max_utilization encodes; longer holds (d) "
           "and longer routes\n(transpose/hotspot) saturate "
           "earlier.\n"
        << "wrote " << json_path << "\n";
    return 0;
}
