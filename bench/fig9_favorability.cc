/**
 * @file
 * Figure 9: planar vs double-defect favorability boundaries across
 * the full range of physical error rates (pP from 1e-8 to 1e-3) for
 * every studied application.
 *
 * One declarative sweep grid per error-rate point — application x
 * computation size x the two analytic model backends — on the
 * engine's parallel driver; each boundary cell is the smallest swept
 * size where the double-defect space-time product drops below the
 * planar one.  Emits BENCH_fig9_favorability.json alongside the
 * table.
 *
 * Each cell is the cross-over computation size (1/pL): designs below
 * it favor planar codes, above it double-defect codes.  Expected
 * shape: boundaries never fall as pP increases (faultier technology
 * means larger d, and congestion hurts braids more), and more
 * parallel applications sit higher.
 */

#include <cmath>
#include <fstream>
#include <iostream>
#include <optional>

#include "common/json.h"
#include "common/logging.h"
#include "common/table.h"
#include "engine/sweep.h"
#include "estimate/crossover.h"

int
main()
{
    using namespace qsurf;
    setQuiet(true);

    constexpr int pp_points = 6;
    constexpr double pp_min = 1e-8, pp_max = 1e-3;

    // The size axis every grid shares: the same sweep range the
    // Figure 8 crossover search uses.
    const estimate::CrossoverOptions co;
    std::vector<double> sizes;
    double step = std::pow(10.0, 1.0 / co.points_per_decade);
    for (double kq = co.kq_min; kq <= co.kq_max * 1.0001; kq *= step)
        sizes.push_back(kq);

    std::vector<engine::AppPoint> app_points;
    for (apps::AppKind app : apps::allApps())
        app_points.push_back({app, {}, ""});

    // boundary[app][pp] = crossover size, or nullopt (planar always).
    std::vector<double> pps;
    std::vector<std::vector<std::optional<double>>> boundary(
        app_points.size());

    for (int i = 0; i < pp_points; ++i) {
        double t = pp_points == 1
            ? 0.0
            : static_cast<double>(i) / (pp_points - 1);
        double pp = std::pow(
            10.0, std::log10(pp_min)
                + t * (std::log10(pp_max) - std::log10(pp_min)));
        pps.push_back(pp);

        engine::SweepGrid grid;
        grid.apps = app_points;
        grid.backends = {engine::backends::planar_model,
                         engine::backends::double_defect_model};
        grid.sizes = sizes;
        grid.base.tech.p_physical = pp;

        engine::SweepOptions opts;
        opts.num_threads = engine::defaultThreads();
        auto results = engine::SweepDriver().run(grid, opts);

        // Expansion is app-major, size-middle, backend-innermost:
        // the crossover is the first size whose double-defect
        // space-time product is at or below the planar one.
        for (size_t a = 0; a < app_points.size(); ++a) {
            std::optional<double> cross;
            for (size_t s = 0; s < sizes.size() && !cross; ++s) {
                size_t base = (a * sizes.size() + s) * 2;
                double planar = results[base].metrics.spaceTime();
                double dd = results[base + 1].metrics.spaceTime();
                if (dd <= planar)
                    cross = sizes[s];
            }
            boundary[a].push_back(cross);
        }
    }

    Table t("Figure 9: cross-over boundary (1/pL) vs physical error "
            "rate");
    std::vector<std::string> head{"application"};
    for (double pp : pps)
        head.push_back("pP=" + Table::num(pp));
    t.header(head);
    for (size_t a = 0; a < app_points.size(); ++a) {
        std::vector<std::string> row{
            apps::appSpec(app_points[a].kind).name};
        for (const auto &cross : boundary[a])
            row.push_back(cross ? Table::num(*cross)
                                : std::string(">1e24"));
        t.row(row);
    }
    t.print(std::cout);

    const char *json_path = "BENCH_fig9_favorability.json";
    {
        std::ofstream os(json_path);
        fatalIf(!os, "cannot open '", json_path, "' for writing");
        JsonWriter j(os);
        j.beginObject();
        j.field("title",
                "Figure 9: favorability boundary vs error rate");
        j.key("results");
        j.beginArray();
        for (size_t a = 0; a < app_points.size(); ++a) {
            for (size_t i = 0; i < pps.size(); ++i) {
                j.beginObject();
                j.field("app",
                        apps::appSpec(app_points[a].kind).name);
                j.field("p_physical", pps[i]);
                j.key("crossover");
                if (boundary[a][i])
                    j.value(*boundary[a][i]);
                else
                    j.null();
                j.endObject();
            }
        }
        j.endArray();
        j.endObject();
        os << "\n";
    }

    std::cout
        << "Reading the table: higher rows-to-the-right means the "
           "planar region grows on\nfaultier technology; parallel "
           "apps (SHA-1, IM) sit above serial ones (GSE, SQ),\n"
           "and fully-inlined IM sits at or above semi-inlined IM — "
           "the paper's Figure 9 shape.\n";
    std::cout << "wrote " << json_path << "\n";
    return 0;
}
