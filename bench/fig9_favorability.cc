/**
 * @file
 * Figure 9: planar vs double-defect favorability boundaries across
 * the full range of physical error rates (pP from 1e-8 to 1e-3) for
 * every studied application.
 *
 * Each cell is the cross-over computation size (1/pL): designs below
 * it favor planar codes, above it double-defect codes.  Expected
 * shape: boundaries never fall as pP increases (faultier technology
 * means larger d, and congestion hurts braids more), and more
 * parallel applications sit higher.
 */

#include <iostream>
#include <map>

#include "common/logging.h"
#include "common/table.h"
#include "estimate/crossover.h"

int
main()
{
    using namespace qsurf;
    setQuiet(true);

    constexpr int points = 6;
    Table t("Figure 9: cross-over boundary (1/pL) vs physical error "
            "rate");
    std::vector<std::string> head{"application"};
    std::vector<estimate::BoundaryPoint> grid;
    for (apps::AppKind app : apps::allApps()) {
        auto pts =
            estimate::favorabilityBoundary(app, 1e-8, 1e-3, points);
        if (head.size() == 1)
            for (const auto &p : pts)
                head.push_back("pP=" + Table::num(p.p_physical));
        std::vector<std::string> row{apps::appSpec(app).name};
        for (const auto &p : pts)
            row.push_back(p.crossover ? Table::num(*p.crossover)
                                      : std::string(">1e24"));
        if (head.size() == points + 1 && t.rows() == 0)
            t.header(head);
        t.row(row);
        grid.insert(grid.end(), pts.begin(), pts.end());
    }
    t.print(std::cout);

    std::cout
        << "Reading the table: higher rows-to-the-right means the "
           "planar region grows on\nfaultier technology; parallel "
           "apps (SHA-1, IM) sit above serial ones (GSE, SQ),\n"
           "and fully-inlined IM sits at or above semi-inlined IM — "
           "the paper's Figure 9 shape.\n";
    return 0;
}
