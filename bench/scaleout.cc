/**
 * @file
 * Scale-out benchmark: multi-process sharded sweeps and arena A/B.
 *
 *   $ ./scaleout           # full large-distance grid
 *   $ ./scaleout --smoke   # small grid, CI-sized
 *
 * Three claims, each measured and enforced (nonzero exit on
 * violation):
 *
 *  1. Correctness: a sharded sweep's merged rows are identical to a
 *     single-process run's (canonicalSweepRows(), which excludes
 *     wall-clock and allocation observations — those physically
 *     differ between runs) at every worker count.
 *  2. Scale: wall clock improves with worker count on a
 *     large-distance lattice-surgery grid; the JSON records the
 *     speedup ladder.  Enforced only when the machine actually has
 *     the cores (>= 4): on a 1-core container every extra process
 *     is pure overhead and the ladder is reported, not judged.
 *  3. Allocation: running points under the per-point scratch arena
 *     is not slower than the plain-heap path and cuts global-heap
 *     allocations (counted by the replaced operator new below).
 *
 * Every run uses its own cold PrepareCache and one thread per
 * process, so the sharded/single comparison measures process
 * scale-out, not cache warmth.  Results land in BENCH_scaleout.json.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "alloc_hook.h"

#include "common/json.h"
#include "common/logging.h"
#include "common/table.h"
#include "engine/sweep.h"
#include "service/cache.h"
#include "service/shard.h"

namespace {

using namespace qsurf;
using Clock = std::chrono::steady_clock;

struct RunResult
{
    double wall_ms = 0;
    std::string canonical;
    uint64_t heap_allocs = 0;
    uint64_t arena_allocs = 0;
    uint64_t arena_bytes = 0;
    std::vector<engine::SweepPoint> points;
};

engine::SweepGrid
makeGrid(bool smoke)
{
    // Simulation wall time tracks circuit size (fast-forward skips
    // idle cycles, so distance mostly rescales reported cycles, not
    // work); the full grid uses deep iteration counts so each point
    // costs enough for process scale-out to be the dominant term.
    engine::SweepGrid grid;
    grid.apps = {{apps::AppKind::SQ, {8, smoke ? 2 : 96}, ""},
                 {apps::AppKind::GSE, {16, smoke ? 2 : 256}, ""}};
    grid.backends = {engine::backends::surgery_sim};
    grid.distances = smoke ? std::vector<int>{9, 13}
                           : std::vector<int>{63, 75, 87, 99};
    // Deep circuits at d=99 legitimately run past the default
    // runaway guard (cycles scale with gates x distance).
    if (!smoke)
        grid.base.max_cycles = 100'000'000'000ull;
    return grid;
}

/** One single-process run (1 thread, cold cache). */
RunResult
runSingle(const engine::SweepGrid &grid, bool use_arena)
{
    service::PrepareCache cache;
    engine::SweepOptions opts;
    opts.num_threads = 1;
    opts.cache = &cache;
    opts.stream_rows = false;
    opts.use_arena = use_arena;
    opts.heap_alloc_counter = [] { return benchhook::heapAllocs(); };

    RunResult r;
    auto start = Clock::now();
    r.points = engine::SweepDriver().run(grid, opts);
    r.wall_ms = std::chrono::duration<double, std::milli>(
                    Clock::now() - start)
                    .count();
    r.canonical = engine::canonicalSweepRows(r.points);
    for (const engine::SweepPoint &p : r.points) {
        r.heap_allocs += p.heap_allocs;
        r.arena_allocs += p.arena_allocs;
        r.arena_bytes += p.arena_bytes;
    }
    return r;
}

/** One sharded run (N forked workers, 1 thread each, cold cache). */
RunResult
runSharded(const engine::SweepGrid &grid, int workers)
{
    service::PrepareCache cache;
    service::ShardOptions opts;
    opts.workers = workers;
    opts.sweep.num_threads = 1;
    opts.sweep.cache = &cache;
    opts.sweep.stream_rows = false;
    opts.idle_timeout_sec = 300;

    RunResult r;
    auto start = Clock::now();
    r.points = service::runShardedSweep(grid, opts);
    r.wall_ms = std::chrono::duration<double, std::milli>(
                    Clock::now() - start)
                    .count();
    r.canonical = engine::canonicalSweepRows(r.points);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--smoke") {
            smoke = true;
        } else {
            std::cerr << "usage: " << argv[0] << " [--smoke]\n";
            return 2;
        }
    }
    setQuiet(true);

    engine::SweepGrid grid = makeGrid(smoke);
    std::vector<int> worker_counts =
        smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
    unsigned cores = std::thread::hardware_concurrency();

    std::cout << "scale-out grid: " << grid.points()
              << " lattice-surgery points, distances";
    for (int d : grid.distances)
        std::cout << " " << d;
    std::cout << (smoke ? " (smoke)" : "") << ", " << cores
              << " cores\n\n";

    // Claim 3 first (the arena A/B runs double as the single-process
    // baseline): heap path, then arena path, same grid.
    RunResult heap_run = runSingle(grid, /*use_arena=*/false);
    RunResult arena_run = runSingle(grid, /*use_arena=*/true);
    bool rows_ok = arena_run.canonical == heap_run.canonical;
    bool fewer_allocs =
        arena_run.heap_allocs < heap_run.heap_allocs;

    const RunResult &baseline = arena_run;

    // Claims 1 and 2: the worker ladder against the baseline.
    struct ShardRow
    {
        int workers;
        double wall_ms;
        double speedup;
        bool identical;
    };
    std::vector<ShardRow> ladder;
    for (int w : worker_counts) {
        RunResult r = runSharded(grid, w);
        ladder.push_back(
            {w, r.wall_ms, baseline.wall_ms / r.wall_ms,
             r.canonical == baseline.canonical});
    }

    Table t("Sharded sweep vs single process (1 thread per process)");
    t.header({"mode", "workers", "wall ms", "speedup", "rows",
              "heap allocs", "arena allocs"});
    t.addRow("single (heap)", 1, Table::fixed(heap_run.wall_ms, 1),
             Table::fixed(1.0, 2), "baseline",
             heap_run.heap_allocs, heap_run.arena_allocs);
    t.addRow("single (arena)", 1,
             Table::fixed(arena_run.wall_ms, 1),
             Table::fixed(heap_run.wall_ms / arena_run.wall_ms, 2),
             rows_ok ? "identical" : "MISMATCH",
             arena_run.heap_allocs, arena_run.arena_allocs);
    for (const ShardRow &row : ladder)
        t.addRow("sharded", row.workers,
                 Table::fixed(row.wall_ms, 1),
                 Table::fixed(row.speedup, 2),
                 row.identical ? "identical" : "MISMATCH", "-", "-");
    t.print(std::cout);

    std::cout << "\narena A/B: " << heap_run.heap_allocs
              << " heap allocs without arena vs "
              << arena_run.heap_allocs << " with ("
              << arena_run.arena_allocs
              << " arena allocs absorbed)\n";

    const char *json_path = "BENCH_scaleout.json";
    {
        std::ofstream os(json_path);
        fatalIf(!os, "cannot open '", json_path, "' for writing");
        JsonWriter j(os);
        j.beginObject();
        j.field("title",
                "Scale-out: sharded sweeps and per-point arenas");
        j.field("smoke", smoke);
        j.field("cores", static_cast<uint64_t>(cores));
        j.field("points", static_cast<uint64_t>(grid.points()));
        j.field("grid_fingerprint",
                engine::sweepGridFingerprint(grid));
        j.key("arena_ab");
        j.beginArray();
        for (const RunResult *r : {&heap_run, &arena_run}) {
            j.beginObject();
            j.field("arena", r == &arena_run);
            j.field("wall_ms", r->wall_ms);
            j.field("heap_allocs", r->heap_allocs);
            j.field("arena_allocs", r->arena_allocs);
            j.field("arena_bytes", r->arena_bytes);
            j.field("rows_identical",
                    r->canonical == baseline.canonical);
            j.endObject();
        }
        j.endArray();
        j.key("sharded");
        j.beginArray();
        for (const ShardRow &row : ladder) {
            j.beginObject();
            j.field("workers", row.workers);
            j.field("wall_ms", row.wall_ms);
            j.field("speedup", row.speedup);
            j.field("rows_identical", row.identical);
            j.endObject();
        }
        j.endArray();
        j.endObject();
        os << "\n";
    }
    std::cout << "wrote " << json_path << "\n";

    bool ok = rows_ok && fewer_allocs;
    for (const ShardRow &row : ladder)
        ok = ok && row.identical;
    if (!rows_ok)
        std::cerr << "FAIL: arena rows differ from heap rows\n";
    if (!fewer_allocs)
        std::cerr << "FAIL: arena did not reduce heap allocations ("
                  << arena_run.heap_allocs << " vs "
                  << heap_run.heap_allocs << ")\n";
    for (const ShardRow &row : ladder)
        if (!row.identical)
            std::cerr << "FAIL: " << row.workers
                      << "-worker sharded rows differ from "
                         "single-process rows\n";

    // The speedup claim needs cores to scale onto; a 1-core
    // container can only demonstrate correctness, not wall clock.
    if (!smoke && cores >= 4) {
        const ShardRow &widest = ladder.back();
        if (widest.speedup < 2.0) {
            std::cerr << "FAIL: " << widest.workers
                      << "-worker speedup "
                      << Table::fixed(widest.speedup, 2) << "x < 2x on "
                      << cores << " cores\n";
            ok = false;
        }
    } else if (!smoke) {
        std::cout << "note: " << cores
                  << " core(s) — speedup ladder recorded, not "
                     "enforced\n";
    }
    return ok ? 0 : 1;
}
