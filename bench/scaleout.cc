/**
 * @file
 * Scale-out benchmark: multi-process sharded sweeps and arena A/B.
 *
 *   $ ./scaleout           # full large-distance grid
 *   $ ./scaleout --smoke   # small grid, CI-sized
 *
 * Three claims, each measured and enforced (nonzero exit on
 * violation):
 *
 *  1. Correctness: a sharded sweep's merged rows are identical to a
 *     single-process run's (canonicalSweepRows(), which excludes
 *     wall-clock and allocation observations — those physically
 *     differ between runs) at every worker count.
 *  2. Scale: wall clock improves with worker count on a
 *     large-distance lattice-surgery grid; the JSON records the
 *     speedup ladder.  Enforced only when the machine actually has
 *     the cores (>= 4): on a 1-core container every extra process
 *     is pure overhead and the ladder is reported, not judged.
 *  3. Allocation: running points under the per-point scratch arena
 *     is not slower than the plain-heap path and cuts global-heap
 *     allocations (counted by the replaced operator new below).
 *  4. Fault tolerance: a worker SIGKILLed mid-sweep (fault
 *     injection in the shard scheduler) costs wall clock, never
 *     rows — the merged rows are still byte-identical to the
 *     single-process run, and the fleet reports degraded mode.
 *  5. Transport equivalence: the same fleet over TCP loopback
 *     (ShardOptions::local_tcp) produces byte-identical rows at
 *     every worker count — the framing, not the socket family,
 *     carries the determinism.
 *
 * Every run uses its own cold PrepareCache and one thread per
 * process, so the sharded/single comparison measures process
 * scale-out, not cache warmth.  Results land in BENCH_scaleout.json.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "alloc_hook.h"

#include "common/json.h"
#include "common/logging.h"
#include "common/table.h"
#include "engine/sweep.h"
#include "service/cache.h"
#include "service/shard.h"

namespace {

using namespace qsurf;
using Clock = std::chrono::steady_clock;

struct RunResult
{
    double wall_ms = 0;
    std::string canonical;
    uint64_t heap_allocs = 0;
    uint64_t arena_allocs = 0;
    uint64_t arena_bytes = 0;
    std::vector<engine::SweepPoint> points;
};

engine::SweepGrid
makeGrid(bool smoke)
{
    // Simulation wall time tracks circuit size (fast-forward skips
    // idle cycles, so distance mostly rescales reported cycles, not
    // work); the full grid uses deep iteration counts so each point
    // costs enough for process scale-out to be the dominant term.
    engine::SweepGrid grid;
    grid.apps = {{apps::AppKind::SQ, {8, smoke ? 2 : 96}, ""},
                 {apps::AppKind::GSE, {16, smoke ? 2 : 256}, ""}};
    grid.backends = {engine::backends::surgery_sim};
    grid.distances = smoke ? std::vector<int>{9, 13}
                           : std::vector<int>{63, 75, 87, 99};
    // Deep circuits at d=99 legitimately run past the default
    // runaway guard (cycles scale with gates x distance).
    if (!smoke)
        grid.base.max_cycles = 100'000'000'000ull;
    return grid;
}

/** One single-process run (1 thread, cold cache). */
RunResult
runSingle(const engine::SweepGrid &grid, bool use_arena)
{
    service::PrepareCache cache;
    engine::SweepOptions opts;
    opts.num_threads = 1;
    opts.cache = &cache;
    opts.stream_rows = false;
    opts.use_arena = use_arena;
    opts.heap_alloc_counter = [] { return benchhook::heapAllocs(); };

    RunResult r;
    auto start = Clock::now();
    r.points = engine::SweepDriver().run(grid, opts);
    r.wall_ms = std::chrono::duration<double, std::milli>(
                    Clock::now() - start)
                    .count();
    r.canonical = engine::canonicalSweepRows(r.points);
    for (const engine::SweepPoint &p : r.points) {
        r.heap_allocs += p.heap_allocs;
        r.arena_allocs += p.arena_allocs;
        r.arena_bytes += p.arena_bytes;
    }
    return r;
}

/** Knobs of one sharded bench run beyond the worker count. */
struct ShardVariant
{
    bool local_tcp = false;    ///< TCP loopback instead of socketpair.
    int fault_kill_worker = -1; ///< Fault injection (see shard.h).
    int fault_kill_after_rows = 0;
    service::FleetStats *stats = nullptr;
};

/** One sharded run (N forked workers, 1 thread each, cold cache). */
RunResult
runSharded(const engine::SweepGrid &grid, int workers,
           const ShardVariant &variant = {})
{
    service::PrepareCache cache;
    service::ShardOptions opts;
    opts.workers = workers;
    opts.sweep.num_threads = 1;
    opts.sweep.cache = &cache;
    opts.sweep.stream_rows = false;
    opts.idle_timeout_sec = 300;
    opts.local_tcp = variant.local_tcp;
    opts.fault_kill_worker = variant.fault_kill_worker;
    opts.fault_kill_after_rows = variant.fault_kill_after_rows;
    opts.stats = variant.stats;

    RunResult r;
    auto start = Clock::now();
    r.points = service::runShardedSweep(grid, opts);
    r.wall_ms = std::chrono::duration<double, std::milli>(
                    Clock::now() - start)
                    .count();
    r.canonical = engine::canonicalSweepRows(r.points);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--smoke") {
            smoke = true;
        } else {
            std::cerr << "usage: " << argv[0] << " [--smoke]\n";
            return 2;
        }
    }
    setQuiet(true);

    engine::SweepGrid grid = makeGrid(smoke);
    std::vector<int> worker_counts =
        smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
    unsigned cores = std::thread::hardware_concurrency();

    std::cout << "scale-out grid: " << grid.points()
              << " lattice-surgery points, distances";
    for (int d : grid.distances)
        std::cout << " " << d;
    std::cout << (smoke ? " (smoke)" : "") << ", " << cores
              << " cores\n\n";

    // Claim 3 first (the arena A/B runs double as the single-process
    // baseline): heap path, then arena path, same grid.
    RunResult heap_run = runSingle(grid, /*use_arena=*/false);
    RunResult arena_run = runSingle(grid, /*use_arena=*/true);
    bool rows_ok = arena_run.canonical == heap_run.canonical;
    bool fewer_allocs =
        arena_run.heap_allocs < heap_run.heap_allocs;

    const RunResult &baseline = arena_run;

    // Claims 1 and 2: the worker ladder against the baseline.
    struct ShardRow
    {
        int workers;
        double wall_ms;
        double speedup;
        bool identical;
    };
    std::vector<ShardRow> ladder;
    for (int w : worker_counts) {
        RunResult r = runSharded(grid, w);
        ladder.push_back(
            {w, r.wall_ms, baseline.wall_ms / r.wall_ms,
             r.canonical == baseline.canonical});
    }

    // Claim 5: the same ladder over TCP loopback.
    std::vector<ShardRow> tcp_ladder;
    for (int w : worker_counts) {
        ShardVariant tcp;
        tcp.local_tcp = true;
        RunResult r = runSharded(grid, w, tcp);
        tcp_ladder.push_back(
            {w, r.wall_ms, baseline.wall_ms / r.wall_ms,
             r.canonical == baseline.canonical});
    }

    // Claim 4: kill one of two workers mid-sweep; the scheduler
    // must recover the orphaned slice and the rows must not move.
    service::FleetStats fault_stats;
    ShardVariant fault;
    fault.fault_kill_worker = 1;
    fault.fault_kill_after_rows = 2;
    fault.stats = &fault_stats;
    RunResult fault_run = runSharded(grid, 2, fault);
    bool fault_ok = fault_run.canonical == baseline.canonical
        && fault_stats.degraded && fault_stats.worker_failures >= 1;

    Table t("Sharded sweep vs single process (1 thread per process)");
    t.header({"mode", "workers", "wall ms", "speedup", "rows",
              "heap allocs", "arena allocs"});
    t.addRow("single (heap)", 1, Table::fixed(heap_run.wall_ms, 1),
             Table::fixed(1.0, 2), "baseline",
             heap_run.heap_allocs, heap_run.arena_allocs);
    t.addRow("single (arena)", 1,
             Table::fixed(arena_run.wall_ms, 1),
             Table::fixed(heap_run.wall_ms / arena_run.wall_ms, 2),
             rows_ok ? "identical" : "MISMATCH",
             arena_run.heap_allocs, arena_run.arena_allocs);
    for (const ShardRow &row : ladder)
        t.addRow("sharded", row.workers,
                 Table::fixed(row.wall_ms, 1),
                 Table::fixed(row.speedup, 2),
                 row.identical ? "identical" : "MISMATCH", "-", "-");
    for (const ShardRow &row : tcp_ladder)
        t.addRow("sharded (tcp)", row.workers,
                 Table::fixed(row.wall_ms, 1),
                 Table::fixed(row.speedup, 2),
                 row.identical ? "identical" : "MISMATCH", "-", "-");
    t.addRow("sharded (kill 1 of 2)", 2,
             Table::fixed(fault_run.wall_ms, 1),
             Table::fixed(baseline.wall_ms / fault_run.wall_ms, 2),
             fault_run.canonical == baseline.canonical
                 ? "identical"
                 : "MISMATCH",
             "-", "-");
    t.print(std::cout);

    std::cout << "\nfault injection: killed worker 1 after "
              << fault.fault_kill_after_rows << " rows; "
              << fault_stats.worker_failures << " failure(s), "
              << fault_stats.worker_restarts << " restart(s), "
              << fault_stats.points_reassigned
              << " point(s) reassigned, degraded="
              << (fault_stats.degraded ? "true" : "false") << "\n";

    std::cout << "\narena A/B: " << heap_run.heap_allocs
              << " heap allocs without arena vs "
              << arena_run.heap_allocs << " with ("
              << arena_run.arena_allocs
              << " arena allocs absorbed)\n";

    const char *json_path = "BENCH_scaleout.json";
    {
        std::ofstream os(json_path);
        fatalIf(!os, "cannot open '", json_path, "' for writing");
        JsonWriter j(os);
        j.beginObject();
        j.field("title",
                "Scale-out: sharded sweeps and per-point arenas");
        j.field("smoke", smoke);
        j.field("cores", static_cast<uint64_t>(cores));
        j.field("points", static_cast<uint64_t>(grid.points()));
        j.field("grid_fingerprint",
                engine::sweepGridFingerprint(grid));
        j.key("arena_ab");
        j.beginArray();
        for (const RunResult *r : {&heap_run, &arena_run}) {
            j.beginObject();
            j.field("arena", r == &arena_run);
            j.field("wall_ms", r->wall_ms);
            j.field("heap_allocs", r->heap_allocs);
            j.field("arena_allocs", r->arena_allocs);
            j.field("arena_bytes", r->arena_bytes);
            j.field("rows_identical",
                    r->canonical == baseline.canonical);
            j.endObject();
        }
        j.endArray();
        j.key("sharded");
        j.beginArray();
        for (const ShardRow &row : ladder) {
            j.beginObject();
            j.field("workers", row.workers);
            j.field("wall_ms", row.wall_ms);
            j.field("speedup", row.speedup);
            j.field("rows_identical", row.identical);
            j.endObject();
        }
        j.endArray();
        j.key("sharded_tcp");
        j.beginArray();
        for (const ShardRow &row : tcp_ladder) {
            j.beginObject();
            j.field("workers", row.workers);
            j.field("wall_ms", row.wall_ms);
            j.field("speedup", row.speedup);
            j.field("rows_identical", row.identical);
            j.endObject();
        }
        j.endArray();
        // Degraded-mode summary of the kill-one-worker run: the
        // fleet lost a worker and still produced exact rows.
        j.key("fault");
        j.beginObject();
        j.field("workers", 2);
        j.field("killed_worker", fault.fault_kill_worker);
        j.field("killed_after_rows", fault.fault_kill_after_rows);
        j.field("wall_ms", fault_run.wall_ms);
        j.field("rows_identical",
                fault_run.canonical == baseline.canonical);
        j.field("degraded", fault_stats.degraded);
        j.field("worker_failures", fault_stats.worker_failures);
        j.field("worker_restarts", fault_stats.worker_restarts);
        j.field("reassignments", fault_stats.reassignments);
        j.field("points_reassigned",
                fault_stats.points_reassigned);
        j.endObject();
        j.endObject();
        os << "\n";
    }
    std::cout << "wrote " << json_path << "\n";

    bool ok = rows_ok && fewer_allocs && fault_ok;
    for (const ShardRow &row : ladder)
        ok = ok && row.identical;
    for (const ShardRow &row : tcp_ladder)
        ok = ok && row.identical;
    if (!rows_ok)
        std::cerr << "FAIL: arena rows differ from heap rows\n";
    if (!fewer_allocs)
        std::cerr << "FAIL: arena did not reduce heap allocations ("
                  << arena_run.heap_allocs << " vs "
                  << heap_run.heap_allocs << ")\n";
    for (const ShardRow &row : ladder)
        if (!row.identical)
            std::cerr << "FAIL: " << row.workers
                      << "-worker sharded rows differ from "
                         "single-process rows\n";
    for (const ShardRow &row : tcp_ladder)
        if (!row.identical)
            std::cerr << "FAIL: " << row.workers
                      << "-worker TCP-transport rows differ from "
                         "single-process rows\n";
    if (!fault_ok)
        std::cerr << "FAIL: kill-one-worker run "
                  << (fault_run.canonical == baseline.canonical
                          ? "did not report degraded mode"
                          : "changed the merged rows")
                  << "\n";

    // The speedup claim needs cores to scale onto; a 1-core
    // container can only demonstrate correctness, not wall clock.
    if (!smoke && cores >= 4) {
        const ShardRow &widest = ladder.back();
        if (widest.speedup < 2.0) {
            std::cerr << "FAIL: " << widest.workers
                      << "-worker speedup "
                      << Table::fixed(widest.speedup, 2) << "x < 2x on "
                      << cores << " cores\n";
            ok = false;
        }
    } else if (!smoke) {
        std::cout << "note: " << cores
                  << " core(s) — speedup ladder recorded, not "
                     "enforced\n";
    }
    return ok ? 0 : 1;
}
