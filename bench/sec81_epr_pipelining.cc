/**
 * @file
 * Section 8.1: pipelined just-in-time EPR distribution.
 *
 * Sweeps the lookahead window on a teleport-heavy workload through
 * the "planar" engine backend — one single-point sweep grid per
 * window on the parallel driver, with channel bandwidth constrained
 * so prefetch-all pays queueing — and reports the live-EPR footprint
 * (space) against schedule length (time).  All points land in
 * BENCH_sec81_epr_pipelining.json.
 *
 * Expected shape: a well-chosen window cuts the EPR qubit footprint
 * by an order of magnitude or more versus prefetch-all (the paper
 * reports up to ~24x) while adding only a few percent of latency;
 * too small a window starves teleports instead.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/table.h"
#include "engine/sweep.h"

int
main()
{
    using namespace qsurf;
    setQuiet(true);

    // SHA-1 keeps words migrating between SIMD regions, giving a
    // teleport stream spread across the whole run.  Window 0 is the
    // prefetch-all baseline.  One single-point grid per window:
    // the grid has no window axis (yet — see ROADMAP), so each
    // point re-derives the SIMD schedule; acceptable at this size.
    const std::vector<int> windows{0, 256, 64, 16, 8, 4, 2, 1};

    std::vector<engine::SweepPoint> points;
    for (int w : windows) {
        engine::SweepGrid grid;
        grid.apps = {{apps::AppKind::SHA1, {16, 20}, ""}};
        grid.backends = {engine::backends::planar};
        grid.distances = {5};
        grid.base.epr_window_steps = w;
        grid.base.epr_bandwidth = 32;

        auto results = engine::SweepDriver().run(grid);
        for (engine::SweepPoint &p : results) {
            p.index = points.size();
            p.metrics.set("epr_window_steps",
                          static_cast<double>(w));
            points.push_back(std::move(p));
        }
    }

    const engine::Metrics &all = points.front().metrics;
    Table t("Section 8.1: EPR lookahead-window sweep (SHA-1, "
            + std::to_string(
                  static_cast<uint64_t>(all.extra("teleports")))
            + " teleports over "
            + std::to_string(static_cast<uint64_t>(all.extra("steps")))
            + " steps)");
    t.header({"window (steps)", "peak live EPRs", "avg live EPRs",
              "stall cycles", "schedule cycles",
              "qubit saving vs prefetch-all", "latency overhead"});
    for (const engine::SweepPoint &p : points) {
        const engine::Metrics &m = p.metrics;
        double avg = m.extra("avg_live_eprs");
        double saving =
            avg > 0 ? all.extra("avg_live_eprs") / avg : 0.0;
        double overhead = static_cast<double>(m.schedule_cycles)
                / static_cast<double>(all.schedule_cycles)
            - 1.0;
        int w = static_cast<int>(m.extra("epr_window_steps"));
        t.addRow(w == 0 ? std::string("prefetch-all")
                        : std::to_string(w),
                 static_cast<uint64_t>(m.extra("peak_live_eprs")),
                 Table::fixed(avg, 2),
                 static_cast<uint64_t>(m.extra("stall_cycles")),
                 m.schedule_cycles, Table::fixed(saving, 1),
                 Table::fixed(100 * overhead, 1) + "%");
    }
    t.print(std::cout);

    const char *json_path = "BENCH_sec81_epr_pipelining.json";
    {
        std::ofstream os(json_path);
        fatalIf(!os, "cannot open '", json_path, "' for writing");
        engine::writeSweepJson(
            os, "Section 8.1: EPR lookahead-window sweep", points);
    }

    std::cout
        << "Shape check: a mid-sized window keeps latency within a "
           "few percent of\nprefetch-all while shrinking the live-"
           "EPR footprint sharply (paper: ~24x qubit\nsavings at "
           "<= ~4% latency); a window of 1 starves teleports "
           "instead.\n";
    std::cout << "wrote " << json_path << "\n";
    return 0;
}
