/**
 * @file
 * Section 8.1: pipelined just-in-time EPR distribution.
 *
 * Sweeps the lookahead window on a teleport-heavy workload and
 * reports the live-EPR footprint (space) against schedule length
 * (time).  Expected shape: a well-chosen window cuts the EPR qubit
 * footprint by an order of magnitude or more versus prefetch-all
 * (the paper reports up to ~24x) while adding only a few percent of
 * latency; too small a window starves teleports instead.
 */

#include <iostream>

#include "apps/apps.h"
#include "circuit/decompose.h"
#include "common/logging.h"
#include "common/table.h"
#include "planar/planar.h"

int
main()
{
    using namespace qsurf;
    setQuiet(true);

    // SHA-1 keeps words migrating between SIMD regions, giving a
    // teleport stream spread across the whole run.
    apps::GenOptions gopts;
    gopts.problem_size = 16;
    gopts.max_iterations = 20;
    circuit::Circuit circ = circuit::decompose(
        apps::generate(apps::AppKind::SHA1, gopts));

    planar::SimdArchOptions aopts;
    aopts.num_regions = 4;
    aopts.num_qubits = circ.numQubits();
    planar::SimdArch arch(aopts);
    planar::SimdSchedule sched = planar::scheduleSimd(circ, arch);

    // Constrain channel bandwidth so prefetch-all pays queueing.
    planar::EprOptions base;
    base.bandwidth = 32;
    base.window_steps = 0;
    planar::EprResult all = planar::simulateEpr(sched, arch, base);

    Table t("Section 8.1: EPR lookahead-window sweep (SHA-1, "
            + std::to_string(sched.teleports.size())
            + " teleports over " + std::to_string(sched.steps)
            + " steps)");
    t.header({"window (steps)", "peak live EPRs", "avg live EPRs",
              "stall cycles", "schedule cycles",
              "qubit saving vs prefetch-all", "latency overhead"});

    auto report = [&](const char *label, planar::EprResult r) {
        double saving = r.avg_live_eprs > 0
            ? all.avg_live_eprs / r.avg_live_eprs
            : 0.0;
        double overhead = static_cast<double>(r.schedule_cycles)
                / static_cast<double>(all.schedule_cycles)
            - 1.0;
        t.addRow(label, r.peak_live_eprs,
                 Table::fixed(r.avg_live_eprs, 2), r.stall_cycles,
                 r.schedule_cycles, Table::fixed(saving, 1),
                 Table::fixed(100 * overhead, 1) + "%");
    };

    report("prefetch-all", all);
    for (int w : {256, 64, 16, 8, 4, 2, 1}) {
        planar::EprOptions opts = base;
        opts.window_steps = w;
        report(std::to_string(w).c_str(),
               planar::simulateEpr(sched, arch, opts));
    }
    t.print(std::cout);

    std::cout
        << "Shape check: a mid-sized window keeps latency within a "
           "few percent of\nprefetch-all while shrinking the live-"
           "EPR footprint sharply (paper: ~24x qubit\nsavings at "
           "<= ~4% latency); a window of 1 starves teleports "
           "instead.\n";
    return 0;
}
